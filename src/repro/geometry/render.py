"""ASCII rendering of 2-D polytopes and trajectories.

No plotting stack is available offline, so examples and demos render the
nested safe sets (paper Fig. 1) as character grids: each cell is tested
against the polytopes in order and painted with the glyph of the
innermost set containing it.  Trajectory points are overlaid last.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.geometry.hpolytope import HPolytope

__all__ = ["ascii_sets", "ascii_trajectory"]


def ascii_sets(
    polytopes: Sequence[HPolytope],
    glyphs: Sequence[str],
    width: int = 64,
    height: int = 24,
    bounds: Optional[tuple] = None,
    points: Optional[np.ndarray] = None,
    point_glyph: str = "o",
) -> str:
    """Render nested 2-D polytopes as an ASCII grid.

    Args:
        polytopes: Sets ordered outermost → innermost (later sets paint
            over earlier ones).
        glyphs: One display character per polytope.
        width: Grid columns.
        height: Grid rows.
        bounds: ``(lower, upper)`` drawing window; defaults to the first
            polytope's bounding box padded by 5%.
        points: Optional ``(N, 2)`` array of points to overlay.
        point_glyph: Character used for overlaid points.

    Returns:
        The rendered multi-line string (top row = largest y).

    Raises:
        ValueError: On dimension/length mismatches.
    """
    if len(polytopes) != len(glyphs):
        raise ValueError("need exactly one glyph per polytope")
    if any(p.dim != 2 for p in polytopes):
        raise ValueError("ascii_sets renders 2-D polytopes only")
    if bounds is None:
        lower, upper = polytopes[0].bounding_box()
        pad = 0.05 * (upper - lower)
        lower, upper = lower - pad, upper + pad
    else:
        lower = np.asarray(bounds[0], dtype=float)
        upper = np.asarray(bounds[1], dtype=float)

    xs = np.linspace(lower[0], upper[0], width)
    ys = np.linspace(lower[1], upper[1], height)
    grid = np.full((height, width), " ", dtype="<U1")
    cells = np.array([[x, y] for y in ys for x in xs])
    for poly, glyph in zip(polytopes, glyphs):
        inside = poly.contains_points(cells).reshape(height, width)
        grid[inside] = glyph
    if points is not None:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        for px, py in pts:
            col = int(round((px - lower[0]) / max(upper[0] - lower[0], 1e-12) * (width - 1)))
            row = int(round((py - lower[1]) / max(upper[1] - lower[1], 1e-12) * (height - 1)))
            if 0 <= row < height and 0 <= col < width:
                grid[row, col] = point_glyph
    # Row 0 of the grid is the smallest y; print top-down.
    lines = ["".join(grid[r]) for r in range(height - 1, -1, -1)]
    return "\n".join(lines)


def ascii_trajectory(
    values: Sequence[float],
    width: int = 64,
    height: int = 12,
    label: str = "",
) -> str:
    """Render a scalar time series as an ASCII sparkline grid.

    Args:
        values: The series to plot.
        width: Columns (series is resampled if longer).
        height: Rows.
        label: Optional caption appended under the plot.

    Returns:
        Multi-line string with ``*`` marks and a y-range annotation.
    """
    series = np.asarray(list(values), dtype=float)
    if series.size == 0:
        raise ValueError("empty series")
    if series.size > width:
        idx = np.linspace(0, series.size - 1, width).astype(int)
        series = series[idx]
    lo, hi = float(series.min()), float(series.max())
    span = hi - lo if hi > lo else 1.0
    grid = np.full((height, series.size), " ", dtype="<U1")
    for col, value in enumerate(series):
        row = int(round((value - lo) / span * (height - 1)))
        grid[row, col] = "*"
    lines = ["".join(grid[r]) for r in range(height - 1, -1, -1)]
    footer = f"[{lo:.3g} .. {hi:.3g}] {label}".rstrip()
    return "\n".join(lines) + "\n" + footer
