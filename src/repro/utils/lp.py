"""Thin wrappers around :func:`scipy.optimize.linprog` (HiGHS backend).

``linprog`` defaults to non-negative variables, which is never what a set
computation wants, so every wrapper here uses free variables unless told
otherwise.  All wrappers return plain floats/arrays and raise
:class:`LPError` on solver failure so callers do not have to inspect
``OptimizeResult`` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

__all__ = [
    "LPError",
    "LPSolution",
    "solve_lp",
    "lp_feasible",
    "maximize",
    "solve_lp_batch",
    "maximize_batch",
]


class LPError(RuntimeError):
    """Raised when an LP that was expected to solve does not."""


@dataclass(frozen=True)
class LPSolution:
    """Result of a successful LP solve.

    Attributes:
        x: Optimal point.
        value: Optimal objective value (of the *minimisation*).
        status: scipy status code (0 = optimal).
    """

    x: np.ndarray
    value: float
    status: int


def solve_lp(
    c,
    a_ub=None,
    b_ub=None,
    a_eq=None,
    b_eq=None,
    bounds=None,
) -> LPSolution:
    """Minimise ``c @ x`` subject to ``a_ub @ x <= b_ub`` and equalities.

    Variables are free (``(-inf, inf)``) unless ``bounds`` is given.

    Raises:
        LPError: If the problem is infeasible, unbounded, or the solver
            fails numerically.
    """
    c = np.asarray(c, dtype=float)
    if bounds is None:
        bounds = [(None, None)] * c.size
    res = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not res.success:
        raise LPError(f"LP failed (status={res.status}): {res.message}")
    return LPSolution(x=np.asarray(res.x, dtype=float), value=float(res.fun), status=int(res.status))


def lp_feasible(a_ub, b_ub, a_eq=None, b_eq=None) -> bool:
    """Return True iff ``{x : a_ub x <= b_ub, a_eq x = b_eq}`` is non-empty."""
    a_ub = np.asarray(a_ub, dtype=float)
    n = a_ub.shape[1]
    res = linprog(
        np.zeros(n),
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(None, None)] * n,
        method="highs",
    )
    # Status 2 is "infeasible"; anything else with success=False is a real
    # solver failure that the caller should see.
    if res.success:
        return True
    if res.status == 2:
        return False
    raise LPError(f"feasibility LP failed (status={res.status}): {res.message}")


def solve_lp_batch(objectives, a_ub, b_ub) -> List[LPSolution]:
    """Minimise every row of ``objectives`` over one shared feasible region.

    The ``k`` independent problems ``min c_i @ x  s.t.  a_ub x <= b_ub``
    are assembled into a single block-diagonal LP (variables
    ``[x_1 … x_k]``, constraints ``diag(a_ub, …, a_ub)``) and handed to
    HiGHS in one call — replacing a Python loop of ``k`` ``linprog``
    calls, which is what the per-facet support computations of
    :class:`repro.geometry.HPolytope` used to do.  The constraint matrix
    is built sparse, so memory stays ``O(k · nnz(a_ub))``.

    Because the blocks are fully decoupled, the stacked optimum restricted
    to block ``i`` is exactly the optimum of problem ``i``.

    Raises:
        LPError: If the stacked LP fails.  Any single unbounded block (or
            the shared region being empty) makes the whole stack fail, so
            per-block failure attribution is lost — callers that need it
            should fall back to scalar :func:`solve_lp` calls.
    """
    C = np.atleast_2d(np.asarray(objectives, dtype=float))
    k = C.shape[0]
    if k == 0:
        return []
    if k == 1:
        return [solve_lp(C[0], a_ub=a_ub, b_ub=b_ub)]
    A = np.asarray(a_ub, dtype=float)
    b = np.asarray(b_ub, dtype=float)
    n = A.shape[1]
    if C.shape[1] != n:
        raise ValueError(
            f"objectives have {C.shape[1]} columns, constraints have {n}"
        )
    stacked_A = sp.block_diag([sp.csr_matrix(A)] * k, format="csr")
    stacked_b = np.tile(b, k)
    res = linprog(
        C.reshape(-1),
        A_ub=stacked_A,
        b_ub=stacked_b,
        bounds=[(None, None)] * (n * k),
        method="highs",
    )
    if not res.success:
        raise LPError(
            f"stacked LP ({k} blocks) failed (status={res.status}): {res.message}"
        )
    X = np.asarray(res.x, dtype=float).reshape(k, n)
    values = np.einsum("ij,ij->i", C, X)
    return [
        LPSolution(x=X[i], value=float(values[i]), status=int(res.status))
        for i in range(k)
    ]


def maximize_batch(directions, a_ub, b_ub) -> np.ndarray:
    """Support values ``max d_i @ x`` for every row of ``directions``.

    One stacked block-diagonal LP (see :func:`solve_lp_batch`) instead of
    a loop of :func:`maximize` calls.

    Returns:
        Float array of per-direction maxima (signs already flipped back).

    Raises:
        LPError: If the region is empty or unbounded in any direction.
    """
    D = np.atleast_2d(np.asarray(directions, dtype=float))
    solutions = solve_lp_batch(-D, a_ub, b_ub)
    return np.array([-sol.value for sol in solutions])


def maximize(objective, a_ub, b_ub) -> LPSolution:
    """Maximise ``objective @ x`` over ``{x : a_ub x <= b_ub}``.

    Returns:
        An :class:`LPSolution` whose ``value`` is the *maximum* (sign
        already flipped back).

    Raises:
        LPError: If infeasible or unbounded.
    """
    objective = np.asarray(objective, dtype=float)
    sol = solve_lp(-objective, a_ub=a_ub, b_ub=b_ub)
    return LPSolution(x=sol.x, value=-sol.value, status=sol.status)
