"""Engine-agnostic paired evaluation of control approaches.

The paper's Sec.-IV comparisons all share one shape: run several control
approaches — the κ-every-step baseline plus monitored skipping policies —
over the *identical* set of (initial state, disturbance realisation)
pairs, and reduce every episode to a tuple of metrics.  This module owns
that shape, scenario-agnostically; the ACC experiment harness
(:func:`repro.acc.experiments.evaluate_approaches`) and the cross-scenario
sweep (:mod:`repro.scenarios.evaluate`) are both thin clients.

Engine semantics match the batch runners: ``"serial"`` is the reference
case-major loop, ``"parallel"`` fans cases out over forked workers
(:func:`repro.utils.parallel.fork_map`), ``"lockstep"`` advances all
cases of one approach as a single state matrix.  Because realisations are
materialised by the caller up front and all supplied policies must be
effectively stateless, every engine yields the same deterministic metric
values — only wall-clock-derived entries vary.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.controllers.base import Controller
from repro.controllers.rmpc import RMPCInfeasibleError
from repro.framework.accounting import RunStats
from repro.framework.intermittent import IntermittentController, run_controller_only
from repro.framework.lockstep import lockstep_controller_only, run_lockstep
from repro.framework.monitor import SafetyMonitor
from repro.framework.profiling import StageProfiler
from repro.observability import metrics as _obs
from repro.skipping.base import SkippingPolicy
from repro.systems.lti import DiscreteLTISystem
from repro.utils.parallel import fork_map

__all__ = ["ENGINES", "default_engine", "paired_evaluation"]


def _solver_probe() -> tuple:
    """Snapshot of the ambient registry's solver-effort counters (they
    are always on and never reset by ``controller.reset()``, so
    before/after deltas attribute effort per approach)."""
    reg = _obs.registry()
    return (
        reg.total("rmpc_solves_total"),
        reg.total("rmpc_solves_total", path="scalar"),
        reg.total("rmpc_solves_total", path="stacked"),
        reg.total("rmpc_solves_total", path="stacked", backend="highs"),
        reg.total("rmpc_stacked_fallbacks_total"),
    )


def _effort_dict(delta: tuple) -> dict:
    """A probe delta as the solver-effort mapping the result layer
    surfaces per approach (see ``ApproachResult.solver``)."""
    total, scalar, stacked, highs, fallbacks = delta
    return {
        "solve_count": total,
        "scalar_solves": scalar,
        "stacked_solves": stacked,
        "stacked_fallbacks": fallbacks,
        "lp_backend": (
            ("highs" if highs > 0 else "scipy") if stacked > 0 else None
        ),
    }


def _probe_delta(before: tuple, after: tuple) -> tuple:
    return tuple(b - a for a, b in zip(before, after))


def _fold_stages(reg, prof: StageProfiler, approach: str) -> None:
    """Fold a per-approach StageProfiler into the registry: seconds as
    wall-clock counters (excluded from deterministic snapshots), call
    counts as plain counters, and one leaf span per stage."""
    for stage, row in prof.report().items():
        reg.inc(
            "lockstep_stage_seconds", row["seconds"],
            stage=stage, approach=approach,
        )
        reg.inc(
            "lockstep_stage_calls", row["calls"],
            stage=stage, approach=approach,
        )
        reg.trace.add_span(
            f"stage:{stage}", duration=row["seconds"], calls=row["calls"]
        )

#: The execution engines every evaluation entry point accepts.
ENGINES = ("serial", "parallel", "lockstep")


def default_engine(engine: Optional[str], jobs: int) -> str:
    """Resolve the legacy engine inference shared by the old entry points.

    An explicit ``engine`` wins; ``None`` keeps the historical behaviour
    of the pre-spec API (parallel iff ``jobs != 1``).

    Raises:
        ValueError: For names outside :data:`ENGINES`.
    """
    if engine is None:
        return "parallel" if jobs != 1 else "serial"
    if engine not in ENGINES:
        raise ValueError(
            f"engine must be one of {ENGINES}, got {engine!r}"
        )
    return engine


def paired_evaluation(
    system: DiscreteLTISystem,
    controller: Controller,
    monitor_factory: Callable[[], SafetyMonitor],
    approaches: Mapping[str, Optional[SkippingPolicy]],
    initial_states,
    realisations: Sequence,
    metrics_of: Callable[[RunStats], tuple],
    skip_input=None,
    memory_length: int = 1,
    engine: str = "serial",
    jobs: int = 1,
    exact_solves: bool = False,
    lp_backend: Optional[str] = None,
    collect_timing: bool = True,
    kernel: str = "auto",
    profiler=None,
    solver_effort: Optional[dict] = None,
) -> Dict[str, List[tuple]]:
    """Run every approach over every case; collect per-case metric tuples.

    Args:
        system: The plant (shared across approaches and cases).
        controller: Safe controller κ (shared; must reset cleanly).
        monitor_factory: Fresh :class:`SafetyMonitor` per episode.
        approaches: Name → skipping policy.  ``None`` marks the
            κ-every-step baseline (no monitor, no skipping).  Policy
            instances are shared across that approach's cases, so they
            must be effectively stateless — which every engine requires
            for paired results to be meaningful, and lockstep enforces.
        initial_states: ``(N, n)`` start states, one per case.
        realisations: ``N`` pre-drawn disturbance arrays ``(T_i, n)``.
        metrics_of: Reduces one episode's :class:`RunStats` to a tuple;
            entry order is the caller's contract.
        skip_input: Constant input applied when skipping (default zero).
        memory_length: The paper's ``r`` (disturbance-history window).
        engine: ``"serial"``, ``"parallel"`` or ``"lockstep"``.
        jobs: Worker processes for the parallel engine (``None``/0 = one
            per CPU); ignored otherwise.
        exact_solves: Lockstep only — keep the scalar path for
            non-bitwise (stacked LP) controllers so results match the
            serial engine record for record; the default stacked path is
            plan-equivalent (see :mod:`repro.framework.lockstep`).
        lp_backend: Lockstep only — stacked-solve backend request
            (``auto|highs|scipy``; :mod:`repro.utils.lp_backends`)
            threaded to controllers exposing ``set_lp_backend``; ``None``
            keeps the controller's own setting.  The serial/parallel
            engines and ``exact_solves`` audits always use scalar scipy
            solves and are backend-invariant.
        collect_timing: Lockstep only — ``False`` skips per-row
            wall-clock collection (timing-derived metrics read zero;
            everything else is bitwise-unchanged).
        kernel: Lockstep only — compiled-kernel request
            (``auto|numba|numpy``; see :mod:`repro.framework.kernel`).
        profiler: Lockstep only — optional
            :class:`~repro.framework.profiling.StageProfiler`; stage
            costs accumulate across all approaches evaluated.  When
            telemetry is enabled and no profiler is passed, the lockstep
            engine creates one per approach and folds its stages into
            the registry (``lockstep_stage_seconds`` + ``stage:*``
            spans).
        solver_effort: Optional out-parameter: pass a dict and it is
            filled with approach name → solver-effort mapping
            (``solve_count``, ``scalar_solves``, ``stacked_solves``,
            ``stacked_fallbacks``, ``lp_backend``) measured as
            before/after deltas of the always-on telemetry counters —
            or ``None`` per approach when the controller has no
            ``solve_count`` (closed-form κ evaluations are not LP
            solves).

    Returns:
        Approach name → list of ``N`` metric tuples in case order.

    Raises:
        ValueError: On unknown engines, empty case sets, or — under
            lockstep — approaches whose policy is not flagged stateless.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"engine must be one of {ENGINES}, got {engine!r}"
        )
    initial_states = np.atleast_2d(np.asarray(initial_states, dtype=float))
    num_cases = initial_states.shape[0]
    if num_cases < 1:
        raise ValueError("need at least one evaluation case")
    if len(realisations) != num_cases:
        raise ValueError(
            f"{num_cases} initial states but {len(realisations)} realisations"
        )

    # Solver effort is read from the always-on telemetry counters, but
    # only means something for controllers that actually solve LPs.
    instrumented = getattr(controller, "solve_count", None) is not None
    want_effort = solver_effort is not None

    if engine == "lockstep":
        reg = _obs.active()
        collected: Dict[str, List[tuple]] = {}
        for name, policy in approaches.items():
            if policy is not None and not getattr(policy, "stateless", False):
                raise ValueError(
                    f"approach {name!r}: the lockstep engine shares one "
                    "policy instance across interleaved cases, which is "
                    "only serial-equivalent for stateless policies "
                    "(for DRL, evaluate with epsilon=0)"
                )
            approach_profiler = profiler
            own_profiler = None
            if reg is not None and profiler is None:
                own_profiler = StageProfiler()
                approach_profiler = own_profiler
            span_cm = (
                reg.span(
                    "episode-batch",
                    approach=name, engine="lockstep", cases=num_cases,
                )
                if reg is not None
                else nullcontext()
            )
            before = _solver_probe() if (want_effort and instrumented) else None
            with span_cm:
                if policy is None:
                    stats_list = lockstep_controller_only(
                        system,
                        controller,
                        initial_states,
                        realisations,
                        exact_solves=exact_solves,
                        lp_backend=lp_backend,
                        collect_timing=collect_timing,
                        kernel=kernel,
                        profiler=approach_profiler,
                    )
                else:
                    stats_list = run_lockstep(
                        system,
                        controller,
                        [monitor_factory() for _ in range(num_cases)],
                        [policy] * num_cases,
                        initial_states,
                        realisations,
                        skip_input=skip_input,
                        memory_length=memory_length,
                        exact_solves=exact_solves,
                        lp_backend=lp_backend,
                        collect_timing=collect_timing,
                        kernel=kernel,
                        profiler=approach_profiler,
                    )
                if own_profiler is not None:
                    _fold_stages(reg, own_profiler, name)
            if want_effort:
                solver_effort[name] = (
                    _effort_dict(_probe_delta(before, _solver_probe()))
                    if instrumented
                    else None
                )
            collected[name] = [metrics_of(stats) for stats in stats_list]
        return collected

    def evaluate_case(i: int) -> tuple:
        x0 = initial_states[i]
        disturbances = realisations[i]
        metrics = {}
        efforts = {}
        for name, policy in approaches.items():
            before = _solver_probe() if instrumented else None
            try:
                if policy is None:
                    stats = run_controller_only(
                        system, controller, x0, disturbances
                    )
                else:
                    runner = IntermittentController(
                        system=system,
                        controller=controller,
                        monitor=monitor_factory(),
                        policy=policy,
                        skip_input=skip_input,
                        memory_length=memory_length,
                    )
                    stats = runner.run(x0, disturbances)
            except RMPCInfeasibleError as exc:
                # Name the episode: the cell layer above adds the grid
                # coordinates, this layer owns the case index.
                raise RMPCInfeasibleError(
                    f"case {i} ({name}): {exc}"
                ) from None
            metrics[name] = metrics_of(stats)
            if instrumented:
                efforts[name] = _probe_delta(before, _solver_probe())
        return metrics, efforts

    def evaluate_case_scoped(i: int) -> tuple:
        # Each case runs under its own registry so forked workers can
        # ship their telemetry back through the result pipe; the serial
        # fallback takes the identical path, keeping jobs=k snapshots
        # equal to jobs=1 by construction (merge happens in case order).
        with _obs.scoped_registry() as case_reg:
            out = evaluate_case(i)
            return out, case_reg.snapshot()

    active_reg = _obs.active()
    span_cm = (
        active_reg.span(
            "episode-batch",
            engine=engine, cases=num_cases, approaches=len(approaches),
        )
        if active_reg is not None
        else nullcontext()
    )
    with span_cm:
        pairs = fork_map(
            evaluate_case_scoped,
            range(num_cases),
            jobs=1 if engine == "serial" else jobs,
        )
        ambient = _obs.registry()
        for _, snap in pairs:
            ambient.merge_snapshot(snap)
    per_case = [metrics for (metrics, _), _ in pairs]
    if want_effort:
        for name in approaches:
            if not instrumented:
                solver_effort[name] = None
                continue
            total = (0, 0, 0, 0, 0)
            for (_, efforts), _ in pairs:
                total = tuple(
                    a + b for a, b in zip(total, efforts[name])
                )
            solver_effort[name] = _effort_dict(total)
    return {
        name: [metrics[name] for metrics in per_case] for name in approaches
    }
