"""Feasible region of the RMPC — the paper's Proposition 1.

The feasible set ``X_F`` of the RMPC (Eq. 5) is computed exactly by the
standard backward controllable-set recursion over the *nominal* dynamics
with the tightened constraints:

    C_0 = X_t ∩ X(N),
    C_{j+1} = {x ∈ X(N-j-1) : ∃ u ∈ U,  A x + B u ∈ C_j},
    X_F = C_N.

Proposition 1 states ``X_F`` is a robust control invariant set of the
closed loop under κ_R, so the framework can use ``XI = X_F``.  Because
that proof leans on the terminal set's properties, :func:`rmpc_invariant_set`
re-certifies the result with the library's RCI certificate and, if needed,
trims it by the maximal-RCI iteration — the returned set is always a
*certified* RCI set.
"""

from __future__ import annotations

import numpy as np

from repro.controllers.rmpc import RobustMPC
from repro.geometry import HPolytope
from repro.invariance.pre import pre_controllable
from repro.invariance.rci import is_rci, maximal_rci
from repro.systems.lti import DiscreteLTISystem

__all__ = ["rmpc_feasible_set", "rmpc_invariant_set"]


def rmpc_feasible_set(controller: RobustMPC) -> HPolytope:
    """Exact feasible region ``X_F`` of the RMPC optimisation.

    Each recursion step projects the lifted nominal one-step problem onto
    the state (Fourier–Motzkin), intersects with the matching tightened
    constraint and prunes redundancy.
    """
    system = controller.system
    N = controller.horizon
    zero_disturbance = HPolytope.singleton(np.zeros(system.n))
    current = controller.terminal_set.intersect(controller.tightened[N])
    current = current.remove_redundancies()
    for j in range(N):
        pre = pre_controllable(
            system.A, system.B, system.input_set, current, zero_disturbance
        )
        stage = controller.tightened[N - j - 1]
        current = pre.intersect(stage).remove_redundancies()
        if current.is_empty():
            raise ValueError(
                "RMPC feasible set is empty — terminal set or tightening "
                "is too restrictive"
            )
    return current


def rmpc_invariant_set(
    controller: RobustMPC, verify: bool = True
) -> HPolytope:
    """Certified robust control invariant set for the RMPC (``XI``).

    Starts from ``X_F`` (Prop. 1) and certifies robust control
    invariance; if the certificate fails (numerically or because the
    simplified tightening breaks the proposition's premise), the maximal
    RCI subset of ``X_F`` is computed instead, which is certified by
    construction.

    Args:
        controller: A constructed :class:`RobustMPC`.
        verify: Skip certification when False (trust Prop. 1 blindly).

    Returns:
        A polytope ``XI ⊆ X_F ⊆ X`` that is certified RCI.
    """
    system = controller.system
    feasible = rmpc_feasible_set(controller)
    if not verify:
        return feasible
    if is_rci(
        system.A,
        system.B,
        feasible,
        system.input_set,
        system.disturbance_set,
        tol=1e-6,
    ):
        return feasible
    result = maximal_rci(
        system.A,
        system.B,
        feasible,
        system.input_set,
        system.disturbance_set,
    )
    return result.invariant_set
