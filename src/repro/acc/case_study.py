"""Fully-assembled ACC case study (paper Sec. IV).

:func:`build_case_study` wires together every piece the experiments need:
the shifted-coordinate plant, the RMPC κ_R with horizon 10, the certified
robust control invariant set ``XI`` (= the RMPC feasible region, Prop. 1),
the strengthened set ``X'``, a monitor factory, coordinate
transforms and the fuel meter.

Since the scenario zoo landed, the ACC is a *client* of the generic
case-study builder: :func:`acc_scenario_spec` maps
:class:`~repro.acc.model.ACCParameters` onto a
:class:`~repro.scenarios.spec.ScenarioSpec`, the expensive set synthesis
runs (and is cached) in :func:`repro.scenarios.builder.build_case_study`,
and this module only adds the ACC-specific trimmings — raw-coordinate
transforms and the fuel meter.  The same spec backs the registry's
``"acc"`` entry, so ``repro.scenarios.build("acc")`` and
``repro.acc.build_case_study()`` share one cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.acc.model import ACCCoordinates, ACCParameters, build_acc_system
from repro.controllers.rmpc import RobustMPC
from repro.framework.accounting import RunStats
from repro.framework.monitor import SafetyMonitor
from repro.geometry import HPolytope
from repro.scenarios.builder import (
    build_case_study as build_scenario_case_study,
)
from repro.scenarios.builder import (
    clear_case_study_cache as _clear_scenario_cache,
)
from repro.scenarios.spec import ScenarioSpec
from repro.systems.lti import DiscreteLTISystem
from repro.traffic.fuel import HBEFA3Fuel

__all__ = [
    "ACCCaseStudy",
    "acc_scenario_spec",
    "build_case_study",
    "clear_case_study_cache",
]


def acc_scenario_spec(params: Optional[ACCParameters] = None) -> ScenarioSpec:
    """The ACC case study as a generic :class:`ScenarioSpec`.

    This is the single parameter source for both the registry's ``"acc"``
    scenario and :func:`build_case_study`; the numbers are the paper's
    (Sec. IV), shifted to the cruising equilibrium.
    """
    p = params if params is not None else ACCParameters()
    system = build_acc_system(p)
    return ScenarioSpec(
        name="acc",
        description="adaptive cruise control (paper Sec. IV), 2 states, RMPC",
        source="Huang et al., DAC 2020, Sec. IV",
        A=p.A,
        B=p.B,
        safe_set=system.safe_set,
        input_set=system.input_set,
        disturbance_set=system.disturbance_set,
        skip_input=p.skip_input_shifted,
        controller="rmpc",
        horizon=p.horizon,
        state_weight=p.state_weight,
        input_weight=p.input_weight,
    )


@dataclass
class ACCCaseStudy:
    """Everything the ACC experiments operate on.

    Attributes:
        params: Numeric constants.
        system: Shifted-coordinate constrained plant.
        coords: Raw ↔ shifted transforms.
        mpc: The underlying safe controller κ_R.
        invariant_set: Certified RCI set ``XI``.
        strengthened_set: ``X' = B(XI, u_skip) ∩ XI`` for this case's
            skip input (coast by default — the paper's zero actuation).
        fuel_meter: HBEFA3-like fuel surrogate.
    """

    params: ACCParameters
    system: DiscreteLTISystem
    coords: ACCCoordinates
    mpc: RobustMPC
    invariant_set: HPolytope
    strengthened_set: HPolytope
    fuel_meter: HBEFA3Fuel

    @property
    def skip_input(self) -> np.ndarray:
        """Shifted-coordinate input applied when skipping."""
        return self.params.skip_input_shifted

    def make_monitor(self, strict: bool = True) -> SafetyMonitor:
        """A fresh safety monitor over this case study's sets."""
        return SafetyMonitor(
            strengthened_set=self.strengthened_set,
            invariant_set=self.invariant_set,
            safe_set=self.system.safe_set,
            strict=strict,
        )

    def sample_initial_states(
        self, rng: np.random.Generator, count: int, region: str = "strengthened"
    ) -> np.ndarray:
        """Random initial states inside ``X'`` (default) or ``XI``.

        The paper picks "feasible initial states within X'" for the
        driving-scenario experiments.
        """
        if region == "strengthened":
            return self.strengthened_set.sample(rng, count)
        if region == "invariant":
            return self.invariant_set.sample(rng, count)
        raise ValueError("region must be 'strengthened' or 'invariant'")

    # ------------------------------------------------------------------
    # Raw-coordinate views of a framework run
    # ------------------------------------------------------------------
    def raw_velocities(self, stats: RunStats) -> np.ndarray:
        """Ego velocity trace ``v`` (raw) for a shifted-coordinate run."""
        return stats.states[:, 1] + self.params.v_ref

    def raw_commands(self, stats: RunStats) -> np.ndarray:
        """Raw commanded accelerations ``u = ũ + u_trim``."""
        return stats.inputs[:, 0] + self.params.u_trim

    def raw_distances(self, stats: RunStats) -> np.ndarray:
        """Relative distance trace ``s`` (raw)."""
        return stats.states[:, 0] + self.params.s_ref

    def fuel_of_run(self, stats: RunStats) -> float:
        """Trip fuel [g] of a framework run via the HBEFA3 surrogate."""
        velocities = self.raw_velocities(stats)[:-1]
        commands = self.raw_commands(stats)
        return self.fuel_meter.trip_fuel(velocities, commands, self.params.delta)

    def raw_energy_of_run(self, stats: RunStats) -> float:
        """Problem-1 energy Σ‖u‖₁ on raw commands (skips cost zero in
        coast mode, exactly as the paper's zero input)."""
        return float(np.abs(self.raw_commands(stats)).sum())


_CACHE: Dict[ACCParameters, ACCCaseStudy] = {}


def build_case_study(
    params: Optional[ACCParameters] = None,
    vf_range: Optional[tuple] = None,
    use_cache: bool = True,
) -> ACCCaseStudy:
    """Build (or fetch from cache) the assembled ACC case study.

    The heavy set synthesis is delegated to the generic scenario builder
    (one shared cache entry with the registry's ``"acc"`` scenario); this
    wrapper keeps its own per-:class:`ACCParameters` cache so repeated
    calls return the identical :class:`ACCCaseStudy` object.

    Args:
        params: Full parameter set; defaults to the paper's numbers.
        vf_range: Shortcut overriding only the front-velocity range (the
            Table-I experiment axis).  The disturbance set, and therefore
            ``XI`` and ``X'``, are recomputed for the new range.
        use_cache: Reuse previously-built instances for equal params.

    Returns:
        A ready :class:`ACCCaseStudy`.
    """
    if params is None:
        params = ACCParameters()
    if vf_range is not None:
        from dataclasses import replace

        params = replace(
            params, vf_range=(float(vf_range[0]), float(vf_range[1]))
        )
    if use_cache and params in _CACHE:
        return _CACHE[params]
    base = build_scenario_case_study(acc_scenario_spec(params), use_cache=use_cache)
    case = ACCCaseStudy(
        params=params,
        system=base.system,
        coords=ACCCoordinates(params),
        mpc=base.controller,
        invariant_set=base.invariant_set,
        strengthened_set=base.strengthened_set,
        fuel_meter=HBEFA3Fuel(),
    )
    if use_cache:
        _CACHE[params] = case
    return case


def clear_case_study_cache() -> None:
    """Drop all cached case studies (tests use this for isolation).

    Clears both the ACC wrapper cache and the generic scenario builder's
    cache that holds the underlying synthesis results.
    """
    _CACHE.clear()
    _clear_scenario_cache()
