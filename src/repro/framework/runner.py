"""Batch experiment runners with result records and serialisation.

Wraps many :meth:`IntermittentController.run` episodes over sampled
initial states and disturbance realisations, collects per-episode
records, and exports them as JSON or CSV — the layer the benchmark
harness and user sweeps script against.

Three execution engines share one record format:

* :class:`BatchRunner` (``engine="serial"``) — the sequential reference
  implementation;
* :class:`ParallelBatchRunner` — fans episodes out over forked worker
  processes (:func:`repro.utils.parallel.fork_map`) and merges the
  results back in episode order;
* :class:`LockstepEngine` (or ``BatchRunner(engine="lockstep")``) —
  steps an ``(N, n)`` state matrix for all episodes simultaneously
  (:mod:`repro.framework.lockstep`); the only engine that raises
  episodes/sec on a single core.

Determinism contract: :meth:`BatchRunner.run_seeded` derives one
independent ``numpy.random.Generator`` per episode from a single root
seed via ``SeedSequence.spawn`` — episode ``i`` sees the same stream no
matter which engine runs the batch or which worker it lands on, so
parallel and lockstep results are record-for-record reproducible against
serial ones (wall-clock timing fields excepted; see
:data:`DETERMINISTIC_FIELDS`).  Stochastic policies join the contract by
accepting a generator from the factory: a ``policy_factory`` taking one
positional argument receives a per-episode generator spawned from the
same root seed (independent of the disturbance stream); zero-argument
factories keep working unchanged.

One caveat: with a controller that declares ``bitwise_batch = False``
(the stacked-LP :class:`~repro.controllers.rmpc.RobustMPC`), the
lockstep engine is *plan-equivalent* rather than bitwise — pass
``exact_solves=True`` to restore record-for-record parity at
scalar-solve speed (see :mod:`repro.framework.lockstep`).
"""

from __future__ import annotations

import csv
import inspect
import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Callable, Optional, Sequence

import numpy as np

from repro.controllers.base import Controller
from repro.framework.accounting import RunStats
from repro.framework.intermittent import IntermittentController
from repro.framework.lockstep import run_lockstep
from repro.framework.monitor import SafetyMonitor
from repro.observability import metrics as _obs
from repro.skipping.base import SkippingPolicy
from repro.systems.lti import DiscreteLTISystem
from repro.utils.parallel import fork_map

__all__ = [
    "EpisodeRecord",
    "BatchResult",
    "BatchRunner",
    "ParallelBatchRunner",
    "LockstepEngine",
    "DETERMINISTIC_FIELDS",
    "spawn_episode_seeds",
]

#: Record fields that are pure functions of (initial state, disturbance
#: realisation): identical between serial, parallel and lockstep
#: execution.  The remaining fields are wall-clock measurements and vary
#: run to run.
DETERMINISTIC_FIELDS = (
    "episode",
    "energy",
    "skip_rate",
    "forced_steps",
    "max_violation",
)

#: Fixed entropy tag for per-episode *policy* generator streams in the
#: unseeded :meth:`BatchRunner.run` path, so rng-accepting factories stay
#: engine-invariant even without a root seed (use :meth:`run_seeded` to
#: actually vary them).
_UNSEEDED_POLICY_ROOT = 0x0B5E55ED


def spawn_episode_seeds(root_seed, count: int) -> list:
    """Independent per-episode seed streams from one root seed.

    ``SeedSequence.spawn`` guarantees the children are statistically
    independent and — crucially for the differential harness — that child
    ``i`` depends only on ``(root_seed, i)``, never on scheduling.
    """
    return np.random.SeedSequence(root_seed).spawn(int(count))


def _policy_stream(seed_seq: np.random.SeedSequence) -> np.random.SeedSequence:
    """The episode's policy seed: its first spawned child, derived without
    mutating the shared sequence (pure function of ``(root_seed, episode)``),
    and therefore independent of the disturbance stream drawn from the
    sequence itself."""
    return np.random.SeedSequence(
        entropy=seed_seq.entropy, spawn_key=tuple(seed_seq.spawn_key) + (0,)
    )


def _accepts_rng(factory) -> bool:
    """True iff ``factory`` *requires* a positional argument (the episode rng).

    Opting into the policy seed stream takes a mandatory positional
    parameter (or ``*args``); factories whose positional parameters all
    carry defaults keep being called with no arguments, so pre-existing
    zero-argument factories — including ones with optional knobs like
    ``lambda period=2: …`` — are never handed a generator they did not
    ask for.
    """
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_POSITIONAL:
            return True
        if (
            parameter.kind
            in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            )
            and parameter.default is inspect.Parameter.empty
        ):
            return True
    return False


@dataclass(frozen=True)
class EpisodeRecord:
    """Flat per-episode metrics (JSON/CSV friendly).

    Attributes:
        episode: Episode index within the batch.
        energy: Σ‖u‖₁ over the episode.
        skip_rate: Fraction of skipped steps.
        forced_steps: Monitor-forced steps.
        mean_controller_ms: Mean κ wall-clock where it ran [ms].
        mean_monitor_ms: Mean monitor + Ω wall-clock [ms].
        computation_saving: Sec. IV-A saving ratio for this episode.
        max_violation: Largest safe-set violation over visited states
            (<= 0 means always safe).
    """

    episode: int
    energy: float
    skip_rate: float
    forced_steps: int
    mean_controller_ms: float
    mean_monitor_ms: float
    computation_saving: float
    max_violation: float

    def deterministic_view(self) -> tuple:
        """The scheduling-independent fields (see DETERMINISTIC_FIELDS)."""
        return tuple(getattr(self, name) for name in DETERMINISTIC_FIELDS)


@dataclass
class BatchResult:
    """All records of one batch plus aggregate helpers."""

    records: list = field(default_factory=list)

    def append(self, record: EpisodeRecord) -> None:
        self.records.append(record)

    def extend(self, records: Sequence[EpisodeRecord]) -> None:
        """Append many records (used when merging worker chunks)."""
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    def mean(self, metric: str) -> float:
        """Mean of a record field across episodes.

        Raises:
            ValueError: On an empty batch (rather than numpy's silent
                ``nan`` + ``RuntimeWarning``).
        """
        if not self.records:
            raise ValueError("empty batch")
        return float(np.mean([getattr(r, metric) for r in self.records]))

    def deterministic_records(self) -> list:
        """Per-episode tuples of the scheduling-independent fields.

        The differential test harness compares these between serial,
        parallel and lockstep runs; wall-clock fields are excluded by
        construction.
        """
        return [record.deterministic_view() for record in self.records]

    def to_json(self, path) -> None:
        """Write records as a JSON array (``[]`` for an empty batch)."""
        payload = [asdict(r) for r in self.records]
        Path(path).write_text(json.dumps(payload, indent=2))

    def to_csv(self, path) -> None:
        """Write records as CSV with a header row.

        An empty batch writes the header only, mirroring the ``[]`` that
        :meth:`to_json` produces, so both formats round-trip any batch.
        """
        fieldnames = [f.name for f in fields(EpisodeRecord)]
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            for record in self.records:
                writer.writerow(asdict(record))

    @classmethod
    def from_json(cls, path) -> "BatchResult":
        """Load a batch previously saved with :meth:`to_json`."""
        payload = json.loads(Path(path).read_text())
        result = cls()
        for row in payload:
            result.append(EpisodeRecord(**row))
        return result

    @classmethod
    def from_csv(cls, path) -> "BatchResult":
        """Load a batch previously saved with :meth:`to_csv`."""
        types = {f.name: f.type for f in fields(EpisodeRecord)}
        result = cls()
        with open(path, newline="") as handle:
            for row in csv.DictReader(handle):
                coerced = {
                    name: (int(value) if types[name] == "int" else float(value))
                    for name, value in row.items()
                }
                result.append(EpisodeRecord(**coerced))
        return result


class BatchRunner:
    """Run many monitored episodes and collect :class:`EpisodeRecord` s.

    Args:
        system: The plant.
        controller: Safe controller κ.  It is shared across episodes and
            must return to a pristine state on ``reset()`` (true for the
            library's controllers) so episode results are independent of
            execution order — the property the parallel and lockstep
            engines rely on.
        monitor_factory: Zero-argument callable producing a fresh
            :class:`SafetyMonitor` per episode (monitors carry violation
            counters, so sharing one across episodes muddles stats).
        policy_factory: Callable producing the Ω policy.  Zero-argument
            factories are called as before; a factory taking one
            positional argument receives the episode's private
            ``numpy.random.Generator`` (spawned from the root seed,
            independent of the disturbance stream), which is what makes
            stochastic policies engine- and order-invariant.
        skip_input: Constant skip input (default zero).
        memory_length: Disturbance-history length exposed to Ω.
        reveal_future: Pass the realised future to Ω (model-based case).
        engine: ``"serial"`` (the reference loop) or ``"lockstep"``
            (vectorised across episodes; see
            :mod:`repro.framework.lockstep`).  For process fan-out use
            :class:`ParallelBatchRunner` instead.
        exact_solves: Lockstep only — route non-bitwise controllers
            (stacked LP solvers like
            :class:`~repro.controllers.rmpc.RobustMPC`) through the
            row-by-row scalar path, trading the stacked-solve speedup
            for bitwise record-for-record parity with the serial engine
            (the default stacked path is *plan-equivalent*; see the
            two-tier contract in :mod:`repro.framework.lockstep`).
        lp_backend: Lockstep only — stacked-solve backend request
            (``auto|highs|scipy``; :mod:`repro.utils.lp_backends`)
            applied to controllers exposing ``set_lp_backend``.  ``None``
            (default) leaves the controller's own setting untouched; the
            serial engine and ``exact_solves`` audits are
            backend-invariant (scalar scipy solves either way).
        collect_timing: Lockstep only — maintain the per-row amortised
            wall-clock arrays (the default).  ``False`` skips every
            ``perf_counter`` call; the timing record fields read zero
            and everything else is unchanged bit for bit.
        kernel: Lockstep only — compiled-kernel request
            (``auto|numba|numpy``; :mod:`repro.framework.kernel`).
        profiler: Lockstep only — optional
            :class:`~repro.framework.profiling.StageProfiler` charged
            with per-stage wall clock across the batch.
    """

    def __init__(
        self,
        system: DiscreteLTISystem,
        controller: Controller,
        monitor_factory: Callable[[], SafetyMonitor],
        policy_factory: Callable[..., SkippingPolicy],
        skip_input=None,
        memory_length: int = 1,
        reveal_future: bool = False,
        engine: str = "serial",
        exact_solves: bool = False,
        lp_backend: Optional[str] = None,
        collect_timing: bool = True,
        kernel: str = "auto",
        profiler=None,
    ):
        if engine not in ("serial", "lockstep"):
            raise ValueError(
                f"engine must be 'serial' or 'lockstep', got {engine!r} "
                "(use ParallelBatchRunner for process fan-out)"
            )
        self.system = system
        self.controller = controller
        self.monitor_factory = monitor_factory
        self.policy_factory = policy_factory
        self.skip_input = skip_input
        self.memory_length = memory_length
        self.reveal_future = reveal_future
        self.engine = engine
        self.exact_solves = exact_solves
        self.lp_backend = lp_backend
        self.collect_timing = collect_timing
        self.kernel = kernel
        self.profiler = profiler
        self._policy_takes_rng = _accepts_rng(policy_factory)

    # ------------------------------------------------------------------
    # Episode execution
    # ------------------------------------------------------------------
    def _record(self, episode: int, stats: RunStats) -> EpisodeRecord:
        """Flatten one episode's stats into a record."""
        return EpisodeRecord(
            episode=episode,
            energy=stats.energy,
            skip_rate=stats.skip_rate,
            forced_steps=stats.forced_steps,
            mean_controller_ms=1e3 * stats.mean_controller_time,
            mean_monitor_ms=1e3 * stats.mean_monitor_time,
            computation_saving=stats.computation_saving(),
            max_violation=stats.max_violation(self.system.safe_set),
        )

    def _run_one(
        self, episode: int, x0, disturbances, policy: SkippingPolicy
    ) -> EpisodeRecord:
        """Run a single episode on the serial reference loop."""
        runner = IntermittentController(
            self.system,
            self.controller,
            self.monitor_factory(),
            policy,
            skip_input=self.skip_input,
            memory_length=self.memory_length,
            reveal_future=self.reveal_future,
        )
        return self._record(episode, runner.run(x0, disturbances))

    def _policy_provider(self, count: int, seeds=None) -> Callable:
        """``episode -> fresh policy`` under the seed-stream contract.

        Zero-argument factories are simply called.  Rng-accepting
        factories get ``default_rng`` over the episode's policy stream —
        a pure function of ``(root seed, episode)``, so every engine and
        worker builds the identical policy.  ``seeds`` are the episode
        seed sequences of :meth:`run_seeded`; the unseeded :meth:`run`
        derives streams from a fixed module tag instead.
        """
        if not self._policy_takes_rng:
            return lambda episode: self.policy_factory()
        if seeds is None:
            seeds = spawn_episode_seeds(_UNSEEDED_POLICY_ROOT, count)
        return lambda episode: self.policy_factory(
            np.random.default_rng(_policy_stream(seeds[episode]))
        )

    @staticmethod
    def _initial_states(initial_states) -> np.ndarray:
        return np.atleast_2d(np.asarray(initial_states, dtype=float))

    def _execute(
        self, states: np.ndarray, realisation_for: Callable, policy_for: Callable
    ) -> BatchResult:
        """Run every episode; the engine-specific core.

        ``realisation_for``/``policy_for`` map an episode index to its
        disturbance array / fresh Ω instance.  The serial loop consumes
        them interleaved in episode order; lockstep materialises all
        realisations first (episode order), then all policies.
        """
        reg = _obs.registry()
        reg.inc("batch_runs_total", engine=self.engine)
        reg.inc("batch_episodes_total", len(states), engine=self.engine)
        result = BatchResult()
        if self.engine == "lockstep":
            episodes = range(len(states))
            realisations = [realisation_for(e) for e in episodes]
            policies = [policy_for(e) for e in episodes]
            monitors = [self.monitor_factory() for _ in episodes]
            stats_list = run_lockstep(
                self.system,
                self.controller,
                monitors,
                policies,
                states,
                realisations,
                skip_input=self.skip_input,
                memory_length=self.memory_length,
                reveal_future=self.reveal_future,
                exact_solves=self.exact_solves,
                lp_backend=self.lp_backend,
                collect_timing=self.collect_timing,
                kernel=self.kernel,
                profiler=self.profiler,
            )
            for episode, stats in enumerate(stats_list):
                result.append(self._record(episode, stats))
            return result
        for episode, x0 in enumerate(states):
            result.append(
                self._run_one(
                    episode, x0, realisation_for(episode), policy_for(episode)
                )
            )
        return result

    def run(
        self,
        initial_states,
        disturbance_sampler: Callable[[int], np.ndarray],
    ) -> BatchResult:
        """Run one episode per initial state.

        Args:
            initial_states: ``(N, n)`` array of start states (each must
                lie in the monitor's invariant set).
            disturbance_sampler: ``episode_index -> (T, n)`` realisation.
                Called in episode order exactly once per episode (so a
                sampler closing over a shared generator is reproducible).

        Returns:
            A :class:`BatchResult` with ``N`` records.
        """
        states = self._initial_states(initial_states)
        return self._execute(
            states,
            lambda episode: disturbance_sampler(episode),
            self._policy_provider(len(states)),
        )

    def run_seeded(
        self,
        initial_states,
        disturbance_factory: Callable[[int, np.random.Generator], np.ndarray],
        root_seed,
    ) -> BatchResult:
        """Run a batch under the per-episode seed-stream contract.

        Args:
            initial_states: ``(N, n)`` array of start states.
            disturbance_factory: ``(episode, rng) -> (T, n)`` realisation;
                must draw randomness only from the passed generator.
            root_seed: Root seed; episode ``i`` gets the ``i``-th spawned
                child stream regardless of engine, execution order or
                worker count.  Rng-accepting policy factories get an
                independent stream derived from the same child.

        Returns:
            A :class:`BatchResult` with ``N`` records in episode order.
        """
        states = self._initial_states(initial_states)
        seeds = spawn_episode_seeds(root_seed, len(states))
        return self._execute(
            states,
            lambda episode: disturbance_factory(
                episode, np.random.default_rng(seeds[episode])
            ),
            self._policy_provider(len(states), seeds=seeds),
        )


class LockstepEngine(BatchRunner):
    """:class:`BatchRunner` preset to the vectorised lockstep engine.

    Identical records to the serial engine for bitwise controllers;
    plan-equivalent for stacked LP controllers unless
    ``exact_solves=True`` — see the two-tier determinism contract in
    :mod:`repro.framework.lockstep` for the mechanics and caveats.
    Constructor arguments are those of :class:`BatchRunner` (without
    ``engine``).
    """

    def __init__(
        self,
        system: DiscreteLTISystem,
        controller: Controller,
        monitor_factory: Callable[[], SafetyMonitor],
        policy_factory: Callable[..., SkippingPolicy],
        skip_input=None,
        memory_length: int = 1,
        reveal_future: bool = False,
        exact_solves: bool = False,
        lp_backend: Optional[str] = None,
        collect_timing: bool = True,
        kernel: str = "auto",
        profiler=None,
    ):
        super().__init__(
            system,
            controller,
            monitor_factory,
            policy_factory,
            skip_input=skip_input,
            memory_length=memory_length,
            reveal_future=reveal_future,
            engine="lockstep",
            exact_solves=exact_solves,
            lp_backend=lp_backend,
            collect_timing=collect_timing,
            kernel=kernel,
            profiler=profiler,
        )


class ParallelBatchRunner(BatchRunner):
    """Process-parallel :class:`BatchRunner` with identical results.

    Episodes are dispatched to ``jobs`` forked workers in interleaved
    chunks and the records merged back in episode order, so a batch run
    here is record-for-record identical (up to wall-clock fields) to the
    same batch on the serial :class:`BatchRunner`:

    * :meth:`run` pre-samples every realisation in the parent, in episode
      order, before fanning out — a sampler closing over one shared
      generator therefore sees exactly the serial call sequence;
    * :meth:`run_seeded` re-derives episode ``i``'s private generators
      (disturbance and policy) from the root seed inside whichever worker
      runs it (cheaper than shipping ``(T, n)`` arrays to every child for
      large batches).

    Args:
        jobs: Worker processes.  ``None``/0 = one per CPU; 1 (or platforms
            without ``fork``) degrades to the serial loop.
        Remaining arguments: see :class:`BatchRunner`.
    """

    def __init__(
        self,
        system: DiscreteLTISystem,
        controller: Controller,
        monitor_factory: Callable[[], SafetyMonitor],
        policy_factory: Callable[..., SkippingPolicy],
        skip_input=None,
        memory_length: int = 1,
        reveal_future: bool = False,
        jobs: Optional[int] = None,
    ):
        super().__init__(
            system,
            controller,
            monitor_factory,
            policy_factory,
            skip_input=skip_input,
            memory_length=memory_length,
            reveal_future=reveal_future,
        )
        self.jobs = jobs

    def _execute(
        self, states: np.ndarray, realisation_for: Callable, policy_for: Callable
    ) -> BatchResult:
        """Fan episodes out, then merge chunk results in episode order."""
        reg = _obs.registry()
        reg.inc("batch_runs_total", engine="parallel")
        reg.inc("batch_episodes_total", len(states), engine="parallel")

        def run_one_scoped(episode: int) -> tuple:
            # Per-episode registry scope: worker-side telemetry ships
            # back through the result pipe instead of dying with the
            # fork, and episode-order merging keeps jobs=k snapshots
            # equal to jobs=1.
            with _obs.scoped_registry() as episode_reg:
                record = self._run_one(
                    episode,
                    states[episode],
                    realisation_for(episode),
                    policy_for(episode),
                )
                return record, episode_reg.snapshot()

        pairs = fork_map(run_one_scoped, range(len(states)), jobs=self.jobs)
        for _, snap in pairs:  # fork_map preserves input (episode) order
            reg.merge_snapshot(snap)
        result = BatchResult()
        result.extend(record for record, _ in pairs)
        return result

    def run(
        self,
        initial_states,
        disturbance_sampler: Callable[[int], np.ndarray],
    ) -> BatchResult:
        """Parallel :meth:`BatchRunner.run` (same signature, same records).

        Realisations are pre-sampled in the parent, in episode order, so
        a sampler closing over one shared generator sees exactly the
        serial call sequence before any worker starts.
        """
        states = self._initial_states(initial_states)
        realisations = [
            np.atleast_2d(np.asarray(disturbance_sampler(episode), dtype=float))
            for episode in range(len(states))
        ]
        return self._execute(
            states,
            realisations.__getitem__,
            self._policy_provider(len(states)),
        )
