"""Invariant sets and backward reachability (paper Sec. III-A)."""

from repro.invariance.mrpi import contraction_factor, mrpi_approximation
from repro.invariance.pre import pre_autonomous, pre_controllable, pre_fixed_input
from repro.invariance.rci import (
    InvarianceResult,
    is_rci,
    is_rpi,
    maximal_rci,
    maximal_rpi,
)
from repro.invariance.reach import (
    backward_reachable_feedback,
    backward_reachable_zero,
    k_step_strengthened_sets,
    strengthened_safe_set,
)
from repro.invariance.verify import (
    VerificationReport,
    verify_invariance_under_controller,
)

__all__ = [
    "VerificationReport",
    "verify_invariance_under_controller",
    "mrpi_approximation",
    "contraction_factor",
    "pre_autonomous",
    "pre_fixed_input",
    "pre_controllable",
    "maximal_rpi",
    "maximal_rci",
    "is_rpi",
    "is_rci",
    "InvarianceResult",
    "backward_reachable_zero",
    "backward_reachable_feedback",
    "strengthened_safe_set",
    "k_step_strengthened_sets",
]
