"""Differential determinism harness for the parallel batch engine.

The contract under test: a :class:`ParallelBatchRunner` with a fixed
root seed produces record-for-record identical deterministic fields to
the serial :class:`BatchRunner` — and to itself at any worker count —
because every episode derives its own generator stream from the root
seed and workers never share randomness.
"""

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.controllers import LinearFeedback, lqr_gain
from repro.observability import metrics as obs
from repro.utils import chaos
from repro.framework import (
    DETERMINISTIC_FIELDS,
    BatchResult,
    BatchRunner,
    ParallelBatchRunner,
    SafetyMonitor,
    spawn_episode_seeds,
)
from repro.invariance import maximal_rpi, strengthened_safe_set
from repro.skipping import AlwaysRunPolicy, AlwaysSkipPolicy
from repro.utils.parallel import fork_available, fork_map, resolve_jobs

ROOT_SEED = 20260730
HORIZON = 25


@pytest.fixture
def di_batch(double_integrator):
    """Double integrator + certified sets + factories for both engines."""
    system = double_integrator
    K = lqr_gain(system.A, system.B, np.eye(2), np.eye(1))
    seed_set = system.safe_set.intersect(system.input_set.linear_preimage(K))
    xi = maximal_rpi(
        system.closed_loop_matrix(K), seed_set, system.disturbance_set
    ).invariant_set
    xp = strengthened_safe_set(system, xi)

    def monitor_factory():
        return SafetyMonitor(
            strengthened_set=xp, invariant_set=xi, safe_set=system.safe_set
        )

    lo, hi = system.disturbance_set.bounding_box()

    def disturbance_factory(episode, rng):
        return rng.uniform(lo, hi, size=(HORIZON, system.n))

    controller = LinearFeedback(K)

    def make(cls, policy_factory=AlwaysSkipPolicy, **extra):
        return cls(system, controller, monitor_factory, policy_factory, **extra)

    states = xp.sample(np.random.default_rng(5), 6)
    return make, disturbance_factory, states


class TestDifferentialDeterminism:
    def test_parallel_matches_serial_record_for_record(self, di_batch):
        make, factory, states = di_batch
        serial = make(BatchRunner).run_seeded(states, factory, ROOT_SEED)
        parallel = make(ParallelBatchRunner, jobs=2).run_seeded(
            states, factory, ROOT_SEED
        )
        assert len(serial) == len(parallel) == len(states)
        assert serial.deterministic_records() == parallel.deterministic_records()

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_jobs_invariance(self, di_batch, jobs):
        make, factory, states = di_batch
        reference = make(BatchRunner).run_seeded(states, factory, ROOT_SEED)
        result = make(ParallelBatchRunner, jobs=jobs).run_seeded(
            states, factory, ROOT_SEED
        )
        assert result.deterministic_records() == reference.deterministic_records()

    def test_seed_stability_and_sensitivity(self, di_batch):
        # AlwaysRun so the energy depends on the disturbance realisation.
        make, factory, states = di_batch
        runner = make(ParallelBatchRunner, policy_factory=AlwaysRunPolicy, jobs=2)
        first = runner.run_seeded(states, factory, ROOT_SEED)
        again = runner.run_seeded(states, factory, ROOT_SEED)
        other = runner.run_seeded(states, factory, ROOT_SEED + 1)
        assert first.deterministic_records() == again.deterministic_records()
        assert first.deterministic_records() != other.deterministic_records()

    def test_unseeded_run_parity_with_shared_generator(self, di_batch):
        # The legacy run() API: a sampler closing over one shared rng is
        # pre-sampled in episode order by the parallel engine, so both
        # engines consume the generator identically.
        make, _factory, states = di_batch
        lo, hi = (-0.02, 0.02)

        def sampler_with(rng):
            return lambda episode: rng.uniform(lo, hi, size=(HORIZON, 2))

        serial = make(BatchRunner).run(
            states, sampler_with(np.random.default_rng(11))
        )
        parallel = make(ParallelBatchRunner, jobs=3).run(
            states, sampler_with(np.random.default_rng(11))
        )
        assert serial.deterministic_records() == parallel.deterministic_records()

    def test_episode_order_preserved(self, di_batch):
        make, factory, states = di_batch
        result = make(ParallelBatchRunner, jobs=4).run_seeded(
            states, factory, ROOT_SEED
        )
        assert [r.episode for r in result.records] == list(range(len(states)))

    def test_deterministic_fields_exclude_wall_clock(self):
        assert "mean_controller_ms" not in DETERMINISTIC_FIELDS
        assert "mean_monitor_ms" not in DETERMINISTIC_FIELDS
        assert "computation_saving" not in DETERMINISTIC_FIELDS
        assert "episode" in DETERMINISTIC_FIELDS

    def test_empty_batch(self, di_batch, tmp_path):
        make, factory, _states = di_batch
        result = make(ParallelBatchRunner, jobs=2).run_seeded(
            np.empty((0, 2)), factory, ROOT_SEED
        )
        assert len(result) == 0
        result.to_json(tmp_path / "empty.json")
        result.to_csv(tmp_path / "empty.csv")


class TestSeedStreams:
    def test_spawn_is_pure_function_of_root_and_index(self):
        a = spawn_episode_seeds(123, 5)
        b = spawn_episode_seeds(123, 5)
        for left, right in zip(a, b):
            assert (
                np.random.default_rng(left).integers(1 << 30)
                == np.random.default_rng(right).integers(1 << 30)
            )

    def test_streams_are_distinct_across_episodes(self):
        seeds = spawn_episode_seeds(0, 8)
        draws = {int(np.random.default_rng(s).integers(1 << 62)) for s in seeds}
        assert len(draws) == 8


class TestForkMap:
    def test_order_and_values(self):
        items = list(range(23))
        assert fork_map(lambda x: x * x, items, jobs=4) == [x * x for x in items]

    def test_serial_fallback(self):
        assert fork_map(lambda x: x + 1, [1, 2, 3], jobs=1) == [2, 3, 4]

    def test_closures_survive_fork(self):
        captured = {"offset": 10}
        out = fork_map(lambda x: x + captured["offset"], [1, 2], jobs=2)
        assert out == [11, 12]

    @pytest.mark.skipif(not fork_available(), reason="no fork start method")
    def test_worker_exception_propagates(self):
        def boom(x):
            if x == 3:
                raise ValueError("worker-side failure")
            return x

        with pytest.raises(RuntimeError, match="worker-side failure"):
            fork_map(boom, range(6), jobs=2)

    def test_empty_items(self):
        assert fork_map(lambda x: x, [], jobs=4) == []

    def test_resolve_jobs_validation(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_jobs_exceeding_items(self):
        # Worker count is clamped to len(items): no worker ever receives
        # an empty index chunk, and results stay order-correct.
        assert fork_map(lambda x: -x, [4, 5], jobs=16) == [-4, -5]
        assert fork_map(lambda x: -x, [7], jobs=8) == [-7]

    def test_on_result_serial_in_order(self):
        seen = []
        out = fork_map(
            lambda x: x * 2, [3, 1, 2], jobs=1,
            on_result=lambda i, v: seen.append((i, v)),
        )
        assert out == [6, 2, 4]
        assert seen == [(0, 6), (1, 2), (2, 4)]

    def test_on_result_empty_items(self):
        seen = []
        assert fork_map(lambda x: x, [], jobs=4,
                        on_result=lambda i, v: seen.append(i)) == []
        assert seen == []

    @pytest.mark.skipif(not fork_available(), reason="no fork start method")
    def test_on_result_forked_covers_every_item(self):
        seen = []
        items = list(range(9))
        out = fork_map(
            lambda x: x * x, items, jobs=3,
            on_result=lambda i, v: seen.append((i, v)),
        )
        assert out == [x * x for x in items]
        # Completion order is worker-interleaved, but every item reports
        # exactly once with its input-order index.
        assert sorted(seen) == [(i, i * i) for i in items]

    @pytest.mark.skipif(not fork_available(), reason="no fork start method")
    def test_on_result_exception_propagates_and_reaps_workers(self):
        def cb(i, v):
            raise RuntimeError("callback blew up")

        with pytest.raises(RuntimeError, match="callback blew up"):
            fork_map(lambda x: x, range(6), jobs=2, on_result=cb)


@pytest.mark.skipif(not fork_available(), reason="no fork start method")
class TestForkMapSupervision:
    def test_killed_worker_respawns_and_completes(self):
        plan = chaos.FaultPlan(worker_kills=(chaos.WorkerKill(item=1),))
        items = list(range(6))
        with obs.scoped_registry() as reg, chaos.inject(plan):
            out = fork_map(lambda x: x * x, items, jobs=2, backoff=0.0)
        assert out == [x * x for x in items]
        assert reg.value("worker_respawns_total") == 1

    def test_deterministic_kill_exhausts_retries(self):
        plan = chaos.FaultPlan(
            worker_kills=tuple(
                chaos.WorkerKill(item=1, generation=g) for g in (1, 2, 3)
            )
        )
        with chaos.inject(plan):
            with pytest.raises(
                RuntimeError, match=r"gave up after 3 attempts"
            ):
                fork_map(lambda x: x, range(6), jobs=2, backoff=0.0)

    def test_on_item_failure_substitutes_and_map_continues(self):
        plan = chaos.FaultPlan(
            worker_kills=tuple(
                chaos.WorkerKill(item=1, generation=g) for g in (1, 2, 3)
            )
        )
        streamed = []
        with chaos.inject(plan):
            out = fork_map(
                lambda x: x * 10, range(6), jobs=2, backoff=0.0,
                on_result=lambda i, v: streamed.append((i, v)),
                on_item_failure=lambda i, reason: ("sorry", i, reason),
            )
        assert out[1][:2] == ("sorry", 1)
        assert "gave up after 3 attempts" in out[1][2]
        assert [out[i] for i in (0, 2, 3, 4, 5)] == [0, 20, 30, 40, 50]
        # The placeholder streams through on_result like a completion.
        assert sorted(i for i, _ in streamed) == list(range(6))

    def test_hung_worker_is_killed_and_retried(self):
        def slow_on_first_spawn(x):
            if x == 1 and chaos.worker_generation() == 1:
                time.sleep(30)
            return -x

        items = list(range(4))
        with obs.scoped_registry() as reg:
            out = fork_map(
                slow_on_first_spawn, items, jobs=2, timeout=1.0, backoff=0.0
            )
        assert out == [-x for x in items]
        assert reg.value("worker_respawns_total") == 1

    def test_persistent_hang_exhausts_retries_with_timeout_reason(self):
        def always_slow(x):
            if x == 1:
                time.sleep(30)
            return x

        with pytest.raises(RuntimeError, match=r"hung past the 0\.5s"):
            fork_map(
                always_slow, range(4), jobs=2, timeout=0.5,
                max_retries=1, backoff=0.0,
            )

    def test_keyboard_interrupt_reaps_children(self):
        def interrupt(i, v):
            raise KeyboardInterrupt

        def slowish(x):
            time.sleep(0.2)
            return x

        with pytest.raises(KeyboardInterrupt):
            fork_map(slowish, range(8), jobs=2, on_result=interrupt)
        # The finally block must terminate AND join every child — no
        # zombies, no orphans still running.
        assert mp.active_children() == []
