"""Shared fixtures and scaling knobs for the benchmark suite.

Every bench regenerates one of the paper's tables/figures.  By default
the suite runs at *reduced scale* (tens of cases, short DRL training) so
``pytest benchmarks/ --benchmark-only`` finishes in minutes; set
``REPRO_FULL=1`` for paper-scale runs (500 cases, full training).

Printed tables appear with ``-s``; the same numbers are always attached
to the benchmark JSON via ``extra_info``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.acc import build_case_study, train_skipping_agent

FULL = os.environ.get("REPRO_FULL", "0") == "1"

#: Number of evaluation cases per experiment (paper: 500).
CASES = 500 if FULL else 16
#: Cases for the headline Fig.-4 histogram (paper: 500).
CASES_FIG4 = 500 if FULL else 40
#: DRL training episodes per scenario.
EPISODES = 250 if FULL else 80
#: Episodes for the headline Fig.-4 agent.
EPISODES_FIG4 = 300 if FULL else 250
#: Training restarts (best-of-k validation selection) per scenario.
RESTARTS = 3 if FULL else 2
#: Restarts for the headline Fig.-4 agent.
RESTARTS_FIG4 = 3
#: Steps per evaluation case (paper: 100).
HORIZON = 100


@pytest.fixture(scope="session")
def acc_case():
    """The paper's default ACC case study (vf ∈ [30, 50])."""
    return build_case_study()


@pytest.fixture(scope="session")
def overall_agent(acc_case):
    """DRL agent trained on the Sec. IV-A sinusoidal scenario
    (best-of-k restart selection — see train_skipping_agent)."""
    agent, env, history = train_skipping_agent(
        acc_case, "overall", episodes=EPISODES_FIG4, seed=0,
        restarts=RESTARTS_FIG4,
    )
    return agent, env, history


def emit(title: str, rows: list, header: tuple) -> None:
    """Print an aligned table (visible with pytest -s)."""
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def pct(x: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * x:.2f}%"
