"""End-to-end integration tests across the whole stack.

These exercise the exact pipeline the paper's experiments use: build the
case study, train a (tiny) DRL agent, run the three-way comparison, and
check the Theorem-1 safety contract plus the qualitative orderings the
paper reports.
"""

import numpy as np
import pytest

from repro.acc import evaluate_approaches, train_skipping_agent
from repro.framework import IntermittentController, run_controller_only
from repro.skipping import (
    AlwaysSkipPolicy,
    DRLSkippingPolicy,
    PeriodicSkipPolicy,
    RandomSkipPolicy,
)
from repro.traffic import experiment_pattern


class TestSafetyContract:
    """Theorem 1, empirically: no policy can push the system out of X."""

    @pytest.mark.parametrize("experiment", ["overall", "ex6"])
    def test_no_violation_under_adversarial_patterns(self, acc_case, experiment, rng):
        pattern = experiment_pattern(experiment, rng)
        policies = [
            AlwaysSkipPolicy(),
            PeriodicSkipPolicy(period=4),
            RandomSkipPolicy(0.9, rng),
        ]
        for policy in policies:
            runner = IntermittentController(
                acc_case.system, acc_case.mpc, acc_case.make_monitor(strict=True),
                policy, skip_input=acc_case.skip_input,
            )
            for x0 in acc_case.sample_initial_states(rng, 3):
                W = acc_case.coords.disturbance_from_vf(pattern.generate(150))
                stats = runner.run(x0, W)  # strict monitor raises on violation
                assert acc_case.system.safe_set.contains_points(stats.states).all()
                # Raw-coordinate check: distance stayed within [120, 180].
                s = acc_case.raw_distances(stats)
                assert s.min() >= 119.999 and s.max() <= 180.001

    def test_rmpc_only_safe(self, acc_case, rng):
        pattern = experiment_pattern("overall", rng)
        for x0 in acc_case.sample_initial_states(rng, 3):
            W = acc_case.coords.disturbance_from_vf(pattern.generate(120))
            stats = run_controller_only(acc_case.system, acc_case.mpc, x0, W)
            assert acc_case.system.safe_set.contains_points(stats.states).all()


class TestEndToEndDRL:
    @pytest.fixture(scope="class")
    def trained(self, acc_case):
        """A quickly-trained agent (smoke-scale, not benchmark-scale)."""
        agent, env, history = train_skipping_agent(
            acc_case, "overall", episodes=25, seed=0
        )
        return agent, env, history

    def test_training_history_complete(self, trained):
        _agent, _env, history = trained
        assert history.episodes == 25
        assert np.isfinite(history.returns).all()

    def test_drl_policy_runs_safely(self, acc_case, trained, rng):
        agent, env, _history = trained
        policy = DRLSkippingPolicy(
            agent, state_scale=env.state_scale,
            disturbance_scale=env.disturbance_scale,
        )
        pattern = experiment_pattern("overall", rng)
        runner = IntermittentController(
            acc_case.system, acc_case.mpc, acc_case.make_monitor(strict=True),
            policy, skip_input=acc_case.skip_input,
        )
        x0 = acc_case.sample_initial_states(rng, 1)[0]
        W = acc_case.coords.disturbance_from_vf(pattern.generate(100))
        stats = runner.run(x0, W)
        assert acc_case.system.safe_set.contains_points(stats.states).all()

    def test_three_way_comparison_shape(self, acc_case, trained):
        agent, _env, _history = trained
        res = evaluate_approaches(
            acc_case, "overall", num_cases=5, horizon=60, seed=9, agent=agent
        )
        # Both skipping approaches must save Problem-1 energy vs RMPC-only
        # (the core claim that skipping pays at all).
        assert res.energy_saving("bang_bang").mean() > 0
        assert res.energy_saving("drl").mean() > -0.05
        # Skip rates substantial, as in the paper's 79.4/100.
        assert res.bang_bang.skip_rate.mean() > 0.5
        # Computation accounting present and sane.
        assert res.rmpc_only.mean_controller_ms > 0
        assert res.bang_bang.mean_monitor_ms < res.rmpc_only.mean_controller_ms

    def test_observation_scales_positive(self, trained):
        _agent, env, _history = trained
        assert np.all(env.state_scale > 0)
        assert env.disturbance_scale > 0

    def test_drl_policy_validation(self, trained):
        agent, _env, _history = trained
        with pytest.raises(ValueError, match="state_scale"):
            DRLSkippingPolicy(agent, state_scale=[0.0, 1.0])
        with pytest.raises(ValueError, match="disturbance_scale"):
            DRLSkippingPolicy(agent, state_scale=[1.0, 1.0], disturbance_scale=0.0)
