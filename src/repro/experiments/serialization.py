"""JSON-safe (de)serialisation of sweep plans.

The experiment service accepts a :class:`~repro.experiments.plan.SweepPlan`
over the wire as JSON (``POST /v1/sweeps``), so the declarative planning
layer needs an explicit serial form.  Only *declarative* plans serialise:
experiments must target registry scenario names (inline ``ScenarioSpec``
or pre-built case studies do not round-trip) and ``policies`` must be
``None`` (policy objects are programmatic, not data).  Such plans can
still be submitted in-process via
:meth:`repro.service.jobs.JobManager.submit_plan`.

Round-trip contract: ``plan_from_dict(plan_to_dict(plan))`` produces a
plan whose grid cells have identical stable keys *and* identical
reproducibility configs (:func:`~repro.experiments.runner._cell_config`)
— the property the content-addressed result store keys on, so a plan
submitted over HTTP hits exactly the store records an in-process sweep
of the same plan would write.  To keep ``repr``-based config rendering
stable across the JSON hop, tuples in override/axis values are restored
from JSON lists on load.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.execution import ExecutionConfig
from repro.experiments.plan import SweepPlan
from repro.experiments.spec import ExperimentSpec, ParameterAxis

__all__ = [
    "PLAN_FORMAT",
    "plan_to_dict",
    "plan_from_dict",
    "execution_to_dict",
    "execution_from_dict",
]

#: Plan-payload format version; bump on any layout change so a stale
#: client fails loudly instead of mis-deserialising.
PLAN_FORMAT = 1


def _untuple(value):
    """Tuples → lists, recursively (the JSON-encodable rendering)."""
    if isinstance(value, (tuple, list)):
        return [_untuple(entry) for entry in value]
    return value


def _retuple(value):
    """JSON lists → tuples, recursively.

    Python-side plans conventionally hold tuples (``vf_range=(0, 5)``,
    axis ``values``); JSON flattens both to arrays.  Restoring tuples
    keeps ``repr``-rendered override values — part of every cell's
    store address — identical across the wire.
    """
    if isinstance(value, (tuple, list)):
        return tuple(_retuple(entry) for entry in value)
    return value


def execution_to_dict(execution: ExecutionConfig) -> dict:
    """An :class:`ExecutionConfig` as a JSON-safe dict (all fields)."""
    return dataclasses.asdict(execution)


def execution_from_dict(payload: dict) -> ExecutionConfig:
    """Inverse of :func:`execution_to_dict`; unknown keys are an error."""
    fields = {field.name for field in dataclasses.fields(ExecutionConfig)}
    unknown = sorted(set(payload) - fields)
    if unknown:
        raise ValueError(f"unknown execution fields: {unknown}")
    return ExecutionConfig(**payload)


def _spec_to_dict(spec: ExperimentSpec) -> dict:
    if not isinstance(spec.scenario, str):
        raise ValueError(
            f"experiment {spec.display_label!r}: only registry-name "
            "scenarios serialise; inline ScenarioSpec/CaseStudy "
            "experiments must run in-process"
        )
    if spec.policies is not None:
        raise ValueError(
            f"experiment {spec.display_label!r}: policies are "
            "programmatic objects and do not serialise; submit the plan "
            "in-process instead"
        )
    return {
        "scenario": spec.scenario,
        "approaches": (
            None if spec.approaches is None else list(spec.approaches)
        ),
        "num_cases": spec.num_cases,
        "horizon": spec.horizon,
        "seed": spec.seed,
        "memory_length": spec.memory_length,
        "pattern": spec.pattern,
        "overrides": [
            [key, _untuple(value)] for key, value in spec.overrides
        ],
        "label": spec.label,
    }


def _spec_from_dict(payload: dict) -> ExperimentSpec:
    return ExperimentSpec(
        scenario=payload["scenario"],
        approaches=(
            None
            if payload.get("approaches") is None
            else tuple(payload["approaches"])
        ),
        num_cases=int(payload.get("num_cases", 8)),
        horizon=int(payload.get("horizon", 50)),
        seed=int(payload.get("seed", 1)),
        memory_length=int(payload.get("memory_length", 1)),
        pattern=payload.get("pattern"),
        overrides=tuple(
            (key, _retuple(value))
            for key, value in payload.get("overrides", ())
        ),
        label=payload.get("label"),
    )


def _axis_to_dict(axis: ParameterAxis) -> dict:
    return {
        "name": axis.name,
        "values": [_untuple(value) for value in axis.values],
        "field": axis.field,
        "labels": None if axis.labels is None else list(axis.labels),
    }


def _axis_from_dict(payload: dict) -> ParameterAxis:
    return ParameterAxis(
        name=payload["name"],
        values=tuple(_retuple(value) for value in payload["values"]),
        field=payload.get("field"),
        labels=(
            None
            if payload.get("labels") is None
            else tuple(payload["labels"])
        ),
    )


def plan_to_dict(plan: SweepPlan) -> dict:
    """A :class:`SweepPlan` as the versioned JSON-safe service payload.

    Raises:
        ValueError: When the plan is not declarative (inline
            scenario/case-study experiments, or policy objects).
    """
    return {
        "format": PLAN_FORMAT,
        "experiments": [
            _spec_to_dict(spec) for spec in plan.experiments
        ],
        "axes": [_axis_to_dict(axis) for axis in plan.axes],
        "execution": execution_to_dict(plan.execution),
    }


def plan_from_dict(payload: dict) -> SweepPlan:
    """Inverse of :func:`plan_to_dict` (validates the format version)."""
    if not isinstance(payload, dict):
        raise ValueError(
            f"plan payload must be an object, got {type(payload).__name__}"
        )
    fmt = payload.get("format", PLAN_FORMAT)
    if fmt != PLAN_FORMAT:
        raise ValueError(
            f"unsupported plan format {fmt!r} (this build speaks "
            f"{PLAN_FORMAT})"
        )
    if "experiments" not in payload or not payload["experiments"]:
        raise ValueError("plan payload needs at least one experiment")
    return SweepPlan(
        experiments=tuple(
            _spec_from_dict(entry) for entry in payload["experiments"]
        ),
        axes=tuple(
            _axis_from_dict(entry) for entry in payload.get("axes", ())
        ),
        execution=execution_from_dict(payload.get("execution", {})),
    )
