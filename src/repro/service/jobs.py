"""Job management — the execution layer of the experiment service.

A :class:`JobManager` owns one shared
:class:`~repro.service.store.ResultStore` and a FIFO of submitted sweep
jobs.  Each job is a :class:`~repro.experiments.plan.SweepPlan`
(submitted as JSON over the API, or in-process as a plan object); the
manager partitions its grid into store-hits — served immediately into
the job's row feed — and dirty cells, which it executes via
:func:`~repro.experiments.runner.run_sweep` with every freshly solved
cell streamed into the store *and* the feed the moment it completes.
The reassembled :class:`~repro.experiments.result.SweepResult` has rows
byte-identical to an uncached in-process ``run_sweep`` of the same plan
(the service determinism contract; proven in ``tests/test_service.py``).

Jobs move ``queued → running → done|failed|cancelled``; cell-level
``CellFailure``s under ``on_error="record"``/``"retry"`` surface on the
job without failing it.  Execution defaults to a single worker thread:
jobs run strictly in submission order, which keeps fork-based cell
sharding away from multi-threaded fork hazards and gives each job the
ambient telemetry registry to itself.
"""

from __future__ import annotations

import itertools
import logging
import queue
import threading
from typing import Dict, List, Optional, Tuple

from repro.experiments.checkpoint import SweepCheckpoint
from repro.experiments.plan import SweepPlan
from repro.experiments.result import SweepResult
from repro.experiments.runner import run_sweep
from repro.experiments.serialization import plan_from_dict
from repro.observability import metrics as _obs
from repro.service.store import ResultStore

__all__ = ["Job", "JobCancelled", "JobManager", "JOB_STATES"]

logger = logging.getLogger(__name__)

#: Every state a job can report.  Terminal: ``done|failed|cancelled``.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


class JobCancelled(Exception):
    """Raised inside a running sweep to abandon a cancelled job."""


class Job:
    """One submitted sweep: plan, live progress, and (eventually) result.

    All mutation happens on the manager's executor thread; readers (API
    handlers, pollers) see a consistent view through the job's lock.
    """

    def __init__(self, job_id: str, plan: SweepPlan):
        self.id = job_id
        self.plan = plan
        self.state = "queued"
        #: Stable keys of every planned cell, in grid order.
        self.cell_keys: List[str] = [
            cell.key for cell in plan.cells()
        ]
        self.error: Optional[str] = None
        self.result: Optional[SweepResult] = None
        self._rows: List[dict] = []
        self._restored: List[str] = []
        self._cells_done = 0
        self._failures: List[dict] = []
        self._cancel = threading.Event()
        self._lock = threading.Lock()
        self._finished = threading.Event()

    # -- executor-side -------------------------------------------------
    def _feed(self, cell, restored: bool) -> None:
        """Append a finished cell's rows to the feed (executor thread)."""
        if self._cancel.is_set():
            raise JobCancelled(self.id)
        with self._lock:
            self._rows.extend(cell.rows())
            self._cells_done += 1
            if restored:
                self._restored.append(cell.key)

    def _finish(self, state: str, result=None, error=None) -> None:
        with self._lock:
            self.state = state
            self.result = result
            self.error = error
            if result is not None:
                self._failures = [
                    failure.to_dict() for failure in result.failures
                ]
        self._finished.set()

    # -- reader-side ---------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state in ("done", "failed", "cancelled")

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._finished.wait(timeout)

    def cancel(self) -> bool:
        """Request cancellation; returns False if already terminal.

        A queued job is cancelled immediately; a running one stops at
        its next cell boundary (completed cells stay in the store, so
        nothing solved is lost — a resubmission restores them).
        """
        with self._lock:
            if self.done:
                return False
            self._cancel.set()
            if self.state == "queued":
                self.state = "cancelled"
                self._finished.set()
        return True

    def rows_since(self, cursor: int = 0) -> Tuple[List[dict], int]:
        """``(rows[cursor:], new_cursor)`` — the poll-from-cursor feed.

        Rows appear in completion order (restored cells first, then
        solved cells as they finish); the full-fidelity grid-order view
        is the terminal :attr:`result`.
        """
        with self._lock:
            rows = [dict(row) for row in self._rows[cursor:]]
            return rows, cursor + len(rows)

    def status(self) -> dict:
        """The job's JSON-safe progress/status snapshot."""
        with self._lock:
            return {
                "id": self.id,
                "state": self.state,
                "cells_total": len(self.cell_keys),
                "cells_done": self._cells_done,
                "cells_restored": len(self._restored),
                "rows": len(self._rows),
                "failures": list(self._failures),
                "error": self.error,
            }

    def __repr__(self) -> str:
        return f"Job({self.id!r}, state={self.state!r})"


class JobManager:
    """Shared-store sweep execution behind a submit/poll interface.

    Args:
        store: The shared result store — a directory path or an existing
            :class:`~repro.service.store.ResultStore`.

    Jobs execute one at a time on a dedicated executor thread, in
    submission order; every job reads and writes the one store, so a
    cell solved by any earlier job (or by a checkpointed ``run_sweep``
    pointed at the same directory) is served without re-solving.
    """

    def __init__(self, store):
        self.store = (
            store if isinstance(store, ResultStore) else ResultStore(store)
        )
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._ids = itertools.count(1)
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._lock = threading.Lock()
        self._closed = False
        self._worker = threading.Thread(
            target=self._run_loop, name="repro-job-executor", daemon=True
        )
        self._worker.start()

    # -- submission ----------------------------------------------------
    def submit(self, payload: dict) -> Job:
        """Submit a plan-as-JSON payload (the API's entry point).

        Raises:
            ValueError: Malformed payload, unknown format version, or a
                non-declarative plan.
        """
        return self.submit_plan(plan_from_dict(payload))

    def submit_plan(self, plan: SweepPlan) -> Job:
        """Submit a plan object directly (in-process client path —
        also the only way to run plans with policy objects)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("JobManager is shut down")
            job = Job(f"job-{next(self._ids)}", plan)
            self._jobs[job.id] = job
            self._order.append(job.id)
        _obs.registry().inc("service_jobs_total", state="submitted")
        self._queue.put(job)
        logger.info(
            "service: queued %s (%d cells)", job.id, len(job.cell_keys)
        )
        return job

    # -- queries -------------------------------------------------------
    def get(self, job_id: str) -> Job:
        """Job lookup by id (KeyError for unknown ids)."""
        with self._lock:
            return self._jobs[job_id]

    def jobs(self) -> List[Job]:
        """All jobs, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> bool:
        """Cancel a job (see :meth:`Job.cancel`)."""
        return self.get(job_id).cancel()

    # -- execution -----------------------------------------------------
    def _run_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            if job.done:  # cancelled while queued
                continue
            self._execute(job)

    def _execute(self, job: Job) -> None:
        with job._lock:
            if job._cancel.is_set():
                return
            job.state = "running"
        try:
            result = run_sweep(
                job.plan,
                checkpoint=SweepCheckpoint(self.store),
                on_cell=lambda cell: job._feed(cell, restored=False),
                on_restored=lambda cell: job._feed(cell, restored=True),
            )
        except JobCancelled:
            job._finish("cancelled")
            _obs.registry().inc("service_jobs_total", state="cancelled")
            logger.info("service: %s cancelled", job.id)
        except Exception as exc:  # noqa: BLE001 — job isolation boundary
            job._finish("failed", error=f"{type(exc).__name__}: {exc}")
            _obs.registry().inc("service_jobs_total", state="failed")
            logger.exception("service: %s failed", job.id)
        else:
            job._finish("done", result=result)
            _obs.registry().inc("service_jobs_total", state="done")
            logger.info(
                "service: %s done (%d rows, %d restored, %d failures)",
                job.id, len(result.rows()), len(result.restored),
                len(result.failures),
            )

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs and (optionally) drain the executor."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)
        if wait:
            self._worker.join()

    def __repr__(self) -> str:
        return f"JobManager(store={self.store.directory!r})"
