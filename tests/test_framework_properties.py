"""Property-based tests for the framework's accounting invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.framework import RunStats, computation_saving

FAST = settings(max_examples=50, deadline=None)


@FAST
@given(
    st.floats(1e-4, 1.0),
    st.floats(1e-6, 1e-2),
    st.integers(1, 1000),
)
def test_saving_bounds(controller_time, monitor_time, steps):
    """Saving is at most 1 and equals the per-step overhead ratio when
    everything is skipped."""
    full_skip = computation_saving(controller_time, monitor_time, steps, steps)
    no_skip = computation_saving(controller_time, monitor_time, steps, 0)
    assert full_skip <= 1.0
    assert full_skip == pytest.approx(1.0 - monitor_time / controller_time)
    assert no_skip == pytest.approx(-monitor_time / controller_time)


@FAST
@given(
    st.floats(1e-3, 1.0),
    st.floats(1e-6, 1e-4),
    st.integers(2, 500),
    st.data(),
)
def test_saving_monotone_in_skips(controller_time, monitor_time, steps, data):
    """More skipped steps never reduce the computation saving."""
    a = data.draw(st.integers(0, steps))
    b = data.draw(st.integers(0, steps))
    low, high = sorted((a, b))
    assert computation_saving(
        controller_time, monitor_time, steps, high
    ) >= computation_saving(controller_time, monitor_time, steps, low) - 1e-12


def _stats_from(decisions, inputs):
    decisions = np.asarray(decisions, dtype=int)
    inputs = np.asarray(inputs, dtype=float).reshape(len(decisions), 1)
    T = len(decisions)
    return RunStats(
        states=np.zeros((T + 1, 2)),
        inputs=inputs,
        decisions=decisions,
        forced=np.zeros(T, dtype=bool),
        controller_seconds=np.where(decisions == 1, 1e-3, 0.0),
        monitor_seconds=np.full(T, 1e-5),
        disturbances=np.zeros((T, 2)),
    )


@FAST
@given(st.lists(st.integers(0, 1), min_size=1, max_size=60))
def test_skip_rate_consistency(decisions):
    stats = _stats_from(decisions, [1.0] * len(decisions))
    assert stats.skipped_steps + int(np.sum(stats.decisions)) == stats.steps
    assert 0.0 <= stats.skip_rate <= 1.0
    assert stats.skip_rate == pytest.approx(
        stats.skipped_steps / stats.steps
    )


@FAST
@given(
    st.lists(
        st.floats(-5.0, 5.0, allow_nan=False), min_size=1, max_size=60
    )
)
def test_energy_is_l1_norm(inputs):
    stats = _stats_from([1] * len(inputs), inputs)
    assert stats.energy == pytest.approx(float(np.abs(inputs).sum()))
    assert stats.energy >= 0.0


@FAST
@given(st.lists(st.integers(0, 1), min_size=1, max_size=40))
def test_summary_round_trips_fields(decisions):
    stats = _stats_from(decisions, [0.5] * len(decisions))
    summary = stats.summary()
    assert summary["steps"] == stats.steps
    assert summary["skipped"] == stats.skipped_steps
    assert summary["energy_l1"] == pytest.approx(stats.energy)
