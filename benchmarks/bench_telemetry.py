"""Telemetry smoke + overhead gate for the observability subsystem.

Standalone script (not a pytest-benchmark kernel) so CI can gate the
:mod:`repro.observability` cost model on every commit::

    PYTHONPATH=src python benchmarks/bench_telemetry.py --quick \
        --artifact BENCH_telemetry.json

Two sections, both of which must pass for a zero exit code:

* **Overhead gate** — the lockstep paired evaluation of a *linear*
  scenario (closed-form κ, so engine overhead is not hidden behind LP
  solves) is timed with telemetry off and with full telemetry on
  (cell/episode-batch spans, per-approach stage profiling,
  solver-effort probes).  Min-of-repeats per configuration; the run
  passes when telemetry-on wall clock is within ``--max-overhead``
  (default 5%) of telemetry-off, or within the absolute jitter floor
  (default 2 ms) — single-core CI containers see scheduling noise far
  above the true instrumentation cost at smoke scale.  The gate also
  re-asserts the hard contract: both runs' deterministic metric arrays
  must be bitwise-identical.

* **Snapshot smoke** — a small cross-scenario sweep runs with
  ``telemetry=True`` and its merged snapshot is embedded in the
  artifact under ``"telemetry"`` (rendered later with
  ``repro telemetry BENCH_telemetry.json``), proving the end-to-end
  export path (registry → per-cell scopes → merged sweep snapshot →
  JSON) on every commit.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments import (
    ExecutionConfig,
    ExperimentSpec,
    SweepPlan,
    run_experiment,
    run_sweep,
)


def _deterministic_metrics(cell) -> dict:
    """A cell's per-approach metric arrays as comparable nested lists."""
    return {
        name: {
            metric: values.tolist()
            for metric, values in stats.metrics.items()
        }
        for name, stats in cell.approaches.items()
    }


def run_overhead_gate(
    scenario: str,
    episodes: int,
    horizon: int,
    seed: int,
    repeats: int,
    max_overhead: float,
    jitter_floor_ms: float,
) -> dict:
    """Min-of-repeats lockstep timing, telemetry off vs on, plus parity.

    Returns:
        Dict with per-configuration seconds, the overhead ratio, the
        bitwise-parity flag and the gate verdict (``ok``).
    """
    spec = ExperimentSpec(
        scenario=scenario, num_cases=episodes, horizon=horizon, seed=seed
    )
    configurations = {
        "off": ExecutionConfig(engine="lockstep", telemetry=False),
        "on": ExecutionConfig(engine="lockstep", telemetry=True),
    }
    # Untimed warm-up: synthesise the certified sets and bring every
    # in-process cache to steady state so the timed repeats measure the
    # evaluation (and its instrumentation), nothing else.
    results = {
        name: run_experiment(spec, execution)
        for name, execution in configurations.items()
    }
    seconds = {}
    for name, execution in configurations.items():
        best = float("inf")
        for _ in range(repeats):
            tick = time.perf_counter()
            results[name] = run_experiment(spec, execution)
            best = min(best, time.perf_counter() - tick)
        seconds[name] = best
    identical = _deterministic_metrics(results["off"]) == (
        _deterministic_metrics(results["on"])
    )
    ratio = seconds["on"] / seconds["off"]
    delta_ms = 1e3 * (seconds["on"] - seconds["off"])
    within_budget = ratio <= 1.0 + max_overhead or delta_ms <= jitter_floor_ms
    return {
        "scenario": scenario,
        "episodes": episodes,
        "horizon": horizon,
        "seed": seed,
        "repeats": repeats,
        "seconds_off": seconds["off"],
        "seconds_on": seconds["on"],
        "overhead_ratio": ratio,
        "overhead_delta_ms": delta_ms,
        "max_overhead": max_overhead,
        "jitter_floor_ms": jitter_floor_ms,
        "identical": identical,
        "snapshot_present": results["on"].telemetry is not None,
        "ok": within_budget and identical
        and results["on"].telemetry is not None,
    }


def run_snapshot_smoke(
    scenario_names, episodes: int, horizon: int, seed: int
) -> dict:
    """One telemetry-on sweep; returns its merged snapshot + row count."""
    plan = SweepPlan.for_scenarios(
        scenario_names, num_cases=episodes, horizon=horizon, seed=seed
    )
    result = run_sweep(
        plan, ExecutionConfig(engine="lockstep", telemetry=True)
    )
    snapshot = result.telemetry
    counters = sum(
        len(entries) for entries in snapshot["counters"].values()
    )
    return {
        "scenarios": list(scenario_names),
        "cells": len(result),
        "counter_series": counters,
        "spans": len(snapshot.get("spans", [])),
        "always_safe": result.always_safe,
        "ok": result.always_safe and counters > 0,
        "telemetry": snapshot,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario", default="dc_motor",
        help="linear (closed-form κ) scenario for the overhead gate",
    )
    parser.add_argument(
        "--sweep-scenarios", nargs="+", default=["thermal", "pendulum"],
        metavar="NAME", dest="sweep_scenarios",
        help="scenarios of the snapshot-smoke sweep",
    )
    parser.add_argument("--episodes", type=int, default=32)
    parser.add_argument("--horizon", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats per configuration (the best one counts)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=0.05, dest="max_overhead",
        help="relative telemetry-on overhead bound (0.05 = 5%%)",
    )
    parser.add_argument(
        "--jitter-floor-ms", type=float, default=2.0, dest="jitter_floor_ms",
        help="absolute delta [ms] below which the relative bound is "
             "waived (scheduling noise floor on shared CI runners)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke scale: 8 episodes x 20 steps, 3 repeats",
    )
    parser.add_argument(
        "--artifact", default="BENCH_telemetry.json",
        help="artifact path with the gate numbers and the embedded "
             "snapshot ('' disables writing)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.episodes = 8
        args.horizon = 20
        args.repeats = 3

    gate = run_overhead_gate(
        args.scenario, args.episodes, args.horizon, args.seed,
        args.repeats, args.max_overhead, args.jitter_floor_ms,
    )
    print(
        f"telemetry overhead gate ({gate['scenario']}, "
        f"{gate['episodes']} episodes x {gate['horizon']} steps, "
        f"best of {gate['repeats']}):"
    )
    print(
        f"  off {1e3 * gate['seconds_off']:8.2f} ms   "
        f"on {1e3 * gate['seconds_on']:8.2f} ms   "
        f"ratio {gate['overhead_ratio']:.3f}   "
        f"delta {gate['overhead_delta_ms']:+.2f} ms   "
        f"bitwise={gate['identical']}   ok={gate['ok']}"
    )

    smoke = run_snapshot_smoke(
        args.sweep_scenarios, max(2, args.episodes // 4),
        max(10, args.horizon // 2), args.seed,
    )
    print(
        f"snapshot smoke: {smoke['cells']} cell(s) over "
        f"{', '.join(smoke['scenarios'])} — {smoke['counter_series']} "
        f"counter series, {smoke['spans']} root span(s), "
        f"safe={smoke['always_safe']}, ok={smoke['ok']}"
    )

    report = {
        "overhead_gate": gate,
        "snapshot_smoke": {
            key: value for key, value in smoke.items() if key != "telemetry"
        },
        "telemetry": smoke["telemetry"],
    }
    if args.artifact:
        with open(args.artifact, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.artifact}")
    if not gate["ok"]:
        print(
            "ERROR: telemetry overhead gate failed — "
            + (
                "deterministic metrics differ between telemetry on/off"
                if not gate["identical"]
                else f"lockstep run {gate['overhead_ratio']:.3f}x slower "
                     f"({gate['overhead_delta_ms']:+.2f} ms) with telemetry on"
            )
        )
        return 1
    if not smoke["ok"]:
        print("ERROR: telemetry snapshot smoke failed")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
