#!/usr/bin/env python3
"""Fig. 1 + Fig. 2 demo: the nested safe sets and the monitor timeline.

Renders the ACC case study's three nested sets X ⊇ XI ⊇ X' as ASCII art
(the paper's Fig. 1) and then walks a single trajectory, printing the
Fig.-2-style timeline: at each step the monitor's classification and the
resulting skipping choice.

Run:  python examples/safety_monitor_demo.py
(First run computes the safe sets; allow ~15 s.)
"""

import numpy as np

from repro.acc import build_case_study
from repro.framework import IntermittentController, StateClass
from repro.geometry import ascii_sets
from repro.skipping import AlwaysSkipPolicy
from repro.traffic import SinusoidalPattern


def main():
    case = build_case_study()
    print("Paper Fig. 1 — nested safe sets (shifted coordinates):")
    print("  '.' = X (safe set)   '+' = XI (robust invariant)   '#' = X'\n")
    print(
        ascii_sets(
            [case.system.safe_set, case.invariant_set, case.strengthened_set],
            glyphs=[".", "+", "#"],
            width=66,
            height=22,
        )
    )

    # Fig. 2: run bang-bang from a state near the boundary and print the
    # monitor's decisions step by step.
    rng = np.random.default_rng(3)
    pattern = SinusoidalPattern(ve=40.0, amplitude=9.0, noise=1.0, rng=rng)
    vf = pattern.generate(60)
    disturbances = case.coords.disturbance_from_vf(vf)
    x0 = case.strengthened_set.support_point(np.array([1.0, -0.2])) * 0.98

    monitor = case.make_monitor()
    runner = IntermittentController(
        case.system, case.mpc, monitor, AlwaysSkipPolicy(),
        skip_input=case.skip_input,
    )
    stats = runner.run(x0, disturbances)

    print("\nPaper Fig. 2 — monitor timeline (bang-bang policy):")
    print("t    s[m]    v[m/s]  region        z  u_raw")
    for t in range(stats.steps):
        state = stats.states[t]
        region = (
            "X'      " if case.strengthened_set.contains(state)
            else "XI - X' "
        )
        s_raw, v_raw = case.coords.from_shifted(state)
        u_raw = stats.inputs[t, 0] + case.params.u_trim
        marker = "forced" if stats.forced[t] else ""
        print(
            f"{t:<4d} {s_raw:7.2f} {v_raw:7.2f}  {region}  "
            f"{stats.decisions[t]}  {u_raw:6.2f}  {marker}"
        )
    print(
        f"\nskipped {stats.skipped_steps}/{stats.steps}, "
        f"forced {stats.forced_steps}, all safe: "
        f"{case.system.safe_set.contains_points(stats.states).all()}"
    )


if __name__ == "__main__":
    main()
