"""Tests for the command-line interface (fast subcommands only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sets_defaults(self):
        args = build_parser().parse_args(["sets"])
        assert args.width == 66
        assert args.command == "sets"

    def test_compare_flags(self):
        args = build_parser().parse_args(
            ["compare", "--cases", "5", "--episodes", "10", "--restarts", "2"]
        )
        assert args.cases == 5
        assert args.episodes == 10
        assert args.restarts == 2

    def test_experiment_positional(self):
        args = build_parser().parse_args(["experiment", "ex3"])
        assert args.name == "ex3"


class TestExecution:
    def test_sets_command_renders(self, acc_case, capsys):
        # acc_case fixture pre-populates the module cache, so the CLI
        # reuses the already-built sets.
        assert main(["sets", "--width", "40", "--height", "12"]) == 0
        out = capsys.readouterr().out
        assert "#" in out
        assert "XI=" in out

    def test_timing_command(self, acc_case, capsys):
        assert main(["timing"]) == 0
        out = capsys.readouterr().out
        assert "controller:" in out
        assert "saving at 79 skips/100" in out
