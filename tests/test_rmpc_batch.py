"""Differential tests for the batched (stacked block-diagonal) RMPC path.

The two-tier determinism contract under test:

* ``RobustMPC.solve_batch`` / ``compute_batch`` stack the per-state
  Eq.-5 LPs into one HiGHS solve and owe *plan equivalence* to the
  row-wise scalar path: identical optimal cost (1e-9), first inputs
  feasible in ``U``, plans satisfying the nominal dynamics — but not
  necessarily the same optimal vertex;
* the lockstep engine with ``exact_solves=True`` keeps the scalar path
  and owes bitwise record-for-record parity with the serial engine;
* closed-form controllers stay bitwise under every mode.

The scenario-zoo sweep at the bottom proves the contract on every
registered scenario's controller, not just the double integrator.
"""

import numpy as np
import pytest

from repro import scenarios as scenario_registry
from repro.controllers import (
    LinearFeedback,
    RMPCInfeasibleError,
    RobustMPC,
    lqr_gain,
    rmpc_invariant_set,
    verify_plan_equivalence,
)
from repro.framework import BatchRunner, LockstepEngine, SafetyMonitor
from repro.invariance import strengthened_safe_set
from repro.skipping import AlwaysSkipPolicy, PeriodicSkipPolicy
from repro.utils.lp import reset_stack_cache_stats, stack_cache_stats
from repro.utils.lp_backends import LPBackendError, highs_available

needs_highs = pytest.mark.skipif(
    not highs_available(), reason="optional highspy extra not installed"
)

ROOT_SEED = 424242
HORIZON = 18


@pytest.fixture(scope="module")
def rmpc_rig():
    """Double integrator + RMPC + certified monitor sets (synthesis is
    slow, so built once per module; treat as read-only apart from
    ``reset``)."""
    from tests.conftest import make_double_integrator

    system = make_double_integrator()
    mpc = RobustMPC(system, horizon=6)
    xi = rmpc_invariant_set(mpc, verify=True)
    xp = strengthened_safe_set(system, xi)

    def monitor_factory(strict: bool = True):
        return SafetyMonitor(
            strengthened_set=xp,
            invariant_set=xi,
            safe_set=system.safe_set,
            strict=strict,
        )

    return system, mpc, xi, xp, monitor_factory


def _feasible_states(xp, count, seed=3):
    return xp.sample(np.random.default_rng(seed), count)


class TestSolveBatchPlanEquivalence:
    def test_costs_inputs_and_dynamics(self, rmpc_rig):
        system, mpc, _xi, xp, _mf = rmpc_rig
        states = _feasible_states(xp, 7)
        batch = mpc.solve_batch(states)
        assert len(batch) == 7
        for x, sol in zip(states, batch):
            scalar = mpc.solve(x)
            # Plan-equivalent tier: cost identical to the scalar solve...
            assert abs(sol.cost - scalar.cost) <= 1e-9
            # ...first input feasible in U...
            assert system.input_set.contains(sol.inputs[0], tol=1e-7)
            # ...and the plan internally consistent (nominal dynamics).
            assert np.allclose(sol.states[0], x, atol=1e-7)
            for k in range(mpc.horizon):
                np.testing.assert_allclose(
                    system.step(sol.states[k], sol.inputs[k]),
                    sol.states[k + 1],
                    atol=1e-6,
                )

    def test_verify_plan_equivalence_helper(self, rmpc_rig):
        _system, mpc, _xi, xp, _mf = rmpc_rig
        report = verify_plan_equivalence(mpc, _feasible_states(xp, 5))
        assert report["equivalent"], report
        assert report["count"] == 5
        assert report["max_cost_diff"] <= 1e-9
        assert report["inputs_feasible"]

    def test_single_row_is_bitwise(self, rmpc_rig):
        """k = 1 delegates to the scalar solver: bit-for-bit identical."""
        _system, mpc, _xi, xp, _mf = rmpc_rig
        x = _feasible_states(xp, 1)[0]
        [batched] = mpc.solve_batch([x])
        scalar = mpc.solve(x)
        assert np.array_equal(batched.inputs, scalar.inputs)
        assert np.array_equal(batched.states, scalar.states)
        assert batched.cost == scalar.cost
        assert np.array_equal(
            mpc.compute_batch(x[None, :])[0], mpc.compute(x)
        )

    def test_empty_batch(self, rmpc_rig):
        _system, mpc, _xi, _xp, _mf = rmpc_rig
        assert mpc.solve_batch(np.zeros((0, 2))) == []
        assert mpc.compute_batch(np.zeros((0, 2))).shape == (0, 1)

    def test_dimension_mismatch(self, rmpc_rig):
        _system, mpc, _xi, _xp, _mf = rmpc_rig
        with pytest.raises(ValueError, match="dimension"):
            mpc.solve_batch(np.zeros((3, 5)))

    def test_single_infeasible_row_is_attributed(self, rmpc_rig):
        """One bad row sinks the whole stack; the scalar fallback must
        name the offending state, not report an anonymous LP failure."""
        _system, mpc, _xi, xp, _mf = rmpc_rig
        states = _feasible_states(xp, 3)
        states[1] = [4.9, 1.99]  # far outside X_F
        with pytest.raises(RMPCInfeasibleError, match=r"4\.9"):
            mpc.solve_batch(states)

    def test_solve_count_accounting(self, rmpc_rig):
        """A stacked solve over k states counts k κ_R evaluations."""
        _system, mpc, _xi, xp, _mf = rmpc_rig
        states = _feasible_states(xp, 4)
        mpc.reset()
        mpc.solve_batch(states)
        assert mpc.solve_count == 4
        mpc.compute_batch(states[:2])
        assert mpc.solve_count == 6
        mpc.reset()

    def test_solve_count_on_fallback(self, rmpc_rig):
        """Accounting under the scalar fallback: the failed stacked
        attempt counts zero, each scalar re-solve counts one — so a
        batch whose row 1 is infeasible leaves exactly one counted solve
        (row 0), not k + 1 (regression: stacked-then-scalar must never
        double count)."""
        _system, mpc, _xi, xp, _mf = rmpc_rig
        states = _feasible_states(xp, 3)
        states[1] = [4.9, 1.99]  # far outside X_F
        mpc.reset()
        with pytest.raises(RMPCInfeasibleError):
            mpc.solve_batch(states)
        assert mpc.solve_count == 1
        mpc.reset()

    def test_stack_cache_hit_on_repeat(self, rmpc_rig):
        """Repeated batch solves over one controller's matrices must
        reuse its owned CSR stack (only the RHS changes)."""
        _system, mpc, _xi, xp, _mf = rmpc_rig
        states = _feasible_states(xp, 5)
        mpc.set_lp_backend("scipy")
        try:
            mpc.solve_batch(states)  # warm the owner's k=5 stack
            reset_stack_cache_stats()
            mpc.solve_batch(_feasible_states(xp, 5, seed=11))
        finally:
            mpc.set_lp_backend("auto")
        assert stack_cache_stats() == {"hits": 1, "misses": 0}


class TestBackendSelection:
    def test_invalid_backend_rejected(self, rmpc_rig):
        system, mpc, _xi, _xp, _mf = rmpc_rig
        with pytest.raises(ValueError, match="lp_backend"):
            RobustMPC(system, horizon=2, lp_backend="cplex")
        with pytest.raises(ValueError, match="lp_backend"):
            mpc.set_lp_backend("cplex")
        assert mpc.lp_backend == "auto"  # unchanged by the rejection

    def test_auto_matches_explicit_scipy_costs(self, rmpc_rig):
        """Whatever `auto` resolves to, the batch attains the scipy
        backend's (= the scalar solver's) optimal costs."""
        _system, mpc, _xi, xp, _mf = rmpc_rig
        states = _feasible_states(xp, 5, seed=21)
        try:
            mpc.set_lp_backend("scipy")
            via_scipy = mpc.solve_batch(states)
            mpc.set_lp_backend("auto")
            via_auto = mpc.solve_batch(states)
        finally:
            mpc.set_lp_backend("auto")
        for a, b in zip(via_auto, via_scipy):
            assert abs(a.cost - b.cost) <= 1e-9

    @needs_highs
    def test_highs_backend_plan_equivalent(self, rmpc_rig):
        _system, mpc, _xi, xp, _mf = rmpc_rig
        try:
            mpc.set_lp_backend("highs")
            report = verify_plan_equivalence(mpc, _feasible_states(xp, 6))
        finally:
            mpc.set_lp_backend("auto")
        assert report["equivalent"], report

    @needs_highs
    def test_highs_backend_warm_starts(self, rmpc_rig):
        """Consecutive equal-k batches reuse one persistent model."""
        _system, mpc, _xi, xp, _mf = rmpc_rig
        try:
            mpc.set_lp_backend("highs")
            mpc.release_stacks()  # cold start for this test
            mpc.solve_batch(_feasible_states(xp, 4, seed=31))
            solver = mpc._persistent
            assert solver is not None and solver.model_builds == 1
            mpc.solve_batch(_feasible_states(xp, 4, seed=32))
            assert solver.model_builds == 1
            assert solver.warm_solves == 1
        finally:
            mpc.set_lp_backend("auto")
            mpc.release_stacks()

    @needs_highs
    def test_highs_fallback_names_infeasible_state(self, rmpc_rig):
        """The named-state fallback contract holds under highs too."""
        _system, mpc, _xi, xp, _mf = rmpc_rig
        states = _feasible_states(xp, 3)
        states[1] = [4.9, 1.99]
        mpc.reset()
        try:
            mpc.set_lp_backend("highs")
            with pytest.raises(RMPCInfeasibleError, match=r"4\.9"):
                mpc.solve_batch(states)
        finally:
            mpc.set_lp_backend("auto")
        assert mpc.solve_count == 1  # row 0 scalar re-solve only
        mpc.reset()

    def test_backend_missing_highs_raises_in_batch(self, rmpc_rig):
        """Explicit `highs` without highspy fails loudly, not silently."""
        if highs_available():
            pytest.skip("highspy installed; fallback error path inert")
        _system, mpc, _xi, xp, _mf = rmpc_rig
        try:
            mpc.set_lp_backend("highs")
            with pytest.raises(LPBackendError, match="highspy"):
                mpc.solve_batch(_feasible_states(xp, 3))
        finally:
            mpc.set_lp_backend("auto")

    def test_released_controller_reclaims_stacks(self, rmpc_rig):
        """Dropping a controller must free its stacks: they live on the
        owner, not pinned under strong references in a module cache
        (regression for the id-keyed global LRU pinning bug)."""
        import gc
        import weakref

        system, mpc, _xi, xp, _mf = rmpc_rig
        other = RobustMPC(
            system, horizon=4, terminal_set=mpc.terminal_set
        )
        other.set_lp_backend("scipy")
        other.solve_batch(_feasible_states(xp, 3, seed=41))
        assert len(other._stack) == 1
        stack_ref = weakref.ref(other._stack)
        matrix_ref = weakref.ref(other._A_ub)
        del other
        gc.collect()
        assert stack_ref() is None
        assert matrix_ref() is None

    def test_release_stacks_is_transparent(self, rmpc_rig):
        _system, mpc, _xi, xp, _mf = rmpc_rig
        states = _feasible_states(xp, 3, seed=51)
        before = mpc.solve_batch(states)
        mpc.release_stacks()
        after = mpc.solve_batch(states)
        for a, b in zip(before, after):
            assert abs(a.cost - b.cost) <= 1e-9


class TestLockstepStackedEngine:
    def _runners(self, rmpc_rig, policy_factory=AlwaysSkipPolicy, **extra):
        system, mpc, _xi, _xp, monitor_factory = rmpc_rig

        def make(cls, **kw):
            return cls(system, mpc, monitor_factory, policy_factory, **kw)

        return make

    def _disturbances(self, system):
        lo, hi = system.disturbance_set.bounding_box()

        def factory(episode, rng):
            return rng.uniform(lo, hi, size=(HORIZON, system.n))

        return factory

    def test_exact_solves_bitwise_parity_with_serial(self, rmpc_rig):
        system, _mpc, _xi, xp, _mf = rmpc_rig
        make = self._runners(rmpc_rig)
        factory = self._disturbances(system)
        states = _feasible_states(xp, 4)
        serial = make(BatchRunner).run_seeded(states, factory, ROOT_SEED)
        exact = make(LockstepEngine, exact_solves=True).run_seeded(
            states, factory, ROOT_SEED
        )
        assert serial.deterministic_records() == exact.deterministic_records()

    def test_stacked_lockstep_plan_equivalent_tier(self, rmpc_rig):
        """The default (stacked) lockstep run: every episode completes
        under the strict monitor with zero safe-set violations, skip
        accounting stays within the monitor's forcing semantics, and the
        batch's solves are plan-equivalent at the visited start states."""
        system, mpc, _xi, xp, _mf = rmpc_rig
        make = self._runners(rmpc_rig)
        factory = self._disturbances(system)
        states = _feasible_states(xp, 4)
        serial = make(BatchRunner).run_seeded(states, factory, ROOT_SEED)
        stacked = make(LockstepEngine).run_seeded(states, factory, ROOT_SEED)
        assert len(stacked) == len(serial) == len(states)
        for record in stacked.records:
            assert record.max_violation <= 0.0
        report = verify_plan_equivalence(mpc, states)
        assert report["equivalent"], report

    def test_masked_and_forced_rows(self, rmpc_rig):
        """Rows in XI − X' are monitor-forced at t = 0 while X' rows may
        skip: the stacked solve sees exactly the forced/RUN row subset
        (a strict sub-batch), and the run stays violation-free."""
        system, _mpc, xi, xp, _mf = rmpc_rig
        candidates = xi.sample(np.random.default_rng(9), 400)
        outside = candidates[~xp.contains_batch(candidates)]
        if len(outside) < 2:
            pytest.skip("XI − X' too thin to sample for this plant")
        states = np.vstack([_feasible_states(xp, 3), outside[:2]])
        make = self._runners(rmpc_rig)
        factory = self._disturbances(system)
        serial = make(BatchRunner).run_seeded(states, factory, ROOT_SEED)
        stacked = make(LockstepEngine).run_seeded(states, factory, ROOT_SEED)
        exact = make(LockstepEngine, exact_solves=True).run_seeded(
            states, factory, ROOT_SEED
        )
        assert serial.deterministic_records() == exact.deterministic_records()
        assert len(stacked) == len(states)
        # The forced rows really were forced (mixed mask exercised).
        assert any(r.forced_steps >= 1 for r in stacked.records)
        for record in stacked.records:
            assert record.max_violation <= 0.0

    @pytest.mark.parametrize("backend", ["scipy", "highs"])
    def test_exact_solves_is_backend_invariant(self, rmpc_rig, backend):
        """The exact_solves audit tier routes through the scalar scipy
        path under every backend request, so its records match the serial
        engine bitwise whatever --lp-backend asks for (with `highs`, even
        when highspy is absent — the stacked path is never entered)."""
        system, mpc, _xi, xp, _mf = rmpc_rig
        make = self._runners(rmpc_rig)
        factory = self._disturbances(system)
        states = _feasible_states(xp, 4)
        serial = make(BatchRunner).run_seeded(states, factory, ROOT_SEED)
        try:
            exact = make(
                LockstepEngine, exact_solves=True, lp_backend=backend
            ).run_seeded(states, factory, ROOT_SEED)
        finally:
            mpc.set_lp_backend("auto")
        assert serial.deterministic_records() == exact.deterministic_records()

    @needs_highs
    def test_stacked_lockstep_highs_backend(self, rmpc_rig):
        """A full lockstep run on the warm-started backend: safe
        episodes, plan-equivalent solves, same episode count."""
        system, mpc, _xi, xp, _mf = rmpc_rig
        make = self._runners(rmpc_rig)
        factory = self._disturbances(system)
        states = _feasible_states(xp, 4)
        try:
            stacked = make(LockstepEngine, lp_backend="highs").run_seeded(
                states, factory, ROOT_SEED
            )
        finally:
            mpc.set_lp_backend("auto")
            mpc.release_stacks()
        assert len(stacked) == len(states)
        for record in stacked.records:
            assert record.max_violation <= 0.0

    def test_exact_solves_noop_for_bitwise_controllers(self, rmpc_rig):
        """exact_solves must not change a closed-form controller's path —
        its compute_batch already is the bitwise tier."""
        system, _mpc, xi, xp, _mf = rmpc_rig
        K = lqr_gain(system.A, system.B, np.eye(2), np.eye(1))
        lo, hi = system.input_set.bounding_box()
        controller = LinearFeedback(K, saturation=(lo, hi))

        def monitor_factory():
            return SafetyMonitor(
                strengthened_set=xp,
                invariant_set=xi,
                safe_set=system.safe_set,
                strict=False,
            )

        factory = self._disturbances(system)
        states = _feasible_states(xp, 4)

        def run(**kw):
            return LockstepEngine(
                system, controller, monitor_factory,
                lambda: PeriodicSkipPolicy(2), **kw,
            ).run_seeded(states, factory, ROOT_SEED)

        assert (
            run().deterministic_records()
            == run(exact_solves=True).deterministic_records()
        )


@pytest.mark.parametrize("name", scenario_registry.list_scenarios())
def test_scenario_zoo_batch_contract(name):
    """Every registered scenario's κ honours its declared batch tier:
    stacked-LP controllers are plan-equivalent, closed forms bitwise."""
    case = scenario_registry.build(name)
    controller = case.controller
    states = case.sample_initial_states(np.random.default_rng(7), 4)
    if getattr(controller, "bitwise_batch", True):
        batch = controller.compute_batch(states)
        for i, x in enumerate(states):
            assert np.array_equal(batch[i], controller.compute(x))
    else:
        report = verify_plan_equivalence(controller, states)
        assert report["equivalent"], (name, report)


@needs_highs
@pytest.mark.parametrize("name", scenario_registry.list_scenarios())
def test_scenario_zoo_highs_backend_equivalence(name):
    """Every stacked-LP scenario controller is plan-equivalent under the
    warm-started highs backend too (scalar reference solves stay scipy,
    so this is a cross-backend check)."""
    case = scenario_registry.build(name)
    controller = case.controller
    if getattr(controller, "bitwise_batch", True):
        pytest.skip(f"{name}: closed-form controller, no LP backend")
    states = case.sample_initial_states(np.random.default_rng(7), 4)
    controller.set_lp_backend("highs")
    report = verify_plan_equivalence(controller, states)
    assert report["equivalent"], (name, report)
