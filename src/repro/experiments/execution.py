"""Execution configuration for experiments and sweeps.

:class:`ExecutionConfig` separates *what* a sweep computes (the
:class:`~repro.experiments.spec.ExperimentSpec` grid — which fully
determines every deterministic metric) from *how* it is computed:
which per-cell engine advances the episodes, how many worker processes
shard the grid, and which determinism tier MPC solves run under.

Sharding contract (decided in PR 4, recorded in ROADMAP.md): grid cells
are sharded whole — one cell's entire paired batch runs inside one
worker, lockstep inside — so a ``jobs=k`` sweep executes bit-identical
per-cell computations to ``jobs=1`` and only the transport differs.
Cross-*engine* comparisons of RMPC scenarios remain plan-equivalent
(equal optimal cost ≤ 1e-9, feasible inputs, zero violations), not
bitwise; request ``exact_solves=True`` for record-for-record audits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.framework.evaluation import ENGINES
from repro.framework.kernel import KERNELS
from repro.utils.lp_backends import BACKENDS

__all__ = ["ExecutionConfig", "ON_ERROR_MODES", "SHARD_STRATEGIES"]

#: Recognised shard strategies (see :attr:`ExecutionConfig.shard`).
SHARD_STRATEGIES = ("auto", "cell", "none")

#: Recognised cell-failure policies (see :attr:`ExecutionConfig.on_error`).
ON_ERROR_MODES = ("fail", "record", "retry")


@dataclass(frozen=True)
class ExecutionConfig:
    """How a sweep's grid cells are executed.

    Attributes:
        engine: Per-cell episode engine — ``"serial"``, ``"parallel"``
            (per-case fork fan-out *inside* one cell) or ``"lockstep"``
            (all cases of one approach advance as a single state matrix;
            the single-core fast path).
        jobs: Worker processes (``0`` = one per CPU).  Under cell
            sharding this is the number of grid-cell workers; under the
            ``"parallel"`` engine it is the per-case fan-out width.
        exact_solves: Lockstep only — keep MPC solves on the scalar path
            for record-for-record parity with the serial engine instead
            of the plan-equivalent stacked solve.
        lp_backend: Lockstep only — stacked-solve backend request
            (``"auto"``: warm-started persistent HiGHS when ``highspy``
            is installed, scipy otherwise; ``"highs"``; ``"scipy"``; see
            :mod:`repro.utils.lp_backends`).  ``None`` (default) keeps
            each controller's own setting.  Deterministic metrics are
            backend-invariant only at the plan-equivalent tier; pass
            ``exact_solves=True`` for bitwise (and trivially
            backend-invariant) audits.
        shard: ``"cell"`` — fan whole grid cells out over
            :func:`repro.utils.parallel.fork_map` workers;
            ``"none"`` — evaluate cells sequentially in-process (``jobs``
            then only feeds the ``"parallel"`` engine);
            ``"auto"`` (default) — ``"cell"`` unless the engine is
            ``"parallel"`` (nesting a per-case fork fan-out inside a
            per-cell fork fan-out is never what you want).
        collect_timing: Lockstep only — maintain the per-row amortised
            wall-clock arrays (the default).  ``False`` zeroes the
            timing-derived metrics and leaves every deterministic metric
            bitwise-unchanged; required for the compiled kernel tier.
        kernel: Lockstep only — compiled-kernel request
            (``"auto"``: numba kernel when importable and the cell is
            eligible, numpy otherwise; ``"numba"``: require it;
            ``"numpy"``: never; see :mod:`repro.framework.kernel`).
            The kernel tier is bitwise, so deterministic metrics are
            kernel-invariant by construction.
        telemetry: Collect full telemetry for the sweep — spans, folded
            stage timings, and a metrics snapshot embedded per
            :class:`~repro.experiments.result.CellResult` and on the
            :class:`~repro.experiments.result.SweepResult`
            (:mod:`repro.observability`).  Hard contract: telemetry
            never touches deterministic record fields, so every metric
            is bitwise-identical with telemetry on or off.  ``False``
            also defers to a globally enabled registry
            (:func:`repro.observability.enable_telemetry`).
        on_error: Cell-failure policy for :func:`run_sweep`.
            ``"fail"`` (default) — a raising cell aborts the sweep, as
            before.  ``"record"`` — the cell becomes a structured
            :class:`~repro.experiments.result.CellFailure` on
            ``SweepResult.failures`` and the grid keeps going.
            ``"retry"`` — like ``"record"`` but the cell is first
            re-attempted up to ``cell_retries`` times (with a one-shot
            scipy-backend degradation for solver errors) before a
            failure is recorded.  Evaluated cells stay bitwise-identical
            under every mode; only which cells *exist* can differ.
        cell_retries: ``on_error="retry"`` only — extra attempts per
            failing cell before its failure is recorded.
        cell_timeout: Optional per-cell wall-clock budget [s] under cell
            sharding; a worker hung past it is killed and its cells
            respawn on a fresh worker (see
            :func:`repro.utils.parallel.fork_map`).  Unenforceable on
            the in-process (``shard="none"`` or single-cell) path.
        worker_retries: How many worker deaths/timeouts may be charged
            to one grid cell before it is given up — then the sweep
            aborts (``on_error="fail"``) or records a ``stage="worker"``
            :class:`~repro.experiments.result.CellFailure`.
    """

    engine: str = "serial"
    jobs: int = 1
    exact_solves: bool = False
    lp_backend: Optional[str] = None
    shard: str = "auto"
    collect_timing: bool = True
    kernel: str = "auto"
    telemetry: bool = False
    on_error: str = "fail"
    cell_retries: int = 1
    cell_timeout: Optional[float] = None
    worker_retries: int = 2

    def __post_init__(self):
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = one worker per CPU)")
        if self.lp_backend is not None and self.lp_backend not in BACKENDS:
            raise ValueError(
                f"lp_backend must be None or one of {BACKENDS}, "
                f"got {self.lp_backend!r}"
            )
        if self.shard not in SHARD_STRATEGIES:
            raise ValueError(
                f"shard must be one of {SHARD_STRATEGIES}, got {self.shard!r}"
            )
        if self.kernel not in KERNELS:
            raise ValueError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, "
                f"got {self.on_error!r}"
            )
        if self.cell_retries < 0:
            raise ValueError("cell_retries must be >= 0")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError("cell_timeout must be None or > 0 seconds")
        if self.worker_retries < 0:
            raise ValueError("worker_retries must be >= 0")
        if self.shard == "cell" and self.engine == "parallel":
            raise ValueError(
                "shard='cell' cannot nest the 'parallel' engine's per-case "
                "fork fan-out inside per-cell workers; use engine='serial' "
                "or 'lockstep' for sharded sweeps"
            )

    def resolved_shard(self) -> str:
        """The effective strategy: ``"auto"`` → cell unless parallel."""
        if self.shard != "auto":
            return self.shard
        return "none" if self.engine == "parallel" else "cell"
