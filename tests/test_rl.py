"""Tests for the numpy RL substrate: MLP gradients, Adam, replay, DQN."""

import numpy as np
import pytest

from repro.rl import (
    Adam,
    ConstantSchedule,
    DQNConfig,
    DoubleDQNAgent,
    ExponentialSchedule,
    LinearSchedule,
    MLP,
    ReplayBuffer,
    TrainingHistory,
    train_dqn,
)


class TestMLP:
    def test_forward_shapes(self, rng):
        net = MLP([3, 8, 2], rng)
        out = net.forward(np.zeros((5, 3)))
        assert out.shape == (5, 2)

    def test_forward_promotes_1d(self, rng):
        net = MLP([3, 8, 2], rng)
        out = net.forward(np.zeros(3))
        assert out.shape == (1, 2)

    def test_gradients_match_finite_differences(self, rng):
        """The manual backprop must agree with numerical gradients."""
        net = MLP([2, 5, 3], rng)
        x = rng.normal(size=(4, 2))
        target = rng.normal(size=(4, 3))

        def loss():
            y = net.forward(x)
            return 0.5 * float(np.sum((y - target) ** 2))

        y = net.forward(x, train=True)
        grads = net.backward(y - target)
        eps = 1e-6
        for p, g in zip(net.params, grads):
            flat_idx = np.unravel_index(
                rng.integers(p.size, size=3), p.shape
            )
            for idx in zip(*flat_idx):
                original = p[idx]
                p[idx] = original + eps
                hi = loss()
                p[idx] = original - eps
                lo = loss()
                p[idx] = original
                numeric = (hi - lo) / (2 * eps)
                assert g[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_backward_requires_forward_cache(self, rng):
        net = MLP([2, 4, 1], rng)
        with pytest.raises(RuntimeError, match="train=True"):
            net.backward(np.zeros((1, 1)))

    def test_copy_from(self, rng):
        a = MLP([2, 4, 1], rng)
        b = MLP([2, 4, 1], rng)
        b.copy_from(a)
        x = rng.normal(size=(3, 2))
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_copy_from_architecture_mismatch(self, rng):
        a = MLP([2, 4, 1], rng)
        b = MLP([2, 5, 1], rng)
        with pytest.raises(ValueError):
            b.copy_from(a)

    def test_soft_update_moves_params(self, rng):
        a = MLP([2, 4, 1], rng)
        b = MLP([2, 4, 1], rng)
        before = b.params[0].copy()
        b.soft_update_from(a, tau=0.5)
        np.testing.assert_allclose(
            b.params[0], 0.5 * before + 0.5 * a.params[0]
        )

    def test_state_dict_roundtrip(self, rng):
        a = MLP([2, 4, 1], rng)
        saved = a.state_dict()
        x = rng.normal(size=(2, 2))
        expected = a.forward(x).copy()
        a.params[0] += 1.0
        a.load_state_dict(saved)
        np.testing.assert_allclose(a.forward(x), expected)

    def test_needs_two_layer_sizes(self, rng):
        with pytest.raises(ValueError):
            MLP([3], rng)


class TestAdam:
    def test_minimizes_quadratic(self, rng):
        target = np.array([1.0, -2.0, 3.0])
        params = [np.zeros(3)]
        opt = Adam(params, lr=0.05)
        for _ in range(500):
            grad = params[0] - target
            opt.step([grad])
        np.testing.assert_allclose(params[0], target, atol=1e-2)

    def test_grad_clip_limits_norm(self):
        params = [np.zeros(4)]
        opt = Adam(params, lr=1.0, grad_clip=1.0)
        opt.step([np.full(4, 100.0)])
        # First Adam step magnitude is bounded by lr regardless, but the
        # clipped gradient keeps moment estimates sane.
        assert np.all(np.isfinite(params[0]))

    def test_gradient_count_mismatch(self):
        opt = Adam([np.zeros(2)])
        with pytest.raises(ValueError):
            opt.step([np.zeros(2), np.zeros(2)])


class TestReplay:
    def test_push_and_sample(self, rng):
        buf = ReplayBuffer(10, rng)
        for i in range(5):
            buf.push([float(i)], i % 2, float(i), [float(i + 1)], False)
        assert len(buf) == 5
        batch = buf.sample(3)
        assert batch.states.shape == (3, 1)
        assert batch.actions.shape == (3,)

    def test_ring_overwrite(self, rng):
        buf = ReplayBuffer(3, rng)
        for i in range(7):
            buf.push([float(i)], 0, 0.0, [0.0], False)
        assert len(buf) == 3
        batch = buf.sample(3)
        assert np.all(batch.states >= 4.0)

    def test_sample_empty_raises(self, rng):
        with pytest.raises(ValueError):
            ReplayBuffer(4, rng).sample(1)

    def test_capacity_validation(self, rng):
        with pytest.raises(ValueError):
            ReplayBuffer(0, rng)


class TestSchedules:
    def test_linear(self):
        sched = LinearSchedule(1.0, 0.0, 10)
        assert sched(0) == 1.0
        assert sched(5) == pytest.approx(0.5)
        assert sched(100) == 0.0

    def test_exponential(self):
        sched = ExponentialSchedule(1.0, 0.1, 0.5)
        assert sched(0) == pytest.approx(1.0)
        assert sched(1) == pytest.approx(0.55)
        assert sched(1000) == pytest.approx(0.1)

    def test_constant(self):
        assert ConstantSchedule(0.3)(123) == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearSchedule(1.0, 0.0, 0)
        with pytest.raises(ValueError):
            ExponentialSchedule(1.0, 0.0, 1.5)
        with pytest.raises(ValueError):
            ConstantSchedule(2.0)


class _TwoArmBandit:
    """One-step environment: action 1 pays +1, action 0 pays 0."""

    def __init__(self):
        self.observation = np.array([1.0, -1.0])

    def reset(self):
        return self.observation

    def step(self, action):
        reward = 1.0 if action == 1 else 0.0
        return self.observation, reward, True, {}


class _CorridorEnv:
    """A 5-cell corridor: action 1 moves right (+1 at the end), action 0
    moves left.  Optimal policy always moves right."""

    def __init__(self):
        self.pos = 0

    def reset(self):
        self.pos = 0
        return self._obs()

    def _obs(self):
        return np.array([self.pos / 4.0])

    def step(self, action):
        self.pos += 1 if action == 1 else -1
        self.pos = max(self.pos, 0)
        done = self.pos >= 4
        reward = 1.0 if done else -0.05
        return self._obs(), reward, done, {}


class TestDoubleDQN:
    def test_learns_bandit(self, rng):
        cfg = DQNConfig(
            state_dim=2, num_actions=2, hidden=(16,), gamma=0.9,
            lr=5e-3, batch_size=16, buffer_capacity=500,
            target_sync_every=20, learn_start=32,
        )
        agent = DoubleDQNAgent(cfg, rng)
        env = _TwoArmBandit()
        train_dqn(agent, env, episodes=150, max_steps=1)
        assert agent.act(env.observation, epsilon=0.0) == 1
        q = agent.q_values(env.observation)
        assert q[1] > q[0]

    def test_learns_corridor(self, rng):
        cfg = DQNConfig(
            state_dim=1, num_actions=2, hidden=(24,), gamma=0.95,
            lr=3e-3, batch_size=32, buffer_capacity=2000,
            target_sync_every=50, learn_start=64,
        )
        agent = DoubleDQNAgent(cfg, rng)
        env = _CorridorEnv()
        train_dqn(agent, env, episodes=120, max_steps=30)
        # Greedy rollout should reach the goal in the minimum 4 steps.
        obs = env.reset()
        for step in range(4):
            obs, reward, done, _ = env.step(agent.act(obs, 0.0))
        assert done

    def test_update_returns_none_before_learn_start(self, rng):
        cfg = DQNConfig(state_dim=1, learn_start=100)
        agent = DoubleDQNAgent(cfg, rng)
        agent.remember([0.0], 0, 0.0, [0.0], False)
        assert agent.update() is None

    def test_target_sync(self, rng):
        cfg = DQNConfig(
            state_dim=1, hidden=(4,), learn_start=1, batch_size=4,
            target_sync_every=5,
        )
        agent = DoubleDQNAgent(cfg, rng)
        for i in range(10):
            agent.remember([float(i)], i % 2, 1.0, [0.0], True)
        for _ in range(5):
            agent.update()
        x = np.array([0.5])
        np.testing.assert_allclose(
            agent.online.forward(x), agent.target.forward(x)
        )

    def test_state_dict_roundtrip(self, rng):
        cfg = DQNConfig(state_dim=2, hidden=(8,))
        agent = DoubleDQNAgent(cfg, rng)
        saved = agent.state_dict()
        obs = np.array([0.3, -0.7])
        expected = agent.q_values(obs).copy()
        agent.online.params[0] += 1.0
        agent.load_state_dict(saved)
        np.testing.assert_allclose(agent.q_values(obs), expected)

    def test_epsilon_one_is_random(self, rng):
        cfg = DQNConfig(state_dim=1, hidden=(4,))
        agent = DoubleDQNAgent(cfg, rng)
        actions = {agent.act([0.0], epsilon=1.0) for _ in range(50)}
        assert actions == {0, 1}


class TestTrainingLoop:
    def test_history_contents(self, rng):
        cfg = DQNConfig(state_dim=2, hidden=(8,), learn_start=8, batch_size=4)
        agent = DoubleDQNAgent(cfg, rng)
        history = train_dqn(agent, _TwoArmBandit(), episodes=20, max_steps=1)
        assert history.episodes == 20
        assert len(history.epsilons) == 20
        assert history.moving_average(5).shape == (16,)

    def test_callback_invoked(self, rng):
        cfg = DQNConfig(state_dim=2, hidden=(8,))
        agent = DoubleDQNAgent(cfg, rng)
        seen = []
        train_dqn(
            agent, _TwoArmBandit(), episodes=5, max_steps=1,
            callback=lambda ep, ret: seen.append(ep),
        )
        assert seen == list(range(5))

    def test_episode_validation(self, rng):
        cfg = DQNConfig(state_dim=2)
        agent = DoubleDQNAgent(cfg, rng)
        with pytest.raises(ValueError):
            train_dqn(agent, _TwoArmBandit(), episodes=0)
