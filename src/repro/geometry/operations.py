"""Module-level set operations built on :class:`HPolytope`.

These free functions mirror the notation of the paper (⊕, ⊖, affine maps,
iterated sums) and add the aggregate operations — iterated Minkowski sums
and set scaling — used by the invariant-set algorithms in
:mod:`repro.invariance`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.geometry.hpolytope import HPolytope
from repro.utils.validation import as_matrix

__all__ = [
    "minkowski_sum",
    "pontryagin_difference",
    "intersection",
    "affine_preimage",
    "affine_image",
    "iterated_sum",
    "matrix_power_sum",
    "box_hull",
    "support_vector",
]


def minkowski_sum(*polytopes: HPolytope) -> HPolytope:
    """Minkowski sum of one or more polytopes (left fold of ``⊕``)."""
    if not polytopes:
        raise ValueError("need at least one polytope")
    acc = polytopes[0]
    for poly in polytopes[1:]:
        acc = acc.minkowski_sum(poly)
    return acc


def pontryagin_difference(left: HPolytope, right: HPolytope) -> HPolytope:
    """``left ⊖ right = {x : x + right ⊆ left}`` (exact in H-rep)."""
    return left.pontryagin_difference(right)


def intersection(*polytopes: HPolytope) -> HPolytope:
    """Intersection of one or more polytopes."""
    if not polytopes:
        raise ValueError("need at least one polytope")
    acc = polytopes[0]
    for poly in polytopes[1:]:
        acc = acc.intersect(poly)
    return acc


def affine_preimage(poly: HPolytope, A, offset=None) -> HPolytope:
    """``{x : A x + offset ∈ poly}`` — exact for any ``A``."""
    return poly.linear_preimage(A, offset)


def affine_image(poly: HPolytope, A) -> HPolytope:
    """``{A x : x ∈ poly}`` (see :meth:`HPolytope.linear_image` caveats)."""
    return poly.linear_image(A)


def iterated_sum(terms: Sequence[HPolytope]) -> HPolytope:
    """Minkowski sum over a sequence, reducing pairwise in tree order.

    Tree-order reduction keeps intermediate vertex counts smaller than a
    left fold when summing many similar terms (the mRPI construction sums
    ``n`` rotated copies of the disturbance set).
    """
    items = list(terms)
    if not items:
        raise ValueError("need at least one term")
    while len(items) > 1:
        paired = []
        for i in range(0, len(items) - 1, 2):
            paired.append(items[i].minkowski_sum(items[i + 1]))
        if len(items) % 2:
            paired.append(items[-1])
        items = paired
    return items[0]


def matrix_power_sum(M, base: HPolytope, count: int) -> HPolytope:
    """Compute ``base ⊕ M·base ⊕ M²·base ⊕ … ⊕ M^(count-1)·base``.

    This is the truncated series of the minimal robust positively
    invariant (mRPI) set construction of Raković et al. (2005) for the
    closed-loop matrix ``M = A + B K`` and disturbance set ``base = W``.

    Args:
        M: Square matrix applied repeatedly.
        base: The disturbance polytope ``W`` (must contain the origin for
            the mRPI interpretation, but this is not enforced here).
        count: Number of terms (>= 1).

    Returns:
        The Minkowski sum of the ``count`` mapped copies.
    """
    M = as_matrix(M, "M")
    if count < 1:
        raise ValueError("count must be >= 1")
    terms = []
    current = base
    power = np.eye(M.shape[0])
    for _ in range(count):
        terms.append(current)
        power = M @ power
        current = _image_any(base, power)
    return iterated_sum(terms)


def _image_any(poly: HPolytope, A: np.ndarray) -> HPolytope:
    """Image under ``A`` that tolerates singular square maps in 2-D.

    ``M^k`` of a stable closed loop can become numerically singular; for
    the 1-D/2-D sets used by the mRPI construction we then go through
    (possibly degenerate) vertex images, bloated into a thin box.
    """
    if A.shape[0] == A.shape[1] and abs(np.linalg.det(A)) > 1e-12:
        return poly.linear_image(A)
    V = poly.vertices() @ A.T
    lower = V.min(axis=0)
    upper = V.max(axis=0)
    spread = upper - lower
    if poly.dim <= 2 and np.all(spread > 1e-12):
        return HPolytope.from_vertices(V)
    # Degenerate image: thin axis-aligned box (outer approximation).
    pad = 1e-12
    return HPolytope.from_box(lower - pad, upper + pad)


def box_hull(poly: HPolytope) -> HPolytope:
    """Smallest axis-aligned box containing ``poly``."""
    lower, upper = poly.bounding_box()
    return HPolytope.from_box(lower, upper)


def support_vector(poly: HPolytope, directions) -> np.ndarray:
    """Support values of ``poly`` along each row of ``directions``."""
    D = np.atleast_2d(np.asarray(directions, dtype=float))
    return np.array([poly.support(d) for d in D])
