"""Longitudinal two-vehicle simulator (the SUMO substitute's plant layer).

Integrates the *raw-coordinate* ACC scenario of the paper's Fig. 3:

    s(t+1) = s(t) − (v(t) − v_f(t)) δ
    v(t+1) = v(t) − (k v(t) − u(t)) δ

given a front-vehicle velocity trace and an arbitrary ego control
callback.  This duplicates — deliberately — the shifted-coordinate
simulation done by :class:`repro.framework.IntermittentController`; the
test-suite asserts both integrations agree exactly, which is the
substitute's fidelity argument (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.acc.model import ACCParameters
from repro.traffic.fuel import HBEFA3Fuel

__all__ = ["LongitudinalSimulator", "TrafficTrace"]


@dataclass
class TrafficTrace:
    """Raw-coordinate trajectory of one simulated run.

    Attributes:
        distances: Relative distance ``s`` per step, length ``T+1``.
        velocities: Ego velocity ``v`` per step, length ``T+1``.
        front_velocities: Front velocity trace, length ``T``.
        commands: Applied raw commands ``u``, length ``T``.
    """

    distances: np.ndarray
    velocities: np.ndarray
    front_velocities: np.ndarray
    commands: np.ndarray

    @property
    def steps(self) -> int:
        return int(self.commands.size)

    def fuel(self, meter: HBEFA3Fuel, dt: float) -> float:
        """Trip fuel using velocities *during* each step."""
        return meter.trip_fuel(self.velocities[:-1], self.commands, dt)

    def distance_bounds_respected(self, s_range: tuple) -> bool:
        """True iff the safe-distance constraint held throughout."""
        return bool(
            np.all(self.distances >= s_range[0] - 1e-6)
            and np.all(self.distances <= s_range[1] + 1e-6)
        )


class LongitudinalSimulator:
    """Raw ACC plant integrator.

    Args:
        params: ACC constants (δ, drag, limits).
        clip_command: Clip ego commands into ``u_range`` (actuator
            saturation), default True.
    """

    def __init__(self, params: ACCParameters = ACCParameters(), clip_command: bool = True):
        self.params = params
        self.clip_command = bool(clip_command)

    def run(
        self,
        s0: float,
        v0: float,
        front_velocities,
        controller: Callable[[int, float, float], float],
    ) -> TrafficTrace:
        """Simulate ``len(front_velocities)`` steps.

        Args:
            s0: Initial relative distance.
            v0: Initial ego velocity.
            front_velocities: Trace of ``v_f``.
            controller: Callback ``(t, s, v) -> u`` in raw coordinates.

        Returns:
            The full :class:`TrafficTrace`.
        """
        p = self.params
        vf = np.asarray(front_velocities, dtype=float).reshape(-1)
        horizon = vf.size
        s = np.empty(horizon + 1)
        v = np.empty(horizon + 1)
        u = np.empty(horizon)
        s[0], v[0] = float(s0), float(v0)
        for t in range(horizon):
            command = float(controller(t, s[t], v[t]))
            if self.clip_command:
                command = float(np.clip(command, p.u_range[0], p.u_range[1]))
            u[t] = command
            s[t + 1] = s[t] - (v[t] - vf[t]) * p.delta
            v[t + 1] = v[t] - (p.drag * v[t] - command) * p.delta
        return TrafficTrace(
            distances=s, velocities=v, front_velocities=vf, commands=u
        )
