"""Controller interface.

A controller is a state-feedback law ``u = κ(x)``.  The framework layer
times each evaluation to reproduce the paper's computation-saving numbers,
so controllers should do all their work inside :meth:`Controller.compute`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import as_vector

__all__ = ["Controller", "ConstantController"]


class Controller(ABC):
    """Abstract state-feedback controller ``u = κ(x)``."""

    #: Dimension of the produced input vector; subclasses must set it.
    input_dim: int

    @abstractmethod
    def compute(self, state) -> np.ndarray:
        """Compute the control input for ``state``.

        Returns:
            Input vector of shape ``(input_dim,)``.
        """

    def __call__(self, state) -> np.ndarray:
        return self.compute(state)

    def reset(self) -> None:
        """Clear internal state (warm starts, caches).  Default: no-op."""


class ConstantController(Controller):
    """Always returns the same input (e.g. the zero/skip input)."""

    def __init__(self, value):
        self.value = as_vector(value, "value")
        self.input_dim = self.value.size

    def compute(self, state) -> np.ndarray:
        return self.value.copy()
