"""Safe controllers: linear feedback / LQR and robust MPC (paper Eq. 5)."""

from repro.controllers.base import ConstantController, Controller
from repro.controllers.feasible import rmpc_feasible_set, rmpc_invariant_set
from repro.controllers.linear import LinearFeedback, deadbeat_like_gain, lqr_gain
from repro.controllers.rmpc import (
    RMPCInfeasibleError,
    RMPCSolution,
    RobustMPC,
    build_terminal_set,
    verify_plan_equivalence,
)
from repro.controllers.tightening import (
    tightened_constraints,
    tightened_input_constraints,
)

__all__ = [
    "Controller",
    "ConstantController",
    "LinearFeedback",
    "lqr_gain",
    "deadbeat_like_gain",
    "RobustMPC",
    "RMPCSolution",
    "RMPCInfeasibleError",
    "build_terminal_set",
    "verify_plan_equivalence",
    "rmpc_feasible_set",
    "rmpc_invariant_set",
    "tightened_constraints",
    "tightened_input_constraints",
]
