"""Sweep plans: expanding (experiments × parameter axes) into a grid.

A :class:`SweepPlan` is the declarative unit
:func:`~repro.experiments.runner.run_sweep` executes: a tuple of
:class:`~repro.experiments.spec.ExperimentSpec`, a tuple of
:class:`~repro.experiments.spec.ParameterAxis` (their cartesian product
forms the grid), and an :class:`~repro.experiments.execution.ExecutionConfig`.
:meth:`SweepPlan.cells` materialises the grid as :class:`GridCell`
work units with stable, unique row keys.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, List, Tuple, Union

from repro.experiments.execution import ExecutionConfig
from repro.experiments.spec import AxisPoint, ExperimentSpec, ParameterAxis
from repro.scenarios.spec import ScenarioSpec

__all__ = ["GridCell", "SweepPlan"]


@dataclass(frozen=True, eq=False)
class GridCell:
    """One grid point: an experiment at a tuple of axis points.

    Attributes:
        experiment: The cell's experiment spec.
        points: One :class:`AxisPoint` per plan axis (empty for
            axis-free plans).
    """

    experiment: ExperimentSpec
    points: Tuple[AxisPoint, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "points", tuple(self.points))

    @property
    def overrides(self) -> tuple:
        """Base-spec overrides followed by this cell's axis overrides."""
        return self.experiment.overrides + tuple(
            (point.key, point.value) for point in self.points
        )

    @property
    def coords(self) -> tuple:
        """``((axis, label), ...)`` — the cell's grid coordinates."""
        return tuple((point.axis, point.label) for point in self.points)

    @property
    def point_label(self) -> str:
        """``"axis=label,..."`` rendering of :attr:`coords` ("" if none)."""
        return ",".join(f"{axis}={label}" for axis, label in self.coords)

    @property
    def key(self) -> str:
        """Stable row key: ``label`` or ``label@axis=value,...``."""
        label = self.experiment.display_label
        point = self.point_label
        return f"{label}@{point}" if point else label


@dataclass(frozen=True, eq=False)
class SweepPlan:
    """A full sweep: experiments × axes, plus how to execute them.

    Attributes:
        experiments: The scenarios/comparisons to sweep.  Accepts a
            single spec, registry names (wrapped in default
            :class:`ExperimentSpec`), inline ``ScenarioSpec``s, or full
            experiment specs.
        axes: Parameter axes; the grid is their cartesian product
            applied to *every* experiment.  Empty = one cell per
            experiment.
        execution: Default execution configuration for
            :func:`~repro.experiments.runner.run_sweep`.
    """

    experiments: tuple
    axes: tuple = ()
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)

    def __post_init__(self):
        object.__setattr__(
            self, "experiments", _as_experiments(self.experiments)
        )
        axes = self.axes
        if isinstance(axes, ParameterAxis):
            axes = (axes,)
        axes = tuple(axes)
        for axis in axes:
            if not isinstance(axis, ParameterAxis):
                raise ValueError(
                    f"axes entries must be ParameterAxis, got "
                    f"{type(axis).__name__}"
                )
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {names}")
        object.__setattr__(self, "axes", axes)
        if not isinstance(self.execution, ExecutionConfig):
            raise ValueError(
                "execution must be an ExecutionConfig, got "
                f"{type(self.execution).__name__}"
            )
        counts = Counter(cell.key for cell in self.cells())
        duplicates = sorted(key for key, n in counts.items() if n > 1)
        if duplicates:
            raise ValueError(
                f"plan produces duplicate row keys {duplicates}; give the "
                "colliding experiments distinct `label`s"
            )

    @classmethod
    def for_scenarios(
        cls,
        names: Iterable[str],
        axes: tuple = (),
        execution: ExecutionConfig = None,
        **spec_kwargs,
    ) -> "SweepPlan":
        """Uniform plan over registry scenarios (the CLI's entry point).

        Args:
            names: Registry scenario names, in sweep order.
            axes: Parameter axes shared by every scenario.
            execution: Execution configuration (default:
                ``ExecutionConfig()``).
            **spec_kwargs: Common :class:`ExperimentSpec` fields
                (``num_cases``, ``horizon``, ``seed``, ...).
        """
        experiments = tuple(
            ExperimentSpec(scenario=name, **spec_kwargs) for name in names
        )
        return cls(
            experiments=experiments,
            axes=axes,
            execution=execution if execution is not None else ExecutionConfig(),
        )

    @property
    def grid_shape(self) -> tuple:
        """``(num_experiments, len(axis_1), len(axis_2), ...)``."""
        return (len(self.experiments),) + tuple(
            len(axis) for axis in self.axes
        )

    def cells(self) -> List[GridCell]:
        """The grid, experiment-major then axis-lexicographic."""
        point_tuples = list(
            itertools.product(*(axis.points() for axis in self.axes))
        )
        return [
            GridCell(experiment=experiment, points=points)
            for experiment in self.experiments
            for points in point_tuples
        ]


def _as_experiments(
    experiments: Union[ExperimentSpec, str, ScenarioSpec, Iterable],
) -> tuple:
    """Normalise the accepted experiment forms to a spec tuple."""
    if isinstance(experiments, (ExperimentSpec, str, ScenarioSpec)):
        experiments = (experiments,)
    out = []
    for entry in experiments:
        if isinstance(entry, ExperimentSpec):
            out.append(entry)
        elif isinstance(entry, (str, ScenarioSpec)):
            out.append(ExperimentSpec(scenario=entry))
        else:
            raise ValueError(
                "experiments entries must be ExperimentSpec, registry "
                f"names or ScenarioSpec, got {type(entry).__name__}"
            )
    if not out:
        raise ValueError("a sweep plan needs at least one experiment")
    return tuple(out)
