"""Unified telemetry: metrics registry, run traces, logging wiring.

The repo's single observability surface.  See
:mod:`repro.observability.metrics` for the cost model (always-on
structural counters vs enabled-gated hot-path instrumentation and the
hard records-are-bitwise-identical contract),
:mod:`repro.observability.trace` for the span layer, and
:mod:`repro.observability.logconfig` for the ``repro.*`` logger
namespace.

Quick start::

    from repro import observability as obs

    obs.enable_telemetry()            # or ExecutionConfig(telemetry=True)
    result = run_sweep(plan, execution)
    snap = obs.registry().snapshot()  # or result.telemetry
    text = obs.render_table(snap)     # or render_prometheus(snap)
"""

from .logconfig import LOGGER_NAMESPACE, configure_logging
from .metrics import (
    MetricsRegistry,
    active,
    deterministic_view,
    disable_telemetry,
    enable_telemetry,
    registry,
    render_prometheus,
    render_table,
    scoped_registry,
    telemetry_enabled,
)
from .trace import RunTrace, Span

__all__ = [
    "MetricsRegistry",
    "RunTrace",
    "Span",
    "LOGGER_NAMESPACE",
    "configure_logging",
    "registry",
    "active",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry_enabled",
    "scoped_registry",
    "deterministic_view",
    "render_prometheus",
    "render_table",
]
