"""The unified telemetry subsystem (`repro.observability`).

Gates the module's three load-bearing contracts:

* **bitwise transparency** — telemetry on/off never changes a
  deterministic record field or metric array, under the lockstep
  engine included;
* **fork composition** — a sharded ``jobs=2`` sweep's merged snapshot
  equals the in-process ``jobs=1`` snapshot exactly in the
  deterministic (non-wall-clock) view, and a worker dying mid-cell
  leaves the parent registry untouched;
* **single sink** — the legacy cache-stats shims and the per-cell
  solver-effort columns all read through the one registry.
"""

from __future__ import annotations

import io
import logging
import os

import numpy as np
import pytest

from repro import observability as obs
from repro.experiments import (
    ExecutionConfig,
    ExperimentSpec,
    ParameterAxis,
    SweepPlan,
    SweepResult,
    run_experiment,
    run_sweep,
)
from repro.observability import metrics as obs_metrics
from repro.utils.lp import (
    STACK_CACHE_METRIC,
    BlockStack,
    reset_stack_cache_stats,
    stack_cache_stats,
)
from repro.utils.parallel import fork_map


# ----------------------------------------------------------------------
# Registry unit behaviour
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_with_labels(self):
        reg = obs.MetricsRegistry()
        reg.inc("events_total", event="hit")
        reg.inc("events_total", 2, event="hit")
        reg.inc("events_total", event="miss")
        assert reg.value("events_total", event="hit") == 3
        assert reg.value("events_total", event="miss") == 1
        assert reg.value("events_total", event="absent") == 0
        assert reg.total("events_total") == 4

    def test_total_matches_label_subset(self):
        reg = obs.MetricsRegistry()
        reg.inc("x", cache="owned", event="hit")
        reg.inc("x", cache="anonymous", event="hit")
        reg.inc("x", cache="owned", event="miss")
        assert reg.total("x", event="hit") == 2
        assert reg.total("x", cache="owned") == 2

    def test_gauge_last_write_wins(self):
        reg = obs.MetricsRegistry()
        reg.set_gauge("depth", 3, stage="a")
        reg.set_gauge("depth", 7, stage="a")
        snap = reg.snapshot()
        assert snap["gauges"]["depth"] == [
            {"labels": {"stage": "a"}, "value": 7}
        ]

    def test_histogram_buckets_are_cumulative(self):
        reg = obs.MetricsRegistry()
        reg.observe("batch_size", 3)
        reg.observe("batch_size", 100)
        entry = reg.snapshot()["histograms"]["batch_size"][0]
        assert entry["count"] == 2
        assert entry["sum"] == pytest.approx(103.0)
        assert entry["buckets"]["4"] == 1
        assert entry["buckets"]["128"] == 2
        assert entry["buckets"]["+Inf"] == 2

    def test_reset_by_name_keeps_other_metrics(self):
        reg = obs.MetricsRegistry()
        reg.inc("a_total")
        reg.inc("b_total")
        reg.reset("a_total")
        assert reg.value("a_total") == 0
        assert reg.value("b_total") == 1
        reg.reset()
        assert reg.snapshot(spans=False) == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_span_records_only_when_enabled(self):
        reg = obs.MetricsRegistry(enabled=True)
        with reg.span("outer", cells=2):
            with reg.span("inner"):
                pass
        spans = reg.snapshot()["spans"]
        assert len(spans) == 1
        assert spans[0]["name"] == "outer"
        assert spans[0]["attributes"] == {"cells": 2}
        assert spans[0]["duration"] >= 0.0
        assert [child["name"] for child in spans[0]["children"]] == ["inner"]

        disabled = obs.MetricsRegistry(enabled=False)
        with disabled.span("outer"):
            pass
        assert disabled.snapshot()["spans"] == []


class TestMergeSnapshot:
    def test_counters_add_and_gauges_overwrite(self):
        src = obs.MetricsRegistry()
        src.inc("n_total", 2, kind="x")
        src.set_gauge("level", 5)
        dst = obs.MetricsRegistry()
        dst.inc("n_total", 1, kind="x")
        dst.set_gauge("level", 1)
        dst.merge_snapshot(src.snapshot())
        dst.merge_snapshot(src.snapshot())
        assert dst.value("n_total", kind="x") == 5
        assert dst.snapshot()["gauges"]["level"][0]["value"] == 5

    def test_histograms_decumulate_on_merge(self):
        src = obs.MetricsRegistry()
        src.observe("k", 3)
        src.observe("k", 100)
        snap = src.snapshot()
        dst = obs.MetricsRegistry()
        dst.observe("k", 3)
        dst.merge_snapshot(snap)
        dst.merge_snapshot(snap)
        entry = dst.snapshot()["histograms"]["k"][0]
        assert entry["count"] == 5
        assert entry["sum"] == pytest.approx(209.0)
        # 3 observations of 3 (le=4), 2 of 100 (le=128), cumulatively
        assert entry["buckets"]["4"] == 3
        assert entry["buckets"]["128"] == 5
        assert entry["buckets"]["+Inf"] == 5

    def test_merge_none_is_noop(self):
        dst = obs.MetricsRegistry()
        dst.merge_snapshot(None)
        dst.merge_snapshot({})
        assert dst.snapshot(spans=False) == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


class TestDeterministicView:
    def test_drops_wall_clock_metrics_and_spans(self):
        reg = obs.MetricsRegistry(enabled=True)
        reg.inc("solves_total")
        reg.inc("stage_seconds", 2)
        reg.observe("latency_ms", 1.0)
        with reg.span("sweep"):
            pass
        view = obs.deterministic_view(reg.snapshot())
        assert set(view) == {"counters", "gauges", "histograms"}
        assert "solves_total" in view["counters"]
        assert "stage_seconds" not in view["counters"]
        assert view["histograms"] == {}
        assert reg.deterministic_snapshot() == view


class TestScopedRegistry:
    def test_isolates_and_restores_ambient(self):
        ambient = obs.registry()
        before = ambient.value("scoped_probe_total")
        with obs.scoped_registry(enabled=True) as reg:
            assert obs.registry() is reg
            assert obs.telemetry_enabled()
            reg.inc("scoped_probe_total")
            assert reg.value("scoped_probe_total") == 1
        assert obs.registry() is ambient
        assert ambient.value("scoped_probe_total") == before

    def test_active_follows_enabled_flag(self):
        with obs.scoped_registry(enabled=False):
            assert obs_metrics.active() is None
        with obs.scoped_registry(enabled=True) as reg:
            assert obs_metrics.active() is reg

    def test_scopes_are_thread_local(self):
        # The service's job executor enters per-cell scopes on its own
        # thread while the submitting thread may hold scopes of its
        # own.  Scopes must be invisible across threads, and
        # interleaved enter/exit (thread A enters, B enters, A exits,
        # B exits) must never strand one thread's — possibly enabled —
        # scoped registry as the process ambient.
        import threading

        ambient = obs.registry()
        entered = threading.Event()
        release = threading.Event()
        seen = {}

        def worker():
            with obs.scoped_registry(enabled=True) as reg:
                seen["inside"] = obs.registry() is reg
                entered.set()
                release.wait(timeout=10)
            seen["after"] = obs.registry()

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=10)
        # The worker's open scope is invisible here.
        assert obs.registry() is ambient
        assert not obs.telemetry_enabled()
        # Interleave: enter and exit a scope while the worker's is open.
        with obs.scoped_registry(enabled=False) as mine:
            assert obs.registry() is mine
        release.set()
        thread.join(timeout=10)
        assert seen["inside"]
        assert seen["after"] is ambient
        assert obs.registry() is ambient
        assert not obs.telemetry_enabled()


class TestRenderings:
    def test_prometheus_exposition(self):
        reg = obs.MetricsRegistry()
        reg.inc("hits_total", 2, cache="owned")
        reg.set_gauge("depth", 4)
        reg.observe("k", 3)
        text = obs.render_prometheus(reg.snapshot())
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{cache="owned"} 2' in text
        assert "# TYPE depth gauge" in text
        assert "depth 4" in text
        assert "k_bucket{le=\"4\"} 1" in text
        assert "k_sum 3.0" in text
        assert "k_count 1" in text

    def test_table_renders_metrics_and_span_tree(self):
        reg = obs.MetricsRegistry(enabled=True)
        reg.inc("hits_total", 2, cache="owned")
        with reg.span("sweep", cells=1):
            pass
        text = obs.render_table(reg.snapshot())
        assert 'hits_total{cache="owned"}' in text
        assert "(counter)" in text
        assert "spans:" in text
        assert "- sweep:" in text
        assert obs.render_table(
            obs.MetricsRegistry().snapshot()
        ) == "(empty telemetry snapshot)\n"


# ----------------------------------------------------------------------
# Satellite: legacy cache-stats shims read through the registry
# ----------------------------------------------------------------------
class TestCacheStatsShims:
    def test_blockstack_events_reach_shim_and_registry(self):
        with obs.scoped_registry():
            reset_stack_cache_stats()
            stack = BlockStack(np.eye(2))
            stack.stacked(3)
            stack.stacked(3)
            assert stack_cache_stats() == {"hits": 1, "misses": 1}
            reg = obs.registry()
            assert reg.value(
                STACK_CACHE_METRIC, cache="owned", event="hit"
            ) == 1
            assert reg.value(
                STACK_CACHE_METRIC, cache="owned", event="miss"
            ) == 1
            reset_stack_cache_stats()
            assert stack_cache_stats() == {"hits": 0, "misses": 0}


# ----------------------------------------------------------------------
# Engine integration: the hard bitwise contract + solver effort
# ----------------------------------------------------------------------
SPEC = dict(scenario="thermal", num_cases=3, horizon=8, seed=7)
SPEC_KW = {key: value for key, value in SPEC.items() if key != "scenario"}


def _metric_arrays(cell) -> dict:
    return {
        name: {m: v.tolist() for m, v in stats.metrics.items()}
        for name, stats in cell.approaches.items()
    }


@pytest.fixture(scope="module")
def warm_thermal():
    """Synthesise the thermal cell's sets and run one throwaway sweep so
    every in-process cache (builder, stacked-LP blocks, nesting proofs)
    is at steady state before any telemetry-equality assertion — forked
    workers inherit warm caches through the process image, so cold
    first runs would legitimately differ from sharded ones."""
    plan = SweepPlan.for_scenarios(
        ["thermal"], axes=(ParameterAxis("horizon", (5, 6)),),
        num_cases=SPEC["num_cases"], horizon=SPEC["horizon"],
        seed=SPEC["seed"],
    )
    run_sweep(plan, ExecutionConfig(engine="lockstep", jobs=1))
    run_experiment(ExperimentSpec(**SPEC), ExecutionConfig(engine="lockstep"))
    return plan


class TestTelemetryTransparency:
    def test_lockstep_records_bitwise_identical(self, warm_thermal):
        spec = ExperimentSpec(**SPEC)
        plain = run_experiment(
            spec, ExecutionConfig(engine="lockstep", telemetry=False)
        )
        instrumented = run_experiment(
            spec, ExecutionConfig(engine="lockstep", telemetry=True)
        )
        assert _metric_arrays(plain) == _metric_arrays(instrumented)
        assert plain.telemetry is None
        assert instrumented.telemetry is not None

    def test_structural_counters_record_even_when_disabled(self, warm_thermal):
        with obs.scoped_registry(enabled=False):
            run_experiment(
                ExperimentSpec(**SPEC), ExecutionConfig(engine="lockstep")
            )
            reg = obs.registry()
            assert reg.total("lockstep_kernel_dispatch_total") > 0
            assert reg.total("rmpc_solves_total") > 0
            assert reg.total("lockstep_steps_total") > 0
            # ... but the hot-path span tier stayed off.
            assert reg.snapshot()["spans"] == []


class TestShardedTelemetryMerge:
    def test_jobs2_snapshot_equals_jobs1(self, warm_thermal):
        results = {
            jobs: run_sweep(
                warm_thermal,
                ExecutionConfig(engine="lockstep", jobs=jobs, telemetry=True),
            )
            for jobs in (1, 2)
        }
        assert results[1].telemetry is not None
        assert obs.deterministic_view(
            results[2].telemetry
        ) == obs.deterministic_view(results[1].telemetry)
        # The sharded run's rows stay deterministic too.
        assert results[2].deterministic_rows() == results[1].deterministic_rows()

    def test_worker_death_leaves_deterministic_view_untouched(self):
        def die_on_one(i: int) -> int:
            if i == 1:
                os._exit(1)
            return i

        with obs.scoped_registry(enabled=True) as reg:
            reg.inc("parent_probe_total", 5)
            before = reg.deterministic_snapshot()
            with pytest.raises(RuntimeError):
                fork_map(die_on_one, range(3), jobs=2, backoff=0.0)
            # The dead workers' partial registries never merge; the only
            # trace of the deaths is the supervision counter (the item
            # dies deterministically, so both respawn budget slots were
            # spent), which the deterministic view excludes.
            assert reg.value("parent_probe_total") == 5
            assert reg.value("worker_respawns_total") == 2
            assert set(reg.snapshot()["counters"]) == {
                "parent_probe_total", "worker_respawns_total"
            }
            assert reg.deterministic_snapshot() == before


class TestSolverEffortColumns:
    @pytest.fixture(scope="class")
    def result(self, warm_thermal) -> SweepResult:
        return run_sweep(
            SweepPlan.for_scenarios(["thermal"], **SPEC_KW),
            ExecutionConfig(engine="lockstep"),
        )

    def test_rows_carry_solver_effort(self, result):
        rows = {
            (row["scenario"], row["approach"]): row for row in result.rows()
        }
        baseline = rows[("thermal", "baseline")]
        assert baseline["solve_count"] > 0
        assert (
            baseline["scalar_solves"] + baseline["stacked_solves"]
            == baseline["solve_count"]
        )
        assert baseline["lp_backend_used"] in ("scipy", "highs")
        # Uninstrumented controllers report no effort, not zero effort.
        bang_bang = rows[("thermal", "bang_bang")]
        assert bang_bang["lp_backend_used"] is None

    def test_csv_round_trip_preserves_solver_columns(self, result, tmp_path):
        path = str(tmp_path / "rows.csv")
        result.to_csv(path)
        back = SweepResult.from_csv(path)
        assert back.rows() == result.rows()

    def test_json_round_trip_preserves_solver_and_telemetry(
        self, warm_thermal, tmp_path
    ):
        swept = run_sweep(
            SweepPlan.for_scenarios(["thermal"], **SPEC_KW),
            ExecutionConfig(engine="lockstep", telemetry=True),
        )
        path = str(tmp_path / "sweep.json")
        swept.to_json(path)
        back = SweepResult.from_json(path)
        assert back.rows() == swept.rows()
        assert obs.deterministic_view(
            back.telemetry
        ) == obs.deterministic_view(swept.telemetry)


# ----------------------------------------------------------------------
# Satellite: logging wiring
# ----------------------------------------------------------------------
class TestLogging:
    def test_verbosity_levels(self):
        stream = io.StringIO()
        logger = obs.configure_logging(0, stream=stream)
        assert logger.name == obs.LOGGER_NAMESPACE
        assert logger.level == logging.WARNING
        assert obs.configure_logging(1, stream=stream).level == logging.INFO
        assert obs.configure_logging(2, stream=stream).level == logging.DEBUG

    def test_namespace_logger_emits_through_handler(self):
        stream = io.StringIO()
        obs.configure_logging(1, stream=stream)
        try:
            logging.getLogger("repro.observability.test").info("probe %d", 1)
            assert "INFO repro.observability.test: probe 1" in stream.getvalue()
        finally:
            obs.configure_logging(0)
