#!/usr/bin/env python3
"""The paper's headline experiment (Sec. IV-A) at demo scale.

Builds the ACC case study, trains the double-DQN skipping agent on the
sinusoidal front-vehicle scenario (Eq. 8), and compares three approaches
on paired random cases:

* RMPC-only — the traditional approach (κ_R every step);
* bang-bang — Eq. (7): zero input whenever the state is in X';
* DRL-based opportunistic intermittent control — the paper's method.

Reported: fuel (HBEFA3 surrogate), the formal Σ‖u‖₁ energy, skip rates
and the computation-saving ratio.  Demo scale (short training, few
cases) keeps the run under ~3 minutes; the benchmarks run the full
version.

Run:  python examples/acc_energy_saving.py
"""

import numpy as np

from repro.acc import build_case_study, evaluate_approaches, train_skipping_agent
from repro.framework import computation_saving


def main():
    print("Building ACC case study (RMPC + XI + X')...")
    case = build_case_study()
    print(f"  XI area {case.invariant_set.volume():.0f}, "
          f"X' area {case.strengthened_set.volume():.0f} "
          f"(safe set {case.system.safe_set.volume():.0f})")

    print("Training double-DQN skipping agent (demo scale)...")
    agent, _env, history = train_skipping_agent(
        case, "overall", episodes=120, seed=0
    )
    print(f"  episode return: first 10 {np.mean(history.returns[:10]):.4f}  "
          f"last 10 {np.mean(history.returns[-10:]):.4f}")

    print("Evaluating 12 paired cases x 100 steps...")
    result = evaluate_approaches(
        case, "overall", num_cases=12, horizon=100, seed=1, agent=agent
    )

    print(f"\n{'approach':<12} {'fuel[g]':>8} {'saving':>8} "
          f"{'energy':>8} {'skip%':>6} {'forced':>7}")
    rows = [
        ("RMPC-only", result.rmpc_only, None),
        ("bang-bang", result.bang_bang, "bang_bang"),
        ("DRL", result.drl, "drl"),
    ]
    for name, stats, key in rows:
        saving = "-" if key is None else f"{100*result.fuel_saving(key).mean():.1f}%"
        print(
            f"{name:<12} {stats.fuel.mean():8.2f} {saving:>8} "
            f"{stats.energy.mean():8.1f} {100*stats.skip_rate.mean():5.0f}% "
            f"{stats.forced_steps.mean():7.1f}"
        )

    t_controller = result.rmpc_only.mean_controller_ms / 1e3
    t_monitor = result.drl.mean_monitor_ms / 1e3
    skipped = int(result.drl.skip_rate.mean() * 100)
    saving = computation_saving(t_controller, t_monitor, 100, skipped)
    print(f"\ncomputation: controller {1e3*t_controller:.2f} ms/step vs "
          f"monitor+NN {1e3*t_monitor:.3f} ms/step")
    print(f"computation saving at {skipped} skips/100 steps: {100*saving:.1f}% "
          "(paper: ~60%)")


if __name__ == "__main__":
    main()
