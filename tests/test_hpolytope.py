"""Unit tests for the H-polytope kernel."""

import numpy as np
import pytest

from repro.geometry import HPolytope
from repro.geometry.hpolytope import EmptySetError
from repro.utils.lp import LPError


class TestConstruction:
    def test_from_box_basic(self):
        box = HPolytope.from_box([-1, -2], [3, 4])
        assert box.dim == 2
        assert box.contains([0, 0])
        assert box.contains([3, 4])
        assert not box.contains([3.1, 0])

    def test_from_box_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="lower > upper"):
            HPolytope.from_box([1.0], [0.0])

    def test_from_bounds(self):
        poly = HPolytope.from_bounds([(-1, 1), (0, 2)])
        assert poly.contains([0.0, 1.0])
        assert not poly.contains([0.0, -0.1])

    def test_from_vertices_square(self):
        poly = HPolytope.from_vertices([[0, 0], [1, 0], [1, 1], [0, 1]])
        assert poly.contains([0.5, 0.5])
        assert not poly.contains([1.5, 0.5])

    def test_from_vertices_includes_interior_points(self):
        poly = HPolytope.from_vertices([[0, 0], [2, 0], [0, 2], [0.5, 0.5]])
        # Interior point must not change the hull.
        assert poly.contains([1.0, 0.9])
        assert not poly.contains([1.5, 1.5])

    def test_from_vertices_1d(self):
        poly = HPolytope.from_vertices([[1.0], [3.0], [2.0]])
        lo, hi = poly.bounding_box()
        assert lo[0] == pytest.approx(1.0)
        assert hi[0] == pytest.approx(3.0)

    def test_from_vertices_degenerate_raises(self):
        with pytest.raises(ValueError, match="degenerate"):
            HPolytope.from_vertices([[0, 0], [1, 1], [2, 2]])

    def test_singleton(self):
        point = HPolytope.singleton([1.0, -2.0])
        assert point.contains([1.0, -2.0])
        assert not point.contains([1.0, -1.9])

    def test_rows_normalized(self):
        poly = HPolytope([[2.0, 0.0]], [4.0])
        np.testing.assert_allclose(np.linalg.norm(poly.H, axis=1), 1.0)
        assert poly.h[0] == pytest.approx(2.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="rows"):
            HPolytope([[1.0, 0.0]], [1.0, 2.0])

    def test_trivial_zero_row_dropped(self):
        poly = HPolytope([[0.0, 0.0], [1.0, 0.0]], [5.0, 1.0])
        assert poly.num_constraints == 1

    def test_contradictory_zero_row_raises(self):
        with pytest.raises(ValueError, match="empty by construction"):
            HPolytope([[0.0, 0.0]], [-1.0])


class TestQueries:
    def test_contains_points_vectorised(self, unit_box):
        points = np.array([[0, 0], [2, 0], [0.9, -0.9], [-1.01, 0]])
        result = unit_box.contains_points(points)
        assert list(result) == [True, False, True, False]

    def test_violation_sign(self, unit_box):
        assert unit_box.violation([0, 0]) < 0
        assert unit_box.violation([2, 0]) == pytest.approx(1.0)

    def test_contains_dimension_mismatch(self, unit_box):
        with pytest.raises(ValueError, match="dimension"):
            unit_box.contains([0.0, 0.0, 0.0])

    def test_is_empty_false(self, unit_box):
        assert not unit_box.is_empty()

    def test_is_empty_true(self):
        empty = HPolytope([[1.0], [-1.0]], [-1.0, -1.0])
        assert empty.is_empty()

    def test_is_bounded(self, unit_box):
        assert unit_box.is_bounded()

    def test_is_unbounded_halfplane(self):
        halfplane = HPolytope([[1.0, 0.0]], [1.0])
        assert not halfplane.is_bounded()

    def test_support_box(self, unit_box):
        assert unit_box.support([1.0, 0.0]) == pytest.approx(1.0)
        assert unit_box.support([1.0, 1.0]) == pytest.approx(2.0 / np.sqrt(2) * np.sqrt(2))

    def test_support_point_is_attained(self, triangle):
        direction = np.array([1.0, 0.3])
        point = triangle.support_point(direction)
        assert triangle.contains(point)
        assert direction @ point == pytest.approx(triangle.support(direction))

    def test_support_empty_raises(self):
        empty = HPolytope([[1.0], [-1.0]], [-1.0, -1.0])
        with pytest.raises(LPError):
            empty.support([1.0])

    def test_chebyshev_center_box(self, unit_box):
        center, radius = unit_box.chebyshev_center()
        np.testing.assert_allclose(center, [0.0, 0.0], atol=1e-9)
        assert radius == pytest.approx(1.0)

    def test_chebyshev_radius_negative_for_empty(self):
        # Mildly infeasible set: x <= -1 and x >= 1 in 1-D.
        empty = HPolytope([[1.0], [-1.0]], [-1.0, -1.0])
        _center, radius = empty.chebyshev_center()
        assert radius < 0

    def test_interior_point_inside(self, triangle):
        assert triangle.contains(triangle.interior_point())

    def test_contains_polytope(self, unit_box, small_box):
        assert unit_box.contains_polytope(small_box)
        assert not small_box.contains_polytope(unit_box)

    def test_contains_polytope_itself(self, triangle):
        assert triangle.contains_polytope(triangle)

    def test_equals(self, unit_box):
        clone = HPolytope.from_box([-1, -1], [1, 1])
        assert unit_box.equals(clone)
        assert not unit_box.equals(HPolytope.from_box([-1, -1], [1, 1.1]))


class TestOperations:
    def test_intersect(self, unit_box):
        shifted = unit_box.translate([0.5, 0.0])
        inter = unit_box.intersect(shifted)
        lo, hi = inter.bounding_box()
        np.testing.assert_allclose(lo, [-0.5, -1.0])
        np.testing.assert_allclose(hi, [1.0, 1.0])

    def test_intersect_dim_mismatch(self, unit_box):
        with pytest.raises(ValueError, match="dimension"):
            unit_box.intersect(HPolytope.from_box([-1], [1]))

    def test_translate(self, unit_box):
        moved = unit_box.translate([2.0, 3.0])
        assert moved.contains([2.0, 3.0])
        assert moved.contains([3.0, 4.0])
        assert not moved.contains([0.0, 0.0])

    def test_scale(self, unit_box):
        double = unit_box.scale(2.0)
        assert double.contains([2.0, 2.0])
        assert not double.contains([2.1, 0.0])

    def test_scale_rejects_nonpositive(self, unit_box):
        with pytest.raises(ValueError, match="positive"):
            unit_box.scale(0.0)

    def test_pontryagin_difference_box(self, unit_box, small_box):
        diff = unit_box.pontryagin_difference(small_box)
        lo, hi = diff.bounding_box()
        np.testing.assert_allclose(lo, [-0.5, -0.5])
        np.testing.assert_allclose(hi, [0.5, 0.5])

    def test_pontryagin_difference_definition(self, unit_box, small_box, rng):
        diff = unit_box.pontryagin_difference(small_box)
        for x in diff.sample(rng, 20):
            for w in small_box.vertices():
                assert unit_box.contains(x + w, tol=1e-6)

    def test_minkowski_sum_boxes(self, unit_box, small_box):
        total = unit_box.minkowski_sum(small_box)
        lo, hi = total.bounding_box()
        np.testing.assert_allclose(lo, [-1.5, -1.5])
        np.testing.assert_allclose(hi, [1.5, 1.5])

    def test_minkowski_sum_then_difference_recovers_box(self, unit_box, small_box):
        # For boxes (zonotopes), (P ⊕ Q) ⊖ Q = P exactly.
        result = unit_box.minkowski_sum(small_box).pontryagin_difference(small_box)
        assert result.equals(unit_box, tol=1e-6)

    def test_minkowski_sum_triangle(self, triangle, small_box):
        total = triangle.minkowski_sum(small_box)
        # Vertex sums must be inside.
        for v in triangle.vertices():
            for w in small_box.vertices():
                assert total.contains(v + w, tol=1e-7)

    def test_minkowski_sum_degenerate_flat(self):
        flat = HPolytope.from_box([-1.0, 0.0], [1.0, 0.0])
        other = HPolytope.from_box([-1.0, 0.0], [1.0, 0.0])
        total = flat.minkowski_sum(other)
        lo, hi = total.bounding_box()
        np.testing.assert_allclose(lo, [-2.0, 0.0], atol=1e-9)
        np.testing.assert_allclose(hi, [2.0, 0.0], atol=1e-9)

    def test_linear_preimage_scaling(self, unit_box):
        A = np.diag([2.0, 0.5])
        pre = unit_box.linear_preimage(A)
        lo, hi = pre.bounding_box()
        np.testing.assert_allclose(lo, [-0.5, -2.0])
        np.testing.assert_allclose(hi, [0.5, 2.0])

    def test_linear_preimage_with_offset(self, unit_box):
        pre = unit_box.linear_preimage(np.eye(2), offset=[0.5, 0.0])
        assert pre.contains([0.5, 0.0])
        assert not pre.contains([0.6, 0.0])

    def test_linear_preimage_singular_map(self, unit_box):
        # A x projects onto the first axis: preimage is a slab.
        A = np.array([[1.0, 0.0], [0.0, 0.0]])
        pre = unit_box.linear_preimage(A)
        assert pre.contains([0.5, 100.0])
        assert not pre.contains([1.5, 0.0])

    def test_linear_image_invertible(self, unit_box):
        A = np.array([[1.0, 1.0], [0.0, 1.0]])
        image = unit_box.linear_image(A)
        for v in unit_box.vertices():
            assert image.contains(A @ v, tol=1e-7)
        # Area is preserved for a shear.
        assert image.volume() == pytest.approx(unit_box.volume(), rel=1e-6)

    def test_linear_image_to_1d(self, unit_box):
        image = unit_box.linear_image(np.array([[1.0, 1.0]]))
        lo, hi = image.bounding_box()
        assert lo[0] == pytest.approx(-2.0)
        assert hi[0] == pytest.approx(2.0)

    def test_remove_redundancies(self):
        # The third constraint x <= 2 is implied by x <= 1.
        poly = HPolytope([[1.0, 0], [-1, 0], [1, 0], [0, 1], [0, -1]], [1, 1, 2, 1, 1])
        pruned = poly.remove_redundancies()
        assert pruned.num_constraints == 4
        assert pruned.equals(HPolytope.from_box([-1, -1], [1, 1]))

    def test_bounding_box_triangle(self, triangle):
        lo, hi = triangle.bounding_box()
        np.testing.assert_allclose(lo, [0.0, 0.0], atol=1e-9)
        np.testing.assert_allclose(hi, [2.0, 2.0], atol=1e-9)


class TestVerticesAndSampling:
    def test_vertices_box(self, unit_box):
        verts = unit_box.vertices()
        assert verts.shape == (4, 2)
        expected = {(-1, -1), (-1, 1), (1, -1), (1, 1)}
        got = {tuple(np.round(v, 6)) for v in verts}
        assert got == expected

    def test_vertices_empty_raises(self):
        empty = HPolytope([[1.0], [-1.0]], [-1.0, -1.0])
        with pytest.raises(EmptySetError):
            empty.vertices()

    def test_vertices_cached(self, unit_box):
        first = unit_box.vertices()
        second = unit_box.vertices()
        assert first is second

    def test_sample_inside(self, unit_box, rng):
        samples = unit_box.sample(rng, 200)
        assert samples.shape == (200, 2)
        assert unit_box.contains_points(samples).all()

    def test_sample_thin_set(self, rng):
        thin = HPolytope.from_box([-1.0, -1e-12], [1.0, 1e-12])
        samples = thin.sample(rng, 5)
        assert thin.contains_points(samples, tol=1e-9).all()

    def test_volume_box(self, unit_box):
        assert unit_box.volume() == pytest.approx(4.0)

    def test_volume_triangle(self, triangle):
        assert triangle.volume() == pytest.approx(2.0)


class TestDunders:
    def test_contains_dunder(self, unit_box):
        assert [0.0, 0.0] in unit_box

    def test_and_dunder(self, unit_box, small_box):
        assert (unit_box & small_box).equals(small_box)

    def test_add_polytope(self, unit_box, small_box):
        assert (unit_box + small_box).equals(unit_box.minkowski_sum(small_box))

    def test_add_vector_translates(self, unit_box):
        assert (unit_box + np.array([1.0, 0.0])).contains([2.0, 0.0])

    def test_sub_polytope(self, unit_box, small_box):
        assert (unit_box - small_box).equals(
            unit_box.pontryagin_difference(small_box)
        )

    def test_mul_scales(self, unit_box):
        assert (2.0 * unit_box).contains([2.0, 2.0])

    def test_repr(self, unit_box):
        assert "HPolytope" in repr(unit_box)
