"""Execution configuration for experiments and sweeps.

:class:`ExecutionConfig` separates *what* a sweep computes (the
:class:`~repro.experiments.spec.ExperimentSpec` grid — which fully
determines every deterministic metric) from *how* it is computed:
which per-cell engine advances the episodes, how many worker processes
shard the grid, and which determinism tier MPC solves run under.

Sharding contract (decided in PR 4, recorded in ROADMAP.md): grid cells
are sharded whole — one cell's entire paired batch runs inside one
worker, lockstep inside — so a ``jobs=k`` sweep executes bit-identical
per-cell computations to ``jobs=1`` and only the transport differs.
Cross-*engine* comparisons of RMPC scenarios remain plan-equivalent
(equal optimal cost ≤ 1e-9, feasible inputs, zero violations), not
bitwise; request ``exact_solves=True`` for record-for-record audits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.framework.evaluation import ENGINES
from repro.framework.kernel import KERNELS
from repro.utils.lp_backends import BACKENDS

__all__ = ["ExecutionConfig", "SHARD_STRATEGIES"]

#: Recognised shard strategies (see :attr:`ExecutionConfig.shard`).
SHARD_STRATEGIES = ("auto", "cell", "none")


@dataclass(frozen=True)
class ExecutionConfig:
    """How a sweep's grid cells are executed.

    Attributes:
        engine: Per-cell episode engine — ``"serial"``, ``"parallel"``
            (per-case fork fan-out *inside* one cell) or ``"lockstep"``
            (all cases of one approach advance as a single state matrix;
            the single-core fast path).
        jobs: Worker processes (``0`` = one per CPU).  Under cell
            sharding this is the number of grid-cell workers; under the
            ``"parallel"`` engine it is the per-case fan-out width.
        exact_solves: Lockstep only — keep MPC solves on the scalar path
            for record-for-record parity with the serial engine instead
            of the plan-equivalent stacked solve.
        lp_backend: Lockstep only — stacked-solve backend request
            (``"auto"``: warm-started persistent HiGHS when ``highspy``
            is installed, scipy otherwise; ``"highs"``; ``"scipy"``; see
            :mod:`repro.utils.lp_backends`).  ``None`` (default) keeps
            each controller's own setting.  Deterministic metrics are
            backend-invariant only at the plan-equivalent tier; pass
            ``exact_solves=True`` for bitwise (and trivially
            backend-invariant) audits.
        shard: ``"cell"`` — fan whole grid cells out over
            :func:`repro.utils.parallel.fork_map` workers;
            ``"none"`` — evaluate cells sequentially in-process (``jobs``
            then only feeds the ``"parallel"`` engine);
            ``"auto"`` (default) — ``"cell"`` unless the engine is
            ``"parallel"`` (nesting a per-case fork fan-out inside a
            per-cell fork fan-out is never what you want).
        collect_timing: Lockstep only — maintain the per-row amortised
            wall-clock arrays (the default).  ``False`` zeroes the
            timing-derived metrics and leaves every deterministic metric
            bitwise-unchanged; required for the compiled kernel tier.
        kernel: Lockstep only — compiled-kernel request
            (``"auto"``: numba kernel when importable and the cell is
            eligible, numpy otherwise; ``"numba"``: require it;
            ``"numpy"``: never; see :mod:`repro.framework.kernel`).
            The kernel tier is bitwise, so deterministic metrics are
            kernel-invariant by construction.
        telemetry: Collect full telemetry for the sweep — spans, folded
            stage timings, and a metrics snapshot embedded per
            :class:`~repro.experiments.result.CellResult` and on the
            :class:`~repro.experiments.result.SweepResult`
            (:mod:`repro.observability`).  Hard contract: telemetry
            never touches deterministic record fields, so every metric
            is bitwise-identical with telemetry on or off.  ``False``
            also defers to a globally enabled registry
            (:func:`repro.observability.enable_telemetry`).
    """

    engine: str = "serial"
    jobs: int = 1
    exact_solves: bool = False
    lp_backend: Optional[str] = None
    shard: str = "auto"
    collect_timing: bool = True
    kernel: str = "auto"
    telemetry: bool = False

    def __post_init__(self):
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = one worker per CPU)")
        if self.lp_backend is not None and self.lp_backend not in BACKENDS:
            raise ValueError(
                f"lp_backend must be None or one of {BACKENDS}, "
                f"got {self.lp_backend!r}"
            )
        if self.shard not in SHARD_STRATEGIES:
            raise ValueError(
                f"shard must be one of {SHARD_STRATEGIES}, got {self.shard!r}"
            )
        if self.kernel not in KERNELS:
            raise ValueError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )
        if self.shard == "cell" and self.engine == "parallel":
            raise ValueError(
                "shard='cell' cannot nest the 'parallel' engine's per-case "
                "fork fan-out inside per-cell workers; use engine='serial' "
                "or 'lockstep' for sharded sweeps"
            )

    def resolved_shard(self) -> str:
        """The effective strategy: ``"auto"`` → cell unless parallel."""
        if self.shard != "auto":
            return self.shard
        return "none" if self.engine == "parallel" else "cell"
