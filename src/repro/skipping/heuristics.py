"""Simple skipping heuristics used as baselines and ablations.

The bang-bang scheme of the paper's Eq. (7) is
:class:`repro.skipping.base.AlwaysSkipPolicy` (skip whenever allowed);
this module adds periodic and randomised policies, plus a threshold
policy that skips only when the state is comfortably inside ``X'`` —
useful ablations when quantifying how much the learning actually buys.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry import HPolytope
from repro.skipping.base import RUN, SKIP, DecisionContext, SkippingPolicy

__all__ = ["PeriodicSkipPolicy", "RandomSkipPolicy", "MarginThresholdPolicy"]


class PeriodicSkipPolicy(SkippingPolicy):
    """Run the controller every ``period``-th step, skip otherwise.

    A weakly-hard-style (1, period) pattern: deterministic, context-blind.
    """

    stateless = True
    wants_context = False

    def __init__(self, period: int, offset: int = 0):
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = int(period)
        self.offset = int(offset)

    def decide(self, context: DecisionContext) -> int:
        return RUN if (context.time + self.offset) % self.period == 0 else SKIP

    def decide_batch(self, contexts) -> np.ndarray:
        times = np.array([context.time for context in contexts], dtype=int)
        return np.where((times + self.offset) % self.period == 0, RUN, SKIP)

    def decide_batch_at(self, time: int, count: int) -> np.ndarray:
        choice = RUN if (time + self.offset) % self.period == 0 else SKIP
        return np.full(count, choice, dtype=int)


class RandomSkipPolicy(SkippingPolicy):
    """Skip with probability ``skip_probability`` i.i.d. per step."""

    def __init__(self, skip_probability: float, rng: np.random.Generator):
        if not 0.0 <= skip_probability <= 1.0:
            raise ValueError("skip_probability must be in [0, 1]")
        self.skip_probability = float(skip_probability)
        self.rng = rng

    def decide(self, context: DecisionContext) -> int:
        return SKIP if self.rng.random() < self.skip_probability else RUN


class MarginThresholdPolicy(SkippingPolicy):
    """Skip only when the state sits at least ``margin`` inside ``X'``.

    The margin is the most-violated-constraint slack
    ``min_i (h_i − a_i·x)`` of the strengthened set's H-representation
    (rows are unit-norm, so the slack is a Euclidean distance bound).
    """

    stateless = True

    def __init__(self, strengthened_set: HPolytope, margin: float):
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.strengthened_set = strengthened_set
        self.margin = float(margin)

    def decide(self, context: DecisionContext) -> int:
        slack = -self.strengthened_set.violation(context.state)
        return SKIP if slack >= self.margin else RUN

    def decide_batch(self, contexts) -> np.ndarray:
        if not len(contexts):
            return np.zeros(0, dtype=int)
        states = np.array([context.state for context in contexts], dtype=float)
        slack = -self.strengthened_set.violation_batch(states)
        return np.where(slack >= self.margin, SKIP, RUN)
