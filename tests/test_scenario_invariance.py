"""Invariance synthesis on non-ACC plants (1-D and 3-D), including the
degenerate no-RCI case the scenario builder must surface as a clear error.

The library's certificates were exercised almost exclusively on the
paper's 2-D ACC model; the scenario zoo feeds them arbitrary dimensions,
so these tests pin the behaviour at the dimensional extremes the zoo
actually uses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import HPolytope
from repro.invariance.rci import is_rci, maximal_rci
from repro.invariance.reach import strengthened_safe_set
from repro.scenarios import ScenarioSpec, ScenarioSynthesisError, build_case_study
from repro.systems import DiscreteLTISystem


def one_d_system(a=0.9, b=0.05, w=0.1) -> DiscreteLTISystem:
    return DiscreteLTISystem(
        [[a]],
        [[b]],
        HPolytope.from_box([-2.0], [2.0]),
        HPolytope.from_box([-15.0], [15.0]),
        HPolytope.from_box([-w], [w]),
    )


def three_d_system() -> DiscreteLTISystem:
    """Stable 3-D chain (discretized DC-motor-like dynamics)."""
    A = np.array(
        [
            [1.0, 0.05, 0.0],
            [0.0, 0.5, 0.05],
            [0.0, -0.001, 0.9],
        ]
    )
    B = np.array([[0.0], [0.0], [0.1]])
    return DiscreteLTISystem(
        A,
        B,
        HPolytope.from_box([-1.0, -2.0, -5.0], [1.0, 2.0, 5.0]),
        HPolytope.from_box([-12.0], [12.0]),
        HPolytope.from_box([-0.002, -0.01, -0.01], [0.002, 0.01, 0.01]),
    )


class TestOneDimensional:
    def test_maximal_rci_is_certified(self):
        system = one_d_system()
        result = maximal_rci(
            system.A,
            system.B,
            system.safe_set,
            system.input_set,
            system.disturbance_set,
        )
        assert result.converged
        assert is_rci(
            system.A,
            system.B,
            result.invariant_set,
            system.input_set,
            system.disturbance_set,
            tol=1e-6,
        )
        # Ample input authority: the whole safe interval is invariant.
        assert result.invariant_set.equals(system.safe_set, tol=1e-6)

    def test_strengthened_set_truncates_against_drift(self):
        system = one_d_system()
        xi = maximal_rci(
            system.A,
            system.B,
            system.safe_set,
            system.input_set,
            system.disturbance_set,
        ).invariant_set
        # Skip input pushing up by B*u = 0.5 per step: the top of XI can
        # no longer skip safely, the bottom still can.
        strengthened = strengthened_safe_set(system, xi, skip_input=[10.0])
        assert xi.contains_polytope(strengthened)
        assert not strengthened.is_empty()
        assert not strengthened.equals(xi, tol=1e-6)
        lo, hi = strengthened.bounding_box()
        # max x with 0.9x + 0.5 + 0.1 <= 2  =>  x <= 1.5555...
        assert hi[0] == pytest.approx((2.0 - 0.6) / 0.9, abs=1e-6)
        assert lo[0] == pytest.approx(-2.0, abs=1e-6)

    def test_degenerate_no_rci_raises(self):
        # x+ = 2x + u + w with |u| <= 0.5, |w| <= 2: the disturbance
        # overwhelms the input on all of X, no RCI subset exists.
        system = DiscreteLTISystem(
            [[2.0]],
            [[1.0]],
            HPolytope.from_box([-1.0], [1.0]),
            HPolytope.from_box([-0.5], [0.5]),
            HPolytope.from_box([-2.0], [2.0]),
        )
        with pytest.raises(ValueError, match="no robust control invariant"):
            maximal_rci(
                system.A,
                system.B,
                system.safe_set,
                system.input_set,
                system.disturbance_set,
            )


class TestThreeDimensional:
    def test_maximal_rci_certified_in_3d(self):
        system = three_d_system()
        result = maximal_rci(
            system.A,
            system.B,
            system.safe_set,
            system.input_set,
            system.disturbance_set,
            max_iterations=30,
        )
        invariant = result.invariant_set
        assert not invariant.is_empty()
        assert system.safe_set.contains_polytope(invariant, tol=1e-6)
        assert is_rci(
            system.A,
            system.B,
            invariant,
            system.input_set,
            system.disturbance_set,
            tol=1e-6,
        )

    def test_strengthened_set_nested_in_3d(self):
        system = three_d_system()
        invariant = maximal_rci(
            system.A,
            system.B,
            system.safe_set,
            system.input_set,
            system.disturbance_set,
            max_iterations=30,
        ).invariant_set
        strengthened = strengthened_safe_set(system, invariant)
        assert not strengthened.is_empty()
        assert invariant.contains_polytope(strengthened)
        # Zero-input drift from deep inside X' stays within XI for every
        # disturbance vertex (the content of Theorem 1's skip branch).
        center, _ = strengthened.chebyshev_center()
        for w_vertex in system.disturbance_set.vertices():
            nxt = system.step(center, np.zeros(1), w_vertex)
            assert invariant.contains(nxt, tol=1e-7)


class TestBuilderDegenerateSurface:
    def test_builder_raises_clear_error_not_empty_polytope(self):
        spec = ScenarioSpec(
            name="overwhelmed",
            A=[[2.0]],
            B=[[1.0]],
            safe_set=HPolytope.from_box([-1.0], [1.0]),
            input_set=HPolytope.from_box([-0.5], [0.5]),
            disturbance_set=HPolytope.from_box([-2.0], [2.0]),
            controller="rmpc",
            horizon=3,
        )
        with pytest.raises(ScenarioSynthesisError) as excinfo:
            build_case_study(spec, use_cache=False)
        message = str(excinfo.value)
        assert "overwhelmed" in message
        assert "failed" in message

    def test_builder_linear_recipe_degenerate_also_raises(self):
        spec = ScenarioSpec(
            name="overwhelmed_linear",
            A=[[2.0]],
            B=[[1.0]],
            safe_set=HPolytope.from_box([-1.0], [1.0]),
            input_set=HPolytope.from_box([-0.5], [0.5]),
            disturbance_set=HPolytope.from_box([-2.0], [2.0]),
            controller="linear",
        )
        with pytest.raises(ScenarioSynthesisError, match="overwhelmed_linear"):
            build_case_study(spec, use_cache=False)
