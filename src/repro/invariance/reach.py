"""Robust backward reachable sets (Definition 2) and the strengthened
safe set (Definition 3).

For the skipping framework only two one-step backward maps matter:

* ``B(Y, 0)`` — the set of states from which applying the *skip input*
  keeps the system inside ``Y`` for every disturbance;
* ``B(Y, 1)`` — same under the safe controller κ.  For linear feedback
  this is polytopic; for a general κ (e.g. RMPC) the robust control
  invariant set itself already certifies ``XI ⊆ B(XI, 1)``, so the
  framework never needs the exact ``B(Y, 1)``.

The strengthened safe set is ``X' = B(XI, 0) ∩ XI`` (Eq. 4).  States in
``X'`` may freely skip: both choices land inside ``XI`` next step, which
is the content of the paper's Theorem 1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry import HPolytope
from repro.invariance.pre import pre_autonomous, pre_fixed_input
from repro.systems.lti import DiscreteLTISystem
from repro.utils.validation import as_matrix, as_vector

__all__ = [
    "backward_reachable_zero",
    "backward_reachable_feedback",
    "strengthened_safe_set",
    "k_step_strengthened_sets",
]


def backward_reachable_zero(
    system: DiscreteLTISystem,
    target: HPolytope,
    skip_input=None,
) -> HPolytope:
    """``B(target, z=0)``: robust one-step predecessor under the skip input.

    The paper uses the literal zero input and the formula
    ``A⁻¹(target ⊖ W)``; this implementation is the invertibility-free
    generalisation ``{x : A x + B u_skip ⊕ W ⊆ target}`` with
    ``u_skip = 0`` by default.
    """
    if skip_input is None:
        skip_input = np.zeros(system.m)
    return pre_fixed_input(
        system.A, system.B, skip_input, target, system.disturbance_set
    )


def backward_reachable_feedback(
    system: DiscreteLTISystem, target: HPolytope, K
) -> HPolytope:
    """``B(target, z=1)`` for linear feedback ``κ(x) = K x`` (exact)."""
    M = system.closed_loop_matrix(as_matrix(K, "K"))
    return pre_autonomous(M, target, system.disturbance_set)


def strengthened_safe_set(
    system: DiscreteLTISystem,
    invariant_set: HPolytope,
    skip_input=None,
) -> HPolytope:
    """Strengthened safe set ``X' = B(XI, 0) ∩ XI`` (Definition 3).

    Args:
        system: The constrained plant.
        invariant_set: A robust (control) invariant set ``XI`` of the
            underlying safe controller.  Invariance is the caller's
            responsibility (use :mod:`repro.invariance.rci` certificates).
        skip_input: The constant input applied when skipping (default 0).

    Returns:
        The polytope ``X'``, irredundant.
    """
    reach = backward_reachable_zero(system, invariant_set, skip_input)
    return reach.intersect(invariant_set).remove_redundancies()


def k_step_strengthened_sets(
    system: DiscreteLTISystem,
    invariant_set: HPolytope,
    depth: int,
    skip_input=None,
) -> list:
    """Nested sets allowing ``k`` consecutive guaranteed skips.

    ``S_1 = X'`` as in the paper; ``S_{k+1} = B(S_k, 0) ∩ S_k`` is the set
    of states from which ``k+1`` consecutive zero inputs provably stay in
    ``XI``.  This extends the paper's one-step construction and powers the
    multi-skip ablation bench.

    Returns:
        List ``[S_1, …, S_depth]`` (each a subset of its predecessor).
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    sets = [strengthened_safe_set(system, invariant_set, skip_input)]
    for _ in range(depth - 1):
        previous = sets[-1]
        reach = backward_reachable_zero(system, previous, skip_input)
        sets.append(reach.intersect(previous).remove_redundancies())
    return sets
