"""Adaptive cruise control model of the paper's Sec. IV.

Raw dynamics (forward-Euler, period δ):

    s(t+1) = s(t) − (v(t) − v_f(t)) δ          (relative distance)
    v(t+1) = v(t) − (k v(t) − u(t)) δ           (ego velocity, drag k)

with the paper's numbers δ = 0.1, k = 0.2, s ∈ [120, 180], v ∈ [25, 55],
u ∈ [−40, 40], v_f ∈ [30, 50].

The formal framework (Eq. 1–2) requires the origin inside every
constraint set, so the model shifts to the cruising equilibrium

    s_e = 150,  v_e = 40,  u_e = k v_e = 8:
    x̃ = (s − s_e, v − v_e),  ũ = u − u_e,  w̃ = (δ (v_f − v_e), 0).

The paper's skipping applies a *zero control input* — zero actuation.
In raw coordinates that is ``u = 0`` (coasting: the engine idles and the
drag term decelerates the vehicle), which in shifted coordinates is the
constant ``ũ = −u_e``.  The framework's backward reachable set
``B(Y, 0)`` takes this skip input explicitly, so the strengthened safe
set correctly accounts for the coast-down.  ``ACCParameters.skip_mode``
selects ``"coast"`` (the paper's zero input, default) or ``"trim"``
(hold the equilibrium input — a softer skipping variant kept for
ablations).  The Problem-1 energy Σ‖u‖₁ is measured on raw commands,
where skipping genuinely costs zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry import HPolytope
from repro.systems.lti import DiscreteLTISystem
from repro.utils.validation import as_vector

__all__ = ["ACCParameters", "build_acc_system", "ACCCoordinates"]


@dataclass(frozen=True)
class ACCParameters:
    """All numeric constants of the ACC case study (paper Sec. IV).

    Attributes:
        delta: Sampling / control period δ.
        drag: Velocity drag coefficient k.
        s_range: Safe relative-distance interval.
        v_range: Ego velocity limits.
        u_range: Actuation limits.
        vf_range: Front-vehicle velocity range (defines W).
        horizon: RMPC prediction horizon N.
        state_weight: RMPC stage weight P.
        input_weight: RMPC stage weight Q.
        skip_mode: ``"coast"`` — skipping applies raw u = 0 (the paper's
            zero control input); ``"trim"`` — skipping holds the
            equilibrium input u_e (ablation variant).
    """

    delta: float = 0.1
    drag: float = 0.2
    s_range: tuple = (120.0, 180.0)
    v_range: tuple = (25.0, 55.0)
    u_range: tuple = (-40.0, 40.0)
    vf_range: tuple = (30.0, 50.0)
    horizon: int = 10
    state_weight: float = 1.0
    input_weight: float = 1.0
    skip_mode: str = "coast"

    def __post_init__(self):
        if self.skip_mode not in ("coast", "trim"):
            raise ValueError("skip_mode must be 'coast' or 'trim'")

    @property
    def s_ref(self) -> float:
        """Equilibrium relative distance (mid-range)."""
        return 0.5 * (self.s_range[0] + self.s_range[1])

    @property
    def v_ref(self) -> float:
        """Equilibrium ego velocity = nominal front velocity (mid-range)."""
        return 0.5 * (self.vf_range[0] + self.vf_range[1])

    @property
    def u_trim(self) -> float:
        """Trim input holding v_ref against drag: u_e = k v_e."""
        return self.drag * self.v_ref

    @property
    def A(self) -> np.ndarray:
        """Shifted-coordinate state matrix."""
        return np.array([[1.0, -self.delta], [0.0, 1.0 - self.drag * self.delta]])

    @property
    def B(self) -> np.ndarray:
        """Shifted-coordinate input matrix."""
        return np.array([[0.0], [self.delta]])

    @property
    def w_bound(self) -> float:
        """Half-width of the shifted disturbance: δ · (vf half-range)."""
        return self.delta * 0.5 * (self.vf_range[1] - self.vf_range[0])

    @property
    def skip_input_shifted(self) -> np.ndarray:
        """The skip input in shifted coordinates.

        ``"coast"`` → ``ũ = −u_e`` (raw u = 0, zero actuation);
        ``"trim"`` → ``ũ = 0`` (hold u_e).
        """
        if self.skip_mode == "coast":
            return np.array([-self.u_trim])
        return np.array([0.0])


@dataclass(frozen=True)
class ACCCoordinates:
    """Coordinate transforms between raw ACC variables and the shifted
    LTI coordinates used by the formal framework."""

    params: ACCParameters

    def to_shifted(self, s, v) -> np.ndarray:
        """Raw ``(s, v)`` → shifted state ``x̃``."""
        p = self.params
        return np.array([float(s) - p.s_ref, float(v) - p.v_ref])

    def from_shifted(self, state) -> tuple:
        """Shifted state ``x̃`` → raw ``(s, v)``."""
        x = as_vector(state, "state")
        p = self.params
        return float(x[0] + p.s_ref), float(x[1] + p.v_ref)

    def input_to_shifted(self, u) -> np.ndarray:
        """Raw input ``u`` → shifted ``ũ = u − u_e``."""
        return np.array([float(u) - self.params.u_trim])

    def input_from_shifted(self, u_shifted) -> float:
        """Shifted ``ũ`` → raw ``u``."""
        u = as_vector(u_shifted, "u_shifted")
        return float(u[0] + self.params.u_trim)

    def disturbance_from_vf(self, vf_sequence) -> np.ndarray:
        """Front-velocity trace → shifted disturbance sequence ``(T, 2)``.

        ``w̃(t) = (δ (v_f(t) − v_ref), 0)`` — only the distance state is
        disturbed.
        """
        vf = np.asarray(vf_sequence, dtype=float).reshape(-1)
        p = self.params
        w = np.zeros((vf.size, 2))
        w[:, 0] = p.delta * (vf - p.v_ref)
        return w


def build_acc_system(params: ACCParameters = ACCParameters()) -> DiscreteLTISystem:
    """Construct the shifted-coordinate constrained LTI plant.

    Returns:
        A :class:`DiscreteLTISystem` with
        ``X = [s_range − s_ref] × [v_range − v_ref]``,
        ``U = [u_range − u_trim]`` and ``W = [±w_bound] × {0}``.
    """
    p = params
    safe = HPolytope.from_box(
        [p.s_range[0] - p.s_ref, p.v_range[0] - p.v_ref],
        [p.s_range[1] - p.s_ref, p.v_range[1] - p.v_ref],
    )
    inputs = HPolytope.from_box(
        [p.u_range[0] - p.u_trim], [p.u_range[1] - p.u_trim]
    )
    disturbance = HPolytope.from_box([-p.w_bound, 0.0], [p.w_bound, 0.0])
    return DiscreteLTISystem(p.A, p.B, safe, inputs, disturbance)
