"""Minimal robust positively invariant (mRPI) set approximation.

Implements the construction the paper cites for linear feedback
controllers (Sec. III-A, citing Raković et al. 2005):

    XI = α · (W ⊕ A_K W ⊕ … ⊕ A_K^{n-1} W),

where ``A_K = A + B K`` is the (Schur-stable) closed loop.  The scalar
``α = 1 / (1 − ε)`` inflates the truncated series so that the result is an
invariant *outer* approximation of the true minimal RPI set, where ``ε``
satisfies ``A_K^n W ⊆ ε W``.

The disturbance sets of interest are frequently flat (the ACC disturbance
only enters the distance state), which makes the containment
``A_K^n W ⊆ ε W`` unsatisfiable; :func:`mrpi_approximation` therefore
optionally bloats ``W`` by a small full-dimensional box first — the result
is still a valid RPI outer approximation for the original ``W``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry import HPolytope, matrix_power_sum
from repro.utils.validation import as_matrix

__all__ = ["mrpi_approximation", "contraction_factor"]


def contraction_factor(M, disturbance: HPolytope, order: int) -> float:
    """Smallest ``ε`` with ``M^order · W ⊆ ε · W`` (∞ if impossible).

    Computed facet-wise through support functions:
    ``ε = max_i h_{M^s W}(a_i) / h_W(a_i)`` over the facets ``(a_i, h_i)``
    of ``W``.  Requires ``0 ∈ int(W)`` (all offsets positive) — otherwise
    returns ``inf`` and the caller should bloat ``W``.
    """
    M = as_matrix(M, "M")
    power = np.linalg.matrix_power(M, order)
    if np.any(disturbance.h <= 1e-12):
        return float("inf")
    ratios = []
    for a, b in zip(disturbance.H, disturbance.h):
        # h_{M^s W}(a) = h_W((M^s)^T a).
        ratios.append(disturbance.support(power.T @ a) / b)
    return float(max(ratios))


def mrpi_approximation(
    M,
    disturbance: HPolytope,
    order: int = 10,
    epsilon: Optional[float] = None,
    bloat: float = 0.0,
) -> HPolytope:
    """Invariant outer approximation of the minimal RPI set of
    ``x⁺ = M x + w``.

    Args:
        M: Schur-stable closed-loop matrix (``A + B K``).
        disturbance: Disturbance polytope ``W`` (0 ∈ W).
        order: Truncation order ``n`` of the Minkowski series (the paper's
            hyper-parameter ``n``).
        epsilon: Contraction factor; computed automatically when None.
            The inflation is ``α = 1 / (1 − ε)``; ``ε`` must be < 1, which
            holds for stable ``M`` and large enough ``order``.
        bloat: Bloat radius added to ``W`` before the computation (needed
            when ``W`` is flat; the result remains RPI for the original W).

    Returns:
        The inflated truncated sum ``α (W' ⊕ … ⊕ M^{order-1} W')``.

    Raises:
        ValueError: If no valid ``ε < 1`` exists at this order (increase
            ``order`` or ``bloat``).
    """
    M = as_matrix(M, "M")
    W = disturbance
    if bloat > 0:
        # Unit-norm rows: offset bloat is Minkowski sum with a ball.
        W = HPolytope(W.H, W.h + bloat, normalize=False)
    if epsilon is None:
        epsilon = contraction_factor(M, W, order)
    if not np.isfinite(epsilon) or epsilon >= 1.0:
        raise ValueError(
            f"contraction factor {epsilon!r} >= 1 at order {order}; "
            "increase order, or bloat a flat disturbance set"
        )
    truncated = matrix_power_sum(M, W, order)
    alpha = 1.0 / (1.0 - epsilon)
    return truncated.scale(alpha)
