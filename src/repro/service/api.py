"""Stdlib-only HTTP front of the experiment service.

A thin JSON layer over :class:`~repro.service.jobs.JobManager` — no
framework, no third-party dependency, just
:class:`http.server.ThreadingHTTPServer`:

====== ============================== ===================================
Method Path                           Meaning
====== ============================== ===================================
POST   ``/v1/sweeps``                 Submit a plan payload → ``202`` +
                                      job status (``id`` inside).
GET    ``/v1/sweeps``                 All jobs' statuses, submit order.
GET    ``/v1/sweeps/{id}``            One job's status + progress.
GET    ``/v1/sweeps/{id}/rows``       Completed rows from ``?cursor=N``
                                      (poll-from-cursor streaming).
GET    ``/v1/sweeps/{id}/result``     Full ``SweepResult`` payload
                                      (``409`` until the job is done).
POST   ``/v1/sweeps/{id}/cancel``     Request cancellation.
GET    ``/v1/store/stats``            Shared result-store statistics.
GET    ``/v1/health``                 Liveness probe.
====== ============================== ===================================

Responses are always JSON; errors are ``{"error": "..."}`` with a 4xx
status.  The handler threads only read job state through each job's
lock — execution stays on the manager's single executor thread — so a
slow poller can never block a sweep.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.service.jobs import JobManager

__all__ = ["ServiceServer", "serve"]

logger = logging.getLogger(__name__)

#: Submission payloads larger than this are rejected outright (a plan
#: is a few KB of declarative JSON; anything bigger is a client bug).
_MAX_BODY = 8 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    @property
    def manager(self) -> JobManager:
        return self.server.manager

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        logger.debug("service: %s", format % args)

    def _send(self, status: int, payload) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def _read_json(self):
        length = int(self.headers.get("Content-Length", 0))
        if length > _MAX_BODY:
            raise ValueError(f"request body over {_MAX_BODY} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw or b"null")
        except ValueError:
            raise ValueError("request body is not valid JSON") from None

    def _job(self, job_id: str):
        try:
            return self.manager.get(job_id)
        except KeyError:
            self._error(404, f"unknown job {job_id!r}")
            return None

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if parts == ["v1", "health"]:
                self._send(200, {"status": "ok"})
            elif parts == ["v1", "store", "stats"]:
                self._send(200, self.manager.store.stats())
            elif parts == ["v1", "sweeps"]:
                self._send(
                    200,
                    {"jobs": [job.status() for job in self.manager.jobs()]},
                )
            elif len(parts) == 3 and parts[:2] == ["v1", "sweeps"]:
                job = self._job(parts[2])
                if job is not None:
                    self._send(200, job.status())
            elif (
                len(parts) == 4
                and parts[:2] == ["v1", "sweeps"]
                and parts[3] in ("rows", "result")
            ):
                job = self._job(parts[2])
                if job is None:
                    return
                if parts[3] == "rows":
                    query = parse_qs(url.query)
                    cursor = int(query.get("cursor", ["0"])[0])
                    rows, new_cursor = job.rows_since(cursor)
                    self._send(
                        200,
                        {
                            "rows": rows,
                            "cursor": new_cursor,
                            "state": job.state,
                        },
                    )
                elif job.state != "done":
                    self._error(
                        409,
                        f"job {job.id} is {job.state}; the result exists "
                        "only once it is done",
                    )
                else:
                    self._send(200, job.result.to_payload())
            else:
                self._error(404, f"no route for GET {url.path}")
        except Exception as exc:  # noqa: BLE001 — handler isolation
            logger.exception("service: GET %s failed", self.path)
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if parts == ["v1", "sweeps"]:
                try:
                    payload = self._read_json()
                    job = self.manager.submit(payload)
                except (ValueError, RuntimeError) as exc:
                    self._error(400, str(exc))
                    return
                self._send(202, job.status())
            elif (
                len(parts) == 4
                and parts[:2] == ["v1", "sweeps"]
                and parts[3] == "cancel"
            ):
                job = self._job(parts[2])
                if job is not None:
                    cancelled = job.cancel()
                    self._send(
                        200, {"cancelled": cancelled, **job.status()}
                    )
            else:
                self._error(404, f"no route for POST {url.path}")
        except Exception as exc:  # noqa: BLE001 — handler isolation
            logger.exception("service: POST %s failed", self.path)
            self._error(500, f"{type(exc).__name__}: {exc}")


class ServiceServer(ThreadingHTTPServer):
    """The experiment service's HTTP server, bound to one job manager.

    Args:
        manager: The job manager (and hence store) to expose.
        host: Bind address.
        port: TCP port; 0 picks an ephemeral port (read :attr:`port`).
    """

    daemon_threads = True

    def __init__(self, manager: JobManager, host: str = "127.0.0.1",
                 port: int = 0):
        super().__init__((host, port), _Handler)
        self.manager = manager

    @property
    def port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the bound server."""
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def close(self) -> None:
        """Stop serving and shut the job executor down."""
        self.shutdown()
        self.server_close()
        self.manager.shutdown()


def serve(store, host: str = "127.0.0.1", port: int = 0) -> ServiceServer:
    """Build a server over ``store`` (a directory or ``ResultStore``).

    The caller drives it: ``serve_forever()`` to block (the CLI), or a
    background thread + :meth:`ServiceServer.close` (the tests).
    """
    return ServiceServer(JobManager(store), host=host, port=port)
