"""Cross-scenario Table-I-style sweeps.

:func:`evaluate_scenario` runs the paired approach comparison — the
κ-every-step baseline against monitored skipping policies — on *any*
built case study, reporting the scenario-agnostic metrics (Problem-1
energy, skip rate, monitor-forced steps, worst safe-set violation,
wall-clock).  :func:`sweep_scenarios` maps it over the registry, giving
every future feature an N-scenario workload instead of an ACC-only one.

The ACC-specific comparison (fuel meter, DRL agent, front-vehicle
patterns) stays in :func:`repro.acc.experiments.evaluate_approaches`;
both are clients of :func:`repro.framework.evaluation.paired_evaluation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.framework.accounting import RunStats
from repro.framework.evaluation import paired_evaluation
from repro.scenarios.builder import CaseStudy
from repro.scenarios import registry
from repro.skipping.base import AlwaysSkipPolicy, SkippingPolicy
from repro.skipping.heuristics import PeriodicSkipPolicy

__all__ = [
    "ScenarioApproachStats",
    "ScenarioComparison",
    "default_policies",
    "evaluate_scenario",
    "sweep_scenarios",
]


@dataclass
class ScenarioApproachStats:
    """Per-case metrics of one approach on one scenario.

    Attributes:
        energy: Σ‖u‖₁ per case (Problem-1 objective).
        skip_rate: Fraction of skipped steps per case.
        forced_steps: Monitor-forced steps per case.
        max_violation: Worst safe-set violation per case (≤ 0 ⇔ the
            whole trajectory stayed inside ``X``).
        mean_controller_ms: Mean κ wall-clock per invocation [ms].
        mean_monitor_ms: Mean monitor+Ω wall-clock per step [ms].
    """

    energy: np.ndarray
    skip_rate: np.ndarray
    forced_steps: np.ndarray
    max_violation: np.ndarray
    mean_controller_ms: float
    mean_monitor_ms: float


@dataclass
class ScenarioComparison:
    """Paired comparison of approaches on one scenario.

    All per-case arrays are aligned: case ``i`` saw the same initial
    state and disturbance realisation under every approach.
    """

    scenario: str
    baseline: ScenarioApproachStats
    approaches: Dict[str, ScenarioApproachStats]

    def stats(self, approach: str) -> ScenarioApproachStats:
        """Stats by name (``"baseline"`` or a policy name)."""
        if approach == "baseline":
            return self.baseline
        try:
            return self.approaches[approach]
        except KeyError:
            known = ", ".join(sorted(self.approaches)) or "<none>"
            raise ValueError(
                f"unknown approach {approach!r}; evaluated: baseline, {known}"
            ) from None

    def energy_saving(self, approach: str) -> np.ndarray:
        """Per-case fractional Σ‖u‖₁ saving vs the baseline (0/0 → 0)."""
        stats = self.stats(approach)
        base = self.baseline.energy
        out = np.zeros_like(base)
        nonzero = base > 1e-12
        out[nonzero] = (base[nonzero] - stats.energy[nonzero]) / base[nonzero]
        return out

    @property
    def always_safe(self) -> bool:
        """True iff no approach ever left the safe set in any case."""
        all_stats = [self.baseline, *self.approaches.values()]
        return all(float(s.max_violation.max()) <= 0.0 for s in all_stats)


def default_policies(case: CaseStudy) -> Dict[str, SkippingPolicy]:
    """The standard heuristic approach set for Table-I-style sweeps.

    Bang-bang (Eq. 7: skip whenever the monitor allows) plus a periodic
    (1, 2) pattern — both stateless, so every engine can run them.
    """
    return {
        "bang_bang": AlwaysSkipPolicy(),
        "periodic2": PeriodicSkipPolicy(2),
    }


def _metrics_of(case: CaseStudy) -> Callable[[RunStats], tuple]:
    safe_set = case.system.safe_set

    def metrics(stats: RunStats) -> tuple:
        return (
            case.energy_of_run(stats),
            stats.skip_rate,
            stats.forced_steps,
            stats.max_violation(safe_set),
            1e3 * stats.mean_controller_time,
            1e3 * stats.mean_monitor_time,
        )

    return metrics


def _finalize(rows: List[tuple]) -> ScenarioApproachStats:
    columns = list(zip(*rows))
    return ScenarioApproachStats(
        energy=np.array(columns[0]),
        skip_rate=np.array(columns[1]),
        forced_steps=np.array(columns[2]),
        max_violation=np.array(columns[3]),
        mean_controller_ms=float(np.mean(columns[4])),
        mean_monitor_ms=float(np.mean(columns[5])),
    )


def evaluate_scenario(
    case: CaseStudy,
    policies: Optional[Dict[str, SkippingPolicy]] = None,
    num_cases: int = 16,
    horizon: int = 50,
    seed: int = 1,
    memory_length: int = 1,
    engine: str = "serial",
    jobs: int = 1,
    exact_solves: bool = False,
) -> ScenarioComparison:
    """Paired baseline-vs-policies comparison on one case study.

    Each case draws an initial state in ``X'`` and one i.i.d. disturbance
    realisation from the scenario's disturbance factory; every approach
    sees the identical realisation.

    Args:
        case: A built scenario case study.
        policies: Name → stateless policy; defaults to
            :func:`default_policies`.
        num_cases: Evaluation cases per approach.
        horizon: Steps per case.
        seed: Root seed for initial states and realisations.
        memory_length: Disturbance-history window ``r``.
        engine: ``"serial"``, ``"parallel"`` or ``"lockstep"``.
        jobs: Workers for the parallel engine.
        exact_solves: Lockstep only — scalar solves for non-bitwise
            controllers (RMPC scenarios), trading the stacked-LP speedup
            for record-for-record parity with the serial engine.

    Returns:
        A :class:`ScenarioComparison` for this scenario.
    """
    if num_cases < 1:
        raise ValueError("num_cases must be >= 1")
    if policies is None:
        policies = default_policies(case)
    if "baseline" in policies:
        raise ValueError("'baseline' names the κ-every-step reference leg")
    rng = np.random.default_rng(seed)
    initial_states = case.sample_initial_states(rng, num_cases)
    factory = case.disturbance_factory(horizon)
    realisations = [
        factory(i, np.random.default_rng(child))
        for i, child in enumerate(np.random.SeedSequence(seed).spawn(num_cases))
    ]

    approaches: Dict[str, Optional[SkippingPolicy]] = {"baseline": None}
    approaches.update(policies)
    collected = paired_evaluation(
        case.system,
        case.controller,
        lambda: case.make_monitor(strict=True),
        approaches,
        initial_states,
        realisations,
        _metrics_of(case),
        skip_input=case.skip_input,
        memory_length=memory_length,
        engine=engine,
        jobs=jobs,
        exact_solves=exact_solves,
    )
    return ScenarioComparison(
        scenario=case.name,
        baseline=_finalize(collected["baseline"]),
        approaches={
            name: _finalize(collected[name]) for name in policies
        },
    )


def sweep_scenarios(
    names: Optional[Sequence[str]] = None,
    num_cases: int = 8,
    horizon: int = 50,
    seed: int = 1,
    engine: str = "serial",
    jobs: int = 1,
    exact_solves: bool = False,
    policies_factory: Optional[Callable[[CaseStudy], Dict[str, SkippingPolicy]]] = None,
) -> List[ScenarioComparison]:
    """Run :func:`evaluate_scenario` over (a subset of) the registry.

    Args:
        names: Scenario names; None sweeps every registered scenario.
        policies_factory: ``case -> policies`` override (defaults to
            :func:`default_policies` per scenario).
        Remaining arguments: forwarded to :func:`evaluate_scenario`.

    Returns:
        One :class:`ScenarioComparison` per scenario, in input order.
    """
    if names is None:
        names = registry.list_scenarios()
    results = []
    for name in names:
        case = registry.build(name)
        policies = None if policies_factory is None else policies_factory(case)
        results.append(
            evaluate_scenario(
                case,
                policies=policies,
                num_cases=num_cases,
                horizon=horizon,
                seed=seed,
                memory_length=1,
                engine=engine,
                jobs=jobs,
                exact_solves=exact_solves,
            )
        )
    return results
