"""Differential determinism harness for the lockstep batch engine.

Extends the serial≡parallel harness of ``test_parallel_runner.py`` to the
third engine: ``BatchRunner(engine="lockstep")`` must produce
record-for-record identical deterministic fields to the serial reference
for every built-in controller × policy combination — including stochastic
policies, which join the contract through rng-accepting factories fed
from per-episode seed streams.
"""

import numpy as np
import pytest

from repro.controllers import ConstantController, LinearFeedback, lqr_gain
from repro.controllers.base import Controller
from repro.framework import (
    BatchRunner,
    LockstepEngine,
    ParallelBatchRunner,
    SafetyMonitor,
    lockstep_controller_only,
    run_controller_only,
    run_lockstep,
)
from repro.invariance import maximal_rpi, strengthened_safe_set
from repro.skipping import (
    RUN,
    SKIP,
    AlwaysRunPolicy,
    AlwaysSkipPolicy,
    DecisionContext,
    MarginThresholdPolicy,
    PeriodicSkipPolicy,
    RandomSkipPolicy,
)

ROOT_SEED = 20260730
HORIZON = 25


@pytest.fixture
def di_batch(double_integrator):
    """Double integrator + certified sets + factories for the engines."""
    system = double_integrator
    K = lqr_gain(system.A, system.B, np.eye(2), np.eye(1))
    seed_set = system.safe_set.intersect(system.input_set.linear_preimage(K))
    xi = maximal_rpi(
        system.closed_loop_matrix(K), seed_set, system.disturbance_set
    ).invariant_set
    xp = strengthened_safe_set(system, xi)

    def monitor_factory():
        return SafetyMonitor(
            strengthened_set=xp, invariant_set=xi, safe_set=system.safe_set
        )

    lo, hi = system.disturbance_set.bounding_box()

    def disturbance_factory(episode, rng):
        return rng.uniform(lo, hi, size=(HORIZON, system.n))

    controller = LinearFeedback(K)

    def make(cls, policy_factory=AlwaysSkipPolicy, **extra):
        return cls(system, controller, monitor_factory, policy_factory, **extra)

    states = xp.sample(np.random.default_rng(5), 6)
    return make, disturbance_factory, states, xp


POLICY_FACTORIES = {
    "always_run": AlwaysRunPolicy,
    "always_skip": AlwaysSkipPolicy,
    "periodic": lambda: PeriodicSkipPolicy(3, offset=1),
    "random": lambda rng: RandomSkipPolicy(0.4, rng),
}


class TestLockstepMatchesSerial:
    @pytest.mark.parametrize("policy_name", sorted(POLICY_FACTORIES))
    def test_record_for_record_identical(self, di_batch, policy_name):
        make, factory, states, _xp = di_batch
        policy_factory = POLICY_FACTORIES[policy_name]
        serial = make(BatchRunner, policy_factory).run_seeded(
            states, factory, ROOT_SEED
        )
        lockstep = make(LockstepEngine, policy_factory).run_seeded(
            states, factory, ROOT_SEED
        )
        assert len(serial) == len(lockstep) == len(states)
        assert serial.deterministic_records() == lockstep.deterministic_records()

    def test_margin_threshold_policy(self, di_batch):
        make, factory, states, xp = di_batch
        policy_factory = lambda: MarginThresholdPolicy(xp, 0.05)
        serial = make(BatchRunner, policy_factory).run_seeded(
            states, factory, ROOT_SEED
        )
        lockstep = make(LockstepEngine, policy_factory).run_seeded(
            states, factory, ROOT_SEED
        )
        assert serial.deterministic_records() == lockstep.deterministic_records()

    def test_three_engines_agree(self, di_batch):
        make, factory, states, _xp = di_batch
        serial = make(BatchRunner).run_seeded(states, factory, ROOT_SEED)
        parallel = make(ParallelBatchRunner, jobs=2).run_seeded(
            states, factory, ROOT_SEED
        )
        lockstep = make(BatchRunner, engine="lockstep").run_seeded(
            states, factory, ROOT_SEED
        )
        assert (
            serial.deterministic_records()
            == parallel.deterministic_records()
            == lockstep.deterministic_records()
        )

    def test_unseeded_run_parity(self, di_batch):
        make, _factory, states, _xp = di_batch

        def sampler_with(rng):
            return lambda episode: rng.uniform(-0.02, 0.02, size=(HORIZON, 2))

        serial = make(BatchRunner).run(states, sampler_with(np.random.default_rng(11)))
        lockstep = make(LockstepEngine).run(
            states, sampler_with(np.random.default_rng(11))
        )
        assert serial.deterministic_records() == lockstep.deterministic_records()

    def test_memory_length_and_reveal_future_parity(self, di_batch):
        make, factory, states, _xp = di_batch
        kwargs = dict(memory_length=4, reveal_future=True)
        serial = make(BatchRunner, lambda: PeriodicSkipPolicy(2), **kwargs)
        lockstep = make(LockstepEngine, lambda: PeriodicSkipPolicy(2), **kwargs)
        assert (
            serial.run_seeded(states, factory, ROOT_SEED).deterministic_records()
            == lockstep.run_seeded(states, factory, ROOT_SEED).deterministic_records()
        )

    def test_ragged_horizons(self, di_batch):
        """Episodes with different lengths finish independently."""
        make, _factory, states, _xp = di_batch

        def ragged(episode, rng):
            return rng.uniform(-0.02, 0.02, size=(5 + 7 * episode, 2))

        serial = make(BatchRunner).run_seeded(states, ragged, ROOT_SEED)
        lockstep = make(LockstepEngine).run_seeded(states, ragged, ROOT_SEED)
        assert serial.deterministic_records() == lockstep.deterministic_records()

    def test_all_rows_forced_step(self, di_batch):
        """Initial states in XI − X': every row is monitor-forced at t=0,
        so the strengthened-context list is empty — the stateless
        decide_batch path must cope (regression: MarginThreshold crashed
        on an empty batch)."""
        make, factory, _states, xp = di_batch
        runner = make(BatchRunner)
        monitor = runner.monitor_factory()
        candidates = monitor.invariant_set.sample(np.random.default_rng(3), 200)
        outside = candidates[~xp.contains_batch(candidates)]
        assert len(outside) >= 2, "need XI − X' samples for this scenario"
        states = outside[:3]
        for policy_factory in (AlwaysSkipPolicy, lambda: MarginThresholdPolicy(xp, 0.05)):
            serial = make(BatchRunner, policy_factory).run_seeded(
                states, factory, ROOT_SEED
            )
            lockstep = make(LockstepEngine, policy_factory).run_seeded(
                states, factory, ROOT_SEED
            )
            assert serial.deterministic_records() == lockstep.deterministic_records()
            assert serial.records[0].forced_steps >= 1

    def test_heterogeneous_stateless_policies_fall_back_to_per_row(self, di_batch):
        """`stateless` does not mean interchangeable: differently
        parameterised Periodic policies must keep their own periods."""
        make, _factory, states, _xp = di_batch
        runner = make(BatchRunner)
        policies = [PeriodicSkipPolicy(2 + (i % 3)) for i in range(len(states))]
        realisations = [np.zeros((12, 2)) for _ in states]
        batch = run_lockstep(
            runner.system,
            runner.controller,
            [runner.monitor_factory() for _ in states],
            policies,
            states,
            realisations,
        )
        for i, stats in enumerate(batch):
            period = 2 + (i % 3)
            expected = [
                1 if t % period == 0 else 0 for t in range(12)
            ]
            # Forced steps run regardless of the policy's proposal.
            proposal_respected = [
                int(z) == e or bool(f)
                for z, e, f in zip(stats.decisions, expected, stats.forced)
            ]
            assert all(proposal_respected)

    def test_seed_stability_and_sensitivity(self, di_batch):
        make, factory, states, _xp = di_batch
        runner = make(LockstepEngine, AlwaysRunPolicy)
        first = runner.run_seeded(states, factory, ROOT_SEED)
        again = runner.run_seeded(states, factory, ROOT_SEED)
        other = runner.run_seeded(states, factory, ROOT_SEED + 1)
        assert first.deterministic_records() == again.deterministic_records()
        assert first.deterministic_records() != other.deterministic_records()

    def test_empty_batch(self, di_batch):
        make, factory, _states, _xp = di_batch
        result = make(LockstepEngine).run_seeded(np.empty((0, 2)), factory, ROOT_SEED)
        assert len(result) == 0
        with pytest.raises(ValueError, match="empty"):
            result.mean("energy")

    def test_rejects_initial_outside_xi(self, di_batch):
        make, factory, _states, _xp = di_batch
        with pytest.raises(ValueError, match="invariant set"):
            make(LockstepEngine).run_seeded(
                np.array([[50.0, 50.0]]), factory, ROOT_SEED
            )

    def test_engine_name_validation(self, di_batch):
        make, _factory, _states, _xp = di_batch
        with pytest.raises(ValueError, match="engine"):
            make(BatchRunner, engine="warp")


class TestStochasticPolicySeeding:
    """Satellite: rng-accepting factories make stochastic policies
    engine-invariant — every engine builds episode i's policy from the
    same private stream."""

    def test_serial_lockstep_parallel_identical(self, di_batch):
        make, factory, states, _xp = di_batch
        pf = lambda rng: RandomSkipPolicy(0.5, rng)
        serial = make(BatchRunner, pf).run_seeded(states, factory, ROOT_SEED)
        lockstep = make(LockstepEngine, pf).run_seeded(states, factory, ROOT_SEED)
        parallel = make(ParallelBatchRunner, pf, jobs=3).run_seeded(
            states, factory, ROOT_SEED
        )
        assert (
            serial.deterministic_records()
            == lockstep.deterministic_records()
            == parallel.deterministic_records()
        )

    def test_policy_streams_differ_across_episodes(self, di_batch):
        make, factory, states, _xp = di_batch
        drawn = []
        pf = lambda rng: drawn.append(rng.integers(1 << 62)) or RandomSkipPolicy(0.5, rng)
        make(BatchRunner, pf).run_seeded(states, factory, ROOT_SEED)
        assert len(set(drawn)) == len(states)

    def test_policy_stream_independent_of_disturbance_stream(self, di_batch):
        make, factory, states, _xp = di_batch
        seen = {}

        def df(episode, rng):
            seen[episode] = rng.integers(1 << 62)
            return np.zeros((HORIZON, 2))

        drawn = {}
        counter = iter(range(len(states)))
        pf = lambda rng: drawn.update({next(counter): rng.integers(1 << 62)}) or AlwaysSkipPolicy()
        make(BatchRunner, pf).run_seeded(states, df, ROOT_SEED)
        for episode in drawn:
            assert drawn[episode] != seen[episode]

    def test_zero_arg_factories_still_work(self, di_batch):
        make, factory, states, _xp = di_batch
        result = make(BatchRunner, AlwaysSkipPolicy).run_seeded(
            states, factory, ROOT_SEED
        )
        assert len(result) == len(states)

    def test_optional_param_factories_stay_zero_arg(self, di_batch):
        """A factory whose positional parameters all have defaults must
        keep being called with no arguments (regression: the rng was
        passed into the optional slot)."""
        make, factory, states, _xp = di_batch
        pf = lambda period=3: PeriodicSkipPolicy(period)
        serial = make(BatchRunner, pf).run_seeded(states, factory, ROOT_SEED)
        lockstep = make(LockstepEngine, pf).run_seeded(states, factory, ROOT_SEED)
        reference = make(
            BatchRunner, lambda: PeriodicSkipPolicy(3)
        ).run_seeded(states, factory, ROOT_SEED)
        assert serial.deterministic_records() == reference.deterministic_records()
        assert serial.deterministic_records() == lockstep.deterministic_records()


class TestBatchPrimitives:
    """Row ``i`` of every batch primitive must equal the scalar call."""

    def test_linear_feedback_compute_batch(self, rng):
        K = rng.normal(size=(2, 3))
        controller = LinearFeedback(K, saturation=([-1.0, -1.0], [1.0, 1.0]))
        X = rng.normal(size=(17, 3))
        batch = controller.compute_batch(X)
        for i, x in enumerate(X):
            assert np.array_equal(batch[i], controller.compute(x))

    def test_constant_controller_compute_batch(self):
        controller = ConstantController([0.5, -0.25])
        batch = controller.compute_batch(np.zeros((4, 3)))
        assert batch.shape == (4, 2)
        assert np.array_equal(batch, np.tile([0.5, -0.25], (4, 1)))

    def test_generic_compute_batch_fallback(self, rng):
        class Cubic(Controller):
            input_dim = 1

            def compute(self, state):
                return np.array([float(np.sum(np.asarray(state) ** 3))])

        controller = Cubic()
        X = rng.normal(size=(5, 2))
        batch = controller.compute_batch(X)
        for i, x in enumerate(X):
            assert np.array_equal(batch[i], controller.compute(x))
        assert controller.compute_batch(np.empty((0, 2))).shape == (0, 1)

    def test_step_batch_matches_scalar(self, double_integrator, rng):
        system = double_integrator
        X = rng.normal(size=(9, 2)) * 0.1
        U = rng.normal(size=(9, 1))
        W = rng.normal(size=(9, 2)) * 0.01
        batch = system.step_batch(X, U, W)
        for i in range(9):
            assert np.array_equal(batch[i], system.step(X[i], U[i], W[i]))
        nominal = system.step_batch(X, U)
        for i in range(9):
            assert np.array_equal(nominal[i], system.step(X[i], U[i]))

    def test_step_batch_validates_shapes(self, double_integrator):
        with pytest.raises(ValueError):
            double_integrator.step_batch(np.zeros((3, 2)), np.zeros((2, 1)))
        with pytest.raises(ValueError):
            double_integrator.step_batch(np.zeros((3, 2)), np.zeros((3, 1)), np.zeros((3, 1)))

    def test_decide_batch_matches_decide(self, di_batch, rng):
        _make, _factory, _states, xp = di_batch
        contexts = [
            DecisionContext(
                time=t,
                state=xp.sample(np.random.default_rng(t), 1)[0],
                past_disturbances=np.zeros((1, 2)),
            )
            for t in range(7)
        ]
        for policy in (
            AlwaysRunPolicy(),
            AlwaysSkipPolicy(),
            PeriodicSkipPolicy(3, offset=2),
            MarginThresholdPolicy(xp, 0.03),
            RandomSkipPolicy(0.5, np.random.default_rng(0)),
        ):
            if isinstance(policy, RandomSkipPolicy):
                # Same stream, fresh generator for the scalar reference.
                scalar = [
                    RandomSkipPolicy(0.5, np.random.default_rng(0)).decide(c)
                    for c in [contexts[0]]
                ]
                assert policy.decide_batch(contexts[:1]).tolist() == scalar
                continue
            batch = policy.decide_batch(contexts)
            assert batch.tolist() == [policy.decide(c) for c in contexts]
            assert set(batch.tolist()) <= {RUN, SKIP}

    def test_stateless_flags(self, di_batch):
        _make, _factory, _states, xp = di_batch
        assert AlwaysRunPolicy.stateless
        assert AlwaysSkipPolicy.stateless
        assert PeriodicSkipPolicy(2).stateless
        assert MarginThresholdPolicy(xp, 0.1).stateless
        assert not RandomSkipPolicy(0.5, np.random.default_rng(0)).stateless


class TestLockstepControllerOnly:
    def test_matches_serial_controller_only(self, di_batch, rng):
        make, _factory, states, _xp = di_batch
        system = make(BatchRunner).system
        controller = make(BatchRunner).controller
        realisations = [
            rng.uniform(-0.02, 0.02, size=(HORIZON, 2)) for _ in states
        ]
        batch = lockstep_controller_only(system, controller, states, realisations)
        for x0, W, stats in zip(states, realisations, batch):
            reference = run_controller_only(system, controller, x0, W)
            assert np.array_equal(stats.states, reference.states)
            assert np.array_equal(stats.inputs, reference.inputs)
            assert stats.energy == reference.energy
            assert np.all(stats.decisions == 1)

    def test_empty(self, di_batch):
        make, _factory, _states, _xp = di_batch
        runner = make(BatchRunner)
        assert lockstep_controller_only(
            runner.system, runner.controller, np.empty((0, 2)), []
        ) == []


class TestRunLockstepValidation:
    def test_mismatched_monitor_policy_counts(self, di_batch):
        make, _factory, states, _xp = di_batch
        runner = make(BatchRunner)
        with pytest.raises(ValueError, match="per episode"):
            run_lockstep(
                runner.system,
                runner.controller,
                [runner.monitor_factory()],
                [AlwaysSkipPolicy()] * len(states),
                states,
                [np.zeros((3, 2))] * len(states),
            )

    def test_memory_length_validation(self, di_batch):
        make, _factory, states, _xp = di_batch
        runner = make(BatchRunner)
        with pytest.raises(ValueError, match="memory_length"):
            run_lockstep(
                runner.system,
                runner.controller,
                [runner.monitor_factory() for _ in states],
                [AlwaysSkipPolicy() for _ in states],
                states,
                [np.zeros((3, 2))] * len(states),
                memory_length=0,
            )

    def test_rejects_heterogeneous_monitors(self, di_batch):
        """Monitors over different set objects would silently be
        classified against episode 0's sets — must raise instead."""
        make, _factory, states, _xp = di_batch
        runner = make(BatchRunner)
        monitors = [runner.monitor_factory() for _ in states]
        shrunk = monitors[1].strengthened_set.scale(0.5)
        monitors[1] = SafetyMonitor(
            strengthened_set=shrunk,
            invariant_set=monitors[1].invariant_set,
            safe_set=monitors[1].safe_set,
        )
        with pytest.raises(ValueError, match="share one set configuration"):
            run_lockstep(
                runner.system,
                runner.controller,
                monitors,
                [AlwaysSkipPolicy() for _ in states],
                states,
                [np.zeros((3, 2))] * len(states),
            )


class TestContextFreeFastPath:
    """The wants_context = False protocol (ROADMAP: skip per-row
    DecisionContext materialisation for context-blind policies)."""

    def test_builtin_flags(self):
        assert AlwaysRunPolicy.wants_context is False
        assert AlwaysSkipPolicy.wants_context is False
        assert PeriodicSkipPolicy.wants_context is False
        assert MarginThresholdPolicy.wants_context is True
        assert RandomSkipPolicy.wants_context is True

    @pytest.mark.parametrize(
        "policy",
        [
            AlwaysRunPolicy(),
            AlwaysSkipPolicy(),
            PeriodicSkipPolicy(3, offset=1),
            PeriodicSkipPolicy(1),
        ],
        ids=["always_run", "always_skip", "periodic31", "periodic1"],
    )
    def test_decide_batch_at_matches_decide_batch(self, policy):
        for t in range(7):
            contexts = [
                DecisionContext(
                    time=t,
                    state=np.array([0.1 * i, -0.2]),
                    past_disturbances=np.zeros((1, 2)),
                )
                for i in range(4)
            ]
            assert np.array_equal(
                policy.decide_batch_at(t, 4), policy.decide_batch(contexts)
            )

    def test_base_default_raises(self):
        class Claims(AlwaysSkipPolicy):
            decide_batch_at = (
                __import__("repro.skipping.base", fromlist=["SkippingPolicy"])
                .SkippingPolicy.decide_batch_at
            )

        with pytest.raises(NotImplementedError, match="decide_batch_at"):
            Claims().decide_batch_at(0, 3)

    def test_lockstep_materialises_no_contexts(self, di_batch, monkeypatch):
        """With a context-free policy the engine must never construct a
        DecisionContext — the whole point of the fast path."""
        import repro.framework.lockstep as lockstep_module

        class Forbidden:
            def __init__(self, *args, **kwargs):
                raise AssertionError("DecisionContext built on the fast path")

        monkeypatch.setattr(lockstep_module, "DecisionContext", Forbidden)
        make, factory, states, _xp = di_batch
        result = make(
            BatchRunner, lambda: PeriodicSkipPolicy(2), engine="lockstep"
        ).run_seeded(states, factory, ROOT_SEED)
        assert len(result) == len(states)

    def test_lockstep_still_builds_contexts_when_wanted(
        self, di_batch, monkeypatch
    ):
        """A context-reading policy must keep receiving real contexts."""
        import repro.framework.lockstep as lockstep_module

        built = []
        original = lockstep_module.DecisionContext

        def counting(*args, **kwargs):
            context = original(*args, **kwargs)
            built.append(context)
            return context

        monkeypatch.setattr(lockstep_module, "DecisionContext", counting)
        make, factory, states, xp = di_batch
        make(
            BatchRunner,
            lambda: MarginThresholdPolicy(xp, 0.01),
            engine="lockstep",
        ).run_seeded(states, factory, ROOT_SEED)
        assert built, "wants_context=True policy saw no contexts"

    def test_fast_path_identical_to_contextful_variant(self, di_batch):
        """Forcing the slow path on a context-free policy cannot change
        a single record."""

        class SlowPeriodic(PeriodicSkipPolicy):
            wants_context = True

        make, factory, states, _xp = di_batch
        fast = make(
            BatchRunner, lambda: PeriodicSkipPolicy(3), engine="lockstep"
        ).run_seeded(states, factory, ROOT_SEED)
        slow = make(
            BatchRunner, lambda: SlowPeriodic(3), engine="lockstep"
        ).run_seeded(states, factory, ROOT_SEED)
        assert fast.deterministic_records() == slow.deterministic_records()


class _WindowRecorder:
    """Stateless context-reading policy that logs every decision window."""

    stateless = True
    wants_context = True

    def __init__(self, log):
        self.log = log

    def reset(self):
        pass

    def decide(self, context):
        self.log.append((context.time, context.past_disturbances.copy()))
        return RUN

    def decide_batch(self, contexts):
        for context in contexts:
            self.log.append((context.time, context.past_disturbances.copy()))
        return np.full(len(contexts), RUN, dtype=int)


class TestRingBufferHistory:
    """The ring-buffer disturbance history must hand out exactly the
    chronological ``r``-windows the rolling-copy implementation did
    (satellite regression for the fused per-step pipeline)."""

    MEMORY = 4
    STEPS = 11

    def _setup(self, di_batch):
        make, _factory, states, _xp = di_batch
        runner = make(BatchRunner)
        rng = np.random.default_rng(77)
        realisations = [
            rng.uniform(-0.02, 0.02, size=(self.STEPS, 2))
            for _ in range(len(states))
        ]
        return runner, states, realisations

    def test_windows_match_serial_and_expectation(self, di_batch):
        from repro.framework import IntermittentController

        runner, states, realisations = self._setup(di_batch)
        count = len(states)

        shared_log = []
        shared = _WindowRecorder(shared_log)
        run_lockstep(
            runner.system,
            runner.controller,
            [runner.monitor_factory() for _ in range(count)],
            [shared] * count,
            states,
            realisations,
            memory_length=self.MEMORY,
        )
        # With every row free and RUN each step, decide_batch sees the
        # episodes in index order: entry t*count + i belongs to (t, i).
        per_time = {}
        for time_index, window in shared_log:
            per_time.setdefault(time_index, []).append(window)
        assert set(per_time) == set(range(self.STEPS))
        assert all(len(v) == count for v in per_time.values())

        for episode in range(count):
            serial_log = []
            serial = IntermittentController(
                runner.system,
                runner.controller,
                runner.monitor_factory(),
                _WindowRecorder(serial_log),
                memory_length=self.MEMORY,
            )
            serial.run(states[episode], realisations[episode])
            assert len(serial_log) == self.STEPS
            for t, serial_window in serial_log:
                lockstep_window = per_time[t][episode]
                assert np.array_equal(serial_window, lockstep_window)
                # explicit expectation: last r disturbances, zero-padded
                expected = np.zeros((self.MEMORY, 2))
                w = realisations[episode][max(0, t - self.MEMORY + 1) : t + 1]
                expected[self.MEMORY - len(w) :] = w
                assert np.array_equal(lockstep_window, expected)

    def test_memory_one_unchanged(self, di_batch):
        runner, states, realisations = self._setup(di_batch)
        log = []
        shared = _WindowRecorder(log)
        run_lockstep(
            runner.system,
            runner.controller,
            [runner.monitor_factory() for _ in states],
            [shared] * len(states),
            states,
            realisations,
            memory_length=1,
        )
        for t, window in log:
            assert window.shape == (1, 2)


class TestCollectTiming:
    """collect_timing=False zeroes the wall-clock arrays and changes
    nothing else, bit for bit."""

    def test_records_bitwise_identical_timing_zeroed(self, di_batch):
        make, _factory, states, _xp = di_batch
        runner = make(BatchRunner)
        rng = np.random.default_rng(13)
        realisations = [
            rng.uniform(-0.02, 0.02, size=(HORIZON, 2)) for _ in states
        ]

        def batch(collect_timing):
            return run_lockstep(
                runner.system,
                runner.controller,
                [runner.monitor_factory() for _ in states],
                [PeriodicSkipPolicy(2) for _ in states],
                states,
                realisations,
                collect_timing=collect_timing,
            )

        timed, untimed = batch(True), batch(False)
        assert any(stats.controller_seconds.any() for stats in timed)
        assert any(stats.monitor_seconds.any() for stats in timed)
        for a, b in zip(timed, untimed):
            assert np.array_equal(a.states, b.states)
            assert np.array_equal(a.inputs, b.inputs)
            assert np.array_equal(a.decisions, b.decisions)
            assert np.array_equal(a.forced, b.forced)
            assert np.array_equal(a.disturbances, b.disturbances)
            assert not b.controller_seconds.any()
            assert not b.monitor_seconds.any()

    def test_controller_only_timing_flag(self, di_batch):
        make, _factory, states, _xp = di_batch
        runner = make(BatchRunner)
        rng = np.random.default_rng(13)
        realisations = [
            rng.uniform(-0.02, 0.02, size=(HORIZON, 2)) for _ in states
        ]
        timed = lockstep_controller_only(
            runner.system, runner.controller, states, realisations
        )
        untimed = lockstep_controller_only(
            runner.system, runner.controller, states, realisations,
            collect_timing=False,
        )
        assert any(stats.controller_seconds.any() for stats in timed)
        for a, b in zip(timed, untimed):
            assert np.array_equal(a.states, b.states)
            assert np.array_equal(a.inputs, b.inputs)
            assert not b.controller_seconds.any()

    def test_runner_threads_collect_timing(self, di_batch):
        make, factory, states, _xp = di_batch
        timed = make(LockstepEngine, lambda: PeriodicSkipPolicy(2))
        untimed = make(
            LockstepEngine, lambda: PeriodicSkipPolicy(2), collect_timing=False
        )
        a = timed.run_seeded(states, factory, ROOT_SEED)
        b = untimed.run_seeded(states, factory, ROOT_SEED)
        assert a.deterministic_records() == b.deterministic_records()
        assert all(r.mean_controller_ms == 0.0 for r in b.records)
        assert any(r.mean_controller_ms > 0.0 for r in a.records)
