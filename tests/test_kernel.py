"""Differential tests for the compiled closed-form lockstep kernel.

The kernel tier promises *bitwise* identity with the numpy lockstep path
(and therefore with the serial engine).  The pure-Python step loop —
the same source numba compiles — is the always-available anchor: every
parity test here runs it interpreted by routing ``kernel="numba"``
dispatch through it, so the full eligibility/dispatch machinery is
exercised even on hosts without numba.  Where numba *is* installed
(the CI numba leg), the compiled loop is additionally proven equal.
"""

import numpy as np
import pytest

import repro.framework.kernel as kernel_mod
from repro.controllers import ConstantController, LinearFeedback, lqr_gain
from repro.controllers.base import Controller
from repro.framework import (
    IntermittentController,
    SafetyMonitor,
    SafetyViolationError,
    run_lockstep,
)
from repro.framework.kernel import (
    KERNELS,
    MAX_KERNEL_DIM,
    KernelError,
    fused_rollout,
    kernel_ineligibility,
    numba_available,
    resolve_kernel,
)
from repro.framework.lockstep import lockstep_controller_only
from repro.invariance import maximal_rpi, strengthened_safe_set
from repro.skipping import (
    AlwaysRunPolicy,
    AlwaysSkipPolicy,
    MarginThresholdPolicy,
    PeriodicSkipPolicy,
)

HORIZON = 25

_PAIRWISE = kernel_mod._make_pairwise_sum()


# ----------------------------------------------------------------------
# The bitwise foundation: the kernel's summation must BE numpy's
# ----------------------------------------------------------------------
class TestPairwiseSum:
    @pytest.mark.parametrize("length", list(range(0, 20)) + [31, 32, 63, 64, 100, 127, 128])
    def test_matches_np_sum_bitwise(self, length):
        rng = np.random.default_rng(length)
        for trial in range(20):
            a = rng.uniform(-1e3, 1e3, size=length) * 10.0 ** rng.integers(
                -12, 12, size=length
            )
            ours = _PAIRWISE(a, length)
            ref = float(np.sum(a))
            assert np.float64(ours).tobytes() == np.float64(ref).tobytes()

    def test_signed_zero_matches(self):
        a = np.array([-0.0])
        assert np.float64(_PAIRWISE(a, 1)).tobytes() == np.float64(
            np.sum(a)
        ).tobytes()

    def test_empty_is_positive_zero(self):
        assert _PAIRWISE(np.zeros(0), 0) == 0.0


# ----------------------------------------------------------------------
# Resolution + eligibility vocabulary (mirrors lp_backend semantics)
# ----------------------------------------------------------------------
class TestResolution:
    def test_vocabulary(self):
        assert KERNELS == ("auto", "numba", "numpy")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="kernel must be one of"):
            resolve_kernel("fortran")

    def test_numpy_always_resolves(self):
        assert resolve_kernel("numpy") == "numpy"

    def test_auto_falls_back_silently(self, monkeypatch):
        monkeypatch.setattr(kernel_mod, "_NUMBA_OK", False)
        assert resolve_kernel("auto") == "numpy"

    def test_explicit_numba_raises_without_numba(self, monkeypatch):
        monkeypatch.setattr(kernel_mod, "_NUMBA_OK", False)
        with pytest.raises(KernelError, match="numba is not importable"):
            resolve_kernel("numba")

    def test_auto_prefers_numba_when_available(self, monkeypatch):
        monkeypatch.setattr(kernel_mod, "_NUMBA_OK", True)
        assert resolve_kernel("auto") == "numba"
        assert resolve_kernel("numba") == "numba"


class TestEligibility:
    def test_affine_controller_is_eligible(self):
        controller = LinearFeedback(np.array([[0.1, 0.2]]))
        assert kernel_ineligibility(controller, 2, 1) is None

    def test_non_affine_controller_named(self):
        class Opaque(Controller):
            input_dim = 1

            def compute(self, state):
                return np.zeros(1)

        reason = kernel_ineligibility(Opaque(), 2, 1)
        assert "Opaque" in reason and "affine" in reason

    def test_context_bound_policies(self):
        controller = LinearFeedback(np.array([[0.1, 0.2]]))
        reason = kernel_ineligibility(controller, 2, 1, context_free=False)
        assert "context-free" in reason

    def test_mixed_strictness(self):
        controller = LinearFeedback(np.array([[0.1, 0.2]]))
        reason = kernel_ineligibility(controller, 2, 1, uniform_strict=False)
        assert "strict" in reason

    def test_collect_timing(self):
        controller = LinearFeedback(np.array([[0.1, 0.2]]))
        reason = kernel_ineligibility(controller, 2, 1, collect_timing=True)
        assert "collect_timing=False" in reason

    def test_dimension_cap(self):
        big = MAX_KERNEL_DIM + 1
        controller = LinearFeedback(np.zeros((1, big)))
        reason = kernel_ineligibility(controller, big, 1)
        assert "MAX_KERNEL_DIM" in reason

    def test_fused_rollout_rejects_non_affine(self, double_integrator):
        class Opaque(Controller):
            input_dim = 1

            def compute(self, state):
                return np.zeros(1)

        with pytest.raises(KernelError, match="no affine"):
            fused_rollout(
                double_integrator,
                Opaque(),
                None,
                None,
                0.0,
                np.zeros(1),
                np.zeros((1, 2)),
                np.zeros((1, 3, 2)),
                np.array([3]),
                np.ones((3, 1), dtype=np.int64),
            )


# ----------------------------------------------------------------------
# Differential harness
# ----------------------------------------------------------------------
@pytest.fixture
def interpreted_kernel(monkeypatch):
    """Route ``kernel="numba"`` dispatch through the pure-Python loop.

    Exercises the full eligibility + dispatch machinery without numba;
    on hosts that do have numba this still pins the test to the
    interpreted loop (the compiled loop has its own tests below).
    """
    monkeypatch.setattr(kernel_mod, "_NUMBA_OK", True)
    monkeypatch.setattr(
        kernel_mod, "_STEP_LOOP_NUMBA", kernel_mod._STEP_LOOP_PY
    )


def assert_records_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert np.array_equal(a.states, b.states)
        assert np.array_equal(a.inputs, b.inputs)
        assert np.array_equal(a.decisions, b.decisions)
        assert np.array_equal(a.forced, b.forced)
        assert np.array_equal(a.disturbances, b.disturbances)


@pytest.fixture
def di_case(double_integrator):
    """Double integrator + certified sets + sampled batch."""
    system = double_integrator
    K = lqr_gain(system.A, system.B, np.eye(2), np.eye(1))
    seed_set = system.safe_set.intersect(system.input_set.linear_preimage(K))
    xi = maximal_rpi(
        system.closed_loop_matrix(K), seed_set, system.disturbance_set
    ).invariant_set
    xp = strengthened_safe_set(system, xi)
    lo, hi = system.input_set.bounding_box()
    controller = LinearFeedback(K, saturation=(lo, hi))

    def monitors(count, strict=True):
        return [
            SafetyMonitor(
                strengthened_set=xp, invariant_set=xi, safe_set=system.safe_set,
                strict=strict,
            )
            for _ in range(count)
        ]

    rng = np.random.default_rng(20260807)
    states = xp.sample(np.random.default_rng(5), 6)
    wlo, whi = system.disturbance_set.bounding_box()
    realisations = [
        rng.uniform(wlo, whi, size=(HORIZON, system.n)) for _ in states
    ]
    return system, controller, monitors, xp, xi, states, realisations


POLICIES = {
    "always_run": AlwaysRunPolicy,
    "always_skip": AlwaysSkipPolicy,
    "periodic": lambda: PeriodicSkipPolicy(3, offset=1),
}


class TestKernelMatchesNumpy:
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_monitored_parity(self, di_case, interpreted_kernel, policy_name):
        system, controller, monitors, _xp, _xi, states, realisations = di_case
        factory = POLICIES[policy_name]
        reference = run_lockstep(
            system, controller, monitors(len(states)),
            [factory() for _ in states], states, realisations,
            kernel="numpy",
        )
        fused = run_lockstep(
            system, controller, monitors(len(states)),
            [factory() for _ in states], states, realisations,
            kernel="numba", collect_timing=False,
        )
        assert_records_equal(reference, fused)
        # the kernel tier never collects per-row timing
        for stats in fused:
            assert not stats.controller_seconds.any()
            assert not stats.monitor_seconds.any()

    def test_constant_controller_parity(self, di_case, interpreted_kernel):
        # zero input is not stabilising, so run non-strict and require
        # the (offset-only, no-gain) kernel branch to match violations too
        system, _c, monitors, _xp, _xi, states, realisations = di_case
        controller = ConstantController(np.zeros(system.m))
        mons_np = monitors(len(states), strict=False)
        reference = run_lockstep(
            system, controller, mons_np,
            [AlwaysRunPolicy() for _ in states], states, realisations,
            kernel="numpy",
        )
        mons_k = monitors(len(states), strict=False)
        fused = run_lockstep(
            system, controller, mons_k,
            [AlwaysRunPolicy() for _ in states], states, realisations,
            kernel="numba", collect_timing=False,
        )
        assert_records_equal(reference, fused)
        assert [m.violations for m in mons_np] == [m.violations for m in mons_k]

    def test_ragged_horizons(self, di_case, interpreted_kernel):
        system, controller, monitors, _xp, _xi, states, _r = di_case
        rng = np.random.default_rng(3)
        wlo, whi = system.disturbance_set.bounding_box()
        ragged = [
            rng.uniform(wlo, whi, size=(4 + 6 * episode, system.n))
            for episode in range(len(states))
        ]
        reference = run_lockstep(
            system, controller, monitors(len(states)),
            [PeriodicSkipPolicy(2) for _ in states], states, ragged,
            kernel="numpy",
        )
        fused = run_lockstep(
            system, controller, monitors(len(states)),
            [PeriodicSkipPolicy(2) for _ in states], states, ragged,
            kernel="numba", collect_timing=False,
        )
        assert_records_equal(reference, fused)

    def test_forced_rows(self, di_case, interpreted_kernel):
        """Initial states in XI − X': monitor-forced steps, zero free rows."""
        system, controller, monitors, xp, xi, _s, _r = di_case
        candidates = xi.sample(np.random.default_rng(3), 200)
        outside = candidates[~xp.contains_batch(candidates)]
        assert len(outside) >= 2, "need XI − X' samples for this scenario"
        states = outside[:3]
        rng = np.random.default_rng(9)
        wlo, whi = system.disturbance_set.bounding_box()
        realisations = [
            rng.uniform(wlo, whi, size=(HORIZON, system.n)) for _ in states
        ]
        reference = run_lockstep(
            system, controller, monitors(len(states)),
            [AlwaysSkipPolicy() for _ in states], states, realisations,
            kernel="numpy",
        )
        fused = run_lockstep(
            system, controller, monitors(len(states)),
            [AlwaysSkipPolicy() for _ in states], states, realisations,
            kernel="numba", collect_timing=False,
        )
        assert_records_equal(reference, fused)
        assert any(stats.forced.any() for stats in reference)

    def test_strict_abort_parity(self, di_case, interpreted_kernel):
        """A destabilising gain drives rows out of XI: both paths raise,
        naming the same episode, with identical violation counts."""
        system, _c, monitors, _xp, xi, _s, _r = di_case
        bad = LinearFeedback(-lqr_gain(system.A, system.B, np.eye(2), np.eye(1)))
        states = xi.sample(np.random.default_rng(7), 5)
        rng = np.random.default_rng(11)
        wlo, whi = system.disturbance_set.bounding_box()
        realisations = [
            rng.uniform(wlo, whi, size=(60, system.n)) for _ in states
        ]
        mons_np = monitors(len(states), strict=True)
        with pytest.raises(SafetyViolationError) as err_np:
            run_lockstep(
                system, bad, mons_np,
                [AlwaysRunPolicy() for _ in states], states, realisations,
                kernel="numpy",
            )
        mons_k = monitors(len(states), strict=True)
        with pytest.raises(SafetyViolationError) as err_k:
            run_lockstep(
                system, bad, mons_k,
                [AlwaysRunPolicy() for _ in states], states, realisations,
                kernel="numba", collect_timing=False,
            )
        assert str(err_np.value) == str(err_k.value)
        assert [m.violations for m in mons_np] == [m.violations for m in mons_k]

    def test_non_strict_violation_counts(self, di_case, interpreted_kernel):
        system, _c, monitors, _xp, xi, _s, _r = di_case
        bad = LinearFeedback(-lqr_gain(system.A, system.B, np.eye(2), np.eye(1)))
        states = xi.sample(np.random.default_rng(7), 4)
        rng = np.random.default_rng(11)
        wlo, whi = system.disturbance_set.bounding_box()
        realisations = [
            rng.uniform(wlo, whi, size=(40, system.n)) for _ in states
        ]
        mons_np = monitors(len(states), strict=False)
        reference = run_lockstep(
            system, bad, mons_np,
            [AlwaysRunPolicy() for _ in states], states, realisations,
            kernel="numpy",
        )
        mons_k = monitors(len(states), strict=False)
        fused = run_lockstep(
            system, bad, mons_k,
            [AlwaysRunPolicy() for _ in states], states, realisations,
            kernel="numba", collect_timing=False,
        )
        assert_records_equal(reference, fused)
        counts = [m.violations for m in mons_np]
        assert counts == [m.violations for m in mons_k]
        assert sum(counts) > 0, "scenario must actually violate"

    def test_controller_only_parity(self, di_case, interpreted_kernel):
        system, controller, _m, _xp, _xi, states, realisations = di_case
        reference = lockstep_controller_only(
            system, controller, states, realisations, kernel="numpy"
        )
        fused = lockstep_controller_only(
            system, controller, states, realisations,
            kernel="numba", collect_timing=False,
        )
        assert_records_equal(reference, fused)
        assert all(stats.decisions.all() for stats in fused)

    def test_explicit_numba_raises_when_ineligible(
        self, di_case, interpreted_kernel
    ):
        system, controller, monitors, _xp, _xi, states, realisations = di_case
        with pytest.raises(KernelError, match="collect_timing"):
            run_lockstep(
                system, controller, monitors(len(states)),
                [AlwaysRunPolicy() for _ in states], states, realisations,
                kernel="numba",  # collect_timing defaults to True
            )
        with pytest.raises(KernelError, match="context-free"):
            run_lockstep(
                system, controller, monitors(len(states)),
                [MarginThresholdPolicy(_xp, 0.05) for _ in states],
                states, realisations,
                kernel="numba", collect_timing=False,
            )

    def test_auto_ineligible_falls_back_silently(
        self, di_case, interpreted_kernel
    ):
        system, controller, monitors, xp, _xi, states, realisations = di_case
        # context-bound policy: auto must quietly take the numpy path
        reference = run_lockstep(
            system, controller, monitors(len(states)),
            [MarginThresholdPolicy(xp, 0.05) for _ in states],
            states, realisations, kernel="numpy",
        )
        auto = run_lockstep(
            system, controller, monitors(len(states)),
            [MarginThresholdPolicy(xp, 0.05) for _ in states],
            states, realisations, kernel="auto", collect_timing=False,
        )
        assert_records_equal(reference, auto)


class TestScenarioZooParity:
    """numba ≡ numpy ≡ serial, record for record, across the whole zoo.

    RMPC scenarios get a kernel-eligible LQR feedback substitute (the
    kernel never runs stacked-LP controllers); monitors are non-strict
    so any excursions from the substitute controller become counted
    violations rather than aborts — and must match across engines.
    """

    CASES = 3
    STEPS = 15

    @pytest.mark.parametrize(
        "name", ["acc", "dc_motor", "lane_keeping", "pendulum", "thermal"]
    )
    def test_three_way_parity(self, interpreted_kernel, name):
        from repro import scenarios

        case = scenarios.build(name)
        system = case.system
        controller = case.controller
        if controller.affine_feedback() is None:
            lo, hi = system.input_set.bounding_box()
            controller = LinearFeedback(
                lqr_gain(system.A, system.B, np.eye(system.n), np.eye(system.m)),
                saturation=(lo, hi),
            )
        states = case.sample_initial_states(
            np.random.default_rng(1), self.CASES
        )
        factory = case.disturbance_factory(self.STEPS)
        realisations = [
            factory(e, np.random.default_rng(100 + e)) for e in range(self.CASES)
        ]

        serial = []
        for episode in range(self.CASES):
            runner = IntermittentController(
                system,
                controller,
                case.make_monitor(strict=False),
                PeriodicSkipPolicy(2),
                skip_input=case.skip_input,
            )
            serial.append(runner.run(states[episode], realisations[episode]))

        def fresh_monitors():
            return [case.make_monitor(strict=False) for _ in range(self.CASES)]

        common = dict(skip_input=case.skip_input)
        reference = run_lockstep(
            system, controller, fresh_monitors(),
            [PeriodicSkipPolicy(2) for _ in range(self.CASES)],
            states, realisations, kernel="numpy", **common,
        )
        fused = run_lockstep(
            system, controller, fresh_monitors(),
            [PeriodicSkipPolicy(2) for _ in range(self.CASES)],
            states, realisations,
            kernel="numba", collect_timing=False, **common,
        )
        assert_records_equal(serial, reference)
        assert_records_equal(reference, fused)


# ----------------------------------------------------------------------
# Real numba (CI's numba leg; skips cleanly where the extra is absent)
# ----------------------------------------------------------------------
needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed (optional [numba] extra)"
)


@needs_numba
class TestCompiledKernel:
    def test_compiled_loop_matches_interpreted(self, di_case):
        system, controller, monitors, _xp, _xi, states, realisations = di_case
        policies = [PeriodicSkipPolicy(3, offset=1) for _ in states]
        reference = run_lockstep(
            system, controller, monitors(len(states)), policies,
            states, realisations, kernel="numpy",
        )
        compiled = run_lockstep(
            system, controller, monitors(len(states)),
            [PeriodicSkipPolicy(3, offset=1) for _ in states],
            states, realisations, kernel="numba", collect_timing=False,
        )
        assert_records_equal(reference, compiled)

    def test_compiled_controller_only(self, di_case):
        system, controller, _m, _xp, _xi, states, realisations = di_case
        reference = lockstep_controller_only(
            system, controller, states, realisations, kernel="numpy"
        )
        compiled = lockstep_controller_only(
            system, controller, states, realisations,
            kernel="numba", collect_timing=False,
        )
        assert_records_equal(reference, compiled)

    def test_auto_selects_compiled_and_stays_bitwise(self, di_case):
        system, controller, monitors, _xp, _xi, states, realisations = di_case
        assert resolve_kernel("auto") == "numba"
        reference = run_lockstep(
            system, controller, monitors(len(states)),
            [AlwaysRunPolicy() for _ in states], states, realisations,
            kernel="numpy",
        )
        auto = run_lockstep(
            system, controller, monitors(len(states)),
            [AlwaysRunPolicy() for _ in states], states, realisations,
            kernel="auto", collect_timing=False,
        )
        assert_records_equal(reference, auto)
