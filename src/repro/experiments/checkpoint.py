"""Per-cell checkpoint spill/restore for resumable sweeps.

``run_sweep(checkpoint=dir)`` writes each completed
:class:`~repro.experiments.result.CellResult` the moment it streams out
of the execution layer, and on restart loads the cells already on disk
instead of re-solving them.

Since the experiment service landed, :class:`SweepCheckpoint` is a thin
client of the content-addressed
:class:`~repro.service.store.ResultStore`: spill files *are* store
records (versioned envelope, sha256-of-(key, config) addressing, atomic
``mkstemp`` + ``os.replace`` writes), so a checkpoint directory and a
service job's store are interchangeable — a sweep checkpointed into the
service store seeds every later job that plans the same cells, and vice
versa.  A stored cell is only reused when its stable grid key *and* its
full reproducibility config (cases, horizon, seed, engine, overrides,
...) match what the resuming sweep would compute — a stale, foreign, or
old-format file is re-solved, never trusted.

Skips are observable: a corrupt record or one whose envelope mismatches
(format version, tampered key/config) logs a warning and counts as
``checkpoint_files_skipped_total{reason=corrupt|mismatch}`` in the
ambient :mod:`repro.observability` registry.  A plain absent record is
the normal cold miss and is not a "skip".
"""

from __future__ import annotations

import logging
from typing import Optional

from repro.experiments.result import CellResult

__all__ = ["SweepCheckpoint"]

logger = logging.getLogger(__name__)

#: :meth:`ResultStore.lookup` reasons surfaced as warned-and-counted
#: checkpoint skips, and the ``reason`` label each maps onto.
_SKIP_REASONS = {
    "corrupt": "corrupt",
    "format": "mismatch",
    "key": "mismatch",
    "config": "mismatch",
}


class SweepCheckpoint:
    """A directory of per-cell spills, backed by a result store.

    Args:
        directory: Checkpoint directory (created if missing), or an
            existing :class:`~repro.service.store.ResultStore` to share
            — the service's :class:`~repro.service.jobs.JobManager`
            passes its store here so checkpointed sweeps and service
            jobs read and write one cache.
    """

    def __init__(self, directory):
        # Imported here so ``repro.experiments`` never hard-depends on
        # the service package at import time (the store itself only
        # needs ``repro.experiments.result``).
        from repro.service.store import ResultStore

        if isinstance(directory, ResultStore):
            self.store = directory
        else:
            self.store = ResultStore(directory)

    @property
    def directory(self) -> str:
        """The backing store directory."""
        return self.store.directory

    def path_for(self, key: str, config: dict) -> str:
        """The spill path of cell ``key`` under config ``config``."""
        return self.store.path_for(key, config)

    def store_cell(self, result: CellResult) -> str:
        """Atomically write ``result``'s full-fidelity record; returns
        the final path.  Safe to call from the ``on_result`` stream —
        each cell is its own record, so partial sweeps checkpoint
        incrementally."""
        return self.store.put(result)

    def load(
        self, key: str, expected_config: dict
    ) -> Optional[CellResult]:
        """The stored cell for ``(key, expected_config)``, or ``None``
        when it must be (re-)solved.

        ``None`` is returned — never an exception — for a missing
        record, unparseable JSON, an envelope format-version mismatch,
        or an envelope whose key/config disagree with the address: a
        checkpoint written under different settings must not leak into
        this sweep's results.  Corrupt and mismatched records warn and
        count (see the module docstring); plain absence is silent.

        Counts a store hit or miss either way, so store-level hit/miss
        telemetry covers checkpointed sweeps too.
        """
        from repro.observability import metrics as _obs

        cell, reason = self.store.get_with_reason(key, expected_config)
        if cell is not None:
            return cell
        skip = _SKIP_REASONS.get(reason)
        if skip is not None:
            logger.warning(
                "checkpoint: skipping unusable record for cell %r "
                "(%s; re-solving)", key, reason,
            )
            _obs.registry().inc(
                "checkpoint_files_skipped_total", reason=skip
            )
        return None

    def __repr__(self) -> str:
        return f"SweepCheckpoint({self.directory!r})"
