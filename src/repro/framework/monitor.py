"""Runtime safety monitor (paper Fig. 2 / Algorithm 1, lines 4–9).

The monitor owns the three nested sets and classifies every measured
state:

* inside ``X'``  → the skipping decision function Ω may choose freely;
* inside ``XI − X'`` → the safe controller **must** run (``z = 1``);
* outside ``XI`` → a contract violation: Theorem 1 says this cannot
  happen when the initial state is in ``XI``; the monitor records it and
  (by default) raises, because silent safety violations would invalidate
  every downstream experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np

from repro.geometry import HPolytope

__all__ = ["SafetyMonitor", "StateClass", "SafetyViolationError"]


class SafetyViolationError(RuntimeError):
    """The state left the robust invariant set — Theorem 1 contract broken."""


class StateClass(Enum):
    """Classification of a state against the nested safe sets."""

    STRENGTHENED = "strengthened"  # x ∈ X'
    INVARIANT_ONLY = "invariant_only"  # x ∈ XI − X'
    UNSAFE_REGION = "unsafe_region"  # x ∉ XI (contract violation)


@dataclass
class SafetyMonitor:
    """Classifies states against ``X' ⊆ XI ⊆ X`` and enforces z = 1
    outside ``X'``.

    Attributes:
        strengthened_set: ``X'`` (Definition 3).
        invariant_set: ``XI`` (Definition 1).
        safe_set: ``X`` (problem definition); only used for reporting.
        strict: When True (default), :meth:`classify` raises
            :class:`SafetyViolationError` if the state leaves ``XI``.
        tol: Membership tolerance forwarded to the polytope tests.
    """

    strengthened_set: HPolytope
    invariant_set: HPolytope
    safe_set: HPolytope
    strict: bool = True
    tol: float = 1e-7
    violations: int = field(default=0, init=False)

    def __post_init__(self):
        if not self.invariant_set.contains_polytope(self.strengthened_set):
            raise ValueError("X' must be a subset of XI (Definition 3)")
        if not self.safe_set.contains_polytope(self.invariant_set, tol=1e-6):
            raise ValueError("XI must be a subset of the safe set X")

    def classify(self, state) -> StateClass:
        """Classify ``state``; raises on contract violation when strict."""
        if self.strengthened_set.contains(state, self.tol):
            return StateClass.STRENGTHENED
        if self.invariant_set.contains(state, self.tol):
            return StateClass.INVARIANT_ONLY
        self.violations += 1
        if self.strict:
            raise SafetyViolationError(
                f"state {np.asarray(state)} left the robust invariant set"
            )
        return StateClass.UNSAFE_REGION

    def may_skip(self, state) -> bool:
        """Algorithm 1 line 5: True iff Ω is allowed to decide at ``state``."""
        return self.classify(state) is StateClass.STRENGTHENED

    def admissible_initial(self, state) -> bool:
        """Algorithm 1 line 2 check: x(0) ∈ XI."""
        return self.invariant_set.contains(state, self.tol)
