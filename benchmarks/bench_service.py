"""Experiment-service smoke: sweeps over HTTP against a real server.

Standalone script (not a pytest kernel) so CI can gate the service
end-to-end and operators can smoke a deployment::

    PYTHONPATH=src python benchmarks/bench_service.py --quick

It boots ``repro serve`` as a *separate process* on an ephemeral port
over a fresh store, submits the 2x2 quick grid twice, and gates the
service determinism contract:

* the first (cold) submission solves every cell and its rows equal an
  uncached in-process ``run_sweep`` of the same plan in the
  deterministic view, with deterministic-view telemetry equal too;
* the second (warm) submission is 100% store-hits — zero cells solved —
  and its rows are **byte-identical** (timing columns included) to the
  cold submission's, because they *are* the stored records;
* the shared store's hit/miss counters confirm the split exactly.

Any failed gate exits non-zero.  Every run writes a
``BENCH_service.json`` artifact carrying the store stats snapshot, the
per-phase wall-clock, and both job statuses.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import time

from machine import machine_info, visible_cpus

from repro.experiments import (
    ExecutionConfig,
    ParameterAxis,
    SweepPlan,
    run_sweep,
)
from repro.observability import deterministic_view
from repro.service import ServiceClient


def start_server(store_dir: str, timeout: float = 60.0):
    """Launch ``repro serve --port 0`` and return ``(process, url)``."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--store", store_dir, "--port", "0",
        ],
        stderr=subprocess.PIPE,
        text=True,
        env=dict(os.environ),
    )
    line = proc.stderr.readline()
    match = re.search(r"on (http://\S+)", line)
    if not match:
        proc.terminate()
        raise RuntimeError(f"serve did not announce a URL: {line!r}")
    url = match.group(1)
    client = ServiceClient(url, timeout=5.0)
    deadline = time.monotonic() + timeout
    while True:
        try:
            client.health()
            return proc, url
        except OSError:
            if time.monotonic() >= deadline:
                proc.terminate()
                raise
            time.sleep(0.05)


def run_benchmark(scenario_names, axis_values, cases, horizon, seed,
                  store_dir) -> dict:
    plan = SweepPlan.for_scenarios(
        scenario_names,
        axes=(ParameterAxis("horizon", tuple(axis_values)),),
        execution=ExecutionConfig(
            engine="lockstep", jobs=1, telemetry=True
        ),
        num_cases=cases,
        horizon=horizon,
        seed=seed,
    )
    cells = len(plan.cells())

    # The in-process reference runs first, from cold caches — the
    # server process starts cold too, so deterministic-view telemetry
    # (which keys scenario builds by cache/synthesised source) is
    # comparable across the two processes.
    tick = time.perf_counter()
    reference = run_sweep(plan)
    reference_seconds = time.perf_counter() - tick

    proc, url = start_server(store_dir)
    checks = []
    try:
        client = ServiceClient(url)
        phases = []
        results = []
        statuses = []
        for phase in ("cold", "warm"):
            tick = time.perf_counter()
            job_id = client.submit(plan)
            status = client.wait(job_id, timeout=600, poll=0.05)
            results.append(client.result(job_id))
            statuses.append(status)
            phases.append(
                {
                    "phase": phase,
                    "job": job_id,
                    "seconds": time.perf_counter() - tick,
                    "state": status["state"],
                    "cells_restored": status["cells_restored"],
                }
            )
        cold, warm = results
        stats = client.store_stats()

        checks = [
            ("cold job done", statuses[0]["state"] == "done"),
            ("cold solved every cell", statuses[0]["cells_restored"] == 0),
            (
                "cold rows == in-process run_sweep (deterministic view)",
                cold.deterministic_rows() == reference.deterministic_rows(),
            ),
            (
                "cold telemetry == in-process (deterministic view)",
                deterministic_view(cold.telemetry)
                == deterministic_view(reference.telemetry),
            ),
            (
                "warm job 100% store-hits",
                statuses[1]["cells_restored"] == cells,
            ),
            (
                "warm rows byte-identical to cold (stored records)",
                warm.rows() == cold.rows(),
            ),
            (
                "warm rows == in-process run_sweep (deterministic view)",
                warm.deterministic_rows() == reference.deterministic_rows(),
            ),
            (
                "warm telemetry == in-process (deterministic view)",
                deterministic_view(warm.telemetry)
                == deterministic_view(reference.telemetry),
            ),
            ("store holds every cell once", stats["files"] == cells),
            ("store hit per warm cell", stats["hits"] == cells),
            ("store miss per cold cell", stats["misses"] == cells),
        ]
    finally:
        proc.terminate()
        proc.wait(timeout=30)

    return {
        "scenarios": list(scenario_names),
        "axis_values": list(axis_values),
        "cells": cells,
        "cases": cases,
        "horizon": horizon,
        "seed": seed,
        "cpus": visible_cpus(),
        "machine": machine_info(),
        "reference_seconds": reference_seconds,
        "phases": phases,
        "store_stats": stats,
        "jobs": statuses,
        "checks": [
            {"check": name, "ok": ok} for name, ok in checks
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenarios", nargs="+", default=["thermal", "pendulum"],
        metavar="NAME", help="registry scenarios forming the grid rows",
    )
    parser.add_argument(
        "--axis-values", nargs="+", type=int, default=[8, 12],
        help="horizon-axis points (the grid is scenarios x these)",
    )
    parser.add_argument("--cases", type=int, default=16)
    parser.add_argument("--horizon", type=int, default=50)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI scale: 2 scenarios x 2 axis points, 4 cases x 12 steps",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="store directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--artifact", default="BENCH_service.json",
        help="artifact path ('' disables writing)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.scenarios = args.scenarios[:2]
        args.axis_values = args.axis_values[:2]
        args.cases = 4
        args.horizon = 12

    store_dir = args.store
    if store_dir is None:
        import tempfile

        store_dir = tempfile.mkdtemp(prefix="repro-service-bench-")

    report = run_benchmark(
        args.scenarios, args.axis_values, args.cases, args.horizon,
        args.seed, store_dir,
    )
    print(
        f"service smoke: {len(report['scenarios'])} scenario(s) x "
        f"{len(report['axis_values'])} point(s) = {report['cells']} "
        f"cell(s), {report['cases']} cases x {report['horizon']} steps, "
        f"{report['cpus']} visible CPU(s); in-process reference "
        f"{report['reference_seconds']:.2f}s"
    )
    for phase in report["phases"]:
        print(
            f"  {phase['phase']:<5} {phase['job']:<8} "
            f"{phase['seconds']:>7.2f}s  state={phase['state']}  "
            f"restored={phase['cells_restored']}/{report['cells']}"
        )
    stats = report["store_stats"]
    print(
        f"  store: {stats['files']} record(s), {stats['bytes']} bytes, "
        f"{stats['hits']} hit(s), {stats['misses']} miss(es), "
        f"{stats['puts']} put(s)"
    )
    for check in report["checks"]:
        print(f"  [{'ok' if check['ok'] else 'FAIL'}] {check['check']}")
    if args.artifact:
        with open(args.artifact, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.artifact}")
    return 0 if all(check["ok"] for check in report["checks"]) else 1


if __name__ == "__main__":
    sys.exit(main())
