"""repro — reproduction of "Opportunistic Intermittent Control with Safety
Guarantees for Autonomous Systems" (Huang et al., DAC 2020).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.geometry` — polytope kernel (H-rep, Minkowski algebra);
* :mod:`repro.systems` — constrained LTI plants and disturbance models;
* :mod:`repro.controllers` — LQR and robust MPC (Eq. 5);
* :mod:`repro.invariance` — RCI sets, backward reachability, X' (Def. 1–3);
* :mod:`repro.skipping` — decision functions Ω (Eq. 6/7, DRL);
* :mod:`repro.rl` — numpy double-DQN substrate;
* :mod:`repro.framework` — Algorithm 1 runtime with safety monitor;
* :mod:`repro.traffic` — SUMO-substitute simulator and fuel meter;
* :mod:`repro.acc` — the Sec. IV adaptive-cruise-control case study;
* :mod:`repro.scenarios` — scenario zoo: registry + builder turning any
  constrained LTI plant into a full paper-style benchmark;
* :mod:`repro.experiments` — declarative experiment API: specs,
  parameter axes, sharded grid sweeps.
"""

from repro.framework import (
    IntermittentController,
    RunStats,
    SafetyMonitor,
    SafetyViolationError,
    run_controller_only,
)
from repro.geometry import HPolytope
from repro.invariance import strengthened_safe_set
from repro.systems import DiscreteLTISystem

__version__ = "1.0.0"

__all__ = [
    "HPolytope",
    "DiscreteLTISystem",
    "SafetyMonitor",
    "SafetyViolationError",
    "IntermittentController",
    "run_controller_only",
    "RunStats",
    "strengthened_safe_set",
    "__version__",
]
