"""Fig. 4 — fuel-saving histogram over random initial states.

Paper setup: 500 cases, sinusoidal front vehicle (Eq. 8, v_e = 40,
a_f = 9, noise ∈ [−1, 1]), 100 steps per case.  Reported: the
distribution of fuel savings of (a) bang-bang control and (b) DRL-based
opportunistic intermittent control against RMPC-only, binned 0–10% …
50–60%, plus the mean savings (paper: 16.28% bang-bang, 23.83% DRL).

The pytest-benchmark kernel times a single intermittent-control episode
(the unit of work the histogram aggregates); the full paired evaluation
runs once and its table is attached as ``extra_info``.
"""

import numpy as np

from benchmarks.conftest import CASES_FIG4, HORIZON, emit, pct
from repro.acc import FIG4_BIN_EDGES, evaluate_approaches
from repro.framework import IntermittentController
from repro.skipping import AlwaysSkipPolicy


def bench_fig4_fuel_saving_histogram(benchmark, acc_case, overall_agent):
    agent, _env, _history = overall_agent
    result = evaluate_approaches(
        acc_case, "overall", num_cases=CASES_FIG4, horizon=HORIZON,
        seed=1, agent=agent,
    )

    bb_hist = result.saving_histogram("bang_bang")
    drl_hist = result.saving_histogram("drl")
    labels = [
        f"{int(100*a)}%-{int(100*b)}%"
        for a, b in zip(FIG4_BIN_EDGES[:-1], FIG4_BIN_EDGES[1:])
    ]
    rows = [
        (label, int(bb), int(drl))
        for label, bb, drl in zip(labels, bb_hist, drl_hist)
    ]
    emit(
        f"Fig. 4 — fuel-saving histogram ({CASES_FIG4} cases)",
        rows,
        ("saving bin", "bang-bang", "DRL"),
    )
    bb_mean = float(result.fuel_saving("bang_bang").mean())
    drl_mean = float(result.fuel_saving("drl").mean())
    emit(
        "Fig. 4 — mean fuel saving vs RMPC-only (paper: 16.28% / 23.83%)",
        [("bang-bang", pct(bb_mean)), ("DRL", pct(drl_mean))],
        ("approach", "mean saving"),
    )

    benchmark.extra_info["bang_bang_mean_saving"] = bb_mean
    benchmark.extra_info["drl_mean_saving"] = drl_mean
    benchmark.extra_info["bb_histogram"] = bb_hist.tolist()
    benchmark.extra_info["drl_histogram"] = drl_hist.tolist()
    benchmark.extra_info["drl_skip_rate"] = float(result.drl.skip_rate.mean())

    # Paper shape: both approaches save on average, DRL saves more.
    assert bb_mean > 0.0
    assert drl_mean > bb_mean

    # Timed kernel: one bang-bang episode of the histogram's workload.
    rng = np.random.default_rng(2)
    from repro.traffic import experiment_pattern

    pattern = experiment_pattern("overall", rng)
    x0 = acc_case.sample_initial_states(rng, 1)[0]
    W = acc_case.coords.disturbance_from_vf(pattern.generate(HORIZON))
    runner = IntermittentController(
        acc_case.system, acc_case.mpc, acc_case.make_monitor(),
        AlwaysSkipPolicy(), skip_input=acc_case.skip_input,
    )
    benchmark(lambda: runner.run(x0, W))
