"""Fork-based order-preserving parallel map.

The batch layers (:class:`repro.framework.runner.ParallelBatchRunner`,
:func:`repro.acc.experiments.evaluate_approaches`) fan episodes out over
worker processes.  They all go through :func:`fork_map`, which uses the
``fork`` start method deliberately:

* the mapped function and its captured objects (plants, controllers,
  polytopes, monitor factories — often lambdas) are *inherited* by the
  children through the process image, never pickled;
* only the per-item return values cross the result pipe, so they are the
  only thing that must be picklable (flat record dataclasses are);
* workers receive interleaved index chunks (``indices[j::jobs]``) so a
  systematic easy/hard gradient across the batch load-balances.

On platforms without ``fork`` (Windows, macOS spawn default) — or with
``jobs=1`` — the map degrades to a plain serial loop with identical
semantics, which is also what keeps results reproducible everywhere.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Callable, Iterable, List, Optional, Sequence

__all__ = ["fork_map", "fork_available", "resolve_jobs"]


def fork_available() -> bool:
    """True iff the ``fork`` start method exists on this platform."""
    return "fork" in mp.get_all_start_methods()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request to a positive worker count.

    ``None`` and 0 mean "one worker per available CPU"; negative values
    are rejected.
    """
    if jobs is None or jobs == 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # non-Linux
            return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError("jobs must be None or a positive integer")
    return int(jobs)


def _recv_result(proc, conn):
    """Read one worker's (status, payload) pair, surviving hard crashes."""
    try:
        return conn.recv()
    except EOFError:
        return "error", "worker exited without a result (killed or crashed?)"


def fork_map(
    fn: Callable,
    items: Iterable,
    jobs: Optional[int] = None,
) -> List:
    """Map ``fn`` over ``items`` on forked workers, preserving order.

    Args:
        fn: One-argument callable.  Closures and lambdas are fine (the
            children are forked, so ``fn`` is never pickled); its return
            value must be picklable.
        items: Finite iterable of inputs (materialised up front).
        jobs: Worker processes; ``None``/0 = one per CPU, 1 = serial.

    Returns:
        ``[fn(x) for x in items]`` — same values, same order.

    Raises:
        RuntimeError: If any worker raises or dies; the message carries
            the first worker-side error.
    """
    work = list(items)
    count = resolve_jobs(jobs)
    count = min(count, len(work))
    if count <= 1 or not fork_available():
        return [fn(item) for item in work]

    ctx = mp.get_context("fork")
    chunks = [list(range(j, len(work), count)) for j in range(count)]

    def worker(indices, conn):
        try:
            conn.send(("ok", [(i, fn(work[i])) for i in indices]))
        except BaseException as exc:  # noqa: BLE001 — relayed to the parent
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()

    procs = []
    for indices in chunks:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=worker, args=(indices, child_conn))
        proc.start()
        child_conn.close()
        procs.append((proc, parent_conn))

    results: List = [None] * len(work)
    errors: List[str] = []
    # Drain every pipe before joining: a worker blocked on a large send
    # cannot exit, so recv-then-join is the deadlock-free order.
    for proc, conn in procs:
        status, payload = _recv_result(proc, conn)
        if status == "ok":
            for index, value in payload:
                results[index] = value
        else:
            errors.append(payload)
    for proc, _conn in procs:
        proc.join()
    if errors:
        raise RuntimeError(f"fork_map worker failed: {errors[0]}")
    return results
