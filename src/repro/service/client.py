"""Stdlib HTTP client for the experiment service.

:class:`ServiceClient` wraps the JSON routes of
:mod:`repro.service.api` with typed helpers — submit a
:class:`~repro.experiments.plan.SweepPlan` (or a raw plan payload),
poll status/rows, fetch the finished
:class:`~repro.experiments.result.SweepResult` — using nothing beyond
``urllib.request``, so tests and the CLI need no extra dependency.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import List, Optional, Tuple

from repro.experiments.plan import SweepPlan
from repro.experiments.result import SweepResult
from repro.experiments.serialization import plan_to_dict

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An error response from the service (payload message + status)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """A client bound to one service base URL.

    Args:
        base_url: e.g. ``"http://127.0.0.1:8123"`` (no trailing slash
            required).
        timeout: Per-request socket timeout [s].
    """

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _request(self, method: str, path: str, payload=None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get(
                    "error", exc.reason
                )
            except ValueError:
                message = str(exc.reason)
            raise ServiceError(exc.code, message) from None

    # -- API -----------------------------------------------------------
    def health(self) -> dict:
        """``GET /v1/health``."""
        return self._request("GET", "/v1/health")

    def submit(self, plan) -> str:
        """Submit a plan; returns the job id.

        Args:
            plan: A :class:`SweepPlan` (serialised via
                :func:`~repro.experiments.serialization.plan_to_dict`)
                or an already-serial plan payload dict.
        """
        payload = (
            plan_to_dict(plan) if isinstance(plan, SweepPlan) else plan
        )
        return self._request("POST", "/v1/sweeps", payload)["id"]

    def status(self, job_id: str) -> dict:
        """``GET /v1/sweeps/{id}`` — the job's status snapshot."""
        return self._request("GET", f"/v1/sweeps/{job_id}")

    def jobs(self) -> List[dict]:
        """``GET /v1/sweeps`` — every job's status, submit order."""
        return self._request("GET", "/v1/sweeps")["jobs"]

    def rows(
        self, job_id: str, cursor: int = 0
    ) -> Tuple[List[dict], int, str]:
        """``GET /v1/sweeps/{id}/rows?cursor=N`` →
        ``(new_rows, next_cursor, state)``."""
        payload = self._request(
            "GET", f"/v1/sweeps/{job_id}/rows?cursor={int(cursor)}"
        )
        return payload["rows"], payload["cursor"], payload["state"]

    def result(self, job_id: str) -> SweepResult:
        """``GET /v1/sweeps/{id}/result`` as a :class:`SweepResult`
        (raises :class:`ServiceError` 409 until the job is done)."""
        payload = self._request("GET", f"/v1/sweeps/{job_id}/result")
        return SweepResult.from_payload(payload)

    def cancel(self, job_id: str) -> dict:
        """``POST /v1/sweeps/{id}/cancel``."""
        return self._request("POST", f"/v1/sweeps/{job_id}/cancel")

    def store_stats(self) -> dict:
        """``GET /v1/store/stats``."""
        return self._request("GET", "/v1/store/stats")

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll: float = 0.1,
    ) -> dict:
        """Poll until the job is terminal; returns its final status.

        Raises:
            TimeoutError: Still running after ``timeout`` seconds.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll)
