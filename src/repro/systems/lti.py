"""Discrete linear time-invariant systems with bounded disturbances.

Implements the plant of the paper's Eq. (1):

    x(t+1) = A x(t) + B u(t) + w(t),   x ∈ X, u ∈ U, w ∈ W,

where ``X``, ``U`` and ``W`` are polytopes containing the origin.  The class
bundles the matrices with the constraint sets because every downstream
algorithm (invariance, reachability, MPC tightening) needs all of them
together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.geometry import HPolytope
from repro.utils.validation import as_matrix, as_vector, check_square

__all__ = ["DiscreteLTISystem", "SimulationResult"]


@dataclass
class SimulationResult:
    """Trajectory produced by :meth:`DiscreteLTISystem.simulate`.

    Attributes:
        states: Array ``(T+1, n)`` of visited states (``states[0]`` is x0).
        inputs: Array ``(T, m)`` of applied inputs.
        disturbances: Array ``(T, n)`` of realised disturbances.
        safe: Boolean array ``(T+1,)``: state inside the safe set ``X``.
    """

    states: np.ndarray
    inputs: np.ndarray
    disturbances: np.ndarray
    safe: np.ndarray

    @property
    def energy(self) -> float:
        """Total actuation energy ``Σ_t ||u(t)||_1`` (paper's Problem 1)."""
        return float(np.abs(self.inputs).sum())

    @property
    def always_safe(self) -> bool:
        """True iff every visited state is inside the safe set."""
        return bool(np.all(self.safe))

    def __len__(self) -> int:
        return self.inputs.shape[0]


class DiscreteLTISystem:
    """The constrained discrete LTI plant of the paper (Eq. 1–2).

    Args:
        A: State matrix ``(n, n)``.
        B: Input matrix ``(n, m)``.
        safe_set: State constraint polytope ``X`` (must contain 0).
        input_set: Input constraint polytope ``U`` (must contain 0).
        disturbance_set: Disturbance polytope ``W`` (must contain 0).
            Disturbances enter additively in state space, so ``W`` lives in
            ``R^n`` (a disturbance affecting only some states is a flat
            polytope, e.g. a box with zero width on the unaffected axes).

    Raises:
        ValueError: On dimension mismatches or when a constraint set does
            not contain the origin (the paper's standing assumption).
    """

    def __init__(
        self,
        A,
        B,
        safe_set: HPolytope,
        input_set: HPolytope,
        disturbance_set: HPolytope,
    ):
        self.A = check_square(as_matrix(A, "A"), "A")
        self.B = as_matrix(B, "B")
        if self.B.shape[0] != self.A.shape[0]:
            raise ValueError(
                f"B has {self.B.shape[0]} rows, A is {self.A.shape[0]}x{self.A.shape[0]}"
            )
        if safe_set.dim != self.n:
            raise ValueError("safe_set dimension must equal state dimension")
        if input_set.dim != self.m:
            raise ValueError("input_set dimension must equal input dimension")
        if disturbance_set.dim != self.n:
            raise ValueError(
                "disturbance_set must live in state space R^n "
                "(lift input-channel disturbances before constructing)"
            )
        for poly, name in (
            (safe_set, "safe_set"),
            (input_set, "input_set"),
            (disturbance_set, "disturbance_set"),
        ):
            if not poly.contains(np.zeros(poly.dim), tol=1e-6):
                raise ValueError(f"{name} must contain the origin (paper Eq. 2)")
        self.safe_set = safe_set
        self.input_set = input_set
        self.disturbance_set = disturbance_set

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """State dimension."""
        return self.A.shape[0]

    @property
    def m(self) -> int:
        """Input dimension."""
        return self.B.shape[1]

    def step(self, state, control, disturbance=None) -> np.ndarray:
        """One step of the dynamics ``A x + B u + w``.

        ``disturbance`` defaults to zero (the nominal system used by the
        tube-MPC predictions).

        The matvecs are evaluated as multiply + pairwise row reduction
        rather than BLAS ``@``: the reduction's rounding depends only on
        the contraction length, so :meth:`step_batch` reproduces this
        result bit for bit — BLAS picks different kernels for gemv/gemm
        and for different batch heights, which would break the batch
        engines' record-for-record determinism contract.
        """
        x = as_vector(state, "state")
        u = as_vector(control, "control")
        nxt = np.sum(self.A * x, axis=1) + np.sum(self.B * u, axis=1)
        if disturbance is not None:
            nxt = nxt + as_vector(disturbance, "disturbance")
        return nxt

    def step_batch(self, states, controls, disturbances=None) -> np.ndarray:
        """One dynamics step for ``N`` trajectories at once.

        The lockstep engine's replacement for ``N`` scalar :meth:`step`
        calls.  Row ``i`` is bitwise-equal to ``step(states[i], …)``: both
        paths share the multiply + pairwise-reduce evaluation (see
        :meth:`step`), whose rounding is independent of the batch height.

        Args:
            states: ``(N, n)`` state matrix.
            controls: ``(N, m)`` input matrix.
            disturbances: Optional ``(N, n)`` disturbance matrix (defaults
                to zero, matching :meth:`step`).

        Returns:
            ``(N, n)`` array; row ``i`` equals ``step(states[i],
            controls[i], disturbances[i])``.
        """
        X = np.atleast_2d(np.asarray(states, dtype=float))
        U = np.atleast_2d(np.asarray(controls, dtype=float))
        if X.shape[1] != self.n:
            raise ValueError(f"states must be (N, {self.n}), got {X.shape}")
        if U.shape != (X.shape[0], self.m):
            raise ValueError(
                f"controls must be ({X.shape[0]}, {self.m}), got {U.shape}"
            )
        nxt = np.sum(self.A * X[:, None, :], axis=2) + np.sum(
            self.B * U[:, None, :], axis=2
        )
        if disturbances is not None:
            W = np.atleast_2d(np.asarray(disturbances, dtype=float))
            if W.shape != X.shape:
                raise ValueError(
                    f"disturbances must be {X.shape}, got {W.shape}"
                )
            nxt = nxt + W
        return nxt

    def closed_loop_matrix(self, K) -> np.ndarray:
        """``A + B K`` for a feedback gain ``K`` of shape ``(m, n)``."""
        K = as_matrix(K, "K")
        if K.shape != (self.m, self.n):
            raise ValueError(f"K must be ({self.m}, {self.n}), got {K.shape}")
        return self.A + self.B @ K

    def simulate(
        self,
        x0,
        policy: Callable[[int, np.ndarray], np.ndarray],
        disturbances,
        clip_input: bool = True,
    ) -> SimulationResult:
        """Roll the closed loop forward under a state-feedback policy.

        Args:
            x0: Initial state.
            policy: Callable ``(t, x) -> u``.
            disturbances: Either an array ``(T, n)`` of disturbance
                realisations or a callable ``(t, x) -> w``.
            clip_input: If True, project the policy output onto the box
                hull of ``U`` componentwise (models actuator saturation).

        Returns:
            A :class:`SimulationResult` covering all ``T`` steps.
        """
        x = as_vector(x0, "x0")
        if callable(disturbances):
            w_fn = disturbances
            horizon = None
            raise ValueError(
                "pass a pre-sampled (T, n) disturbance array; callables "
                "make results non-reproducible across policies"
            )
        W = np.atleast_2d(np.asarray(disturbances, dtype=float))
        horizon = W.shape[0]
        lo, hi = (None, None)
        if clip_input:
            lo, hi = self.input_set.bounding_box()
        states = np.empty((horizon + 1, self.n))
        inputs = np.empty((horizon, self.m))
        states[0] = x
        for t in range(horizon):
            u = as_vector(policy(t, states[t]), "policy output")
            if clip_input:
                u = np.clip(u, lo, hi)
            inputs[t] = u
            states[t + 1] = self.step(states[t], u, W[t])
        safe = self.safe_set.contains_points(states)
        return SimulationResult(states=states, inputs=inputs, disturbances=W, safe=safe)

    def __repr__(self) -> str:
        return f"DiscreteLTISystem(n={self.n}, m={self.m})"
