"""One-step predecessor (Pre) operators.

All invariance and reachability computations reduce to three predecessor
maps for the dynamics ``x⁺ = A x + B u + w`` with ``w ∈ W``:

* ``pre_autonomous``: closed loop ``x⁺ = M x + w`` (e.g. ``M = A + B K``);
* ``pre_fixed_input``: a constant input (the skip input of the paper);
* ``pre_controllable``: existential input ``∃ u ∈ U`` (general RCI / the
  feasible-set recursion), computed exactly by Fourier–Motzkin projection.

Each returns ``{x : ∀ w ∈ W, x⁺ ∈ target}`` — the *robust* predecessor.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import HPolytope, project_onto
from repro.utils.validation import as_matrix, as_vector

__all__ = ["pre_autonomous", "pre_fixed_input", "pre_controllable"]


def pre_autonomous(M, target: HPolytope, disturbance: HPolytope) -> HPolytope:
    """``{x : M x ⊕ W ⊆ target}`` for autonomous dynamics ``x⁺ = M x + w``.

    Exact: erode the target by ``W`` then take the linear preimage.
    """
    M = as_matrix(M, "M")
    eroded = target.pontryagin_difference(disturbance)
    return eroded.linear_preimage(M)


def pre_fixed_input(
    A, B, fixed_input, target: HPolytope, disturbance: HPolytope
) -> HPolytope:
    """``{x : A x + B u₀ ⊕ W ⊆ target}`` for a constant input ``u₀``.

    This is the paper's backward reachable set ``B(target, z=0)`` when
    ``u₀`` is the skip input (``A⁻¹(XI ⊖ W)`` in the paper's notation for
    ``u₀ = 0`` — our preimage form needs no invertibility).
    """
    A = as_matrix(A, "A")
    B = as_matrix(B, "B")
    u0 = as_vector(fixed_input, "fixed_input")
    eroded = target.pontryagin_difference(disturbance)
    return eroded.linear_preimage(A, offset=B @ u0)


def pre_controllable(
    A,
    B,
    input_set: HPolytope,
    target: HPolytope,
    disturbance: HPolytope,
) -> HPolytope:
    """``{x : ∃ u ∈ U, A x + B u ⊕ W ⊆ target}``.

    Built as the projection onto ``x`` of the lifted polytope

        {(x, u) : H_T (A x + B u) <= h_T - support_W,  H_U u <= h_U},

    which Fourier–Motzkin eliminates exactly (input dimension is small in
    every use of this library).
    """
    A = as_matrix(A, "A")
    B = as_matrix(B, "B")
    n = A.shape[0]
    m = B.shape[1]
    if input_set.dim != m:
        raise ValueError("input_set dimension must match B's column count")
    eroded = target.pontryagin_difference(disturbance)
    # Lifted constraints over (x, u).
    H_dyn = np.hstack([eroded.H @ A, eroded.H @ B])
    h_dyn = eroded.h
    H_u = np.hstack([np.zeros((input_set.num_constraints, n)), input_set.H])
    h_u = input_set.h
    lifted = HPolytope(np.vstack([H_dyn, H_u]), np.concatenate([h_dyn, h_u]))
    return project_onto(lifted, keep=n)
