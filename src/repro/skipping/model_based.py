"""Model-based skipping decision (paper Eq. 6).

When the safe controller has an analytic form ``κ(x) = K x`` and the
perturbation ``w(t)`` is known ahead of time, the skipping choice can be
optimised directly.  At every step the policy solves the finite-horizon
problem

    min_{z, u, x}  Σ_{k=0}^{H-1} ||u(k)||_1
    s.t.  x(k+1) = A x(k) + B u(k) + w(k)
          x(k+1) ∈ X',  u(k) ∈ U
          u(k) = z(k) · κ(x(k)),  z(k) ∈ {0, 1}
          x(0) = x(t)

and applies the first element of the optimal ``z`` sequence (receding
horizon, exactly like MPC — the paper's Remark 1).

Two solvers are provided:

* :class:`MILPSkippingPolicy` — exact mixed-integer LP via
  ``scipy.optimize.milp`` (HiGHS) using a big-M encoding of the product
  ``z(k) · K x(k)``.  Requires linear feedback κ.
* :class:`ExhaustiveSkippingPolicy` — enumerates all ``2^H`` skip
  sequences and simulates each with the *actual* controller, so it works
  for any κ (including RMPC); exponential, intended for small ``H`` and
  as ground truth for the MILP in tests.
"""

from __future__ import annotations

from itertools import product
from typing import Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.controllers.base import Controller
from repro.geometry import HPolytope
from repro.skipping.base import RUN, SKIP, DecisionContext, SkippingPolicy
from repro.systems.lti import DiscreteLTISystem
from repro.utils.validation import as_matrix

__all__ = ["MILPSkippingPolicy", "ExhaustiveSkippingPolicy"]


class MILPSkippingPolicy(SkippingPolicy):
    """Exact Eq.-(6) optimiser for linear feedback controllers.

    Args:
        system: The plant (provides A, B, U).
        gain: Feedback gain ``K`` with ``κ(x) = K x``.
        strengthened_set: ``X'`` — planned states are confined to it so
            skipping stays available along the plan.
        horizon: Planning horizon ``H``.
        fallback: Decision returned when the MILP is infeasible at the
            current state (default: run the controller — always safe).

    Notes:
        The policy requires ``context.future_disturbances`` (construct the
        :class:`repro.framework.IntermittentController` with
        ``reveal_future=True``).  Missing future information raises,
        because silently degrading to a heuristic would contaminate the
        model-based experiments.
    """

    def __init__(
        self,
        system: DiscreteLTISystem,
        gain,
        strengthened_set: HPolytope,
        horizon: int = 5,
        fallback: int = RUN,
    ):
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.system = system
        self.K = as_matrix(gain, "gain")
        if self.K.shape != (system.m, system.n):
            raise ValueError("gain shape must be (m, n)")
        self.strengthened_set = strengthened_set
        self.horizon = int(horizon)
        self.fallback = fallback
        self._infeasible_count = 0
        # Big-M values from the support of X' in the gain directions.
        big = []
        for row in self.K:
            big.append(
                max(strengthened_set.support(row), strengthened_set.support(-row))
            )
        self._big_m0 = np.array(big) + 1.0
        self._big_m1 = 2.0 * self._big_m0 + 1.0

    @property
    def infeasible_count(self) -> int:
        """How many decisions fell back due to MILP infeasibility."""
        return self._infeasible_count

    def decide(self, context: DecisionContext) -> int:
        if context.future_disturbances is None:
            raise ValueError(
                "MILPSkippingPolicy needs future disturbances; run the "
                "framework with reveal_future=True"
            )
        W = np.atleast_2d(context.future_disturbances)
        H = min(self.horizon, W.shape[0])
        if H == 0:
            return self.fallback
        plan = self._solve(context.state, W[:H])
        if plan is None:
            self._infeasible_count += 1
            return self.fallback
        return RUN if plan[0] == 1 else SKIP

    # ------------------------------------------------------------------
    def _solve(self, x0, W) -> Optional[np.ndarray]:
        """Solve the MILP; returns the optimal z sequence or None.

        Variable layout: ``[x(1..H) | u(0..H-1) | su(0..H-1) | z(0..H-1)]``.
        """
        A, B = self.system.A, self.system.B
        K = self.K
        n, m = self.system.n, self.system.m
        H = W.shape[0]
        Xp, U = self.strengthened_set, self.system.input_set
        nx, nu = H * n, H * m
        total = nx + 2 * nu + H

        def xs(k):  # x(k), valid for k >= 1
            return slice((k - 1) * n, k * n)

        def us(k):
            return slice(nx + k * m, nx + (k + 1) * m)

        def ss(k):
            return slice(nx + nu + k * m, nx + nu + (k + 1) * m)

        def zi(k):
            return nx + 2 * nu + k

        cost = np.zeros(total)
        for k in range(H):
            cost[ss(k)] = 1.0

        rows, lbs, ubs = [], [], []

        def add(row, lb, ub):
            rows.append(row)
            lbs.append(lb)
            ubs.append(ub)

        # Dynamics equalities.
        for k in range(H):
            for i in range(n):
                row = np.zeros(total)
                rhs = W[k][i]
                if k == 0:
                    rhs += float(A[i] @ x0)
                else:
                    row[xs(k)] = -A[i]
                row[xs(k + 1)][i] = 1.0
                # x(k+1)_i - A_i x(k) - B_i u(k) = w_i  (A x0 folded into rhs)
                row[us(k)] = -B[i]
                add(row, rhs, rhs)

        # State constraints x(k) ∈ X' for k = 1..H.
        for k in range(1, H + 1):
            for a, b in zip(Xp.H, Xp.h):
                row = np.zeros(total)
                row[xs(k)] = a
                add(row, -np.inf, b)

        # Input constraints u(k) ∈ U.
        for k in range(H):
            for a, b in zip(U.H, U.h):
                row = np.zeros(total)
                row[us(k)] = a
                add(row, -np.inf, b)

        # Epigraph |u| <= su.
        for k in range(H):
            for i in range(m):
                for sign in (1.0, -1.0):
                    row = np.zeros(total)
                    row[us(k)][i] = sign
                    row[ss(k)][i] = -1.0
                    add(row, -np.inf, 0.0)

        # Big-M linking u(k) = z(k) K x(k).
        for k in range(H):
            kx_const = K @ np.asarray(x0, dtype=float) if k == 0 else None
            for i in range(m):
                m0 = self._big_m0[i]
                m1 = self._big_m1[i]
                # |u_i| <= M0 z.
                for sign in (1.0, -1.0):
                    row = np.zeros(total)
                    row[us(k)][i] = sign
                    row[zi(k)] = -m0
                    add(row, -np.inf, 0.0)
                # |u_i - (K x(k))_i| <= M1 (1 - z).
                for sign in (1.0, -1.0):
                    row = np.zeros(total)
                    row[us(k)][i] = sign
                    row[zi(k)] = m1
                    rhs = m1
                    if k == 0:
                        rhs += sign * kx_const[i]
                    else:
                        row[xs(k)] = -sign * K[i]
                    add(row, -np.inf, rhs)

        constraints = LinearConstraint(np.array(rows), np.array(lbs), np.array(ubs))
        integrality = np.zeros(total)
        lower = np.full(total, -np.inf)
        upper = np.full(total, np.inf)
        for k in range(H):
            integrality[zi(k)] = 1
            lower[zi(k)] = 0.0
            upper[zi(k)] = 1.0
        res = milp(
            cost,
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(lower, upper),
        )
        if not res.success:
            return None
        z = np.round(res.x[nx + 2 * nu :]).astype(int)
        return z


class ExhaustiveSkippingPolicy(SkippingPolicy):
    """Brute-force Eq.-(6) solver for arbitrary controllers.

    Simulates all ``2^H`` skip sequences with the real controller κ and
    the known disturbances, discards sequences that leave ``X'`` or
    violate ``U``, and picks the minimum-energy one.  ``H`` beyond ~8 is
    impractical by design.
    """

    def __init__(
        self,
        system: DiscreteLTISystem,
        controller: Controller,
        strengthened_set: HPolytope,
        horizon: int = 4,
        skip_input=None,
        fallback: int = RUN,
    ):
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if horizon > 12:
            raise ValueError("exhaustive search beyond H=12 is intractable")
        self.system = system
        self.controller = controller
        self.strengthened_set = strengthened_set
        self.horizon = int(horizon)
        self.skip_input = (
            np.zeros(system.m) if skip_input is None else np.asarray(skip_input, float)
        )
        self.fallback = fallback
        self._infeasible_count = 0

    @property
    def infeasible_count(self) -> int:
        """How many decisions fell back because no sequence was feasible."""
        return self._infeasible_count

    def decide(self, context: DecisionContext) -> int:
        if context.future_disturbances is None:
            raise ValueError(
                "ExhaustiveSkippingPolicy needs future disturbances; run "
                "the framework with reveal_future=True"
            )
        W = np.atleast_2d(context.future_disturbances)
        H = min(self.horizon, W.shape[0])
        if H == 0:
            return self.fallback
        best_cost = np.inf
        best_first = None
        for sequence in product((SKIP, RUN), repeat=H):
            cost = self._evaluate(context.state, sequence, W[:H])
            if cost is not None and cost < best_cost - 1e-12:
                best_cost = cost
                best_first = sequence[0]
        if best_first is None:
            self._infeasible_count += 1
            return self.fallback
        return best_first

    def _evaluate(self, x0, sequence, W) -> Optional[float]:
        """Energy of one skip sequence, or None if it violates X'/U."""
        x = np.asarray(x0, dtype=float)
        energy = 0.0
        for k, z in enumerate(sequence):
            if z == RUN:
                u = np.asarray(self.controller.compute(x), dtype=float)
                if not self.system.input_set.contains(u, tol=1e-6):
                    return None
            else:
                u = self.skip_input
            x = self.system.step(x, u, W[k])
            if not self.strengthened_set.contains(x, tol=1e-7):
                return None
            energy += float(np.abs(u).sum())
        return energy
