"""Per-stage wall-clock profiling for the lockstep engines.

The lockstep step loop is a pipeline of a few numpy passes — classify,
decide, control, step — and every claimed optimisation of it should be
*measured*, not asserted.  :class:`StageProfiler` is the measurement
instrument: an explicit, allocation-free accumulator of per-stage
seconds and call counts that the lockstep entry points thread through
their hot loops.

Design constraints, in order:

* **Near-zero overhead when absent.**  The engines take ``profiler=None``
  by default and guard every instrumentation site with a single
  ``is not None`` test — no context managers, no decorators, no dict
  lookups on the disabled path.  A constructed-but-disabled profiler
  (``StageProfiler(enabled=False)``) is normalised to ``None`` at the
  engine boundary, so passing one costs the same as passing nothing.
* **Chainable on the enabled path.**  Consecutive stages share clock
  reads: :meth:`StageProfiler.add` returns the ``perf_counter`` value it
  just took, which is the next stage's start tick — one clock read per
  stage boundary instead of two.
* **Free-form stages.**  Stage names are plain strings; the numpy
  lockstep path reports ``classify`` / ``decide`` / ``control`` /
  ``step`` (context materialisation is charged to ``decide``) and the
  compiled fast path reports a single fused ``kernel`` stage (see
  :mod:`repro.framework.kernel`).

Typical use::

    profiler = StageProfiler()
    run_lockstep(..., profiler=profiler)
    report = profiler.report()   # stage -> {seconds, calls, share}

``benchmarks/bench_lockstep.py --profile`` wires exactly this into the
committed ``BENCH_lockstep.json`` perf artifact.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional

__all__ = ["StageProfiler", "active_profiler"]


class StageProfiler:
    """Accumulates wall-clock seconds and call counts per named stage.

    Attributes:
        enabled: When False the engines treat the profiler exactly like
            ``None`` (no instrumentation at all, not even clock reads).
    """

    __slots__ = ("enabled", "_seconds", "_calls")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Hot-path API (engine side)
    # ------------------------------------------------------------------
    @staticmethod
    def tick() -> float:
        """A start timestamp for the next :meth:`add` call."""
        return perf_counter()

    def add(self, stage: str, tick: float) -> float:
        """Charge ``now − tick`` seconds to ``stage``; return ``now``.

        Returning the fresh timestamp lets back-to-back stages chain
        (``tick = profiler.add("classify", tick)``) with one clock read
        per boundary.
        """
        now = perf_counter()
        self._seconds[stage] = self._seconds.get(stage, 0.0) + (now - tick)
        self._calls[stage] = self._calls.get(stage, 0) + 1
        return now

    def count(self, stage: str, calls: int = 1) -> None:
        """Record ``calls`` occurrences of ``stage`` without timing them
        (used for per-run counters like episodes and steps)."""
        self._calls[stage] = self._calls.get(stage, 0) + calls
        self._seconds.setdefault(stage, 0.0)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def stages(self) -> tuple:
        """Stage names in first-seen order."""
        return tuple(self._seconds)

    def seconds(self, stage: str) -> float:
        """Total seconds charged to ``stage`` (0.0 if never seen)."""
        return self._seconds.get(stage, 0.0)

    def calls(self, stage: str) -> int:
        """Times ``stage`` was charged or counted (0 if never seen)."""
        return self._calls.get(stage, 0)

    def total_seconds(self) -> float:
        """Sum over all stages."""
        return sum(self._seconds.values())

    def report(self) -> dict:
        """``{stage: {"seconds", "calls", "share"}}`` in first-seen order.

        ``share`` is the stage's fraction of :meth:`total_seconds`
        (0.0 for an empty profiler), which is what the benchmark artifact
        records — absolute seconds drift with the machine, the breakdown
        shape is what successive commits compare.
        """
        total = self.total_seconds()
        return {
            stage: {
                "seconds": self._seconds[stage],
                "calls": self._calls.get(stage, 0),
                "share": (self._seconds[stage] / total) if total > 0 else 0.0,
            }
            for stage in self._seconds
        }

    def merge(self, other: "StageProfiler") -> "StageProfiler":
        """Fold another profiler's accumulators into this one."""
        for stage in other._seconds:
            self._seconds[stage] = (
                self._seconds.get(stage, 0.0) + other._seconds[stage]
            )
            self._calls[stage] = self._calls.get(stage, 0) + other._calls.get(
                stage, 0
            )
        return self

    def reset(self) -> None:
        """Drop every accumulator (the ``enabled`` flag is kept)."""
        self._seconds.clear()
        self._calls.clear()

    def __repr__(self) -> str:
        body = ", ".join(
            f"{stage}={self._seconds[stage]:.4f}s/{self._calls.get(stage, 0)}"
            for stage in self._seconds
        )
        return f"StageProfiler({'on' if self.enabled else 'off'}; {body})"


def active_profiler(profiler: Optional[StageProfiler]) -> Optional[StageProfiler]:
    """Normalise the engines' ``profiler`` argument for the hot loop:
    a disabled profiler becomes ``None`` so every instrumentation site
    stays a single ``is not None`` test."""
    if profiler is not None and profiler.enabled:
        return profiler
    return None
