"""Weakly-hard (m, K) constrained skipping.

The paper's related-work section contrasts its *proactive* skipping with
weakly-hard real-time systems, where at most ``m`` deadline misses are
tolerated in any ``K`` consecutive instances.  This module provides that
discipline as a policy combinator: wrap any skipping policy and the
wrapper vetoes skips that would violate the (m, K) constraint over the
realised decision history.

This gives a principled middle ground between bang-bang (unbounded skip
bursts) and always-run, and lets the benchmarks compare the paper's
set-membership safety gate against the classical pattern-based one.
"""

from __future__ import annotations

from collections import deque

from repro.skipping.base import RUN, SKIP, DecisionContext, SkippingPolicy

__all__ = ["WeaklyHardPolicy"]


class WeaklyHardPolicy(SkippingPolicy):
    """Enforce an (m, K) bound on skips over any sliding window.

    Args:
        inner: The policy proposing decisions.
        max_skips: ``m`` — maximum skips tolerated …
        window: … in any ``K`` consecutive steps.

    The wrapper only ever *strengthens* decisions (turns SKIP into RUN),
    so safety guarantees of the surrounding framework are unaffected.
    """

    def __init__(self, inner: SkippingPolicy, max_skips: int, window: int):
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0 <= max_skips <= window:
            raise ValueError("max_skips must be in [0, window]")
        self.inner = inner
        self.max_skips = int(max_skips)
        self.window = int(window)
        # The sliding window of K decisions is the new one plus the last
        # K−1 — only those need remembering.
        self._history: deque = deque(maxlen=max(window - 1, 1))

    def decide(self, context: DecisionContext) -> int:
        proposed = self.inner.decide(context)
        recent_skips = (
            sum(1 for d in self._history if d == SKIP) if self.window > 1 else 0
        )
        if proposed == SKIP and recent_skips >= self.max_skips:
            decision = RUN
        else:
            decision = proposed
        if self.window > 1:
            self._history.append(decision)
        return decision

    def observe(self, context, decision, forced, next_state, applied_input):
        # A monitor-forced RUN overrides what decide() recorded; fix the
        # history so the window reflects the *actual* actuation pattern.
        if forced and self._history:
            self._history[-1] = RUN
        self.inner.observe(context, decision, forced, next_state, applied_input)

    def reset(self) -> None:
        self._history.clear()
        self.inner.reset()
