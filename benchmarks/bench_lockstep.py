"""Episodes/sec of the three batch engines: serial vs parallel vs lockstep.

Standalone script (not a pytest-benchmark kernel) so CI can smoke it at
tiny scale and operators can size batches::

    PYTHONPATH=src python benchmarks/bench_lockstep.py \
        --episodes 256 --horizon 100 --jobs 2

It runs the same seeded bang-bang batch on the ACC case study through
every engine and cross-checks every row under the two-tier determinism
contract (see ``repro.framework.lockstep``); any failed check makes the
script exit non-zero:

* **bitwise** rows (closed-form controllers; every engine for them, plus
  the ``lockstep-exact`` audit row of LP controllers) must produce
  record-for-record identical deterministic fields to the serial
  reference — the differential guarantee the test suite proves at small
  scale;
* **plan-equivalent** rows (the lockstep engine's stacked block-diagonal
  κ_R solves) must match the scalar solves' optimal cost within 1e-9
  with feasible first inputs (``verify_plan_equivalence``) and finish
  every episode with zero safety violations.

Two controller configurations are timed:

* ``linear`` — an LQR feedback (vectorised ``compute_batch``, non-strict
  monitor).  Every per-step cost is batchable, so this row isolates the
  engine overhead: it is where lockstep's single-core speedup shows,
  while fork-based parallelism pays overhead on a single-CPU container.
* ``rmpc`` — the paper's robust MPC κ_R.  Lockstep stacks the per-step
  Eq.-5 LPs of all running episodes into one sparse block-diagonal HiGHS
  solve (``RobustMPC.solve_batch``); the ``lockstep-exact`` row times the
  ``exact_solves=True`` audit mode, which keeps the scalar path and so
  bounds what the engine alone buys.

A third section times the *LP backends* head to head on the stacked
κ_R solve itself (``--warm-steps N``): the same receding-horizon batch
sequence is solved by the cold scipy path (every step re-factorises)
and — when the optional ``highspy`` extra is installed — by the
warm-started persistent-HiGHS backend (the model is passed once, each
step only rewrites the initial-state equality RHS and reuses the
incumbent basis).  The row is judged by *solve time per lockstep step*;
both backends must attain identical per-step total optimal cost
(plan-equivalent tier).  Without ``highspy`` the highs row is skipped
and the artifact records ``highs_available: false``.

Every run also writes a ``BENCH_lockstep.json`` perf-trajectory artifact
(per-row episodes/sec + speedups, machine info) so successive commits
can be compared; disable with ``--artifact ''``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from machine import machine_info, visible_cpus

from repro.acc import acc_disturbance_factory, build_case_study
from repro.controllers import LinearFeedback, lqr_gain, verify_plan_equivalence
from repro.framework import (
    BatchRunner,
    ParallelBatchRunner,
    StageProfiler,
    numba_available,
)
from repro.observability import metrics as _obs
from repro.skipping import AlwaysSkipPolicy


def _configurations(case) -> dict:
    """controller-name -> (controller, monitor_factory) pairs to bench."""
    system = case.system
    lo, hi = system.input_set.bounding_box()
    lqr = LinearFeedback(
        lqr_gain(system.A, system.B, np.eye(system.n), np.eye(system.m)),
        saturation=(lo, hi),
    )
    return {
        # Non-strict monitor: the LQR is not the certified κ, so XI
        # excursions must be recorded (identically per engine), not raised.
        "linear": (lqr, lambda: case.make_monitor(strict=False)),
        "rmpc": (case.mpc, case.make_monitor),
    }


def run_benchmark(
    episodes: int,
    horizon: int,
    jobs: int,
    seed: int,
    experiment: str = "overall",
    controllers=("linear", "rmpc"),
    profile: bool = False,
) -> dict:
    """Time one batch per (controller configuration, engine).

    The ``linear`` configuration gets two extra lockstep rows on top of
    the plain (fused-numpy, timing-on) one: ``lockstep-fast`` drops the
    per-row wall-clock amortisation (``collect_timing=False``), and —
    when the optional numba extra is importable — ``lockstep-kernel``
    runs the compiled closed-form step kernel (JIT warm-up excluded from
    the timed run).  Both stay on the bitwise contract.  With
    ``profile=True`` every lockstep row carries a per-stage wall-clock
    breakdown (:class:`~repro.framework.StageProfiler`).

    Returns:
        Dict with per-configuration throughput, speedup over that
        configuration's serial baseline, the determinism contract each
        row was checked under, its pass/fail flag (``ok``), and the
        run's telemetry snapshot (``telemetry``) — the whole benchmark
        runs under its own enabled registry.
    """
    with _obs.scoped_registry(enabled=True) as reg:
        report = _run_benchmark(
            episodes, horizon, jobs, seed, experiment, controllers, profile
        )
        report["telemetry"] = reg.snapshot()
    return report


def _run_benchmark(
    episodes: int,
    horizon: int,
    jobs: int,
    seed: int,
    experiment: str,
    controllers,
    profile: bool,
) -> dict:
    case = build_case_study()
    factory = acc_disturbance_factory(case, experiment, horizon)
    rng = np.random.default_rng(seed)
    states = case.sample_initial_states(rng, episodes)
    available = _configurations(case)

    rows = []
    for name in controllers:
        controller, monitor_factory = available[name]
        bitwise = getattr(controller, "bitwise_batch", True)
        profilers = {}

        def make_runner(cls, **extra):
            return cls(
                case.system,
                controller,
                monitor_factory=monitor_factory,
                policy_factory=AlwaysSkipPolicy,
                skip_input=case.skip_input,
                **extra,
            )

        def lockstep_runner(engine_name, **extra):
            if profile:
                profilers[engine_name] = extra["profiler"] = StageProfiler()
            return make_runner(BatchRunner, engine="lockstep", **extra)

        def timed(runner):
            tick = time.perf_counter()
            result = runner.run_seeded(states, factory, root_seed=seed)
            return result, time.perf_counter() - tick

        serial_result, serial_seconds = timed(make_runner(BatchRunner))
        reference = serial_result.deterministic_records()
        engines = [
            ("serial", make_runner(BatchRunner), "bitwise",
             serial_result, serial_seconds),
            ("parallel", make_runner(ParallelBatchRunner, jobs=jobs),
             "bitwise", None, None),
            ("lockstep", lockstep_runner("lockstep", kernel="numpy"),
             "bitwise" if bitwise else "plan-equivalent", None, None),
        ]
        if bitwise:
            # Fused numpy path with per-row timing amortisation skipped.
            engines.append(
                ("lockstep-fast",
                 lockstep_runner("lockstep-fast", kernel="numpy",
                                 collect_timing=False),
                 "bitwise", None, None)
            )
            if numba_available():
                # Untimed JIT warm-up so the row measures steady state.
                make_runner(
                    BatchRunner, engine="lockstep", kernel="numba",
                    collect_timing=False,
                ).run_seeded(states[:2], factory, root_seed=seed)
                engines.append(
                    ("lockstep-kernel",
                     lockstep_runner("lockstep-kernel", kernel="numba",
                                     collect_timing=False),
                     "bitwise", None, None)
                )
        if not bitwise:
            # Audit mode: scalar solves restore bitwise parity, timing
            # what the engine alone (without solve stacking) buys.
            engines.append(
                ("lockstep-exact",
                 make_runner(BatchRunner, engine="lockstep",
                             exact_solves=True),
                 "bitwise", None, None)
            )
        for engine, runner, contract, result, seconds in engines:
            if result is None:
                result, seconds = timed(runner)
            identical = result.deterministic_records() == reference
            if contract == "bitwise":
                ok = identical
                equivalence = None
            else:
                # Plan-equivalent tier: every episode violation-free and
                # the stacked solve cost-identical (1e-9) to the scalar
                # solve with feasible first inputs, probed at the batch's
                # initial states.
                violation_free = all(
                    record.max_violation <= 0.0 for record in result.records
                )
                equivalence = verify_plan_equivalence(controller, states)
                ok = violation_free and equivalence["equivalent"]
                equivalence = {**equivalence, "violation_free": violation_free}
            row = {
                "controller": name,
                "engine": engine,
                "jobs": jobs if engine == "parallel" else 1,
                "contract": contract,
                "seconds": seconds,
                "episodes_per_sec": episodes / seconds,
                "speedup": serial_seconds / seconds,
                "identical": identical,
                "ok": ok,
                "equivalence": equivalence,
            }
            if engine in profilers:
                row["profile"] = profilers[engine].report()
            rows.append(row)
    return {
        "episodes": episodes,
        "horizon": horizon,
        "seed": seed,
        "cpus": visible_cpus(),
        "machine": machine_info(),
        "numba_available": numba_available(),
        "profiled": profile,
        "rows": rows,
    }


def run_warm_start_benchmark(
    episodes: int,
    steps: int,
    seed: int,
    case=None,
) -> dict:
    """Solve-time per lockstep step of the stacked κ_R solve, per backend.

    Materialises one nominal receding-horizon state sequence (each step's
    batch is the previous step's planned next states), then times each
    backend over the *identical* sequence — so the scipy row pays a cold
    stacked solve per step while the highs row warm-starts from the
    previous basis, and their per-step total costs must agree within the
    plan-equivalent tolerance.

    Returns:
        Dict with ``highs_available``, per-backend rows (seconds,
        solve-ms/step, speedup over scipy, max per-step cost deviation,
        ``ok``) and the workload shape.
    """
    from repro.utils.lp import reset_stack_cache_stats
    from repro.utils.lp_backends import highs_available

    if case is None:
        case = build_case_study()
    mpc = case.mpc
    states = case.sample_initial_states(np.random.default_rng(seed), episodes)

    # Reference rollout (scipy): fixes the batches both backends solve
    # and the per-step total optimal costs they must both attain.
    mpc.set_lp_backend("scipy")
    sequence = [states]
    reference_costs = []
    for _ in range(steps):
        solutions = mpc.solve_batch(sequence[-1])
        reference_costs.append(sum(sol.cost for sol in solutions))
        sequence.append(np.stack([sol.states[1] for sol in solutions]))
    sequence = sequence[:steps]
    tol = 1e-8 * max(1, episodes)

    rows = []
    backends = ["scipy"] + (["highs"] if highs_available() else [])
    scipy_seconds = None
    for backend in backends:
        mpc.set_lp_backend(backend)
        mpc.release_stacks()  # cold start for every timed row
        reset_stack_cache_stats()
        max_cost_diff = 0.0
        tick = time.perf_counter()
        for step_states, reference in zip(sequence, reference_costs):
            solutions = mpc.solve_batch(step_states)
            max_cost_diff = max(
                max_cost_diff,
                abs(sum(sol.cost for sol in solutions) - reference),
            )
        seconds = time.perf_counter() - tick
        if backend == "scipy":
            scipy_seconds = seconds
        rows.append(
            {
                "backend": backend,
                "seconds": seconds,
                "solve_ms_per_step": 1e3 * seconds / steps,
                "speedup_vs_scipy": scipy_seconds / seconds,
                "warm_solves": getattr(mpc._persistent, "warm_solves", 0)
                if backend == "highs"
                else 0,
                "max_cost_diff": max_cost_diff,
                "ok": max_cost_diff <= tol,
            }
        )
    mpc.set_lp_backend("auto")
    mpc.release_stacks()
    return {
        "episodes": episodes,
        "steps": steps,
        "seed": seed,
        "highs_available": highs_available(),
        "cost_tolerance": tol,
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--episodes", type=int, default=256)
    parser.add_argument("--horizon", type=int, default=100)
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker count for the parallel engine rows",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--experiment", default="overall")
    parser.add_argument(
        "--controllers", nargs="+", default=["linear", "rmpc"],
        choices=["linear", "rmpc"],
        help="controller configurations to bench",
    )
    parser.add_argument(
        "--warm-steps", type=int, default=8, dest="warm_steps",
        help="lockstep steps for the LP-backend warm-start section "
             "(0 disables; the highs row needs the optional highspy extra "
             "and is skipped without it)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="attach a StageProfiler to every lockstep row and record "
             "the per-stage wall-clock breakdown in the artifact",
    )
    parser.add_argument(
        "--artifact", default="BENCH_lockstep.json",
        help="perf-trajectory artifact path ('' disables writing)",
    )
    parser.add_argument("--json", default=None, help="also dump results here")
    args = parser.parse_args(argv)

    report = run_benchmark(
        args.episodes, args.horizon, args.jobs, args.seed,
        args.experiment, args.controllers, profile=args.profile,
    )
    print(
        f"lockstep benchmark: {report['episodes']} episodes x "
        f"{report['horizon']} steps, {report['cpus']} visible CPU(s)"
    )
    print(
        f"{'controller':<11} {'engine':<15} {'jobs':>4} {'sec':>8} "
        f"{'ep/s':>8} {'speedup':>8} {'contract':>15} {'ok':>5}"
    )
    for row in report["rows"]:
        print(
            f"{row['controller']:<11} {row['engine']:<15} {row['jobs']:>4} "
            f"{row['seconds']:>8.2f} {row['episodes_per_sec']:>8.2f} "
            f"{row['speedup']:>7.2f}x {row['contract']:>15} "
            f"{str(row['ok']):>5}"
        )
    if args.profile:
        print("\nstage breakdown (share of profiled wall-clock)")
        for row in report["rows"]:
            if "profile" not in row:
                continue
            breakdown = ", ".join(
                f"{stage} {data['share']:.0%}"
                for stage, data in row["profile"].items()
            )
            print(
                f"{row['controller']:<11} {row['engine']:<15} {breakdown}"
            )
    if args.warm_steps > 0 and "rmpc" in args.controllers:
        warm = run_warm_start_benchmark(
            args.episodes, args.warm_steps, args.seed
        )
        report["warm_start"] = warm
        highspy_note = (
            "installed" if warm["highs_available"]
            else "absent — highs row skipped"
        )
        print(
            f"\nwarm-start (stacked κ_R solve, {warm['episodes']} episodes x "
            f"{warm['steps']} steps, highspy {highspy_note})"
        )
        print(
            f"{'backend':<8} {'sec':>8} {'solve ms/step':>14} "
            f"{'vs scipy':>9} {'ok':>5}"
        )
        for row in warm["rows"]:
            print(
                f"{row['backend']:<8} {row['seconds']:>8.2f} "
                f"{row['solve_ms_per_step']:>14.1f} "
                f"{row['speedup_vs_scipy']:>8.2f}x {str(row['ok']):>5}"
            )
    for path in (args.artifact, args.json):
        if path:
            with open(path, "w") as handle:
                json.dump(report, handle, indent=2)
            print(f"report written to {path}")
    failed = [row for row in report["rows"] if not row["ok"]]
    for row in report.get("warm_start", {}).get("rows", ()):
        if not row["ok"]:
            failed.append(row)
            print(
                f"ERROR: warm-start backend {row['backend']} deviated from "
                f"the reference costs (max diff {row['max_cost_diff']:.2e})"
            )
    for row in failed:
        if "engine" not in row:
            continue  # warm-start failure, already printed above
        print(
            f"ERROR: {row['controller']}/{row['engine']} failed its "
            f"{row['contract']} determinism check"
            + (
                f" ({row['equivalence']})"
                if row["equivalence"] is not None
                else ""
            )
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
