"""Fourier–Motzkin elimination for orthogonal polytope projection.

The Pre-operator used for maximal robust control invariant sets needs the
projection of ``{(x, u) : constraints}`` onto the ``x`` block.  We use
classic Fourier–Motzkin elimination with LP-based redundancy pruning after
each eliminated variable to keep the representation from exploding; for the
low input dimensions of this library (``m`` = 1–2) this is fast and exact.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.hpolytope import HPolytope

__all__ = ["eliminate_variable", "project_onto"]


def eliminate_variable(H: np.ndarray, h: np.ndarray, index: int, tol: float = 1e-12) -> tuple:
    """Eliminate variable ``index`` from ``H x <= h`` by Fourier–Motzkin.

    Args:
        H: Constraint matrix ``(m, n)``.
        h: Offsets ``(m,)``.
        index: Column (variable) to eliminate.
        tol: Coefficients below this magnitude count as zero.

    Returns:
        ``(H', h')`` describing the projection onto the remaining
        variables, with the eliminated column removed.  The output may be
        redundant; callers should prune.
    """
    col = H[:, index]
    pos = col > tol
    neg = col < -tol
    zero = ~(pos | neg)

    rows = [np.delete(H[zero], index, axis=1)]
    offs = [h[zero]]

    H_pos = H[pos] / col[pos][:, None]
    h_pos = h[pos] / col[pos]
    H_neg = H[neg] / (-col[neg][:, None])
    h_neg = h[neg] / (-col[neg])

    # Combine every (upper bound on x_j) with every (lower bound on x_j):
    #   a_p x + x_j <= b_p   and   a_n x - x_j <= b_n
    #   =>  (a_p + a_n) x <= b_p + b_n.
    if len(h_pos) and len(h_neg):
        combined_H = (
            H_pos[:, None, :] + H_neg[None, :, :]
        ).reshape(-1, H.shape[1])
        combined_h = (h_pos[:, None] + h_neg[None, :]).reshape(-1)
        rows.append(np.delete(combined_H, index, axis=1))
        offs.append(combined_h)

    H_out = np.vstack([r for r in rows if r.size]) if any(r.size for r in rows) else np.zeros((0, H.shape[1] - 1))
    h_out = np.concatenate([o for o in offs if o.size]) if any(o.size for o in offs) else np.zeros(0)
    return H_out, h_out


def project_onto(poly: HPolytope, keep: int) -> HPolytope:
    """Project ``poly`` onto its first ``keep`` coordinates.

    Eliminates trailing variables one at a time, pruning redundant rows
    after each elimination (Fourier–Motzkin can square the row count per
    step, so pruning is essential beyond one variable).

    Args:
        poly: Polytope over ``(x, y)`` with ``x`` the first ``keep`` axes.
        keep: Number of leading coordinates to keep (must be < dim).

    Returns:
        The exact orthogonal projection as an :class:`HPolytope`.

    Raises:
        ValueError: If ``keep`` is not in ``[1, dim)``.
    """
    if not 1 <= keep < poly.dim:
        raise ValueError(f"keep must be in [1, {poly.dim}), got {keep}")
    H, h = poly.H.copy(), poly.h.copy()
    for index in range(poly.dim - 1, keep - 1, -1):
        H, h = eliminate_variable(H, h, index)
        if H.shape[0] == 0:
            # Projection is all of R^keep; encode as a huge box.
            big = 1e12
            return HPolytope.from_box([-big] * keep, [big] * keep)
        pruned = HPolytope(H, h).remove_redundancies()
        H, h = pruned.H, pruned.h
    return HPolytope(H, h, normalize=False)
