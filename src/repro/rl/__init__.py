"""Numpy reinforcement-learning substrate: MLP, Adam, replay, double DQN."""

from repro.rl.dqn import DQNConfig, DoubleDQNAgent
from repro.rl.network import MLP
from repro.rl.optim import Adam
from repro.rl.replay import Batch, ReplayBuffer
from repro.rl.schedule import ConstantSchedule, ExponentialSchedule, LinearSchedule
from repro.rl.training import Environment, TrainingHistory, train_dqn

__all__ = [
    "MLP",
    "Adam",
    "ReplayBuffer",
    "Batch",
    "DoubleDQNAgent",
    "DQNConfig",
    "LinearSchedule",
    "ExponentialSchedule",
    "ConstantSchedule",
    "train_dqn",
    "TrainingHistory",
    "Environment",
]
