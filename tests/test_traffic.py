"""Tests for the traffic substrate: patterns, fuel meter, raw simulator."""

import numpy as np
import pytest

from repro.acc.model import ACCParameters
from repro.traffic import (
    EXPERIMENT_IDS,
    BoundedAccelerationPattern,
    ConstantPattern,
    FuelModel,
    HBEFA3Fuel,
    LongitudinalSimulator,
    PureRandomPattern,
    SinusoidalPattern,
    experiment_pattern,
)


class TestPatterns:
    def test_sinusoid_eq8_shape(self, rng):
        pattern = SinusoidalPattern(ve=40.0, amplitude=9.0, noise=0.0, dt=0.1)
        vf = pattern.generate(200)
        assert vf.shape == (200,)
        # Period of sin(pi/2 * 0.1 * t) is 40 steps.
        assert vf[0] == pytest.approx(40.0)
        assert vf[10] == pytest.approx(49.0, abs=1e-9)
        assert vf[30] == pytest.approx(31.0, abs=1e-9)

    def test_sinusoid_bounds(self, rng):
        pattern = SinusoidalPattern(
            ve=40.0, amplitude=9.0, noise=5.0, rng=rng, vf_min=30, vf_max=50
        )
        vf = pattern.generate(1000)
        assert vf.min() >= 30.0 and vf.max() <= 50.0

    def test_sinusoid_needs_rng_with_noise(self):
        with pytest.raises(ValueError, match="rng"):
            SinusoidalPattern(noise=1.0)

    def test_pure_random_covers_range(self, rng):
        pattern = PureRandomPattern(30.0, 50.0, rng)
        vf = pattern.generate(2000)
        assert vf.min() < 32.0 and vf.max() > 48.0

    def test_bounded_acceleration_continuity(self, rng):
        pattern = BoundedAccelerationPattern(
            30.0, 50.0, rng, accel_range=(-20.0, 20.0), dt=0.1
        )
        vf = pattern.generate(500)
        assert np.all(np.abs(np.diff(vf)) <= 2.0 + 1e-9)
        assert vf.min() >= 30.0 and vf.max() <= 50.0

    def test_constant_pattern(self):
        assert np.all(ConstantPattern(42.0).generate(5) == 42.0)

    def test_center(self):
        assert ConstantPattern(42.0).center == 42.0
        assert PureRandomPattern(30, 50, np.random.default_rng(0)).center == 40.0

    def test_bounds_validation(self, rng):
        with pytest.raises(ValueError):
            PureRandomPattern(50.0, 30.0, rng)

    def test_experiment_factory_all_ids(self, rng):
        for ex in EXPERIMENT_IDS:
            pattern = experiment_pattern(ex, rng)
            vf = pattern.generate(100)
            assert np.all(vf >= pattern.vf_min - 1e-9)
            assert np.all(vf <= pattern.vf_max + 1e-9)

    def test_experiment_table1_ranges(self, rng):
        expected = {
            "ex1": (30.0, 50.0),
            "ex2": (32.5, 47.5),
            "ex3": (35.0, 45.0),
            "ex4": (38.0, 42.0),
            "ex5": (39.0, 41.0),
        }
        for ex, (lo, hi) in expected.items():
            pattern = experiment_pattern(ex, rng)
            assert (pattern.vf_min, pattern.vf_max) == (lo, hi)

    def test_experiment_unknown_raises(self, rng):
        with pytest.raises(ValueError, match="unknown experiment"):
            experiment_pattern("ex11", rng)

    def test_regularity_ordering_ex6_to_ex10(self, rng):
        """Ex.6 → Ex.10 grows more regular; total variation of the trace
        should decrease monotonically from pure random to clean sinusoid."""
        tv = {}
        for ex in ("ex6", "ex8", "ex9", "ex10"):
            pattern = experiment_pattern(ex, np.random.default_rng(7))
            vf = pattern.generate(400)
            tv[ex] = float(np.abs(np.diff(vf)).sum())
        assert tv["ex6"] > tv["ex8"] > tv["ex9"] > tv["ex10"]


class TestFuel:
    def test_rate_is_idle_when_coasting(self):
        meter = HBEFA3Fuel()
        assert meter.rate(40.0, 0.0) == pytest.approx(meter.model.idle_rate)
        assert meter.rate(40.0, -5.0) == pytest.approx(meter.model.idle_rate)

    def test_rate_increases_with_command(self):
        meter = HBEFA3Fuel()
        assert meter.rate(40.0, 10.0) > meter.rate(40.0, 5.0) > meter.rate(40.0, 0.0)

    def test_rate_increases_with_speed_under_load(self):
        meter = HBEFA3Fuel()
        assert meter.rate(50.0, 10.0) > meter.rate(30.0, 10.0)

    def test_trip_fuel_sums_rates(self):
        meter = HBEFA3Fuel()
        v = np.array([40.0, 40.0])
        u = np.array([8.0, 0.0])
        total = meter.trip_fuel(v, u, dt=0.1)
        expected = 0.1 * (meter.rate(40.0, 8.0) + meter.rate(40.0, 0.0))
        assert total == pytest.approx(float(expected))

    def test_trip_fuel_validates_lengths(self):
        with pytest.raises(ValueError, match="length"):
            HBEFA3Fuel().trip_fuel([40.0], [1.0, 2.0], 0.1)

    def test_trip_fuel_validates_dt(self):
        with pytest.raises(ValueError, match="dt"):
            HBEFA3Fuel().trip_fuel([40.0], [1.0], 0.0)

    def test_model_validation(self):
        with pytest.raises(ValueError):
            FuelModel(mass=-1.0)
        with pytest.raises(ValueError):
            FuelModel(linear=-0.1)

    def test_convexity_knob(self):
        lean = HBEFA3Fuel(FuelModel(quadratic=0.0))
        rich = HBEFA3Fuel(FuelModel(quadratic=1e-6))
        assert rich.rate(40.0, 40.0) > lean.rate(40.0, 40.0)
        assert rich.rate(40.0, 0.0) == pytest.approx(lean.rate(40.0, 0.0))


class TestLongitudinalSimulator:
    def test_steady_state_at_trim(self):
        params = ACCParameters()
        sim = LongitudinalSimulator(params)
        vf = np.full(50, 40.0)
        trace = sim.run(150.0, 40.0, vf, lambda t, s, v: params.u_trim)
        np.testing.assert_allclose(trace.velocities, 40.0, atol=1e-9)
        np.testing.assert_allclose(trace.distances, 150.0, atol=1e-9)

    def test_coasting_decays_velocity(self):
        params = ACCParameters()
        sim = LongitudinalSimulator(params)
        vf = np.full(30, 40.0)
        trace = sim.run(150.0, 40.0, vf, lambda t, s, v: 0.0)
        assert trace.velocities[-1] < 40.0
        assert trace.distances[-1] > 150.0  # ego falls behind, gap grows

    def test_command_clipping(self):
        params = ACCParameters()
        sim = LongitudinalSimulator(params)
        trace = sim.run(150.0, 40.0, np.full(3, 40.0), lambda t, s, v: 1000.0)
        assert np.all(trace.commands <= params.u_range[1])

    def test_matches_shifted_framework_simulation(self, acc_case, rng):
        """Fidelity argument for the SUMO substitute: raw integration and
        the shifted-coordinate framework produce the identical
        trajectory."""
        from repro.framework import run_controller_only

        case = acc_case
        pattern = SinusoidalPattern(
            ve=40.0, amplitude=9.0, noise=0.0, dt=case.params.delta
        )
        vf = pattern.generate(60)
        x0 = case.sample_initial_states(rng, 1)[0]
        stats = run_controller_only(
            case.system, case.mpc, x0, case.coords.disturbance_from_vf(vf)
        )
        # Re-integrate in raw coordinates, replaying the same commands.
        commands = case.raw_commands(stats)
        sim = LongitudinalSimulator(case.params, clip_command=False)
        s0, v0 = case.coords.from_shifted(x0)
        trace = sim.run(s0, v0, vf, lambda t, s, v: commands[t])
        np.testing.assert_allclose(
            trace.distances, case.raw_distances(stats), atol=1e-9
        )
        np.testing.assert_allclose(
            trace.velocities, case.raw_velocities(stats), atol=1e-9
        )

    def test_fuel_helper_on_trace(self):
        params = ACCParameters()
        sim = LongitudinalSimulator(params)
        trace = sim.run(
            150.0, 40.0, np.full(10, 40.0), lambda t, s, v: params.u_trim
        )
        meter = HBEFA3Fuel()
        assert trace.fuel(meter, params.delta) > 0

    def test_distance_bounds_checker(self):
        params = ACCParameters()
        sim = LongitudinalSimulator(params)
        trace = sim.run(150.0, 40.0, np.full(5, 40.0), lambda t, s, v: params.u_trim)
        assert trace.distance_bounds_respected(params.s_range)
        assert not trace.distance_bounds_respected((151.0, 180.0))
