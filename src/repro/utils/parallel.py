"""Fork-based order-preserving parallel map.

The batch layers (:class:`repro.framework.runner.ParallelBatchRunner`,
:func:`repro.acc.experiments.evaluate_approaches`, the sharded grid
sweeps of :mod:`repro.experiments`) fan work out over worker processes.
They all go through :func:`fork_map`, which uses the ``fork`` start
method deliberately:

* the mapped function and its captured objects (plants, controllers,
  polytopes, monitor factories — often lambdas) are *inherited* by the
  children through the process image, never pickled;
* only the per-item return values cross the result pipe, so they are the
  only thing that must be picklable (flat record dataclasses are);
* workers receive interleaved index chunks (``indices[j::jobs]``) so a
  systematic easy/hard gradient across the batch load-balances.

Workers stream one message per finished item, and the parent drains all
pipes concurrently (:func:`multiprocessing.connection.wait`), so an
optional ``on_result`` callback observes progress as items complete —
not only when a whole worker finishes.

On platforms without ``fork`` (Windows, macOS spawn default) — or with
``jobs=1`` — the map degrades to a plain serial loop with identical
semantics, which is also what keeps results reproducible everywhere.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from multiprocessing import connection as mp_connection
from typing import Callable, Iterable, List, Optional

__all__ = ["fork_map", "fork_available", "resolve_jobs"]


def fork_available() -> bool:
    """True iff the ``fork`` start method exists on this platform."""
    return "fork" in mp.get_all_start_methods()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request to a positive worker count.

    ``None`` and 0 mean "one worker per available CPU"; negative values
    are rejected.
    """
    if jobs is None or jobs == 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # non-Linux
            return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError("jobs must be None or a positive integer")
    return int(jobs)


def fork_map(
    fn: Callable,
    items: Iterable,
    jobs: Optional[int] = None,
    on_result: Optional[Callable[[int, object], None]] = None,
) -> List:
    """Map ``fn`` over ``items`` on forked workers, preserving order.

    Args:
        fn: One-argument callable.  Closures and lambdas are fine (the
            children are forked, so ``fn`` is never pickled); its return
            value must be picklable.
        items: Finite iterable of inputs (materialised up front).
        jobs: Worker processes; ``None``/0 = one per CPU, 1 = serial.
            Capped at ``len(items)`` so no worker is ever spawned for an
            empty index chunk.
        on_result: Optional ``(index, value)`` progress callback, invoked
            in the *parent* once per completed item.  Under forked
            execution items complete in worker-interleaved order, not
            input order; the returned list is always in input order
            regardless.  The callback must not raise — an exception
            aborts the map (workers are terminated) and propagates.

    Returns:
        ``[fn(x) for x in items]`` — same values, same order.

    Raises:
        RuntimeError: If any worker raises or dies; the message carries
            the first worker-side error.
    """
    work = list(items)
    count = min(resolve_jobs(jobs), len(work))
    if count <= 1 or not fork_available():
        results: List = []
        for index, item in enumerate(work):
            value = fn(item)
            if on_result is not None:
                on_result(index, value)
            results.append(value)
        return results

    ctx = mp.get_context("fork")
    # Interleaved chunks load-balance systematic gradients.  The worker
    # count is clamped to len(work) above, which already makes every
    # chunk non-empty; the filter keeps "no worker without work" true
    # even if the chunking strategy changes.
    chunks = [list(range(j, len(work), count)) for j in range(count)]
    chunks = [chunk for chunk in chunks if chunk]

    def worker(indices, conn):
        try:
            for i in indices:
                conn.send(("item", i, fn(work[i])))
            conn.send(("done",))
        except BaseException as exc:  # noqa: BLE001 — relayed to the parent
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except OSError:
                pass
        finally:
            conn.close()

    procs = []
    pending = set()
    for indices in chunks:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=worker, args=(indices, child_conn))
        proc.start()
        child_conn.close()
        procs.append(proc)
        pending.add(parent_conn)

    results = [None] * len(work)
    errors: List[str] = []
    try:
        # Drain every pipe until its worker reports done (or dies): a
        # worker blocked on a full pipe cannot exit, so continuous
        # draining before join is the deadlock-free order.
        while pending:
            for conn in mp_connection.wait(list(pending)):
                try:
                    message = conn.recv()
                except EOFError:
                    errors.append(
                        "worker exited without a result (killed or crashed?)"
                    )
                    pending.discard(conn)
                    conn.close()
                    continue
                if message[0] == "item":
                    _, index, value = message
                    results[index] = value
                    if on_result is not None:
                        on_result(index, value)
                elif message[0] == "done":
                    pending.discard(conn)
                    conn.close()
                else:
                    errors.append(message[1])
                    pending.discard(conn)
                    conn.close()
    except BaseException:
        # A parent-side failure (e.g. the callback raised) would leave
        # children blocked on their pipes forever — reap them first.
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.join()
        raise
    for proc in procs:
        proc.join()
    if errors:
        raise RuntimeError(f"fork_map worker failed: {errors[0]}")
    return results
