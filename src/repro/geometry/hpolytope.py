"""Convex polytopes in halfspace (H-) representation.

An :class:`HPolytope` is the set ``{x in R^n : H x <= h}``.  This module is
the geometric kernel of the library: robust invariant sets, backward
reachable sets, tightened MPC constraints and the strengthened safe set of
the paper are all built from the operations defined here.

Every operation that needs optimisation uses LPs through
:mod:`repro.utils.lp` (HiGHS); nothing here depends on vertex enumeration
except :meth:`HPolytope.vertices`, which is only used for reporting,
sampling and exact 2-D Minkowski sums.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.utils.lp import LPError, lp_feasible, maximize, maximize_batch, solve_lp
from repro.utils.validation import as_matrix, as_vector

__all__ = ["HPolytope", "MembershipTester", "EmptySetError"]

# Default numerical tolerance for membership / containment tests.  Set
# computations chain many LPs, so this is deliberately looser than solver
# precision.
DEFAULT_TOL = 1e-7


class EmptySetError(ValueError):
    """Raised when an operation requires a non-empty polytope."""


class HPolytope:
    """A convex polytope ``{x : H x <= h}`` in halfspace representation.

    The representation is normalised on construction: each row of ``H`` is
    scaled to unit Euclidean norm (together with the matching entry of
    ``h``), and rows that are identically zero are dropped if trivially
    satisfied (``0 <= h_i``) or flagged as infeasible otherwise.

    Instances are immutable by convention: all operations return new
    polytopes.

    Attributes:
        H: Constraint normals, shape ``(m, n)``, rows unit-norm.
        h: Constraint offsets, shape ``(m,)``.
        dim: Ambient dimension ``n``.
    """

    __slots__ = ("H", "h", "_vertices_cache", "_cheb_cache", "_bbox_cache")

    def __init__(self, H, h, normalize: bool = True):
        H = as_matrix(H, "H")
        h = as_vector(h, "h")
        if H.shape[0] != h.shape[0]:
            raise ValueError(
                f"H has {H.shape[0]} rows but h has {h.shape[0]} entries"
            )
        if normalize:
            H, h = _normalize_rows(H, h)
        self.H = H
        self.h = h
        self._vertices_cache = None
        self._cheb_cache = None
        self._bbox_cache = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_box(cls, lower, upper) -> "HPolytope":
        """Axis-aligned box ``{x : lower <= x <= upper}``.

        Raises:
            ValueError: If any ``lower[i] > upper[i]``.
        """
        lower = as_vector(lower, "lower")
        upper = as_vector(upper, "upper")
        if lower.shape != upper.shape:
            raise ValueError("lower and upper must have the same length")
        if np.any(lower > upper):
            raise ValueError("box has lower > upper in some coordinate")
        n = lower.size
        eye = np.eye(n)
        H = np.vstack([eye, -eye])
        h = np.concatenate([upper, -lower])
        return cls(H, h)

    @classmethod
    def from_bounds(cls, bounds: Sequence[tuple]) -> "HPolytope":
        """Box from a sequence of ``(low, high)`` pairs (one per axis)."""
        lower = [b[0] for b in bounds]
        upper = [b[1] for b in bounds]
        return cls.from_box(lower, upper)

    @classmethod
    def from_vertices(cls, vertices) -> "HPolytope":
        """Convex hull of a point set, as an H-polytope.

        Uses ``scipy.spatial.ConvexHull`` for full-dimensional inputs in
        dimension >= 2 and direct interval construction in 1-D.

        Raises:
            ValueError: If the hull is degenerate (not full-dimensional);
                callers should bloat degenerate sets slightly instead.
        """
        V = as_matrix(np.atleast_2d(np.asarray(vertices, dtype=float)), "vertices")
        n = V.shape[1]
        if n == 1:
            return cls.from_box([V.min()], [V.max()])
        from scipy.spatial import ConvexHull, QhullError

        try:
            hull = ConvexHull(V)
        except QhullError as exc:
            raise ValueError(
                "vertex set is degenerate (not full-dimensional); "
                "bloat it before building an HPolytope"
            ) from exc
        # Qhull returns facets as [normal, offset] with normal.x + offset <= 0.
        H = hull.equations[:, :-1]
        h = -hull.equations[:, -1]
        poly = cls(H, h)
        return poly.remove_redundancies()

    @classmethod
    def singleton(cls, point, radius: float = 0.0) -> "HPolytope":
        """Box of half-width ``radius`` centred at ``point``.

        With the default radius 0 this is the degenerate singleton ``{point}``
        (still a valid H-polytope, just not full-dimensional).
        """
        p = as_vector(point, "point")
        return cls.from_box(p - radius, p + radius)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Ambient dimension ``n``."""
        return self.H.shape[1]

    @property
    def num_constraints(self) -> int:
        """Number of halfspaces ``m`` in the current representation."""
        return self.H.shape[0]

    def contains(self, point, tol: float = DEFAULT_TOL) -> bool:
        """Return True iff ``point`` satisfies every halfspace within ``tol``.

        ``H x`` is evaluated as multiply + pairwise row reduction rather
        than BLAS ``@`` so that :meth:`contains_batch` rows reproduce it
        bit for bit (BLAS picks different gemv/gemm kernels per shape;
        the batch engines' differential determinism contract needs the
        classifications to agree exactly, not just within tolerance).
        """
        x = as_vector(point, "point")
        if x.size != self.dim:
            raise ValueError(
                f"point has dimension {x.size}, polytope has {self.dim}"
            )
        return bool(np.all(np.sum(self.H * x, axis=1) <= self.h + tol))

    def contains_batch(self, points, tol: float = DEFAULT_TOL) -> np.ndarray:
        """Vectorised membership test for a ``(T, n)`` array of points.

        One broadcast replaces ``T`` scalar :meth:`contains` calls; this
        is the primitive the batch runner and the safety monitor's
        trajectory scans are built on.

        Returns:
            Boolean array of shape ``(T,)``; entry ``t`` is the exact
            (bitwise) value :meth:`contains` would return for
            ``points[t]`` — both share the multiply + pairwise-reduce
            evaluation (see :meth:`contains`).
        """
        X = self._as_batch(points)
        products = np.sum(self.H * X[:, None, :], axis=2)
        return np.all(products <= self.h + tol, axis=1)

    def contains_points(self, points, tol: float = DEFAULT_TOL) -> np.ndarray:
        """Alias of :meth:`contains_batch` (original spelling, kept for
        backwards compatibility)."""
        return self.contains_batch(points, tol)

    def violation_batch(self, points) -> np.ndarray:
        """Largest constraint violation per row of a ``(T, n)`` array.

        Returns:
            Float array of shape ``(T,)``; entry ``t`` equals
            :meth:`violation` at ``points[t]`` bitwise (<= 0 means
            inside) — shared multiply + pairwise-reduce evaluation, see
            :meth:`contains`.
        """
        X = self._as_batch(points)
        return np.max(np.sum(self.H * X[:, None, :], axis=2) - self.h, axis=1)

    def _as_batch(self, points) -> np.ndarray:
        """Validate and reshape ``points`` into a ``(T, n)`` float array."""
        X = np.atleast_2d(np.asarray(points, dtype=float))
        if X.ndim != 2:
            raise ValueError(
                f"points must be a (T, {self.dim}) array, got shape {X.shape}"
            )
        if X.shape[1] != self.dim:
            raise ValueError(
                f"points have dimension {X.shape[1]}, polytope has {self.dim}"
            )
        return X

    def violation(self, point) -> float:
        """Largest constraint violation at ``point`` (<= 0 means inside).

        Evaluated like :meth:`contains` so :meth:`violation_batch` rows
        match bitwise.
        """
        x = as_vector(point, "point")
        return float(np.max(np.sum(self.H * x, axis=1) - self.h))

    def is_empty(self, tol: float = DEFAULT_TOL) -> bool:
        """True iff the polytope has no point (within ``tol`` slack)."""
        return not lp_feasible(self.H, self.h + tol)

    def is_bounded(self) -> bool:
        """True iff the polytope is bounded (support finite along +/- axes).

        All ``2n`` axis supports are solved as one stacked LP
        (:meth:`support_batch`); any unbounded direction (or an empty set)
        fails the stack, which is exactly the False case.
        """
        eye = np.eye(self.dim)
        try:
            self.support_batch(np.vstack([eye, -eye]))
        except LPError:
            return False
        return True

    def support(self, direction) -> float:
        """Support function ``h_P(a) = max {a.x : x in P}``.

        Raises:
            repro.utils.lp.LPError: If the polytope is empty or unbounded
                in ``direction``.
        """
        a = as_vector(direction, "direction")
        return maximize(a, self.H, self.h).value

    def support_batch(self, directions) -> np.ndarray:
        """Support values for every row of a ``(k, n)`` direction array.

        One stacked block-diagonal LP (:func:`repro.utils.lp.maximize_batch`)
        instead of ``k`` sequential solves — the primitive behind
        :meth:`pontryagin_difference`, :meth:`minkowski_sum`,
        :meth:`bounding_box` and :meth:`is_bounded`.

        Raises:
            repro.utils.lp.LPError: If the polytope is empty or unbounded
                in any of the directions.
        """
        D = np.atleast_2d(np.asarray(directions, dtype=float))
        if D.shape[1] != self.dim:
            raise ValueError(
                f"directions have dimension {D.shape[1]}, polytope has {self.dim}"
            )
        return maximize_batch(D, self.H, self.h)

    def support_point(self, direction) -> np.ndarray:
        """An argmax of the support function in ``direction``."""
        a = as_vector(direction, "direction")
        return maximize(a, self.H, self.h).x

    def chebyshev_center(self) -> tuple:
        """Centre and radius of the largest inscribed ball.

        Returns:
            ``(center, radius)``.  ``radius < 0`` implies emptiness.

        Raises:
            EmptySetError: If the LP itself is infeasible (empty interior
                and empty set).
        """
        if self._cheb_cache is not None:
            return self._cheb_cache
        m, n = self.H.shape
        # Variables: (x, r); maximise r s.t. Hx + ||H_i|| r <= h.  Rows are
        # unit-norm after construction, so the coefficient on r is 1.
        c = np.zeros(n + 1)
        c[-1] = -1.0
        A = np.hstack([self.H, np.ones((m, 1))])
        try:
            sol = solve_lp(c, a_ub=A, b_ub=self.h)
        except LPError as exc:
            raise EmptySetError(f"Chebyshev LP infeasible: {exc}") from exc
        center = sol.x[:-1]
        radius = sol.x[-1]
        self._cheb_cache = (center, float(radius))
        return self._cheb_cache

    def contains_polytope(self, other: "HPolytope", tol: float = DEFAULT_TOL) -> bool:
        """True iff ``other`` is a subset of ``self``.

        Checked by LP: ``other ⊆ self`` iff for every halfspace ``(a, b)``
        of ``self``, the support of ``other`` in direction ``a`` is at most
        ``b``.  All facet supports are solved as one stacked LP
        (:meth:`support_batch`); if the stack fails (e.g. ``other``
        unbounded in some direction) the per-facet loop decides, keeping
        the early-exit semantics.  An empty ``other`` is a subset of
        anything.
        """
        if other.is_empty():
            return True
        try:
            supports = other.support_batch(self.H)
        except LPError:
            for a, b in zip(self.H, self.h):
                if other.support(a) > b + tol:
                    return False
            return True
        return bool(np.all(supports <= self.h + tol))

    def equals(self, other: "HPolytope", tol: float = DEFAULT_TOL) -> bool:
        """Mutual containment within ``tol``."""
        return self.contains_polytope(other, tol) and other.contains_polytope(
            self, tol
        )

    def interior_point(self, tol: float = DEFAULT_TOL) -> np.ndarray:
        """A point in the (relative) interior — the Chebyshev centre.

        Raises:
            EmptySetError: If the set is empty.
        """
        center, radius = self.chebyshev_center()
        if radius < -tol:
            raise EmptySetError("polytope is empty")
        return center

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def intersect(self, other: "HPolytope") -> "HPolytope":
        """Intersection (stack the halfspaces of both polytopes)."""
        if other.dim != self.dim:
            raise ValueError("dimension mismatch in intersection")
        return HPolytope(
            np.vstack([self.H, other.H]), np.concatenate([self.h, other.h])
        )

    def translate(self, offset) -> "HPolytope":
        """Translate by ``offset``: ``{x + offset : x in P}``."""
        t = as_vector(offset, "offset")
        return HPolytope(self.H, self.h + self.H @ t, normalize=False)

    def scale(self, factor: float) -> "HPolytope":
        """Scale about the origin by ``factor > 0``: ``{factor * x : x in P}``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return HPolytope(self.H, self.h * factor, normalize=False)

    def pontryagin_difference(self, other: "HPolytope") -> "HPolytope":
        """Pontryagin (Minkowski) difference ``P ⊖ Q = {x : x + Q ⊆ P}``.

        Exact in H-representation: each offset shrinks by the support of
        ``Q`` in the facet-normal direction.
        """
        if other.dim != self.dim:
            raise ValueError("dimension mismatch in Pontryagin difference")
        shrink = other.support_batch(self.H)
        return HPolytope(self.H, self.h - shrink, normalize=False)

    def minkowski_sum(self, other: "HPolytope") -> "HPolytope":
        """Minkowski sum ``P ⊕ Q``.

        In 1-D and 2-D the result is exact, computed as the convex hull of
        pairwise vertex sums.  In higher dimension we fall back to the
        support-function outer approximation on the union of both normal
        sets; that is a tight outer approximation (exact whenever the sum's
        normal fan is covered by the operands' normals, e.g. for boxes).
        """
        if other.dim != self.dim:
            raise ValueError("dimension mismatch in Minkowski sum")
        if self.dim <= 2:
            V = self.vertices()
            W = other.vertices()
            sums = (V[:, None, :] + W[None, :, :]).reshape(-1, self.dim)
            if self.dim == 1:
                return HPolytope.from_box([sums.min()], [sums.max()])
            spread = sums.max(axis=0) - sums.min(axis=0)
            if np.any(spread < 1e-12):
                # Degenerate (flat) sum: return a thin box around it.
                return HPolytope.from_box(sums.min(axis=0), sums.max(axis=0))
            return HPolytope.from_vertices(sums)
        normals = np.vstack([self.H, other.H])
        offsets = self.support_batch(normals) + other.support_batch(normals)
        return HPolytope(normals, offsets).remove_redundancies()

    def linear_preimage(self, A, offset=None) -> "HPolytope":
        """Preimage under an affine map: ``{x : A x + offset ∈ P}``.

        Exact for any matrix ``A`` (square or not, singular or not) because
        the halfspaces compose: ``H (A x + t) <= h`` is ``(H A) x <= h - H t``.
        """
        A = as_matrix(A, "A")
        if A.shape[0] != self.dim:
            raise ValueError(
                f"map output dimension {A.shape[0]} != polytope dimension {self.dim}"
            )
        h = self.h.copy()
        if offset is not None:
            t = as_vector(offset, "offset")
            h = h - self.H @ t
        return HPolytope(self.H @ A, h)

    def linear_image(self, A) -> "HPolytope":
        """Image under ``x -> A x``.

        Exact for invertible ``A`` (via the preimage of the inverse).  For
        non-square or singular maps with output dimension <= 2 the image is
        built exactly from mapped vertices; otherwise a ValueError is
        raised (the library never needs that case).
        """
        A = as_matrix(A, "A")
        if A.shape[1] != self.dim:
            raise ValueError(
                f"map input dimension {A.shape[1]} != polytope dimension {self.dim}"
            )
        if A.shape[0] == A.shape[1]:
            det = np.linalg.det(A)
            if abs(det) > 1e-12:
                return HPolytope(self.H @ np.linalg.inv(A), self.h)
        if A.shape[0] <= 2:
            V = self.vertices() @ A.T
            if A.shape[0] == 1:
                return HPolytope.from_box([V.min()], [V.max()])
            return HPolytope.from_vertices(V)
        raise ValueError(
            "linear_image requires an invertible map or output dimension <= 2"
        )

    def remove_redundancies(self, tol: float = 1e-9) -> "HPolytope":
        """Return an irredundant representation of the same set.

        A halfspace is redundant iff maximising its normal over the
        remaining constraints (with the row itself relaxed) cannot exceed
        its offset.  Duplicate rows are collapsed first to keep the LP
        count down.
        """
        H, h = _dedupe_rows(self.H, self.h)
        keep = np.ones(len(h), dtype=bool)
        for i in range(len(h)):
            if not keep[i]:
                continue
            mask = keep.copy()
            mask[i] = False
            if not np.any(mask):
                continue
            try:
                value = maximize(H[i], H[mask], h[mask]).value
            except LPError:
                # Unbounded without this row: the row is essential.
                continue
            if value <= h[i] + tol:
                keep[i] = False
        if np.all(keep):
            return HPolytope(H, h, normalize=False)
        return HPolytope(H[keep], h[keep], normalize=False)

    def bounding_box(self) -> tuple:
        """Tight axis-aligned bounding box ``(lower, upper)``.

        Cached after the first call (polytopes are immutable); callers
        receive copies, so mutating the result cannot poison the cache.

        Raises:
            repro.utils.lp.LPError: If unbounded or empty.
        """
        if self._bbox_cache is None:
            eye = np.eye(self.dim)
            values = self.support_batch(np.vstack([eye, -eye]))
            self._bbox_cache = (-values[self.dim :], values[: self.dim])
        lower, upper = self._bbox_cache
        return lower.copy(), upper.copy()

    # ------------------------------------------------------------------
    # Vertices and sampling
    # ------------------------------------------------------------------
    def vertices(self) -> np.ndarray:
        """Vertex enumeration, shape ``(k, n)``.

        Uses ``scipy.spatial.HalfspaceIntersection`` seeded with the
        Chebyshev centre.  For (near-)degenerate polytopes whose Chebyshev
        radius is ~0 the halfspace intersection is ill-posed; we then fall
        back to pairwise facet intersection (exact for n <= 2).

        Raises:
            EmptySetError: If the polytope is empty.
        """
        if self._vertices_cache is not None:
            return self._vertices_cache
        center, radius = self.chebyshev_center()
        if radius < -DEFAULT_TOL:
            raise EmptySetError("cannot enumerate vertices of an empty set")
        if self.dim == 1:
            lo = -self.support(np.array([-1.0]))
            hi = self.support(np.array([1.0]))
            verts = np.array([[lo], [hi]])
        elif radius > 1e-9:
            from scipy.spatial import HalfspaceIntersection

            halfspaces = np.hstack([self.H, -self.h[:, None]])
            hs = HalfspaceIntersection(halfspaces, center)
            verts = _unique_rows(hs.intersections)
        elif self.dim == 2:
            verts = self._vertices_by_facet_pairs()
        else:
            raise EmptySetError(
                "degenerate polytope in dimension > 2: vertex enumeration "
                "unsupported (bloat the set first)"
            )
        self._vertices_cache = verts
        return verts

    def _vertices_by_facet_pairs(self) -> np.ndarray:
        """Exact 2-D vertex enumeration by intersecting facet pairs."""
        points = []
        m = self.num_constraints
        for i in range(m):
            for j in range(i + 1, m):
                A = np.vstack([self.H[i], self.H[j]])
                if abs(np.linalg.det(A)) < 1e-12:
                    continue
                p = np.linalg.solve(A, np.array([self.h[i], self.h[j]]))
                if self.contains(p, tol=1e-7):
                    points.append(p)
        if not points:
            raise EmptySetError("no vertices found (empty or unbounded set)")
        return _unique_rows(np.array(points))

    def sample(self, rng: np.random.Generator, count: int = 1, max_tries: int = 10000) -> np.ndarray:
        """Uniform-ish samples by rejection from the bounding box.

        Adequate for well-conditioned sets (the ACC sets are).  Falls back
        to returning Chebyshev-centre-biased points if rejection stalls.

        Returns:
            Array of shape ``(count, n)``.
        """
        lower, upper = self.bounding_box()
        # Zero-width axes (flat sets, e.g. single-channel disturbance
        # boxes) can come back with upper below lower by LP tolerance
        # jitter — including upper = -0.0 vs lower = +0.0, whose
        # difference is -0.0 and trips rng.uniform's sign check.
        # Collapse such axes onto lower exactly.
        upper = np.where(upper > lower, upper, lower)
        out = np.empty((count, self.dim))
        filled = 0
        tries = 0
        while filled < count and tries < max_tries:
            batch = rng.uniform(lower, upper, size=(count * 4, self.dim))
            inside = self.contains_points(batch)
            good = batch[inside]
            take = min(len(good), count - filled)
            out[filled : filled + take] = good[:take]
            filled += take
            tries += 1
        if filled < count:
            # Thin set: blend bounding-box samples toward the centre.
            center, _ = self.chebyshev_center()
            while filled < count:
                point = rng.uniform(lower, upper)
                lam = 1.0
                for _ in range(60):
                    candidate = center + lam * (point - center)
                    if self.contains(candidate):
                        out[filled] = candidate
                        break
                    lam *= 0.5
                else:
                    out[filled] = center
                filled += 1
        return out

    def volume(self) -> float:
        """Volume via Qhull on the vertex set (exact for bounded sets)."""
        from scipy.spatial import ConvexHull

        verts = self.vertices()
        if verts.shape[0] <= self.dim:
            return 0.0
        try:
            return float(ConvexHull(verts).volume)
        except Exception:
            return 0.0

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, point) -> bool:
        return self.contains(point)

    def __and__(self, other: "HPolytope") -> "HPolytope":
        return self.intersect(other)

    def __add__(self, other):
        if isinstance(other, HPolytope):
            return self.minkowski_sum(other)
        return self.translate(other)

    def __sub__(self, other):
        if isinstance(other, HPolytope):
            return self.pontryagin_difference(other)
        return self.translate(-np.asarray(other, dtype=float))

    def __mul__(self, factor: float) -> "HPolytope":
        return self.scale(float(factor))

    __rmul__ = __mul__

    def __repr__(self) -> str:
        return f"HPolytope(dim={self.dim}, constraints={self.num_constraints})"


class MembershipTester:
    """Fused membership of one point batch against several polytopes.

    Classifying a batch against nested sets (the safety monitor's
    ``X' ⊆ XI`` pair) with per-polytope :meth:`HPolytope.contains_batch`
    calls pays one full ``(T, m_i, n)`` broadcast *per polytope*.  This
    helper stacks all the halfspace matrices once at construction so a
    single multiply + pairwise-reduce pass answers every membership
    question per batch — the lockstep engine's per-step classification
    drops from two numpy passes to one.

    Bitwise contract: :meth:`contains_each` returns exactly the boolean
    arrays the individual ``contains_batch`` calls would.  Each product
    row is reduced over the state dimension independently of how many
    constraint rows share the stack (the reduction is along the last
    axis), and the per-polytope offsets are pre-shifted by the same
    ``h + tol`` the scalar test adds — so stacking changes no float
    anywhere.  The batch engines' record-for-record determinism contract
    rests on that.

    Args:
        polytopes: The sets to test against, all of one dimension.
        tol: Membership tolerance, baked into the stacked offsets
            (matching the default of :meth:`HPolytope.contains`).
    """

    __slots__ = ("_H", "_limits", "_splits", "dim", "tol")

    def __init__(self, polytopes: Sequence["HPolytope"], tol: float = DEFAULT_TOL):
        if not polytopes:
            raise ValueError("need at least one polytope")
        dims = {p.dim for p in polytopes}
        if len(dims) != 1:
            raise ValueError(
                f"polytopes must share one dimension, got {sorted(dims)}"
            )
        self.dim = polytopes[0].dim
        self.tol = tol
        self._H = np.vstack([p.H for p in polytopes])
        self._limits = np.concatenate([p.h + tol for p in polytopes])
        counts = np.array([p.num_constraints for p in polytopes])
        self._splits = np.cumsum(counts)[:-1]

    def contains_each(self, points) -> tuple:
        """Per-polytope membership of every row of a ``(T, n)`` array.

        Returns:
            One boolean ``(T,)`` array per polytope, in constructor
            order; array ``k``'s entry ``t`` is bitwise-identical to
            ``polytopes[k].contains_batch(points, tol)[t]``.
        """
        X = np.atleast_2d(np.asarray(points, dtype=float))
        if X.shape[1] != self.dim:
            raise ValueError(
                f"points have dimension {X.shape[1]}, tester has {self.dim}"
            )
        satisfied = np.sum(self._H * X[:, None, :], axis=2) <= self._limits
        return tuple(
            part.all(axis=1) for part in np.split(satisfied, self._splits, axis=1)
        )


def _normalize_rows(H: np.ndarray, h: np.ndarray) -> tuple:
    """Unit-normalise constraint rows, dropping trivially true zero rows."""
    norms = np.linalg.norm(H, axis=1)
    zero = norms < 1e-14
    if np.any(zero):
        bad = zero & (h < -1e-12)
        if np.any(bad):
            raise EmptySetError(
                "constraint 0.x <= h with h < 0 (empty by construction)"
            )
        H = H[~zero]
        h = h[~zero]
        norms = norms[~zero]
    if H.shape[0] == 0:
        raise ValueError("polytope needs at least one non-trivial constraint")
    return H / norms[:, None], h / norms


def _dedupe_rows(H: np.ndarray, h: np.ndarray, tol: float = 1e-10) -> tuple:
    """Collapse duplicate normals, keeping the tightest offset for each."""
    keep_H = []
    keep_h = []
    for a, b in zip(H, h):
        for idx, existing in enumerate(keep_H):
            if np.allclose(existing, a, atol=tol):
                keep_h[idx] = min(keep_h[idx], b)
                break
        else:
            keep_H.append(a.copy())
            keep_h.append(b)
    return np.array(keep_H), np.array(keep_h)


def _unique_rows(arr: np.ndarray, tol: float = 1e-8) -> np.ndarray:
    """Deduplicate rows of ``arr`` up to ``tol`` (order-preserving)."""
    out: list = []
    for row in arr:
        if not any(np.allclose(row, prev, atol=tol) for prev in out):
            out.append(row)
    return np.array(out)
