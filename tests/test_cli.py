"""Tests for the command-line interface (fast subcommands only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sets_defaults(self):
        args = build_parser().parse_args(["sets"])
        assert args.width == 66
        assert args.command == "sets"

    def test_compare_flags(self):
        args = build_parser().parse_args(
            ["compare", "--cases", "5", "--episodes", "10", "--restarts", "2"]
        )
        assert args.cases == 5
        assert args.episodes == 10
        assert args.restarts == 2

    def test_experiment_positional(self):
        args = build_parser().parse_args(["experiment", "ex3"])
        assert args.name == "ex3"

    def test_jobs_flag_on_evaluation_commands(self):
        assert build_parser().parse_args(["compare", "--jobs", "4"]).jobs == 4
        assert build_parser().parse_args(
            ["experiment", "ex1", "--jobs", "0"]
        ).jobs == 0
        # Serial by default: parallelism is opt-in.
        assert build_parser().parse_args(["compare"]).jobs == 1

    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.episodes == 16
        assert args.horizon == 100
        assert args.jobs == 1
        assert args.seed == 0
        assert args.out is None

    def test_batch_flags(self):
        args = build_parser().parse_args(
            ["batch", "--episodes", "8", "--jobs", "2", "--seed", "7",
             "--out", "records.csv"]
        )
        assert (args.episodes, args.jobs, args.seed) == (8, 2, 7)
        assert args.out == "records.csv"

    def test_engine_flag_on_all_batch_commands(self):
        for argv in (
            ["batch", "--engine", "lockstep"],
            ["compare", "--engine", "serial"],
            ["experiment", "ex1", "--engine", "parallel"],
        ):
            assert build_parser().parse_args(argv).engine == argv[-1]
        # Engine is inferred from --jobs when not given.
        assert build_parser().parse_args(["batch"]).engine is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch", "--engine", "warp"])

    def test_lp_backend_flag_on_all_engine_commands(self):
        for argv in (
            ["batch", "--lp-backend", "scipy"],
            ["compare", "--lp-backend", "highs"],
            ["experiment", "ex1", "--lp-backend", "auto"],
            ["sweep", "--lp-backend", "scipy"],
        ):
            assert build_parser().parse_args(argv).lp_backend == argv[-1]
        # Default None: keep each controller's own backend setting.
        assert build_parser().parse_args(["batch"]).lp_backend is None
        assert build_parser().parse_args(["sweep"]).lp_backend is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch", "--lp-backend", "cplex"])

    def test_batch_scenario_flag(self):
        assert build_parser().parse_args(["batch"]).scenario == "acc"
        args = build_parser().parse_args(["batch", "--scenario", "pendulum"])
        assert args.scenario == "pendulum"

    def test_scenarios_subcommand_flags(self):
        args = build_parser().parse_args(["scenarios"])
        assert args.command == "scenarios"
        assert not args.detail
        assert build_parser().parse_args(["scenarios", "--detail"]).detail

    def test_sweep_subcommand_flags(self):
        args = build_parser().parse_args(["sweep"])
        assert args.scenarios is None
        assert (args.cases, args.horizon, args.engine) == (8, 50, "serial")
        assert args.axis is None
        assert args.out is None
        args = build_parser().parse_args(
            ["sweep", "--scenarios", "thermal", "pendulum",
             "--cases", "3", "--engine", "lockstep"]
        )
        assert args.scenarios == ["thermal", "pendulum"]
        assert args.cases == 3
        assert args.engine == "lockstep"

    def test_sweep_axis_flag(self):
        args = build_parser().parse_args(
            ["sweep", "--axis", "horizon=6:12:3",
             "--axis", "state_weight=0.5:1:2", "--jobs", "2"]
        )
        first, second = args.axis
        assert first.name == "horizon"
        assert first.values == (6, 9, 12)  # integral values stay ints
        assert all(isinstance(v, int) for v in first.values)
        assert second.values == (0.5, 1)
        assert args.jobs == 2

    def test_sweep_axis_flag_rejects_malformed(self):
        for bad in ("horizon", "horizon=1:2", "horizon=a:b:c", "=1:2:3",
                    "horizon=1:2:0"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["sweep", "--axis", bad])


class TestExecution:
    def test_sets_command_renders(self, acc_case, capsys):
        # acc_case fixture pre-populates the module cache, so the CLI
        # reuses the already-built sets.
        assert main(["sets", "--width", "40", "--height", "12"]) == 0
        out = capsys.readouterr().out
        assert "#" in out
        assert "XI=" in out

    def test_timing_command(self, acc_case, capsys):
        assert main(["timing"]) == 0
        out = capsys.readouterr().out
        assert "controller:" in out
        assert "saving at 79 skips/100" in out

    def test_batch_command_writes_records(self, acc_case, capsys, tmp_path):
        out_path = tmp_path / "records.json"
        assert main(
            ["batch", "--episodes", "3", "--horizon", "8", "--jobs", "1",
             "--seed", "5", "--out", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "3 episodes" in out
        assert "skip rate" in out
        from repro.framework import BatchResult

        assert len(BatchResult.from_json(out_path)) == 3

    def test_batch_command_seed_reproducible(self, acc_case, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main(
                ["batch", "--episodes", "2", "--horizon", "6",
                 "--seed", "11", "--out", str(path)]
            ) == 0
        from repro.framework import BatchResult

        first, second = (BatchResult.from_json(path) for path in paths)
        assert first.deterministic_records() == second.deterministic_records()

    def test_batch_engines_agree_end_to_end(self, acc_case, capsys, tmp_path):
        """The CLI's serial and lockstep engines write identical records."""
        results = {}
        for engine in ("serial", "lockstep"):
            path = tmp_path / f"{engine}.json"
            assert main(
                ["batch", "--episodes", "3", "--horizon", "8", "--seed", "5",
                 "--engine", engine, "--out", str(path)]
            ) == 0
            assert f"engine={engine}" in capsys.readouterr().out
            from repro.framework import BatchResult

            results[engine] = BatchResult.from_json(path)
        assert (
            results["serial"].deterministic_records()
            == results["lockstep"].deterministic_records()
        )

    def test_scenarios_command_lists_zoo(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("acc", "thermal", "pendulum", "dc_motor", "lane_keeping"):
            assert name in out
        # The acceptance bar: at least five registered scenarios.
        count = int(out.split(" registered scenario", 1)[0].split()[-1])
        assert count >= 5

    def test_batch_rejects_experiment_on_non_acc_scenario(self, capsys):
        assert main(
            ["batch", "--scenario", "thermal", "--experiment", "ex5",
             "--episodes", "2", "--horizon", "5"]
        ) == 2
        err = capsys.readouterr().err
        assert "--experiment" in err
        assert "thermal" in err

    def test_batch_command_on_registry_scenario(self, capsys):
        assert main(
            ["batch", "--scenario", "thermal", "--episodes", "2",
             "--horizon", "6", "--engine", "lockstep"]
        ) == 0
        out = capsys.readouterr().out
        assert "scenario=thermal" in out
        assert "2 episodes" in out

    def test_sweep_command_runs_and_reports_safe(self, capsys):
        assert main(
            ["sweep", "--scenarios", "thermal", "--cases", "2",
             "--horizon", "6", "--engine", "lockstep"]
        ) == 0
        out = capsys.readouterr().out
        assert "thermal" in out
        assert "bang_bang" in out
        assert "all scenarios safe" in out

    def test_sweep_command_with_axis_and_out(self, capsys, tmp_path):
        out_path = tmp_path / "grid.csv"
        assert main(
            ["sweep", "--scenarios", "thermal", "--cases", "2",
             "--horizon", "6", "--engine", "lockstep",
             "--axis", "horizon=5:8:2", "--jobs", "2",
             "--out", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "2 cell(s)" in out
        assert "thermal@horizon=5" in out
        assert "thermal@horizon=8" in out
        from repro.experiments import SweepResult

        table = SweepResult.from_csv(str(out_path))
        assert any(
            row["key"] == "thermal@horizon=8/bang_bang"
            for row in table.rows()
        )


class TestServiceCLI:
    def test_serve_submit_jobs_parser_flags(self):
        args = build_parser().parse_args(
            ["serve", "--store", "/tmp/s", "--port", "0"]
        )
        assert (args.store, args.port, args.host) == (
            "/tmp/s", 0, "127.0.0.1"
        )
        args = build_parser().parse_args(
            ["submit", "--url", "http://h:1", "--scenarios", "thermal",
             "--axis", "horizon=5:8:2", "--cases", "2", "--wait",
             "--engine", "lockstep", "--out", "r.json"]
        )
        assert args.url == "http://h:1"
        assert args.wait and args.out == "r.json"
        assert args.axis[0].name == "horizon"
        assert build_parser().parse_args(["jobs"]).url == (
            "http://127.0.0.1:8712"
        )

    def test_submit_wait_against_live_service(self, capsys, tmp_path):
        import threading

        from repro.service import serve

        server = serve(tmp_path / "store", port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            argv = [
                "submit", "--url", server.url, "--scenarios", "thermal",
                "--cases", "2", "--horizon", "6", "--engine", "lockstep",
                "--wait", "--out", str(tmp_path / "result.json"),
            ]
            assert main(argv) == 0
            captured = capsys.readouterr()
            assert "submitted job-1" in captured.out
            assert "0 served from the store, 1 solved" in captured.err
            assert (tmp_path / "result.json").exists()
            # Resubmit: 100% store-hits.
            assert main(argv[:-2]) == 0
            captured = capsys.readouterr()
            assert "1 served from the store, 0 solved" in captured.err
            assert main(["jobs", "--url", server.url]) == 0
            out = capsys.readouterr().out
            assert "job-1" in out and "job-2" in out
            assert "store:" in out
        finally:
            server.close()
            thread.join(timeout=10)

    def test_submit_unreachable_service_exits_2(self, capsys):
        assert main(
            ["submit", "--url", "http://127.0.0.1:1", "--scenarios",
             "thermal", "--cases", "2"]
        ) == 2
        assert "submission" in capsys.readouterr().err

    def test_sweep_checkpoint_reports_restored_split(
        self, capsys, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        argv = [
            "sweep", "--scenarios", "thermal", "--cases", "2",
            "--horizon", "6", "--engine", "lockstep",
            "--checkpoint", str(ckpt),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "0 cell(s) restored, 1 re-solved" in captured.err
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "1 cell(s) restored, 0 re-solved" in captured.err
