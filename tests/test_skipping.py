"""Tests for the skipping decision functions Ω."""

import numpy as np
import pytest

from repro.controllers import LinearFeedback, lqr_gain
from repro.geometry import HPolytope
from repro.invariance import maximal_rpi, strengthened_safe_set
from repro.skipping import (
    RUN,
    SKIP,
    AlwaysRunPolicy,
    AlwaysSkipPolicy,
    DecisionContext,
    ExhaustiveSkippingPolicy,
    MarginThresholdPolicy,
    MILPSkippingPolicy,
    PeriodicSkipPolicy,
    RandomSkipPolicy,
)


def _context(state, future=None, time=0):
    return DecisionContext(
        time=time,
        state=np.asarray(state, dtype=float),
        past_disturbances=np.zeros((1, len(state))),
        future_disturbances=future,
    )


class TestHeuristics:
    def test_always_policies(self):
        ctx = _context([0.0, 0.0])
        assert AlwaysRunPolicy().decide(ctx) == RUN
        assert AlwaysSkipPolicy().decide(ctx) == SKIP

    def test_periodic_pattern(self):
        policy = PeriodicSkipPolicy(period=3)
        decisions = [policy.decide(_context([0, 0], time=t)) for t in range(6)]
        assert decisions == [RUN, SKIP, SKIP, RUN, SKIP, SKIP]

    def test_periodic_offset(self):
        policy = PeriodicSkipPolicy(period=2, offset=1)
        assert policy.decide(_context([0, 0], time=0)) == SKIP
        assert policy.decide(_context([0, 0], time=1)) == RUN

    def test_periodic_validation(self):
        with pytest.raises(ValueError):
            PeriodicSkipPolicy(period=0)

    def test_random_policy_extremes(self, rng):
        always_skip = RandomSkipPolicy(1.0, rng)
        always_run = RandomSkipPolicy(0.0, rng)
        ctx = _context([0, 0])
        assert all(always_skip.decide(ctx) == SKIP for _ in range(10))
        assert all(always_run.decide(ctx) == RUN for _ in range(10))

    def test_random_policy_rate(self, rng):
        policy = RandomSkipPolicy(0.7, rng)
        ctx = _context([0, 0])
        skips = sum(policy.decide(ctx) == SKIP for _ in range(2000))
        assert 0.65 < skips / 2000 < 0.75

    def test_random_policy_validation(self, rng):
        with pytest.raises(ValueError):
            RandomSkipPolicy(1.5, rng)

    def test_margin_threshold(self, unit_box):
        policy = MarginThresholdPolicy(unit_box, margin=0.5)
        assert policy.decide(_context([0.0, 0.0])) == SKIP
        assert policy.decide(_context([0.8, 0.0])) == RUN

    def test_margin_validation(self, unit_box):
        with pytest.raises(ValueError):
            MarginThresholdPolicy(unit_box, margin=-0.1)


@pytest.fixture(scope="module")
def mb_setup():
    """Double integrator with LQR and its strengthened set for the
    model-based policies (module-scoped — set computation is slow)."""
    from tests.conftest import make_double_integrator

    system = make_double_integrator()
    K = lqr_gain(system.A, system.B, np.eye(2), 4.0 * np.eye(1))
    seed = system.safe_set.intersect(system.input_set.linear_preimage(K))
    xi = maximal_rpi(
        system.closed_loop_matrix(K), seed, system.disturbance_set
    ).invariant_set
    xp = strengthened_safe_set(system, xi)
    controller = LinearFeedback(K)
    return system, K, controller, xp


class TestModelBased:
    def test_milp_requires_future(self, mb_setup):
        system, K, _controller, xp = mb_setup
        policy = MILPSkippingPolicy(system, K, xp, horizon=3)
        with pytest.raises(ValueError, match="future"):
            policy.decide(_context([0.0, 0.0]))

    def test_exhaustive_requires_future(self, mb_setup):
        system, _K, controller, xp = mb_setup
        policy = ExhaustiveSkippingPolicy(system, controller, xp, horizon=3)
        with pytest.raises(ValueError, match="future"):
            policy.decide(_context([0.0, 0.0]))

    def test_skip_at_origin(self, mb_setup):
        """At the origin with zero disturbance, skipping is free and
        therefore optimal for both solvers."""
        system, K, controller, xp = mb_setup
        future = np.zeros((4, 2))
        milp = MILPSkippingPolicy(system, K, xp, horizon=4)
        exhaustive = ExhaustiveSkippingPolicy(system, controller, xp, horizon=4)
        assert milp.decide(_context([0.0, 0.0], future)) == SKIP
        assert exhaustive.decide(_context([0.0, 0.0], future)) == SKIP

    def test_milp_matches_exhaustive(self, mb_setup, rng):
        """Ground-truth check: the MILP and brute force agree on the
        decision at randomly sampled states."""
        system, K, controller, xp = mb_setup
        milp = MILPSkippingPolicy(system, K, xp, horizon=4)
        exhaustive = ExhaustiveSkippingPolicy(system, controller, xp, horizon=4)
        lo, hi = system.disturbance_set.bounding_box()
        inner = xp.scale(0.8)
        for x in inner.sample(rng, 8):
            future = rng.uniform(lo, hi, size=(4, 2))
            ctx = _context(x, future)
            assert milp.decide(ctx) == exhaustive.decide(ctx)

    def test_fallback_when_infeasible(self, mb_setup):
        """A state outside X' admits no plan confined to X': both solvers
        fall back to running the controller."""
        system, K, controller, xp = mb_setup
        outside = xp.support_point(np.array([1.0, 0.0])) * 1.5
        future = np.zeros((3, 2))
        milp = MILPSkippingPolicy(system, K, xp, horizon=3)
        exhaustive = ExhaustiveSkippingPolicy(system, controller, xp, horizon=3)
        assert milp.decide(_context(outside, future)) == RUN
        assert milp.infeasible_count == 1
        assert exhaustive.decide(_context(outside, future)) == RUN
        assert exhaustive.infeasible_count == 1

    def test_horizon_truncates_to_available_future(self, mb_setup):
        system, K, _controller, xp = mb_setup
        policy = MILPSkippingPolicy(system, K, xp, horizon=6)
        short_future = np.zeros((2, 2))
        assert policy.decide(_context([0.0, 0.0], short_future)) in (RUN, SKIP)

    def test_exhaustive_horizon_cap(self, mb_setup):
        system, _K, controller, xp = mb_setup
        with pytest.raises(ValueError, match="intractable"):
            ExhaustiveSkippingPolicy(system, controller, xp, horizon=13)

    def test_milp_gain_shape_validation(self, mb_setup):
        system, _K, _controller, xp = mb_setup
        with pytest.raises(ValueError, match="gain shape"):
            MILPSkippingPolicy(system, np.ones((2, 2)), xp, horizon=3)

    def test_milp_energy_between_bang_bang_and_always_run(self, mb_setup, rng):
        """Receding-horizon MILP saves most of the always-run energy and
        skips the vast majority of steps.  (It may cost slightly more
        than bang-bang: Eq. 6 confines *planned* states to X', whereas
        bang-bang exploits monitor-recovered excursions through XI − X'.)
        """
        from repro.framework import IntermittentController, SafetyMonitor

        system, K, controller, xp = mb_setup
        seed_xi = maximal_rpi(
            system.closed_loop_matrix(K),
            system.safe_set.intersect(system.input_set.linear_preimage(K)),
            system.disturbance_set,
        ).invariant_set
        monitor = lambda: SafetyMonitor(
            strengthened_set=xp, invariant_set=seed_xi, safe_set=system.safe_set
        )
        lo, hi = system.disturbance_set.bounding_box()
        W = rng.uniform(lo, hi, size=(40, 2))
        x0 = xp.sample(rng, 1)[0]
        milp_stats = IntermittentController(
            system, controller, monitor(),
            MILPSkippingPolicy(system, K, xp, horizon=4),
            reveal_future=True,
        ).run(x0, W)
        run_stats = IntermittentController(
            system, controller, monitor(), AlwaysRunPolicy()
        ).run(x0, W)
        assert milp_stats.energy < run_stats.energy
        assert milp_stats.skip_rate > 0.5
        assert system.safe_set.contains_points(milp_stats.states).all()
