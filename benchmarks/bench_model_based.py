"""Model-based skipping (Eq. 6) — MIP contribution bench.

The paper states the model-based MIP approach as a contribution but
evaluates only the DRL variant; this bench exercises Eq. 6 end-to-end on
a double integrator with a *known* disturbance trace (the setting the
model-based approach requires): receding-horizon MILP vs the exhaustive
ground truth vs bang-bang vs always-run, at several horizons.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.controllers import LinearFeedback, lqr_gain
from repro.framework import IntermittentController, SafetyMonitor
from repro.geometry import HPolytope
from repro.invariance import maximal_rpi, strengthened_safe_set
from repro.skipping import (
    AlwaysRunPolicy,
    AlwaysSkipPolicy,
    ExhaustiveSkippingPolicy,
    MILPSkippingPolicy,
)
from repro.systems import DiscreteLTISystem


def _setup():
    dt = 0.1
    A = np.array([[1.0, dt], [0.0, 1.0]])
    B = np.array([[0.5 * dt * dt], [dt]])
    # The disturbance is strong enough (relative to the state box) that
    # pure coasting drifts out of X' within a few steps — the skipping
    # choice genuinely matters, unlike a vanishing-noise setup.
    system = DiscreteLTISystem(
        A,
        B,
        HPolytope.from_box([-3.0, -1.5], [3.0, 1.5]),
        HPolytope.from_box([-3.0], [3.0]),
        HPolytope.from_box([-0.06, -0.06], [0.06, 0.06]),
    )
    K = lqr_gain(A, B, np.eye(2), np.eye(1))
    controller = LinearFeedback(K)
    seed = system.safe_set.intersect(system.input_set.linear_preimage(K))
    xi = maximal_rpi(
        system.closed_loop_matrix(K), seed, system.disturbance_set
    ).invariant_set
    xp = strengthened_safe_set(system, xi)
    return system, K, controller, xi, xp


def bench_model_based_eq6(benchmark):
    system, K, controller, xi, xp = _setup()
    rng = np.random.default_rng(11)
    lo, hi = system.disturbance_set.bounding_box()
    # Biased disturbance: persistent push toward the positive-position
    # facet, so the controller must intervene periodically.
    W = rng.uniform(0.2 * lo, hi, size=(60, 2))
    x0 = xp.sample(rng, 1)[0]

    def run(policy, reveal):
        return IntermittentController(
            system, controller,
            SafetyMonitor(
                strengthened_set=xp, invariant_set=xi, safe_set=system.safe_set
            ),
            policy, reveal_future=reveal,
        ).run(x0, W)

    rows = []
    results = {}
    for name, policy, reveal in (
        ("always-run", AlwaysRunPolicy(), False),
        ("bang-bang", AlwaysSkipPolicy(), False),
        ("MILP H=3", MILPSkippingPolicy(system, K, xp, horizon=3), True),
        ("MILP H=5", MILPSkippingPolicy(system, K, xp, horizon=5), True),
        ("exhaustive H=5", ExhaustiveSkippingPolicy(system, controller, xp, horizon=5), True),
    ):
        stats = run(policy, reveal)
        results[name] = stats
        rows.append(
            (name, f"{stats.energy:.3f}", f"{stats.skip_rate:.2f}", stats.forced_steps)
        )
    emit(
        "Eq. 6 — model-based skipping on a double integrator (Σ‖u‖₁)",
        rows,
        ("policy", "energy", "skip rate", "forced"),
    )

    # MILP and exhaustive agree (same optimum), and both beat always-run.
    assert results["MILP H=5"].energy == (
        __import__("pytest").approx(results["exhaustive H=5"].energy, abs=1e-6)
    )
    assert results["MILP H=5"].energy < results["always-run"].energy
    benchmark.extra_info["energies"] = {
        k: float(v.energy) for k, v in results.items()
    }

    # Timed kernel: one MILP decision (the per-step online cost of Eq. 6).
    policy = MILPSkippingPolicy(system, K, xp, horizon=5)
    from repro.skipping.base import DecisionContext

    ctx = DecisionContext(
        time=0, state=x0, past_disturbances=np.zeros((1, 2)),
        future_disturbances=W[:5],
    )
    benchmark(lambda: policy.decide(ctx))
