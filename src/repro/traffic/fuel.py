"""Fuel-consumption surrogate for the SUMO/HBEFA meter.

The paper reads fuel from SUMO, whose HBEFA3 emission classes model fuel
rate as a polynomial in the instantaneous traction power demand, clipped
at zero during over-run (engine braking burns ~idle fuel).  This module
implements the same functional form:

    P(v, u)   = max(0, m·u·v) / 1000                  [kW, u = commanded
                                                       accel against drag]
    rate(v,u) = idle + c1 · P + c2 · P²                [g/s]

The default coefficients are dominated by the linear power term with a
mild quadratic penalty (c2 = 2e-7): coasting pays off (idle-only steps,
less drag work at lower speed — the pulse-and-glide regime) while
full-thrust recovery bursts cost more than gentle corrections.  The
convexity of the engine map trades directly against skipping gains; the
ablation bench sweeps c2 from 0 (skipping maximally favoured) to the
strongly convex regime where coast-and-burst loses to steady cruising.

where ``u`` is the ACC's commanded acceleration (the dynamics are
``v⁺ = v + δ(u − k v)``, so ``u`` is the engine's specific force and
``−k v`` the resistive term the engine does *not* pay for separately).

Absolute grams are not comparable with the paper's SUMO output; the
benchmarks only use *relative savings*, which this form preserves because
it is monotone and convex in positive traction effort, like HBEFA3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HBEFA3Fuel", "FuelModel"]


@dataclass(frozen=True)
class FuelModel:
    """Coefficients of the HBEFA3-like polynomial fuel-rate model.

    Attributes:
        mass: Vehicle mass [kg].
        idle_rate: Fuel rate at zero traction power [g/s].
        linear: Linear coefficient c1 [g/s per kW].
        quadratic: Quadratic coefficient c2 [g/s per kW²].
    """

    mass: float = 1500.0
    idle_rate: float = 0.20
    linear: float = 0.006
    quadratic: float = 2.0e-7

    def __post_init__(self):
        if self.mass <= 0 or self.idle_rate < 0:
            raise ValueError("mass must be positive and idle_rate non-negative")
        if self.linear < 0 or self.quadratic < 0:
            raise ValueError("polynomial coefficients must be non-negative")


class HBEFA3Fuel:
    """Trip fuel meter over (velocity, commanded-acceleration) traces."""

    def __init__(self, model: FuelModel = FuelModel()):
        self.model = model

    def power_kw(self, velocity, command) -> np.ndarray:
        """Traction power demand, clipped at zero (over-run cut-off)."""
        v = np.asarray(velocity, dtype=float)
        u = np.asarray(command, dtype=float)
        return np.maximum(0.0, self.model.mass * u * v) / 1000.0

    def rate(self, velocity, command) -> np.ndarray:
        """Instantaneous fuel rate [g/s]."""
        p = self.power_kw(velocity, command)
        return self.model.idle_rate + self.model.linear * p + self.model.quadratic * p**2

    def trip_fuel(self, velocities, commands, dt: float) -> float:
        """Total fuel [g] over a trace of ``T`` steps.

        Args:
            velocities: Ego velocity at each step, length ``T`` (raw
                coordinates, m/s).
            commands: Commanded acceleration ``u`` at each step, length
                ``T`` (raw coordinates).
            dt: Step duration [s].

        Raises:
            ValueError: On length mismatch.
        """
        v = np.asarray(velocities, dtype=float).reshape(-1)
        u = np.asarray(commands, dtype=float).reshape(-1)
        if v.shape != u.shape:
            raise ValueError("velocity and command traces must match in length")
        if dt <= 0:
            raise ValueError("dt must be positive")
        return float(np.sum(self.rate(v, u)) * dt)
