"""Tests for the pluggable LP backends (repro.utils.lp_backends).

Backend *resolution* is testable everywhere; the warm-started
:class:`PersistentStackSolver` itself needs the optional ``highspy``
extra, so those tests importorskip it — the scipy-only CI leg exercises
exactly the fallback semantics this module promises (``auto`` → scipy,
explicit ``highs`` → :class:`LPBackendError`).

The solved family throughout: ``min x0 + x1`` over the unit box with
``x0`` pinned per block (``x0 = v``), whose optimum is ``v - 1`` at
``(v, -1)`` — infeasible iff ``|v| > 1``.
"""

import numpy as np
import pytest

from repro.utils.lp import LPError, reset_stack_cache_stats, solve_lp
from repro.utils.lp_backends import (
    BACKENDS,
    LPBackendError,
    PersistentStackSolver,
    highs_available,
    resolve_backend,
)

needs_highs = pytest.mark.skipif(
    not highs_available(), reason="optional highspy extra not installed"
)
needs_no_highs = pytest.mark.skipif(
    highs_available(), reason="tests the highspy-absent fallback"
)

BOX_H = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
BOX_h = np.ones(4)
PIN_X0 = np.array([[1.0, 0.0]])


def _solver(**kwargs) -> PersistentStackSolver:
    return PersistentStackSolver(
        cost=[1.0, 1.0],
        a_ub=BOX_H,
        b_ub=BOX_h,
        a_eq=PIN_X0,
        b_eq=[0.0],
        varying_eq_rows=[0],
        **kwargs,
    )


class TestResolveBackend:
    def test_scipy_is_always_scipy(self):
        assert resolve_backend("scipy") == "scipy"

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="one of"):
            resolve_backend("cplex")

    def test_auto_resolves_to_an_effective_backend(self):
        effective = resolve_backend("auto")
        assert effective in ("highs", "scipy")
        assert effective == ("highs" if highs_available() else "scipy")

    @needs_no_highs
    def test_auto_falls_back_silently(self):
        assert resolve_backend("auto") == "scipy"

    @needs_no_highs
    def test_explicit_highs_errors_without_highspy(self):
        with pytest.raises(LPBackendError, match="highspy"):
            resolve_backend("highs")

    @needs_no_highs
    def test_persistent_solver_needs_highspy(self):
        with pytest.raises(LPBackendError, match="highspy"):
            _solver()

    def test_backends_tuple_is_the_request_vocabulary(self):
        assert BACKENDS == ("auto", "highs", "scipy")


@needs_highs
class TestPersistentStackSolver:
    def test_matches_scalar_solves(self):
        solver = _solver()
        pins = np.linspace(-0.8, 0.9, 5).reshape(-1, 1)
        batch = solver.solve_batch(pins)
        assert len(batch) == 5
        for pin, sol in zip(pins, batch):
            scalar = solve_lp(
                [1.0, 1.0], a_ub=BOX_H, b_ub=BOX_h, a_eq=PIN_X0, b_eq=pin
            )
            assert sol.value == pytest.approx(scalar.value, abs=1e-9)
            assert sol.value == pytest.approx(pin[0] - 1.0, abs=1e-9)
            assert sol.x[0] == pytest.approx(pin[0], abs=1e-9)

    def test_second_call_is_warm(self):
        solver = _solver()
        pins = np.zeros((4, 1))
        solver.solve_batch(pins)
        assert solver.model_builds == 1
        assert solver.warm_solves == 0
        batch = solver.solve_batch(pins + 0.25)
        # Same batch size: the persistent model is reused (no rebuild),
        # only the varying RHS was rewritten.
        assert solver.model_builds == 1
        assert solver.warm_solves == 1
        assert batch[0].value == pytest.approx(-0.75, abs=1e-9)

    def test_chunking_matches_unchunked(self):
        chunked = _solver(chunk_size=2)
        whole = _solver()
        pins = np.linspace(-0.5, 0.5, 5).reshape(-1, 1)
        a = chunked.solve_batch(pins)
        b = whole.solve_batch(pins)
        # k=5 at chunk_size=2 → one 2-block model + one 1-block remainder.
        assert chunked.model_builds == 2
        for left, right in zip(a, b):
            assert left.value == pytest.approx(right.value, abs=1e-9)
        # Same k again: both chunk models stay warm, none rebuilt.
        chunked.solve_batch(pins + 0.1)
        assert chunked.model_builds == 2
        assert chunked.warm_solves >= 2

    def test_infeasible_block_raises(self):
        solver = _solver()
        with pytest.raises(LPError, match="persistent stacked"):
            solver.solve_batch([[0.0], [3.0]])

    def test_failure_is_all_or_nothing(self):
        """A failing later chunk must raise (nothing partial), and the
        solver must stay usable afterwards."""
        solver = _solver(chunk_size=2)
        pins = np.array([[0.0], [0.1], [3.0]])  # failure in chunk 2
        with pytest.raises(LPError):
            solver.solve_batch(pins)
        batch = solver.solve_batch(np.zeros((3, 1)))
        assert [sol.value for sol in batch] == pytest.approx([-1.0] * 3)

    def test_release_then_rebuild(self):
        solver = _solver()
        solver.solve_batch(np.zeros((3, 1)))
        assert solver.model_builds == 1
        solver.release()
        batch = solver.solve_batch(np.zeros((3, 1)))
        assert solver.model_builds == 2
        assert batch[1].value == pytest.approx(-1.0, abs=1e-9)

    def test_model_lru_is_bounded(self):
        solver = _solver(max_models=2)
        for k in (1, 2, 3, 4):
            solver.solve_batch(np.zeros((k, 1)))
        assert solver.model_builds == 4
        assert len(solver._models) == 2

    def test_value_shape_validation(self):
        solver = _solver()
        with pytest.raises(ValueError, match="varying"):
            solver.solve_batch(np.zeros((3, 2)))

    def test_empty_batch(self):
        assert _solver().solve_batch(np.zeros((0, 1))) == []

    def test_bad_construction_rejected(self):
        with pytest.raises(ValueError, match="cost"):
            PersistentStackSolver(
                cost=[1.0], a_ub=BOX_H, b_ub=BOX_h,
                a_eq=PIN_X0, b_eq=[0.0], varying_eq_rows=[0],
            )
        with pytest.raises(ValueError, match="varying_eq_rows"):
            PersistentStackSolver(
                cost=[1.0, 1.0], a_ub=BOX_H, b_ub=BOX_h,
                a_eq=PIN_X0, b_eq=[0.0], varying_eq_rows=[5],
            )
        with pytest.raises(ValueError, match="chunk_size"):
            _solver(chunk_size=0)


@needs_highs
class TestHighsMatchesScipyStack:
    def test_against_solve_lp_batch(self):
        """The two backends attain identical optimal values on the same
        stacked family (the plan-equivalent contract at the LP layer)."""
        from repro.utils.lp import solve_lp_batch

        reset_stack_cache_stats()
        pins = np.linspace(-0.9, 0.9, 7).reshape(-1, 1)
        persistent = _solver().solve_batch(pins)
        b_eq = pins  # per-block equality RHS, one varying row
        stacked = solve_lp_batch(
            np.tile([1.0, 1.0], (7, 1)), BOX_H, BOX_h,
            a_eq=PIN_X0, b_eq=b_eq,
        )
        for left, right in zip(persistent, stacked):
            assert left.value == pytest.approx(right.value, abs=1e-9)
