"""Linear state feedback and LQR synthesis.

Provides the ``κ(x) = K x`` controllers used both as stand-alone safe
controllers (the simple case of Sec. III-A) and as the tube/terminal
controller inside the robust MPC.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.linalg import solve_discrete_are

from repro.controllers.base import Controller
from repro.utils.validation import as_matrix, as_vector, check_square

__all__ = ["LinearFeedback", "lqr_gain", "deadbeat_like_gain"]


class LinearFeedback(Controller):
    """``u = K x`` with optional componentwise saturation.

    Args:
        K: Gain matrix of shape ``(m, n)``.
        saturation: Optional ``(lower, upper)`` pair of length-``m``
            vectors; outputs are clipped into the box.  Use the bounding
            box of the input polytope to model actuator limits.
    """

    def __init__(self, K, saturation: Optional[tuple] = None):
        self.K = as_matrix(K, "K")
        self.input_dim = self.K.shape[0]
        if saturation is not None:
            lower = as_vector(saturation[0], "saturation lower")
            upper = as_vector(saturation[1], "saturation upper")
            if lower.size != self.input_dim or upper.size != self.input_dim:
                raise ValueError("saturation bounds must match input dimension")
            self._lower, self._upper = lower, upper
        else:
            self._lower = self._upper = None

    def compute(self, state) -> np.ndarray:
        # Multiply + pairwise reduction instead of BLAS ``K @ x`` so that
        # compute_batch rows reproduce this bit for bit (the reduction's
        # rounding depends only on n, not on the batch height).
        x = as_vector(state, "state")
        u = np.sum(self.K * x, axis=1)
        if self._lower is not None:
            u = np.clip(u, self._lower, self._upper)
        return u

    def compute_batch(self, states) -> np.ndarray:
        """Vectorised ``U = X K^T`` in one broadcast for all rows, clipped.

        Row ``i`` is bitwise-equal to ``compute(states[i])`` — the batch
        engines' determinism contract (see :meth:`compute`).
        """
        X = np.atleast_2d(np.asarray(states, dtype=float))
        U = np.sum(self.K * X[:, None, :], axis=2)
        if self._lower is not None:
            U = np.clip(U, self._lower, self._upper)
        return U

    def affine_feedback(self):
        """``u = clip(K x)`` — the compiled-kernel closed form (no offset)."""
        return (self.K, None, self._lower, self._upper)


def lqr_gain(A, B, Q, R) -> np.ndarray:
    """Infinite-horizon discrete LQR gain.

    Solves the DARE and returns ``K`` such that ``u = K x`` is optimal for
    cost ``Σ xᵀQx + uᵀRu`` — note the sign convention ``u = +K x`` (the
    gain already includes the conventional minus).

    Args:
        A: State matrix.
        B: Input matrix.
        Q: State cost (PSD).
        R: Input cost (PD).

    Returns:
        Gain matrix ``K`` of shape ``(m, n)``; ``A + B K`` is Schur stable
        for stabilisable/detectable data.
    """
    A = check_square(as_matrix(A, "A"), "A")
    B = as_matrix(B, "B")
    Q = as_matrix(Q, "Q")
    R = as_matrix(R, "R")
    P = solve_discrete_are(A, B, Q, R)
    K = -np.linalg.solve(R + B.T @ P @ B, B.T @ P @ A)
    return K


def deadbeat_like_gain(A, B, decay: float = 0.0) -> np.ndarray:
    """Cheap pole-shrinking gain for well-conditioned single-input systems.

    Uses LQR with very cheap input cost, which pushes the closed-loop
    spectral radius down toward ``decay``-like behaviour without requiring
    an explicit pole-placement routine.  Intended for tests and examples.
    """
    A = check_square(as_matrix(A, "A"), "A")
    B = as_matrix(B, "B")
    n = A.shape[0]
    m = B.shape[1]
    weight = max(decay, 1e-4)
    return lqr_gain(A, B, np.eye(n), weight * np.eye(m))
