"""Grid-sweep throughput of the declarative experiment API.

Standalone script (not a pytest-benchmark kernel) so CI can smoke it at
tiny scale and operators can size sweeps::

    PYTHONPATH=src python benchmarks/bench_sweep.py \
        --scenarios thermal pendulum --cases 16 --horizon 50

It expands a (scenarios × axis points) grid — the generalised Table-I
shape — and times the full sweep under cell sharding at ``jobs=1`` and
``jobs=2``, lockstep inside every cell.  On a one-core container the
sharded row is judged by **determinism, not speedup**: the sharding
contract says whole grid cells run inside single workers, so a
``jobs=2`` sweep must reproduce the ``jobs=1`` run's deterministic row
table exactly (cross-worker plan-equivalence comes for free — equal
rows imply equal optimal costs and zero violations).  The
``lockstep-exact`` audit row additionally re-runs the grid with
``exact_solves=True`` and must match the serial-engine reference record
for record.  Any failed check exits non-zero.

Every run writes a ``BENCH_sweep.json`` perf-trajectory artifact
(per-row cells/sec + grid shape + machine info, like
``BENCH_lockstep.json``) so successive commits can be compared; disable
with ``--artifact ''``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from machine import machine_info, visible_cpus

from repro.experiments import (
    ExecutionConfig,
    ParameterAxis,
    SweepPlan,
    run_sweep,
)
from repro.observability import deterministic_view


def run_benchmark(
    scenario_names,
    axis_field: str,
    axis_values,
    cases: int,
    horizon: int,
    seed: int,
) -> dict:
    """Time the grid under each execution configuration and gate it.

    Every grid point's certified sets are synthesised once up front (the
    warm-up below), so the timed rows measure sweep execution, not set
    synthesis — and forked cell workers inherit the warm builder cache
    through the process image.
    """
    from repro.scenarios import build_case_study, registry

    axis = ParameterAxis(axis_field, tuple(axis_values))
    plan = SweepPlan.for_scenarios(
        scenario_names,
        axes=(axis,),
        num_cases=cases,
        horizon=horizon,
        seed=seed,
    )
    cells = len(plan.cells())

    tick = time.perf_counter()
    for cell in plan.cells():
        spec = registry.get(cell.experiment.scenario)
        overrides = dict(cell.overrides)
        build_case_study(spec.with_overrides(**overrides) if overrides else spec)
    # One untimed sweep brings the remaining in-process caches (stacked
    # LP blocks, nesting proofs) to steady state too: the timed rows
    # then measure execution, and the telemetry-equality gate below
    # compares jobs=1 and jobs=2 runs starting from identical cache
    # state — forked cell workers inherit it through the process image.
    run_sweep(plan, ExecutionConfig(engine="lockstep", jobs=1))
    warmup_seconds = time.perf_counter() - tick

    configurations = [
        # The two telemetry=True rows also gate the telemetry merge
        # contract: the jobs=2 sweep's merged snapshot must equal the
        # jobs=1 run's in the deterministic (non-wall-clock) view.
        ("lockstep", ExecutionConfig(engine="lockstep", jobs=1,
                                     telemetry=True)),
        ("lockstep-jobs2", ExecutionConfig(engine="lockstep", jobs=2,
                                           telemetry=True)),
        ("serial", ExecutionConfig(engine="serial", jobs=1)),
        (
            "lockstep-exact-jobs2",
            ExecutionConfig(engine="lockstep", jobs=2, exact_solves=True),
        ),
    ]

    rows = []
    results = {}
    for name, execution in configurations:
        tick = time.perf_counter()
        result = run_sweep(plan, execution)
        seconds = time.perf_counter() - tick
        results[name] = result
        telemetry_equal = None
        if name == "lockstep-jobs2":
            # Sharding contract: whole cells per worker => the sharded
            # sweep reproduces the in-process run row for row — and its
            # worker-merged telemetry the in-process run's snapshot.
            contract = "cross-worker determinism"
            telemetry_equal = deterministic_view(
                result.telemetry
            ) == deterministic_view(results["lockstep"].telemetry)
            ok = (
                result.deterministic_rows()
                == results["lockstep"].deterministic_rows()
            ) and telemetry_equal
        elif name == "lockstep-exact-jobs2":
            # Audit tier: scalar solves restore record-for-record parity
            # with the serial engine, even across cell workers.
            contract = "bitwise (exact solves)"
            ok = (
                result.deterministic_rows()
                == results["serial"].deterministic_rows()
            )
        else:
            contract = "reference"
            ok = True
        ok = ok and result.always_safe
        rows.append(
            {
                "configuration": name,
                "engine": execution.engine,
                "jobs": execution.jobs,
                "exact_solves": execution.exact_solves,
                "contract": contract,
                "seconds": seconds,
                "cells_per_sec": cells / seconds,
                "speedup": rows[0]["seconds"] / seconds if rows else 1.0,
                "violation_free": result.always_safe,
                "telemetry_equal": telemetry_equal,
                "ok": ok,
            }
        )
    return {
        "scenarios": list(scenario_names),
        "axis": {"field": axis_field, "values": list(axis_values)},
        "grid_shape": list(plan.grid_shape),
        "cells": cells,
        "cases": cases,
        "horizon": horizon,
        "seed": seed,
        "cpus": visible_cpus(),
        "warmup_seconds": warmup_seconds,
        "machine": machine_info(),
        "rows": rows,
        "telemetry": results["lockstep"].telemetry,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenarios", nargs="+", default=["thermal", "pendulum"],
        metavar="NAME", help="registry scenarios forming the grid rows",
    )
    parser.add_argument(
        "--axis-field", default="horizon",
        help="scenario-spec field the axis overrides",
    )
    parser.add_argument(
        "--axis-values", nargs="+", type=int, default=[8, 12],
        help="axis points (the grid is scenarios x these values)",
    )
    parser.add_argument("--cases", type=int, default=16)
    parser.add_argument("--horizon", type=int, default=50)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI scale: 2 scenarios x 2 axis points, 4 cases x 12 steps",
    )
    parser.add_argument(
        "--artifact", default="BENCH_sweep.json",
        help="perf-trajectory artifact path ('' disables writing)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.scenarios = args.scenarios[:2]
        args.axis_values = args.axis_values[:2]
        args.cases = 4
        args.horizon = 12

    report = run_benchmark(
        args.scenarios, args.axis_field, args.axis_values,
        args.cases, args.horizon, args.seed,
    )
    print(
        f"sweep benchmark: {'x'.join(map(str, report['grid_shape']))} grid "
        f"({report['cells']} cells), {report['cases']} cases x "
        f"{report['horizon']} steps, {report['cpus']} visible CPU(s); "
        f"set synthesis warm-up {report['warmup_seconds']:.2f}s"
    )
    print(
        f"{'configuration':<22} {'jobs':>4} {'sec':>8} {'cells/s':>8} "
        f"{'speedup':>8} {'contract':>26} {'ok':>5}"
    )
    for row in report["rows"]:
        print(
            f"{row['configuration']:<22} {row['jobs']:>4} "
            f"{row['seconds']:>8.2f} {row['cells_per_sec']:>8.2f} "
            f"{row['speedup']:>7.2f}x {row['contract']:>26} "
            f"{str(row['ok']):>5}"
        )
    if args.artifact:
        with open(args.artifact, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.artifact}")
    failed = [row for row in report["rows"] if not row["ok"]]
    if failed:
        for row in failed:
            print(
                f"ERROR: {row['configuration']} failed its "
                f"{row['contract']} check"
                + ("" if row["violation_free"] else " (safety violation)")
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
