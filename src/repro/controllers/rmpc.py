"""Robust model predictive control (paper Eq. 5).

The underlying safe controller of the ACC case study: a tube-style RMPC
with nominal prediction, recursively tightened state constraints and a
1-norm stage cost

    J(x(t)) = min  Σ_{k=0}^{N-1}  P ||x(k|t)||_1 + Q ||u(k|t)||_1
    s.t.    x(k+1|t) = A x(k|t) + B u(k|t)
            x(k|t) ∈ X(k),  u(k|t) ∈ U,  x(N|t) ∈ X_t,
            x(0|t) = x(t).

The 1-norm cost makes the whole problem a single LP, solved with HiGHS.
All constraint matrices are assembled once at construction (as sparse
CSR — the LP data is mostly structural zeros); each call only rewrites
the initial-state equality right-hand side, into a per-call copy.

Batch solving: :meth:`RobustMPC.solve_batch` stacks the ``k`` per-state
Eq.-5 problems into one block-diagonal HiGHS solve — the blocks share
every matrix and differ only in the initial-state equality RHS.  Two
backends can run the stack (selected by the ``lp_backend`` argument,
``auto|highs|scipy`` — see :mod:`repro.utils.lp_backends`):

* ``scipy`` — :func:`repro.utils.lp.solve_lp_batch` over this
  controller's owned :class:`~repro.utils.lp.BlockStack`; every call
  re-factorises from scratch.  Always available.
* ``highs`` — a :class:`~repro.utils.lp_backends.PersistentStackSolver`
  owned by this controller: the stacked model is passed to a persistent
  ``highspy.Highs`` instance once and subsequent calls only rewrite the
  initial-state equality RHS, warm-starting from the previous solve's
  basis.  Needs the optional ``highspy`` extra; ``auto`` falls back to
  scipy without it.

Under either backend each block attains exactly the scalar optimum
*value*, but when an LP has multiple optimal vertices the stacked solve
may return a different one than ``k`` scalar solves would (and a
warm-started solve a different one than a cold one) — the
*plan-equivalent* tier of the determinism contract (see
:mod:`repro.framework.lockstep`), which is why the class declares
``bitwise_batch = False``.  The scalar path (and with it the
``exact_solves=True`` audit tier) always uses scipy's ``linprog`` and is
therefore backend-invariant.

Thread-safety contract: after construction, the scalar solve paths
treat the assembled LP data as read-only (right-hand sides are modified
on per-call copies), so one controller instance is safe to share across
forked workers and re-entrant *scalar* calls.  :meth:`solve_batch` under
the ``highs`` backend mutates its persistent solver in place and is not
re-entrant (forked workers are fine — the solver is built lazily, so
each worker builds its own).  The remaining mutable state is the
``solve_count`` accounting counter, whose increments are not atomic —
exact counts are only guaranteed for unthreaded use (forked workers each
count their own copy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro.controllers.base import Controller
from repro.controllers.linear import lqr_gain
from repro.controllers.tightening import tightened_constraints
from repro.geometry import HPolytope
from repro.invariance.rci import maximal_rpi
from repro.observability.metrics import registry as _telemetry
from repro.systems.lti import DiscreteLTISystem
from repro.utils.lp import BlockStack, LPError, solve_lp_batch
from repro.utils.lp_backends import BACKENDS, resolve_backend
from repro.utils.validation import as_vector

__all__ = [
    "RobustMPC",
    "RMPCInfeasibleError",
    "RMPCSolution",
    "build_terminal_set",
    "verify_plan_equivalence",
]


class RMPCInfeasibleError(RuntimeError):
    """Raised when the RMPC optimisation has no feasible solution at x."""


@dataclass
class RMPCSolution:
    """Full open-loop solution of one RMPC solve.

    Attributes:
        inputs: Planned inputs, shape ``(N, m)``.
        states: Predicted nominal states, shape ``(N+1, n)``.
        cost: Optimal objective value ``J(x)``.
    """

    inputs: np.ndarray
    states: np.ndarray
    cost: float


def build_terminal_set(
    system: DiscreteLTISystem,
    gain,
    state_constraint: HPolytope,
) -> HPolytope:
    """Terminal set ``X_t``: maximal robust positively invariant subset of
    ``state_constraint ∩ {x : K x ∈ U}`` under ``x⁺ = (A+BK) x + w``.

    This realises the premise of the paper's Proposition 1 — a robust
    local controller ``κ_L(x) = K x`` that keeps ``X_t`` invariant under
    the full disturbance.
    """
    K = np.atleast_2d(np.asarray(gain, dtype=float))
    closed_loop = system.closed_loop_matrix(K)
    input_region = system.input_set.linear_preimage(K)
    seed = state_constraint.intersect(input_region)
    result = maximal_rpi(closed_loop, seed, system.disturbance_set)
    return result.invariant_set


class RobustMPC(Controller):
    """The paper's RMPC κ_R (Eq. 5) as a single LP per step.

    Args:
        system: Constrained plant (provides A, B, X, U, W).
        horizon: Prediction horizon ``N`` (the paper uses 10).
        state_weight: ``P`` in the stage cost.
        input_weight: ``Q`` in the stage cost.
        terminal_set: ``X_t``.  When None, it is built from an LQR tube
            gain via :func:`build_terminal_set`.
        tube_gain: Feedback gain used only to build the default terminal
            set.  When None, an LQR gain with identity weights is used.
        tighten_with_closed_loop: If True, propagate the disturbance with
            ``A + B K`` (Chisci) instead of the paper's open-loop ``A``.
        lp_backend: Stacked-solve backend request — ``"auto"`` (default:
            warm-started persistent HiGHS when ``highspy`` is installed,
            scipy otherwise), ``"highs"`` or ``"scipy"``.  Scalar solves
            always use scipy (see the module docstring).
    """

    #: A stacked :meth:`solve_batch` may return a different optimal vertex
    #: than row-wise scalar solves when an LP has multiple optima, so the
    #: batch path is *plan-equivalent*, not bitwise (see the two-tier
    #: determinism contract in :mod:`repro.framework.lockstep`).
    bitwise_batch = False

    def __init__(
        self,
        system: DiscreteLTISystem,
        horizon: int = 10,
        state_weight: float = 1.0,
        input_weight: float = 1.0,
        terminal_set: Optional[HPolytope] = None,
        tube_gain=None,
        tighten_with_closed_loop: bool = False,
        lp_backend: str = "auto",
    ):
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if lp_backend not in BACKENDS:
            raise ValueError(
                f"lp_backend must be one of {BACKENDS}, got {lp_backend!r}"
            )
        self.lp_backend = lp_backend
        self.system = system
        self.horizon = int(horizon)
        self.state_weight = float(state_weight)
        self.input_weight = float(input_weight)
        self.input_dim = system.m

        if tube_gain is None:
            tube_gain = lqr_gain(
                system.A, system.B, np.eye(system.n), np.eye(system.m)
            )
        self.tube_gain = np.atleast_2d(np.asarray(tube_gain, dtype=float))

        propagation = (
            system.closed_loop_matrix(self.tube_gain)
            if tighten_with_closed_loop
            else system.A
        )
        self.tightened = tightened_constraints(
            system.safe_set, system.disturbance_set, self.horizon, propagation
        )
        if terminal_set is None:
            terminal_set = build_terminal_set(
                system, self.tube_gain, self.tightened[self.horizon]
            )
        self.terminal_set = terminal_set

        self._assemble_lp()
        # This controller owns its stacks: the scipy backend's CSR stacks
        # live on the BlockStack, the highs backend's persistent models
        # on the lazily-built PersistentStackSolver — nothing is pinned
        # in the module-level LRU cache, so dropping the controller
        # reclaims everything (see repro.utils.lp).
        self._stack = BlockStack(self._A_ub, self._A_eq)
        self._persistent = None
        self._solve_count = 0
        # Always-on effort accounting behind the solver-effort columns of
        # SweepResult.rows(): scalar vs stacked split, fallback events,
        # and the backend the last stacked solve actually used.
        self._scalar_solves = 0
        self._stacked_solves = 0
        self._stacked_fallbacks = 0
        self._last_stacked_backend = None

    # ------------------------------------------------------------------
    # LP assembly
    # ------------------------------------------------------------------
    def _assemble_lp(self) -> None:
        """Build the constant LP data for Eq. (5).

        Variable layout: ``[x_0 … x_N, u_0 … u_{N-1}, sx_0 … sx_N,
        su_0 … su_{N-1}]`` where ``sx, su`` are the 1-norm epigraph
        variables (``±x <= sx``).
        """
        n, m, N = self.system.n, self.system.m, self.horizon
        nx = n * (N + 1)
        nu = m * N
        self._nx, self._nu = nx, nu
        total = 2 * nx + 2 * nu
        self._total = total

        def x_slice(k):
            return slice(k * n, (k + 1) * n)

        def u_slice(k):
            return slice(nx + k * m, nx + (k + 1) * m)

        def sx_slice(k):
            return slice(nx + nu + k * n, nx + nu + (k + 1) * n)

        def su_slice(k):
            return slice(2 * nx + nu + k * m, 2 * nx + nu + (k + 1) * m)

        self._x_slice = x_slice
        self._u_slice = u_slice

        # Cost: P sum(sx) + Q sum(su); epigraph vars for x_N are included
        # with weight 0 (the paper's stage cost runs k = 0 … N-1).
        cost = np.zeros(total)
        for k in range(N):
            cost[sx_slice(k)] = self.state_weight
            cost[su_slice(k)] = self.input_weight
        self._cost = cost

        # Equalities: dynamics + initial state.
        A_eq = np.zeros((n * N + n, total))
        b_eq = np.zeros(n * N + n)
        for k in range(N):
            rows = slice(k * n, (k + 1) * n)
            A_eq[rows, x_slice(k + 1)] = -np.eye(n)
            A_eq[rows, x_slice(k)] = self.system.A
            A_eq[rows, u_slice(k)] = self.system.B
        A_eq[n * N :, x_slice(0)] = np.eye(n)
        self._b_eq = b_eq
        self._x0_rows = slice(n * N, n * N + n)

        # Inequalities.
        blocks = []
        rhs = []
        for k in range(N + 1):
            Xk = self.tightened[k] if k < N else self.tightened[N]
            row = np.zeros((Xk.num_constraints, total))
            row[:, x_slice(k)] = Xk.H
            blocks.append(row)
            rhs.append(Xk.h)
        term = np.zeros((self.terminal_set.num_constraints, total))
        term[:, x_slice(N)] = self.terminal_set.H
        blocks.append(term)
        rhs.append(self.terminal_set.h)
        U = self.system.input_set
        for k in range(N):
            row = np.zeros((U.num_constraints, total))
            row[:, u_slice(k)] = U.H
            blocks.append(row)
            rhs.append(U.h)
        # Epigraph: x - sx <= 0, -x - sx <= 0 (same for u).
        for k in range(N + 1):
            for sign in (1.0, -1.0):
                row = np.zeros((n, total))
                row[:, x_slice(k)] = sign * np.eye(n)
                row[:, sx_slice(k)] = -np.eye(n)
                blocks.append(row)
                rhs.append(np.zeros(n))
        for k in range(N):
            for sign in (1.0, -1.0):
                row = np.zeros((m, total))
                row[:, u_slice(k)] = sign * np.eye(m)
                row[:, su_slice(k)] = -np.eye(m)
                blocks.append(row)
                rhs.append(np.zeros(m))
        # The constraint matrices are mostly structural zeros (each row
        # touches one or two stage blocks), so hand HiGHS CSR directly —
        # both for the scalar path and as the shared block of the stacked
        # batch solve.
        self._A_ub = sp.csr_matrix(np.vstack(blocks))
        self._A_eq = sp.csr_matrix(A_eq)
        self._b_ub = np.concatenate(rhs)
        self._bounds = [(None, None)] * total

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _solve_raw(self, x: np.ndarray):
        """One scalar HiGHS solve at ``x`` (no counting, no unpacking).

        Writes the initial state into a *copy* of the equality RHS, so
        concurrent/re-entrant calls never race on shared buffers.
        """
        b_eq = self._b_eq.copy()
        b_eq[self._x0_rows] = x
        return linprog(
            self._cost,
            A_ub=self._A_ub,
            b_ub=self._b_ub,
            A_eq=self._A_eq,
            b_eq=b_eq,
            bounds=self._bounds,
            method="highs",
        )

    def _unpack(self, solution: np.ndarray, cost: float) -> RMPCSolution:
        n, m, N = self.system.n, self.system.m, self.horizon
        states = solution[: self._nx].reshape(N + 1, n)
        inputs = solution[self._nx : self._nx + self._nu].reshape(N, m)
        return RMPCSolution(inputs=inputs, states=states, cost=float(cost))

    def _validate_state(self, state) -> np.ndarray:
        x = as_vector(state, "state")
        if x.size != self.system.n:
            raise ValueError("state dimension mismatch")
        return x

    def solve(self, state) -> RMPCSolution:
        """Solve Eq. (5) at ``state`` and return the full plan.

        Raises:
            RMPCInfeasibleError: If ``state`` is outside the feasible
                region ``X_F``.
        """
        x = self._validate_state(state)
        res = self._solve_raw(x)
        if not res.success:
            raise RMPCInfeasibleError(
                f"RMPC infeasible at x={x} (status={res.status})"
            )
        self._solve_count += 1
        self._scalar_solves += 1
        _telemetry().inc("rmpc_solves_total", path="scalar")
        return self._unpack(res.x, res.fun)

    def set_lp_backend(self, backend: str) -> None:
        """Re-select the stacked-solve backend (``auto|highs|scipy``).

        The execution engines call this to thread an
        :class:`~repro.experiments.execution.ExecutionConfig` /
        CLI backend choice down to the controller.  Sticky: the setting
        persists until changed again.  An already-built persistent
        solver is kept (switching back to ``highs`` reuses its
        warm-started models).
        """
        if backend not in BACKENDS:
            raise ValueError(
                f"lp_backend must be one of {BACKENDS}, got {backend!r}"
            )
        self.lp_backend = backend

    def _persistent_solver(self):
        """The owned warm-started HiGHS solver, built on first use."""
        if self._persistent is None:
            from repro.utils.lp_backends import PersistentStackSolver

            self._persistent = PersistentStackSolver(
                cost=self._cost,
                a_ub=self._A_ub,
                b_ub=self._b_ub,
                a_eq=self._A_eq,
                b_eq=self._b_eq,
                varying_eq_rows=np.arange(
                    self._x0_rows.start, self._x0_rows.stop
                ),
            )
        return self._persistent

    def release_stacks(self) -> None:
        """Eagerly free the owned CSR stacks and persistent HiGHS models.

        Purely a memory knob — both are rebuilt transparently on the
        next :meth:`solve_batch`.  (Dropping the controller reclaims
        them anyway; nothing lives in a global cache.)
        """
        self._stack.release()
        if self._persistent is not None:
            self._persistent.release()
            self._persistent = None

    def solve_batch(self, states) -> List[RMPCSolution]:
        """Solve Eq. (5) at every row of ``states`` in one stacked LP.

        The ``k`` per-state problems share every constraint matrix and
        differ only in the initial-state equality RHS, so they stack
        into a single block-diagonal solve, run by the backend selected
        via ``lp_backend`` — the warm-started persistent-HiGHS solver or
        the scipy rebuild path (see the class docstring).  Each returned
        plan attains exactly the scalar optimum value; the optimal
        vertex may differ when the LP is degenerate (plan-equivalent
        tier).  Counts ``k`` solves.

        If the stacked solve fails — any single infeasible state sinks
        the whole stack, and the solver does not say which block — the
        rows are re-solved scalar so the offending episode is attributed
        exactly: the raised :class:`RMPCInfeasibleError` names its
        state.  Accounting stays consistent under the fallback: the
        failed stacked attempt counts zero (it produced no plans) and
        each successful scalar re-solve counts one, under both backends.

        Returns:
            ``k`` :class:`RMPCSolution`, aligned with the input rows.

        Raises:
            RMPCInfeasibleError: If any row is outside ``X_F`` (named).
        """
        X = np.atleast_2d(np.asarray(states, dtype=float))
        if X.shape[0] == 0:
            return []
        if X.shape[1] != self.system.n:
            raise ValueError("state dimension mismatch")
        k = X.shape[0]
        stacked_backend = None
        try:
            if k > 1 and resolve_backend(self.lp_backend) == "highs":
                # Persistent warm-started stack: only the initial-state
                # equality RHS is rewritten between calls.  All-or-
                # nothing: a failed chunk discards every chunk's result
                # before the fallback, so nothing is counted twice.
                stacked_backend = "highs"
                solutions = self._persistent_solver().solve_batch(X)
            else:
                # k == 1 delegates to the scalar solver inside
                # solve_lp_batch (bitwise with solve()) regardless of
                # backend, so the single-row contract is backend-free.
                if k > 1:
                    stacked_backend = "scipy"
                b_eq = np.tile(self._b_eq, (k, 1))
                b_eq[:, self._x0_rows] = X
                solutions = solve_lp_batch(
                    np.tile(self._cost, (k, 1)),
                    self._A_ub,
                    self._b_ub,
                    a_eq=self._A_eq,
                    b_eq=b_eq,
                    stack=self._stack,
                )
        except LPError:
            # Scalar fallback: re-solve row by row so the infeasibility
            # (or numerical failure) is attributed to the exact episode.
            # solve() does the per-row counting; the failed stacked
            # attempt deliberately counts nothing.
            self._stacked_fallbacks += 1
            _telemetry().inc("rmpc_stacked_fallbacks_total")
            out = []
            for i, x in enumerate(X):
                try:
                    out.append(self.solve(x))
                except RMPCInfeasibleError as exc:
                    raise RMPCInfeasibleError(
                        f"batch row {i}: {exc}"
                    ) from None
            return out
        self._solve_count += k
        if stacked_backend is None:
            # k == 1 took the scalar solver inside solve_lp_batch.
            self._scalar_solves += 1
            _telemetry().inc("rmpc_solves_total", path="scalar")
        else:
            self._stacked_solves += k
            self._last_stacked_backend = stacked_backend
            _telemetry().inc(
                "rmpc_solves_total", k, path="stacked", backend=stacked_backend
            )
            _telemetry().observe("rmpc_stacked_batch_size", k)
        return [self._unpack(sol.x, sol.value) for sol in solutions]

    def compute(self, state) -> np.ndarray:
        """κ_R(x): first input of the optimal plan (receding horizon)."""
        return self.solve(state).inputs[0]

    def compute_batch(self, states) -> np.ndarray:
        """κ_R on every row via one stacked solve (see :meth:`solve_batch`).

        Plan-equivalent to row-wise :meth:`compute`, not bitwise: each
        row's input comes from a plan with the identical optimal cost and
        is feasible in ``U``, but a degenerate LP may yield a different
        optimal vertex than the scalar path.
        """
        X = np.atleast_2d(np.asarray(states, dtype=float))
        if X.shape[0] == 0:
            return np.zeros((0, self.input_dim))
        return np.stack([sol.inputs[0] for sol in self.solve_batch(X)])

    def is_feasible(self, state) -> bool:
        """Feasibility probe without raising.

        Probes do **not** count toward :attr:`solve_count` — the counter
        feeds the paper's computation-saving accounting, which measures
        control-law evaluations, not feasibility queries.
        """
        return bool(self._solve_raw(self._validate_state(state)).success)

    @property
    def solve_count(self) -> int:
        """Successful κ_R evaluations, for the paper's computation-saving
        accounting.  A stacked :meth:`solve_batch` over ``k`` states
        counts ``k`` (it replaces exactly ``k`` scalar solves);
        :meth:`is_feasible` probes count zero."""
        return self._solve_count

    @property
    def solver_stats(self) -> dict:
        """Effort breakdown behind :attr:`solve_count`: the scalar vs
        stacked split, stacked→scalar fallback events, and the backend
        the last stacked solve used (None until one ran).  Zeroed by
        :meth:`reset` together with the count."""
        return {
            "scalar_solves": self._scalar_solves,
            "stacked_solves": self._stacked_solves,
            "stacked_fallbacks": self._stacked_fallbacks,
            "lp_backend": self._last_stacked_backend,
        }

    def reset(self) -> None:
        self._solve_count = 0
        self._scalar_solves = 0
        self._stacked_solves = 0
        self._stacked_fallbacks = 0
        self._last_stacked_backend = None


def verify_plan_equivalence(
    controller: RobustMPC, states, cost_tol: float = 1e-9, input_tol: float = 1e-7
) -> dict:
    """Check the plan-equivalent contract of :meth:`RobustMPC.solve_batch`.

    For every row of ``states``, the stacked solve must attain the scalar
    solve's optimal cost (within ``cost_tol``) and return a first input
    feasible in ``U`` (within ``input_tol``).  This is the differential
    harness behind the two-tier determinism contract: where closed-form
    controllers are compared bitwise, stacked LP solves are compared by
    this function (plus zero safety violations at the episode level).

    Note: runs one batch solve and ``k`` scalar solves, so it inflates
    :attr:`RobustMPC.solve_count` — a verification harness, not a hot path.

    Returns:
        Dict with ``equivalent`` (bool), ``count``, ``max_cost_diff`` and
        ``inputs_feasible``.
    """
    X = np.atleast_2d(np.asarray(states, dtype=float))
    batch = controller.solve_batch(X)
    input_set = controller.system.input_set
    max_cost_diff = 0.0
    inputs_feasible = True
    for x, sol in zip(X, batch):
        scalar = controller.solve(x)
        max_cost_diff = max(max_cost_diff, abs(sol.cost - scalar.cost))
        if not input_set.contains(sol.inputs[0], tol=input_tol):
            inputs_feasible = False
    return {
        "count": len(batch),
        "max_cost_diff": max_cost_diff,
        "inputs_feasible": inputs_feasible,
        "equivalent": inputs_feasible and max_cost_diff <= cost_tol,
    }
