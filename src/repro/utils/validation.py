"""Array validation helpers used across the library.

These helpers convert arbitrary array-likes to float ``numpy`` arrays with
the expected rank, and raise :class:`ValueError` with messages that name the
offending argument, which makes misuse of the public API easy to diagnose.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_matrix", "as_vector", "check_square", "check_shape_match"]


def as_matrix(value, name: str = "matrix") -> np.ndarray:
    """Convert ``value`` to a 2-D float array.

    Scalars and 1-D arrays are rejected rather than silently reshaped so the
    caller's intent stays explicit.

    Args:
        value: Array-like to convert.
        name: Argument name used in error messages.

    Returns:
        A 2-D ``float64`` array (copy).

    Raises:
        ValueError: If ``value`` is not 2-D or contains non-finite entries.
    """
    arr = np.array(value, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def as_vector(value, name: str = "vector") -> np.ndarray:
    """Convert ``value`` to a 1-D float array.

    Scalars become length-1 vectors; column/row matrices with a singleton
    dimension are flattened, since callers frequently hold states as
    ``(n, 1)`` arrays.

    Args:
        value: Array-like to convert.
        name: Argument name used in error messages.

    Returns:
        A 1-D ``float64`` array (copy).

    Raises:
        ValueError: If ``value`` has rank > 2, is a non-degenerate matrix,
            or contains non-finite entries.
    """
    arr = np.array(value, dtype=float)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    elif arr.ndim == 2 and 1 in arr.shape:
        arr = arr.reshape(-1)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def check_square(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that ``matrix`` is square and return it.

    Raises:
        ValueError: If the matrix is not square.
    """
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be square, got shape {matrix.shape}")
    return matrix


def check_shape_match(
    actual: tuple, expected: tuple, name: str = "array"
) -> None:
    """Raise if ``actual`` differs from ``expected``.

    Raises:
        ValueError: On any mismatch, naming the argument.
    """
    if tuple(actual) != tuple(expected):
        raise ValueError(
            f"{name} has shape {tuple(actual)}, expected {tuple(expected)}"
        )
