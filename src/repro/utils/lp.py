"""Thin wrappers around :func:`scipy.optimize.linprog` (HiGHS backend).

``linprog`` defaults to non-negative variables, which is never what a set
computation wants, so every wrapper here uses free variables unless told
otherwise.  All wrappers return plain floats/arrays and raise
:class:`LPError` on solver failure so callers do not have to inspect
``OptimizeResult`` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from ..observability.metrics import registry as _telemetry

__all__ = [
    "LPError",
    "LPSolution",
    "BlockStack",
    "solve_lp",
    "lp_feasible",
    "maximize",
    "solve_lp_batch",
    "maximize_batch",
    "stack_cache_stats",
    "reset_stack_cache_stats",
]


class LPError(RuntimeError):
    """Raised when an LP that was expected to solve does not."""


#: Anonymous block-diagonal stacks keyed on ``(id(a_ub), id(a_eq), k)``,
#: LRU-bounded (hits refresh recency).  This cache serves *ownerless*
#: callers only — the geometry layer's support sweeps over ephemeral
#: polytopes, where entries are cheap to rebuild and churn is expected.
#: Long-lived callers (controllers) must NOT rely on it: it keys on
#: object identity and keeps strong references to the source matrices,
#: so a dead caller's matrices stay pinned until LRU churn evicts them,
#: and an unrelated sweep can evict a hot entry mid-run.  They own a
#: :class:`BlockStack` instead (the persistent-HiGHS backend's
#: :class:`~repro.utils.lp_backends.PersistentStackSolver` likewise owns
#: its models), so their stacks live and die with the owner.
_STACK_CACHE: dict = {}
_STACK_CACHE_MAX = 64

#: Registry counter behind the legacy hit/miss accessors: labelled by
#: ``cache`` (``owned`` BlockStack vs the ``anonymous`` module LRU) and
#: ``event`` (``hit`` / ``miss``).
STACK_CACHE_METRIC = "lp_stack_cache_events_total"


def stack_cache_stats() -> dict:
    """Hit/miss counters of the block-diagonal stack builds — the
    anonymous LRU cache and every owned :class:`BlockStack` update the
    same counters.  Counters are cumulative; call
    :func:`reset_stack_cache_stats` first for order-independent
    assertions in tests and benchmarks.

    .. deprecated:: PR 8
        Thin shim over the unified telemetry registry — read
        ``lp_stack_cache_events_total`` from
        :func:`repro.observability.registry` for the labelled
        (owned/anonymous) breakdown.
    """
    reg = _telemetry()
    return {
        "hits": reg.total(STACK_CACHE_METRIC, event="hit"),
        "misses": reg.total(STACK_CACHE_METRIC, event="miss"),
    }


def reset_stack_cache_stats() -> None:
    """Zero the hit/miss counters (cached stacks themselves are kept).

    Tests and benchmarks asserting on hit rates call this first so the
    numbers do not depend on what ran earlier in the process.

    .. deprecated:: PR 8
        Thin shim over the unified telemetry registry — equivalent to
        ``registry().reset("lp_stack_cache_events_total")``.
    """
    _telemetry().reset(STACK_CACHE_METRIC)


def _as_csr_block(matrix):
    if sp.issparse(matrix):
        return matrix.tocsr()
    return sp.csr_matrix(np.asarray(matrix, dtype=float))


class BlockStack:
    """Owner-held block-diagonal CSR stacks for one ``(a_ub, a_eq)`` pair.

    Explicit ownership replaces global-cache pinning: a long-lived caller
    (e.g. :class:`~repro.controllers.rmpc.RobustMPC`) holds one
    ``BlockStack`` for its constraint matrices and passes it to
    :func:`solve_lp_batch` via ``stack=``.  The built stacks live on this
    object — never in the module-level LRU — so an unrelated sweep of
    ephemeral polytopes cannot evict them mid-run, and when the owner is
    garbage-collected the stacks (and the source matrices they reference)
    are reclaimed with it.

    Args:
        a_ub: Shared inequality block (dense or scipy sparse).
        a_eq: Optional shared equality block.
        max_entries: Distinct batch sizes kept (LRU-bounded; one entry
            per ``k`` the owner solves at).
    """

    def __init__(self, a_ub, a_eq=None, max_entries: int = 8):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._a_ub = a_ub
        self._a_eq = a_eq
        self._max_entries = int(max_entries)
        self._stacks: dict = {}  # k -> (stacked_ub, stacked_eq), LRU order

    def matches(self, a_ub, a_eq) -> bool:
        """True iff this stack owns exactly the given block matrices."""
        return a_ub is self._a_ub and a_eq is self._a_eq

    def stacked(self, k: int):
        """``diag(a_ub, …)`` / ``diag(a_eq, …)`` CSR for ``k`` blocks."""
        cached = self._stacks.pop(k, None)
        if cached is not None:
            _telemetry().inc(STACK_CACHE_METRIC, cache="owned", event="hit")
            self._stacks[k] = cached  # re-insert: LRU recency refresh
            return cached
        _telemetry().inc(STACK_CACHE_METRIC, cache="owned", event="miss")
        stacked_ub = sp.block_diag([_as_csr_block(self._a_ub)] * k, format="csr")
        stacked_eq = None
        if self._a_eq is not None:
            stacked_eq = sp.block_diag(
                [_as_csr_block(self._a_eq)] * k, format="csr"
            )
        while len(self._stacks) >= self._max_entries:
            self._stacks.pop(next(iter(self._stacks)))
        self._stacks[k] = (stacked_ub, stacked_eq)
        return stacked_ub, stacked_eq

    def release(self) -> None:
        """Drop every built stack (they are rebuilt on the next solve)."""
        self._stacks.clear()

    def __len__(self) -> int:
        return len(self._stacks)


def _stacked_blocks(a_ub, a_eq, k: int):
    """``diag(a_ub, …)`` and ``diag(a_eq, …)`` as CSR, cached per (ids, k)."""
    key = (id(a_ub), None if a_eq is None else id(a_eq), k)
    cached = _STACK_CACHE.pop(key, None)
    if cached is not None:
        _telemetry().inc(STACK_CACHE_METRIC, cache="anonymous", event="hit")
        _STACK_CACHE[key] = cached  # re-insert: LRU recency refresh
        return cached[0], cached[1]
    _telemetry().inc(STACK_CACHE_METRIC, cache="anonymous", event="miss")
    block_ub = _as_csr_block(a_ub)
    stacked_ub = sp.block_diag([block_ub] * k, format="csr")
    stacked_eq = None
    if a_eq is not None:
        stacked_eq = sp.block_diag([_as_csr_block(a_eq)] * k, format="csr")
    while len(_STACK_CACHE) >= _STACK_CACHE_MAX:
        _STACK_CACHE.pop(next(iter(_STACK_CACHE)))
    _STACK_CACHE[key] = (stacked_ub, stacked_eq, a_ub, a_eq)
    return stacked_ub, stacked_eq


def _stack_rhs(rhs, k: int, rows: int, name: str) -> np.ndarray:
    """Tile a shared ``(rows,)`` RHS or flatten a per-block ``(k, rows)`` one."""
    arr = np.asarray(rhs, dtype=float)
    if arr.ndim == 1:
        if arr.size != rows:
            raise ValueError(
                f"{name} has {arr.size} entries, constraints have {rows} rows"
            )
        return np.tile(arr, k)
    if arr.ndim == 2:
        if arr.shape != (k, rows):
            raise ValueError(
                f"per-block {name} must have shape ({k}, {rows}), "
                f"got {arr.shape}"
            )
        return arr.reshape(-1)
    raise ValueError(f"{name} must be 1-D (shared) or 2-D (per-block)")


@dataclass(frozen=True)
class LPSolution:
    """Result of a successful LP solve.

    Attributes:
        x: Optimal point.
        value: Optimal objective value (of the *minimisation*).
        status: scipy status code (0 = optimal).
    """

    x: np.ndarray
    value: float
    status: int


def solve_lp(
    c,
    a_ub=None,
    b_ub=None,
    a_eq=None,
    b_eq=None,
    bounds=None,
) -> LPSolution:
    """Minimise ``c @ x`` subject to ``a_ub @ x <= b_ub`` and equalities.

    Variables are free (``(-inf, inf)``) unless ``bounds`` is given.

    Raises:
        LPError: If the problem is infeasible, unbounded, or the solver
            fails numerically.
    """
    c = np.asarray(c, dtype=float)
    if bounds is None:
        bounds = [(None, None)] * c.size
    res = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not res.success:
        raise LPError(f"LP failed (status={res.status}): {res.message}")
    return LPSolution(x=np.asarray(res.x, dtype=float), value=float(res.fun), status=int(res.status))


def lp_feasible(a_ub, b_ub, a_eq=None, b_eq=None) -> bool:
    """Return True iff ``{x : a_ub x <= b_ub, a_eq x = b_eq}`` is non-empty."""
    a_ub = np.asarray(a_ub, dtype=float)
    n = a_ub.shape[1]
    res = linprog(
        np.zeros(n),
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(None, None)] * n,
        method="highs",
    )
    # Status 2 is "infeasible"; anything else with success=False is a real
    # solver failure that the caller should see.
    if res.success:
        return True
    if res.status == 2:
        return False
    raise LPError(f"feasibility LP failed (status={res.status}): {res.message}")


def solve_lp_batch(
    objectives, a_ub, b_ub, a_eq=None, b_eq=None, stack=None
) -> List[LPSolution]:
    """Minimise every row of ``objectives`` over shared block constraints.

    The ``k`` independent problems ``min c_i @ x  s.t.  a_ub x <= b_ub_i,
    a_eq x = b_eq_i`` are assembled into a single block-diagonal LP
    (variables ``[x_1 … x_k]``, constraints ``diag(a_ub, …, a_ub)`` and
    ``diag(a_eq, …, a_eq)``) and handed to HiGHS in one call — replacing
    a Python loop of ``k`` ``linprog`` calls.  The constraint matrices
    are shared across blocks; the right-hand sides may be shared (1-D,
    tiled to every block) or per-block (2-D ``(k, rows)``), which is what
    lets :meth:`repro.controllers.rmpc.RobustMPC.solve_batch` stack ``k``
    Eq.-5 problems that differ only in their initial-state equalities.

    The stacks are built sparse (memory ``O(k · nnz)``).  Anonymous
    callers get them cached per ``(a_ub, a_eq, k)`` identity in a
    module-level LRU; long-lived callers pass an owned
    :class:`BlockStack` via ``stack`` so repeated calls over the same
    shared matrices — the per-step pattern of the lockstep engine — only
    rewrite the RHS vectors, without pinning anything in (or being
    evicted from) the global cache.

    Because the blocks are fully decoupled, the stacked optimum restricted
    to block ``i`` attains exactly the optimal *value* of problem ``i``
    (when an LP has multiple optima the returned vertex may differ from
    the one a scalar solve picks — see the two-tier determinism contract
    in :mod:`repro.framework.lockstep`).

    Args:
        objectives: ``(k, n)`` per-block cost rows.
        a_ub: Shared inequality block (dense or scipy sparse).
        b_ub: ``(rows,)`` shared or ``(k, rows)`` per-block RHS.
        a_eq: Optional shared equality block.
        b_eq: ``(rows_eq,)`` shared or ``(k, rows_eq)`` per-block RHS;
            required iff ``a_eq`` is given.
        stack: Optional owned :class:`BlockStack` built over exactly
            ``(a_ub, a_eq)``; when given, its stacks are used instead of
            the module-level cache.

    Raises:
        LPError: If the stacked LP fails.  Any single infeasible or
            unbounded block makes the whole stack fail, so per-block
            failure attribution is lost — callers that need it should
            fall back to scalar :func:`solve_lp` calls.
    """
    if (a_eq is None) != (b_eq is None):
        raise ValueError("a_eq and b_eq must be given together")
    C = np.atleast_2d(np.asarray(objectives, dtype=float))
    k = C.shape[0]
    if k == 0:
        return []
    rows, n = a_ub.shape if sp.issparse(a_ub) else np.asarray(a_ub).shape
    if C.shape[1] != n:
        raise ValueError(
            f"objectives have {C.shape[1]} columns, constraints have {n}"
        )
    if k == 1:
        b = np.asarray(b_ub, dtype=float).reshape(-1)
        be = None if b_eq is None else np.asarray(b_eq, dtype=float).reshape(-1)
        return [solve_lp(C[0], a_ub=a_ub, b_ub=b, a_eq=a_eq, b_eq=be)]
    if stack is not None:
        if not stack.matches(a_ub, a_eq):
            raise ValueError(
                "stack was built for different block matrices than the "
                "(a_ub, a_eq) passed to solve_lp_batch"
            )
        stacked_A, stacked_A_eq = stack.stacked(k)
    else:
        stacked_A, stacked_A_eq = _stacked_blocks(a_ub, a_eq, k)
    stacked_b = _stack_rhs(b_ub, k, rows, "b_ub")
    stacked_b_eq = None
    if a_eq is not None:
        rows_eq = a_eq.shape[0]
        stacked_b_eq = _stack_rhs(b_eq, k, rows_eq, "b_eq")
    res = linprog(
        C.reshape(-1),
        A_ub=stacked_A,
        b_ub=stacked_b,
        A_eq=stacked_A_eq,
        b_eq=stacked_b_eq,
        bounds=[(None, None)] * (n * k),
        method="highs",
    )
    if not res.success:
        raise LPError(
            f"stacked LP ({k} blocks) failed (status={res.status}): {res.message}"
        )
    X = np.asarray(res.x, dtype=float).reshape(k, n)
    values = np.einsum("ij,ij->i", C, X)
    return [
        LPSolution(x=X[i], value=float(values[i]), status=int(res.status))
        for i in range(k)
    ]


def maximize_batch(directions, a_ub, b_ub) -> np.ndarray:
    """Support values ``max d_i @ x`` for every row of ``directions``.

    One stacked block-diagonal LP (see :func:`solve_lp_batch`) instead of
    a loop of :func:`maximize` calls.

    Returns:
        Float array of per-direction maxima (signs already flipped back).

    Raises:
        LPError: If the region is empty or unbounded in any direction.
    """
    D = np.atleast_2d(np.asarray(directions, dtype=float))
    solutions = solve_lp_batch(-D, a_ub, b_ub)
    return np.array([-sol.value for sol in solutions])


def maximize(objective, a_ub, b_ub) -> LPSolution:
    """Maximise ``objective @ x`` over ``{x : a_ub x <= b_ub}``.

    Returns:
        An :class:`LPSolution` whose ``value`` is the *maximum* (sign
        already flipped back).

    Raises:
        LPError: If infeasible or unbounded.
    """
    objective = np.asarray(objective, dtype=float)
    sol = solve_lp(-objective, a_ub=a_ub, b_ub=b_ub)
    return LPSolution(x=sol.x, value=-sol.value, status=sol.status)
