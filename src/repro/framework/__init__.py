"""Runtime framework: safety monitor, Algorithm 1 loop, accounting."""

from repro.framework.accounting import RunStats, computation_saving
from repro.framework.evaluation import ENGINES, default_engine, paired_evaluation
from repro.framework.intermittent import IntermittentController, run_controller_only
from repro.framework.kernel import KERNELS, KernelError, numba_available, resolve_kernel
from repro.framework.lockstep import lockstep_controller_only, run_lockstep
from repro.framework.monitor import SafetyMonitor, SafetyViolationError, StateClass
from repro.framework.profiling import StageProfiler
from repro.framework.runner import (
    DETERMINISTIC_FIELDS,
    BatchResult,
    BatchRunner,
    EpisodeRecord,
    LockstepEngine,
    ParallelBatchRunner,
    spawn_episode_seeds,
)

__all__ = [
    "SafetyMonitor",
    "StateClass",
    "SafetyViolationError",
    "IntermittentController",
    "run_controller_only",
    "RunStats",
    "computation_saving",
    "ENGINES",
    "default_engine",
    "paired_evaluation",
    "BatchRunner",
    "ParallelBatchRunner",
    "LockstepEngine",
    "run_lockstep",
    "lockstep_controller_only",
    "KERNELS",
    "KernelError",
    "numba_available",
    "resolve_kernel",
    "StageProfiler",
    "BatchResult",
    "EpisodeRecord",
    "DETERMINISTIC_FIELDS",
    "spawn_episode_seeds",
]
