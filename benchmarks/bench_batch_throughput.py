"""Episodes/sec of the batch engines: serial vs parallel fan-out.

Standalone script (not a pytest-benchmark kernel) so CI can smoke it at
tiny scale and operators can size worker pools::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py \
        --episodes 32 --horizon 100 --jobs 4

It runs the same seeded bang-bang batch on the ACC case study through
:class:`repro.framework.BatchRunner` (serial reference) and
:class:`repro.framework.ParallelBatchRunner` at each requested worker
count, reports episodes/sec and speedup, and cross-checks that every
configuration produced record-for-record identical deterministic fields
(the differential guarantee the test suite proves at small scale).

Speedup scales with physical cores: on a single-CPU container the
parallel engine adds fork overhead and reports ~1x or below, which is
why the table always prints the visible CPU count next to the numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from machine import visible_cpus

from repro.acc import acc_disturbance_factory, build_case_study
from repro.framework import BatchRunner, ParallelBatchRunner
from repro.skipping import AlwaysSkipPolicy


def run_benchmark(
    episodes: int, horizon: int, jobs_list, seed: int, experiment: str = "overall"
) -> dict:
    """Time one serial and one parallel batch per worker count.

    Returns:
        Dict with per-configuration throughput and the serial baseline,
        ready for JSON dumping.
    """
    case = build_case_study()
    factory = acc_disturbance_factory(case, experiment, horizon)
    rng = np.random.default_rng(seed)
    states = case.sample_initial_states(rng, episodes)

    def make_runner(cls, **extra):
        return cls(
            case.system,
            case.mpc,
            monitor_factory=case.make_monitor,
            policy_factory=AlwaysSkipPolicy,
            skip_input=case.skip_input,
            **extra,
        )

    def timed(runner):
        tick = time.perf_counter()
        result = runner.run_seeded(states, factory, root_seed=seed)
        return result, time.perf_counter() - tick

    serial_result, serial_seconds = timed(make_runner(BatchRunner))
    reference = serial_result.deterministic_records()
    rows = [
        {
            "engine": "serial",
            "jobs": 1,
            "seconds": serial_seconds,
            "episodes_per_sec": episodes / serial_seconds,
            "speedup": 1.0,
            "identical": True,
        }
    ]
    for jobs in jobs_list:
        result, seconds = timed(make_runner(ParallelBatchRunner, jobs=jobs))
        rows.append(
            {
                "engine": "parallel",
                "jobs": jobs,
                "seconds": seconds,
                "episodes_per_sec": episodes / seconds,
                "speedup": serial_seconds / seconds,
                "identical": result.deterministic_records() == reference,
            }
        )
    return {
        "episodes": episodes,
        "horizon": horizon,
        "seed": seed,
        "cpus": visible_cpus(),
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--episodes", type=int, default=32)
    parser.add_argument("--horizon", type=int, default=100)
    parser.add_argument(
        "--jobs", type=int, nargs="+", default=[2, 4],
        help="parallel worker counts to benchmark (serial is always run)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--experiment", default="overall")
    parser.add_argument("--json", default=None, help="also dump results here")
    args = parser.parse_args(argv)

    report = run_benchmark(
        args.episodes, args.horizon, args.jobs, args.seed, args.experiment
    )
    print(
        f"batch throughput: {report['episodes']} episodes x "
        f"{report['horizon']} steps, {report['cpus']} visible CPU(s)"
    )
    print(f"{'engine':<10} {'jobs':>4} {'sec':>8} {'ep/s':>8} {'speedup':>8} {'identical':>9}")
    for row in report["rows"]:
        print(
            f"{row['engine']:<10} {row['jobs']:>4} {row['seconds']:>8.2f} "
            f"{row['episodes_per_sec']:>8.2f} {row['speedup']:>7.2f}x "
            f"{str(row['identical']):>9}"
        )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.json}")
    if not all(row["identical"] for row in report["rows"]):
        print("ERROR: parallel records diverged from the serial reference")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
