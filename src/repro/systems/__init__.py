"""Discrete LTI plant models, discretisation and disturbance processes."""

from repro.systems.discretize import euler_discretize, zoh_discretize
from repro.systems.disturbance import (
    ConstantDisturbance,
    DisturbanceModel,
    RandomWalkDisturbance,
    SinusoidalDisturbance,
    TraceDisturbance,
    UniformDisturbance,
)
from repro.systems.lti import DiscreteLTISystem, SimulationResult

__all__ = [
    "DiscreteLTISystem",
    "SimulationResult",
    "euler_discretize",
    "zoh_discretize",
    "DisturbanceModel",
    "SinusoidalDisturbance",
    "UniformDisturbance",
    "RandomWalkDisturbance",
    "TraceDisturbance",
    "ConstantDisturbance",
]
