"""The online opportunistic intermittent-control loop (Algorithm 1).

``IntermittentController.run`` executes the paper's Algorithm 1 over a
realised disturbance sequence:

1. monitor the current state;
2. if ``x(t) ∈ X'``, ask Ω for the skipping choice, else force ``z = 1``;
3. actuate either ``κ(x(t))`` or the skip input;
4. step the plant, record energy / timing, repeat.

Wall-clock is measured separately for the monitor + Ω path and for κ so
the computation-saving ratio of Sec. IV-A can be reproduced on any host.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.controllers.base import Controller
from repro.framework.accounting import RunStats
from repro.framework.monitor import SafetyMonitor, StateClass
from repro.skipping.base import RUN, SKIP, DecisionContext, SkippingPolicy
from repro.systems.lti import DiscreteLTISystem
from repro.utils.validation import as_vector

__all__ = ["IntermittentController", "run_controller_only"]


class IntermittentController:
    """Algorithm 1: safe controller + monitor + skipping policy.

    Args:
        system: The constrained plant.
        controller: The underlying safe controller κ.
        monitor: Safety monitor owning ``X'`` and ``XI``.
        policy: Skipping decision function Ω.
        skip_input: Constant input applied when skipping (default 0 —
            the paper's zero input).
        memory_length: The paper's hyper-parameter ``r``: how many recent
            disturbances are exposed to Ω (``r = 1`` in the experiments).
        reveal_future: If True, pass the remaining disturbance sequence to
            Ω via the context (the model-based, known-perturbation case).
    """

    def __init__(
        self,
        system: DiscreteLTISystem,
        controller: Controller,
        monitor: SafetyMonitor,
        policy: SkippingPolicy,
        skip_input=None,
        memory_length: int = 1,
        reveal_future: bool = False,
    ):
        if memory_length < 1:
            raise ValueError("memory_length must be >= 1")
        self.system = system
        self.controller = controller
        self.monitor = monitor
        self.policy = policy
        self.skip_input = (
            np.zeros(system.m) if skip_input is None else as_vector(skip_input)
        )
        self.memory_length = int(memory_length)
        self.reveal_future = bool(reveal_future)

    def run(self, x0, disturbances, learn: bool = False) -> RunStats:
        """Execute Algorithm 1 for ``len(disturbances)`` steps.

        Args:
            x0: Initial state; must lie in ``XI`` (Algorithm 1, line 2).
            disturbances: Realised disturbance sequence ``(T, n)``.
            learn: Forward transitions to ``policy.observe`` (used by the
                online DRL trainer).

        Returns:
            A :class:`RunStats` with full trajectories and timing.

        Raises:
            ValueError: If ``x0 ∉ XI``.
            SafetyViolationError: If the state ever leaves ``XI`` while
                the monitor is strict (per Theorem 1 this indicates a
                broken invariant-set certificate, not bad luck).
        """
        x = as_vector(x0, "x0")
        if not self.monitor.admissible_initial(x):
            raise ValueError("initial state must be inside the invariant set XI")
        W = np.atleast_2d(np.asarray(disturbances, dtype=float))
        horizon = W.shape[0]
        n, m, r = self.system.n, self.system.m, self.memory_length

        states = np.empty((horizon + 1, n))
        inputs = np.zeros((horizon, m))
        decisions = np.empty(horizon, dtype=int)
        forced = np.zeros(horizon, dtype=bool)
        controller_seconds = np.zeros(horizon)
        monitor_seconds = np.zeros(horizon)
        states[0] = x
        history = np.zeros((r, n))

        self.policy.reset()
        self.controller.reset()
        for t in range(horizon):
            # w(t) is observable at decision time (e.g. radar-measured
            # front-vehicle velocity), matching the paper's DRL state.
            # The window is shifted in place; only the context gets a copy.
            if r > 1:
                history[:-1] = history[1:]
            history[-1] = W[t]
            context = DecisionContext(
                time=t,
                state=states[t].copy(),
                past_disturbances=history.copy(),
                future_disturbances=W[t:].copy() if self.reveal_future else None,
            )
            tick = time.perf_counter()
            state_class = self.monitor.classify(states[t])
            if state_class is StateClass.STRENGTHENED:
                z = RUN if self.policy.decide(context) == RUN else SKIP
            else:
                z = RUN
                forced[t] = True
            monitor_seconds[t] = time.perf_counter() - tick

            if z == RUN:
                tick = time.perf_counter()
                u = as_vector(self.controller.compute(states[t]), "controller output")
                controller_seconds[t] = time.perf_counter() - tick
            else:
                u = self.skip_input
            decisions[t] = z
            inputs[t] = u
            states[t + 1] = self.system.step(states[t], u, W[t])
            if learn:
                self.policy.observe(
                    context,
                    decision=z,
                    forced=bool(forced[t]),
                    next_state=states[t + 1].copy(),
                    applied_input=u.copy(),
                )
        return RunStats(
            states=states,
            inputs=inputs,
            decisions=decisions,
            forced=forced,
            controller_seconds=controller_seconds,
            monitor_seconds=monitor_seconds,
            disturbances=W,
        )


def run_controller_only(
    system: DiscreteLTISystem,
    controller: Controller,
    x0,
    disturbances,
) -> RunStats:
    """Baseline: run κ at every step (no monitor, no skipping).

    Produces a :class:`RunStats` directly comparable with
    :meth:`IntermittentController.run` (all decisions are 1, monitor time
    is zero).
    """
    x = as_vector(x0, "x0")
    W = np.atleast_2d(np.asarray(disturbances, dtype=float))
    horizon = W.shape[0]
    states = np.empty((horizon + 1, system.n))
    inputs = np.zeros((horizon, system.m))
    controller_seconds = np.zeros(horizon)
    states[0] = x
    controller.reset()
    for t in range(horizon):
        tick = time.perf_counter()
        u = as_vector(controller.compute(states[t]), "controller output")
        controller_seconds[t] = time.perf_counter() - tick
        inputs[t] = u
        states[t + 1] = system.step(states[t], u, W[t])
    return RunStats(
        states=states,
        inputs=inputs,
        decisions=np.ones(horizon, dtype=int),
        forced=np.zeros(horizon, dtype=bool),
        controller_seconds=controller_seconds,
        monitor_seconds=np.zeros(horizon),
        disturbances=W,
    )
