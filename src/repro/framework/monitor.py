"""Runtime safety monitor (paper Fig. 2 / Algorithm 1, lines 4–9).

The monitor owns the three nested sets and classifies every measured
state:

* inside ``X'``  → the skipping decision function Ω may choose freely;
* inside ``XI − X'`` → the safe controller **must** run (``z = 1``);
* outside ``XI`` → a contract violation: Theorem 1 says this cannot
  happen when the initial state is in ``XI``; the monitor records it and
  (by default) raises, because silent safety violations would invalidate
  every downstream experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np

from repro.geometry import HPolytope
from repro.observability.metrics import registry as _telemetry

__all__ = ["SafetyMonitor", "StateClass", "SafetyViolationError"]


class SafetyViolationError(RuntimeError):
    """The state left the robust invariant set — Theorem 1 contract broken."""


#: Set triples whose nesting (X' ⊆ XI ⊆ X) has already been proven; see
#: :meth:`SafetyMonitor.__post_init__`.  FIFO-bounded so a long-lived
#: process sweeping many scenarios cannot pin polytopes forever — an
#: eviction merely means the nesting is re-proven on next use.
_VALIDATED_NESTINGS: dict = {}
_VALIDATED_NESTINGS_MAX = 128


class StateClass(Enum):
    """Classification of a state against the nested safe sets."""

    STRENGTHENED = "strengthened"  # x ∈ X'
    INVARIANT_ONLY = "invariant_only"  # x ∈ XI − X'
    UNSAFE_REGION = "unsafe_region"  # x ∉ XI (contract violation)


@dataclass
class SafetyMonitor:
    """Classifies states against ``X' ⊆ XI ⊆ X`` and enforces z = 1
    outside ``X'``.

    Attributes:
        strengthened_set: ``X'`` (Definition 3).
        invariant_set: ``XI`` (Definition 1).
        safe_set: ``X`` (problem definition); only used for reporting.
        strict: When True (default), :meth:`classify` raises
            :class:`SafetyViolationError` if the state leaves ``XI``.
        tol: Membership tolerance forwarded to the polytope tests.
    """

    strengthened_set: HPolytope
    invariant_set: HPolytope
    safe_set: HPolytope
    strict: bool = True
    tol: float = 1e-7
    violations: int = field(default=0, init=False)

    def __post_init__(self):
        # Batch runners build one fresh monitor per episode over the same
        # set objects; the nesting proof is a pure function of those sets,
        # so re-proving it per episode is pure LP waste.  The cache keeps
        # strong references, which also pins the ids it is keyed on.
        key = (id(self.strengthened_set), id(self.invariant_set), id(self.safe_set))
        if key in _VALIDATED_NESTINGS:
            _telemetry().inc("monitor_nesting_proofs_total", result="cached")
            return
        _telemetry().inc("monitor_nesting_proofs_total", result="proved")
        if not self.invariant_set.contains_polytope(self.strengthened_set):
            raise ValueError("X' must be a subset of XI (Definition 3)")
        if not self.safe_set.contains_polytope(self.invariant_set, tol=1e-6):
            raise ValueError("XI must be a subset of the safe set X")
        while len(_VALIDATED_NESTINGS) >= _VALIDATED_NESTINGS_MAX:
            _VALIDATED_NESTINGS.pop(next(iter(_VALIDATED_NESTINGS)))
        _VALIDATED_NESTINGS[key] = (
            self.strengthened_set,
            self.invariant_set,
            self.safe_set,
        )

    def classify(self, state) -> StateClass:
        """Classify ``state``; raises on contract violation when strict.

        Scalar fast path: short-circuits after the ``X'`` test in the
        common case.  This sits inside Algorithm 1's timed monitor
        section, so its cost is a *measured* quantity — keep it lean and
        use :meth:`classify_batch` for whole-trajectory scans instead.
        """
        if self.strengthened_set.contains(state, self.tol):
            return StateClass.STRENGTHENED
        if self.invariant_set.contains(state, self.tol):
            return StateClass.INVARIANT_ONLY
        self.violations += 1
        if self.strict:
            raise SafetyViolationError(
                f"state {np.asarray(state)} left the robust invariant set"
            )
        return StateClass.UNSAFE_REGION

    def classify_batch(self, states) -> list:
        """Classify every row of a ``(T, n)`` state array at once.

        Runs the two set-membership tests as single
        :meth:`~repro.geometry.HPolytope.contains_batch` broadcasts instead
        of ``T`` scalar checks, then applies exactly the sequential
        semantics of :meth:`classify`:

        * strict monitors raise at the *first* state outside ``XI``, having
          counted that one violation (states after it are never reached in
          the sequential contract, so they are not counted);
        * non-strict monitors count every violating state and report
          :data:`StateClass.UNSAFE_REGION` for each.

        Returns:
            List of ``T`` :class:`StateClass` values, aligned with rows.
        """
        X = np.atleast_2d(np.asarray(states, dtype=float))
        in_strengthened = self.strengthened_set.contains_batch(X, self.tol)
        in_invariant = self.invariant_set.contains_batch(X, self.tol)
        # Mirror the scalar short-circuit: a state the X' test accepts is
        # never treated as a violation, even if the XI test would reject
        # it at the tolerance boundary.
        unsafe = ~in_strengthened & ~in_invariant
        if np.any(unsafe):
            if self.strict:
                first = int(np.argmax(unsafe))
                self.violations += 1
                raise SafetyViolationError(
                    f"state {X[first]} left the robust invariant set"
                )
            self.violations += int(np.sum(unsafe))
        classes = []
        for strengthened, invariant in zip(in_strengthened, in_invariant):
            if strengthened:
                classes.append(StateClass.STRENGTHENED)
            elif invariant:
                classes.append(StateClass.INVARIANT_ONLY)
            else:
                classes.append(StateClass.UNSAFE_REGION)
        return classes

    def may_skip(self, state) -> bool:
        """Algorithm 1 line 5: True iff Ω is allowed to decide at ``state``."""
        return self.classify(state) is StateClass.STRENGTHENED

    def admissible_initial(self, state) -> bool:
        """Algorithm 1 line 2 check: x(0) ∈ XI."""
        return self.invariant_set.contains(state, self.tol)
