"""Legacy setup shim.

The offline environment has no ``wheel`` package, so PEP 660 editable
installs fail; this file enables ``pip install -e . --no-build-isolation
--no-use-pep517`` (and plain ``python setup.py develop``).
"""

from setuptools import setup

setup()
