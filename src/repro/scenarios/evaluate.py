"""Cross-scenario Table-I-style sweeps (legacy entry points).

.. deprecated::
    :func:`evaluate_scenario` and :func:`sweep_scenarios` are thin
    clients of the declarative experiment API
    (:mod:`repro.experiments`) — kept for compatibility, metric-identical
    to the equivalent :func:`repro.experiments.run_experiment` /
    :func:`repro.experiments.run_sweep` calls.  New code should build an
    :class:`~repro.experiments.spec.ExperimentSpec` /
    :class:`~repro.experiments.plan.SweepPlan` directly: that adds
    parameter axes and sharded grid execution these wrappers never grew.

The result dataclasses (:class:`ScenarioComparison`,
:class:`ScenarioApproachStats`) are unchanged; both wrappers reconstruct
them from the cell results the experiment runner returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.scenarios.builder import CaseStudy
from repro.scenarios import registry
from repro.skipping.base import SkippingPolicy

__all__ = [
    "ScenarioApproachStats",
    "ScenarioComparison",
    "default_policies",
    "evaluate_scenario",
    "sweep_scenarios",
]


@dataclass
class ScenarioApproachStats:
    """Per-case metrics of one approach on one scenario.

    Attributes:
        energy: Σ‖u‖₁ per case (Problem-1 objective).
        skip_rate: Fraction of skipped steps per case.
        forced_steps: Monitor-forced steps per case.
        max_violation: Worst safe-set violation per case (≤ 0 ⇔ the
            whole trajectory stayed inside ``X``).
        mean_controller_ms: Mean κ wall-clock per invocation [ms].
        mean_monitor_ms: Mean monitor+Ω wall-clock per step [ms].
    """

    energy: np.ndarray
    skip_rate: np.ndarray
    forced_steps: np.ndarray
    max_violation: np.ndarray
    mean_controller_ms: float
    mean_monitor_ms: float


@dataclass
class ScenarioComparison:
    """Paired comparison of approaches on one scenario.

    All per-case arrays are aligned: case ``i`` saw the same initial
    state and disturbance realisation under every approach.
    """

    scenario: str
    baseline: ScenarioApproachStats
    approaches: Dict[str, ScenarioApproachStats]

    def stats(self, approach: str) -> ScenarioApproachStats:
        """Stats by name (``"baseline"`` or a policy name)."""
        if approach == "baseline":
            return self.baseline
        try:
            return self.approaches[approach]
        except KeyError:
            known = ", ".join(sorted(self.approaches)) or "<none>"
            raise ValueError(
                f"unknown approach {approach!r}; evaluated: baseline, {known}"
            ) from None

    def energy_saving(self, approach: str) -> np.ndarray:
        """Per-case fractional Σ‖u‖₁ saving vs the baseline (0/0 → 0)."""
        stats = self.stats(approach)
        base = self.baseline.energy
        out = np.zeros_like(base)
        nonzero = base > 1e-12
        out[nonzero] = (base[nonzero] - stats.energy[nonzero]) / base[nonzero]
        return out

    @property
    def always_safe(self) -> bool:
        """True iff no approach ever left the safe set in any case."""
        all_stats = [self.baseline, *self.approaches.values()]
        return all(float(s.max_violation.max()) <= 0.0 for s in all_stats)


def default_policies(case: CaseStudy) -> Dict[str, SkippingPolicy]:
    """The standard heuristic approach set for Table-I-style sweeps.

    Bang-bang (Eq. 7: skip whenever the monitor allows) plus a periodic
    (1, 2) pattern — both stateless, so every engine can run them.
    Delegates to the experiment API's built-in approach names
    (``DEFAULT_APPROACHES``), so the wrappers and the runner cannot
    drift apart.
    """
    from repro.experiments.runner import _builtin_policy
    from repro.experiments.spec import DEFAULT_APPROACHES

    return {name: _builtin_policy(name) for name in DEFAULT_APPROACHES}


def _stats_from_cell(cell, name: str) -> ScenarioApproachStats:
    approach = cell.approaches[name]
    metrics = approach.metrics
    return ScenarioApproachStats(
        energy=metrics["energy"],
        skip_rate=metrics["skip_rate"],
        forced_steps=metrics["forced_steps"],
        max_violation=metrics["max_violation"],
        mean_controller_ms=approach.mean_controller_ms,
        mean_monitor_ms=approach.mean_monitor_ms,
    )


def _comparison_from_cell(cell) -> ScenarioComparison:
    return ScenarioComparison(
        scenario=cell.scenario,
        baseline=_stats_from_cell(cell, "baseline"),
        approaches={
            name: _stats_from_cell(cell, name)
            for name in cell.approaches
            if name != "baseline"
        },
    )


def evaluate_scenario(
    case: CaseStudy,
    policies: Optional[Dict[str, SkippingPolicy]] = None,
    num_cases: int = 16,
    horizon: int = 50,
    seed: int = 1,
    memory_length: int = 1,
    engine: str = "serial",
    jobs: int = 1,
    exact_solves: bool = False,
    lp_backend: Optional[str] = None,
) -> ScenarioComparison:
    """Paired baseline-vs-policies comparison on one case study.

    Deprecated thin client of :func:`repro.experiments.run_experiment`
    (metric-identical — same seed derivation, same engine semantics).
    Each case draws an initial state in ``X'`` and one i.i.d. disturbance
    realisation from the scenario's disturbance factory; every approach
    sees the identical realisation.

    Args:
        case: A built scenario case study.
        policies: Name → stateless policy; defaults to
            :func:`default_policies`.
        num_cases: Evaluation cases per approach.
        horizon: Steps per case.
        seed: Root seed for initial states and realisations.
        memory_length: Disturbance-history window ``r``.
        engine: ``"serial"``, ``"parallel"`` or ``"lockstep"``.
        jobs: Workers for the parallel engine.
        exact_solves: Lockstep only — scalar solves for non-bitwise
            controllers (RMPC scenarios), trading the stacked-LP speedup
            for record-for-record parity with the serial engine.
        lp_backend: Lockstep only — stacked-solve backend request
            (``auto|highs|scipy``); ``None`` keeps each controller's
            own setting.

    Returns:
        A :class:`ScenarioComparison` for this scenario.
    """
    from repro.experiments import ExecutionConfig, ExperimentSpec, run_experiment

    spec = ExperimentSpec(
        # The case itself (not case.spec): the experiment runner then
        # evaluates exactly the object the caller built — customised
        # controllers/monitors and use_cache=False builds included.
        scenario=case,
        approaches=None if policies is None else tuple(policies),
        num_cases=num_cases,
        horizon=horizon,
        seed=seed,
        memory_length=memory_length,
        policies=policies,
    )
    cell = run_experiment(
        spec,
        ExecutionConfig(
            engine=engine,
            jobs=jobs,
            exact_solves=exact_solves,
            lp_backend=lp_backend,
        ),
    )
    return _comparison_from_cell(cell)


def sweep_scenarios(
    names: Optional[Sequence[str]] = None,
    num_cases: int = 8,
    horizon: int = 50,
    seed: int = 1,
    engine: str = "serial",
    jobs: int = 1,
    exact_solves: bool = False,
    lp_backend: Optional[str] = None,
    policies_factory: Optional[Callable[[CaseStudy], Dict[str, SkippingPolicy]]] = None,
) -> List[ScenarioComparison]:
    """Axis-free paired sweep over (a subset of) the registry.

    Deprecated thin client of :func:`repro.experiments.run_sweep` with
    the legacy one-process semantics (``shard="none"``: scenarios run
    sequentially, ``jobs`` only feeds the parallel engine's per-case
    fan-out).  For sharded grids and parameter axes, build a
    :class:`~repro.experiments.plan.SweepPlan` directly.

    Args:
        names: Scenario names; None sweeps every registered scenario.
        policies_factory: ``case -> policies`` override (defaults to
            :func:`default_policies` per scenario).
        Remaining arguments: forwarded per scenario.

    Returns:
        One :class:`ScenarioComparison` per scenario, in input order.
    """
    from repro.experiments import (
        ExecutionConfig,
        ExperimentSpec,
        SweepPlan,
        run_sweep,
    )

    if names is None:
        names = registry.list_scenarios()
    plan = SweepPlan(
        experiments=[
            ExperimentSpec(
                scenario=name,
                approaches=None,
                num_cases=num_cases,
                horizon=horizon,
                seed=seed,
                memory_length=1,
                policies=policies_factory,
            )
            for name in names
        ],
        execution=ExecutionConfig(
            engine=engine,
            jobs=jobs,
            exact_solves=exact_solves,
            lp_backend=lp_backend,
            shard="none",
        ),
    )
    return [_comparison_from_cell(cell) for cell in run_sweep(plan)]
