"""Differential tests for the stacked block-diagonal LP interface.

The batch path (`solve_lp_batch` / `maximize_batch` /
`HPolytope.support_batch`) must agree with the per-facet scalar loop it
replaced in `pontryagin_difference`, `minkowski_sum`, `bounding_box`,
`is_bounded` and `contains_polytope`.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.geometry import HPolytope
from repro.utils.lp import (
    BlockStack,
    LPError,
    maximize,
    maximize_batch,
    reset_stack_cache_stats,
    solve_lp,
    solve_lp_batch,
    stack_cache_stats,
)


@pytest.fixture
def pentagon(rng):
    """An irregular bounded 2-D polytope."""
    points = rng.normal(size=(12, 2)) * np.array([2.0, 0.7]) + np.array([0.3, -0.1])
    return HPolytope.from_vertices(points)


class TestSolveLPBatch:
    def test_matches_scalar_solves(self, pentagon, rng):
        objectives = rng.normal(size=(7, 2))
        batch = solve_lp_batch(objectives, pentagon.H, pentagon.h)
        assert len(batch) == 7
        for c, sol in zip(objectives, batch):
            scalar = solve_lp(c, a_ub=pentagon.H, b_ub=pentagon.h)
            assert sol.value == pytest.approx(scalar.value, abs=1e-8)
            assert sol.status == 0

    def test_single_objective_delegates(self, pentagon):
        [sol] = solve_lp_batch(np.array([[1.0, 0.0]]), pentagon.H, pentagon.h)
        scalar = solve_lp([1.0, 0.0], a_ub=pentagon.H, b_ub=pentagon.h)
        assert sol.value == pytest.approx(scalar.value, abs=1e-10)

    def test_empty_objectives(self, pentagon):
        assert solve_lp_batch(np.empty((0, 2)), pentagon.H, pentagon.h) == []

    def test_dimension_mismatch(self, pentagon):
        with pytest.raises(ValueError, match="columns"):
            solve_lp_batch(np.ones((3, 5)), pentagon.H, pentagon.h)

    def test_infeasible_region_raises(self):
        # x <= -1 and -x <= -1 (x >= 1) is empty.
        a = np.array([[1.0], [-1.0]])
        b = np.array([-1.0, -1.0])
        with pytest.raises(LPError):
            solve_lp_batch(np.array([[1.0], [2.0]]), a, b)

    def test_unbounded_block_raises(self):
        # Half-plane x0 <= 1: unbounded toward -x0.
        a = np.array([[1.0, 0.0]])
        b = np.array([1.0])
        with pytest.raises(LPError):
            solve_lp_batch(np.array([[1.0, 0.0], [0.0, 1.0]]), a, b)


class TestSolveLPBatchEqualities:
    """The generalised stack: equality blocks and per-block RHS vectors
    (what RobustMPC.solve_batch builds its Eq.-5 stack from)."""

    def test_shared_equalities_match_scalar(self, pentagon, rng):
        # Pin x0 + x1 = 0.1 in every block.
        a_eq = np.array([[1.0, 1.0]])
        b_eq = np.array([0.1])
        objectives = rng.normal(size=(5, 2))
        batch = solve_lp_batch(
            objectives, pentagon.H, pentagon.h, a_eq=a_eq, b_eq=b_eq
        )
        for c, sol in zip(objectives, batch):
            scalar = solve_lp(
                c, a_ub=pentagon.H, b_ub=pentagon.h, a_eq=a_eq, b_eq=b_eq
            )
            assert sol.value == pytest.approx(scalar.value, abs=1e-9)
            assert np.allclose(a_eq @ sol.x, b_eq, atol=1e-8)

    def test_per_block_equality_rhs(self, pentagon, rng):
        # Same equality row, a different pin per block — the RMPC
        # initial-state pattern.
        a_eq = np.array([[1.0, 0.0]])
        pins = np.linspace(-0.3, 0.4, 6).reshape(-1, 1)
        objectives = np.tile(rng.normal(size=(1, 2)), (6, 1))
        batch = solve_lp_batch(
            objectives, pentagon.H, pentagon.h, a_eq=a_eq, b_eq=pins
        )
        for pin, sol in zip(pins, batch):
            scalar = solve_lp(
                objectives[0], a_ub=pentagon.H, b_ub=pentagon.h,
                a_eq=a_eq, b_eq=pin,
            )
            assert sol.value == pytest.approx(scalar.value, abs=1e-9)
            assert sol.x[0] == pytest.approx(pin[0], abs=1e-8)

    def test_per_block_inequality_rhs(self, rng):
        # Boxes of different sizes sharing one constraint matrix.
        box = HPolytope.from_box([-1.0, -1.0], [1.0, 1.0])
        scales = np.array([1.0, 2.0, 0.5])
        b_ub = np.outer(scales, box.h)
        direction = np.array([[-1.0, -1.0]] * 3)
        batch = solve_lp_batch(direction, box.H, b_ub)
        for scale, sol in zip(scales, batch):
            assert sol.value == pytest.approx(-2.0 * scale, abs=1e-8)

    def test_sparse_shared_block_accepted(self, pentagon, rng):
        objectives = rng.normal(size=(4, 2))
        sparse_h = sp.csr_matrix(pentagon.H)
        batch = solve_lp_batch(objectives, sparse_h, pentagon.h)
        for c, sol in zip(objectives, batch):
            scalar = solve_lp(c, a_ub=pentagon.H, b_ub=pentagon.h)
            assert sol.value == pytest.approx(scalar.value, abs=1e-8)

    def test_k1_delegates_with_equalities(self, pentagon):
        a_eq = np.array([[0.0, 1.0]])
        [sol] = solve_lp_batch(
            np.array([[1.0, 0.0]]), pentagon.H, pentagon.h,
            a_eq=a_eq, b_eq=np.array([[0.05]]),
        )
        scalar = solve_lp(
            [1.0, 0.0], a_ub=pentagon.H, b_ub=pentagon.h,
            a_eq=a_eq, b_eq=[0.05],
        )
        assert sol.value == pytest.approx(scalar.value, abs=1e-10)

    def test_eq_without_rhs_rejected(self, pentagon):
        with pytest.raises(ValueError, match="together"):
            solve_lp_batch(
                np.ones((3, 2)), pentagon.H, pentagon.h,
                a_eq=np.array([[1.0, 0.0]]),
            )

    def test_per_block_rhs_shape_validation(self, pentagon):
        with pytest.raises(ValueError, match="b_ub"):
            solve_lp_batch(
                np.ones((3, 2)), pentagon.H,
                np.tile(pentagon.h, (2, 1)),  # 2 blocks of RHS, 3 objectives
            )
        with pytest.raises(ValueError, match="b_eq"):
            solve_lp_batch(
                np.ones((3, 2)), pentagon.H, pentagon.h,
                a_eq=np.array([[1.0, 0.0]]), b_eq=np.zeros((3, 2)),
            )

    def test_stack_cache_reuses_same_matrices(self, pentagon, rng):
        objectives = rng.normal(size=(4, 2))
        solve_lp_batch(objectives, pentagon.H, pentagon.h)  # warm k=4
        reset_stack_cache_stats()
        solve_lp_batch(rng.normal(size=(4, 2)), pentagon.H, pentagon.h)
        assert stack_cache_stats() == {"hits": 1, "misses": 0}
        # A different batch size is a different stack: miss, not hit.
        solve_lp_batch(rng.normal(size=(5, 2)), pentagon.H, pentagon.h)
        assert stack_cache_stats() == {"hits": 1, "misses": 1}


class TestBlockStack:
    """Owner-held stacks: the per-controller replacement for pinning
    long-lived matrices in the module-level id-keyed LRU cache."""

    def test_owned_stack_matches_anonymous_path(self, pentagon, rng):
        objectives = rng.normal(size=(5, 2))
        stack = BlockStack(pentagon.H)
        owned = solve_lp_batch(
            objectives, pentagon.H, pentagon.h, stack=stack
        )
        anonymous = solve_lp_batch(objectives, pentagon.H, pentagon.h)
        for left, right in zip(owned, anonymous):
            assert left.value == pytest.approx(right.value, abs=1e-10)
        assert len(stack) == 1  # the k=5 stack lives on the owner

    def test_owned_stack_counts_in_shared_stats(self, pentagon, rng):
        stack = BlockStack(pentagon.H)
        reset_stack_cache_stats()
        solve_lp_batch(
            rng.normal(size=(3, 2)), pentagon.H, pentagon.h, stack=stack
        )
        solve_lp_batch(
            rng.normal(size=(3, 2)), pentagon.H, pentagon.h, stack=stack
        )
        assert stack_cache_stats() == {"hits": 1, "misses": 1}

    def test_mismatched_stack_rejected(self, pentagon, unit_box):
        stack = BlockStack(unit_box.H)
        with pytest.raises(ValueError, match="different block matrices"):
            solve_lp_batch(
                np.ones((3, 2)), pentagon.H, pentagon.h, stack=stack
            )

    def test_release_drops_built_stacks(self, pentagon, rng):
        stack = BlockStack(pentagon.H)
        solve_lp_batch(
            rng.normal(size=(4, 2)), pentagon.H, pentagon.h, stack=stack
        )
        assert len(stack) == 1
        stack.release()
        assert len(stack) == 0
        # Rebuilt transparently on the next solve.
        reset_stack_cache_stats()
        solve_lp_batch(
            rng.normal(size=(4, 2)), pentagon.H, pentagon.h, stack=stack
        )
        assert stack_cache_stats()["misses"] == 1

    def test_lru_bounded_entries(self, pentagon, rng):
        stack = BlockStack(pentagon.H, max_entries=2)
        for k in (2, 3, 4):
            solve_lp_batch(
                rng.normal(size=(k, 2)), pentagon.H, pentagon.h, stack=stack
            )
        assert len(stack) == 2


class TestMaximizeBatch:
    def test_matches_scalar_maximize(self, pentagon, rng):
        directions = rng.normal(size=(9, 2))
        values = maximize_batch(directions, pentagon.H, pentagon.h)
        for d, value in zip(directions, values):
            assert value == pytest.approx(
                maximize(d, pentagon.H, pentagon.h).value, abs=1e-8
            )


class TestPolytopeBatchSupport:
    def test_support_batch_matches_support(self, pentagon, rng):
        directions = rng.normal(size=(6, 2))
        values = pentagon.support_batch(directions)
        for d, value in zip(directions, values):
            assert value == pytest.approx(pentagon.support(d), abs=1e-8)

    def test_support_batch_dimension_check(self, pentagon):
        with pytest.raises(ValueError, match="dimension"):
            pentagon.support_batch(np.ones((2, 3)))

    def test_pontryagin_difference_matches_facet_loop(self, pentagon, small_box):
        batched = pentagon.pontryagin_difference(small_box)
        shrink = np.array([small_box.support(a) for a in pentagon.H])
        reference = HPolytope(pentagon.H, pentagon.h - shrink, normalize=False)
        assert batched.equals(reference, tol=1e-7)

    def test_pontryagin_roundtrip_containment(self, unit_box, small_box):
        eroded = unit_box.pontryagin_difference(small_box)
        assert unit_box.contains_polytope(eroded)
        # Every eroded point plus the full box stays inside (definition).
        assert unit_box.contains_polytope(eroded.minkowski_sum(small_box), tol=1e-6)

    def test_bounding_box_matches_supports(self, pentagon):
        lower, upper = pentagon.bounding_box()
        for i in range(2):
            e = np.zeros(2)
            e[i] = 1.0
            assert upper[i] == pytest.approx(pentagon.support(e), abs=1e-8)
            assert lower[i] == pytest.approx(-pentagon.support(-e), abs=1e-8)

    def test_is_bounded(self, pentagon):
        assert pentagon.is_bounded()
        half_plane = HPolytope(np.array([[1.0, 0.0]]), np.array([1.0]))
        assert not half_plane.is_bounded()

    def test_contains_polytope_with_unbounded_other(self, unit_box):
        # The batch stack fails on the unbounded operand; the scalar
        # fallback preserves the legacy semantics: early exit when a
        # bounded direction already fails, LPError when the first
        # undecided direction is unbounded.
        wide_half_plane = HPolytope(np.array([[1.0, 0.0]]), np.array([5.0]))
        assert not unit_box.contains_polytope(wide_half_plane)
        with pytest.raises(LPError):
            narrow = HPolytope(np.array([[1.0, 0.0]]), np.array([0.1]))
            unit_box.contains_polytope(narrow)
        half_plane = HPolytope(np.array([[1.0, 0.0]]), np.array([0.1]))
        assert half_plane.contains_polytope(
            HPolytope.from_box([-0.5, -0.5], [0.0, 0.5])
        )
