"""Tests for Fourier–Motzkin projection and the module-level operations."""

import numpy as np
import pytest

from repro.geometry import (
    HPolytope,
    affine_preimage,
    box_hull,
    eliminate_variable,
    intersection,
    iterated_sum,
    matrix_power_sum,
    minkowski_sum,
    pontryagin_difference,
    project_onto,
    support_vector,
)


class TestEliminateVariable:
    def test_simple_slab(self):
        # |x + u| <= 1, |u| <= 0.3  ->  x in [-1.3, 1.3].
        H = np.array([[1.0, 1.0], [-1.0, -1.0], [0.0, 1.0], [0.0, -1.0]])
        h = np.array([1.0, 1.0, 0.3, 0.3])
        H2, h2 = eliminate_variable(H, h, 1)
        poly = HPolytope(H2, h2)
        lo, hi = poly.bounding_box()
        assert lo[0] == pytest.approx(-1.3)
        assert hi[0] == pytest.approx(1.3)

    def test_no_coupling_keeps_rows(self):
        # u-free rows survive verbatim.
        H = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        h = np.array([2.0, 2.0, 1.0, 1.0])
        H2, h2 = eliminate_variable(H, h, 1)
        poly = HPolytope(H2, h2)
        lo, hi = poly.bounding_box()
        assert lo[0] == pytest.approx(-2.0)
        assert hi[0] == pytest.approx(2.0)


class TestProjectOnto:
    def test_projection_of_rotated_box(self):
        # Box rotated 45 degrees projected to x: [-sqrt2, sqrt2].
        c, s = np.cos(np.pi / 4), np.sin(np.pi / 4)
        R = np.array([[c, -s], [s, c]])
        rotated = HPolytope.from_box([-1, -1], [1, 1]).linear_image(R)
        proj = project_onto(rotated, 1)
        lo, hi = proj.bounding_box()
        assert lo[0] == pytest.approx(-np.sqrt(2), abs=1e-6)
        assert hi[0] == pytest.approx(np.sqrt(2), abs=1e-6)

    def test_projection_matches_vertex_projection(self, rng):
        # Random 3-D polytope: FM projection == hull of projected vertices.
        points = rng.uniform(-1, 1, size=(12, 3))
        poly = HPolytope.from_vertices(points)
        proj = project_onto(poly, 2)
        expected = HPolytope.from_vertices(poly.vertices()[:, :2])
        assert proj.equals(expected, tol=1e-6)

    def test_projection_membership_soundness(self, rng):
        points = rng.uniform(-1, 1, size=(10, 3))
        poly = HPolytope.from_vertices(points)
        proj = project_onto(poly, 2)
        # Every point of the polytope projects into the projection.
        for x in poly.sample(rng, 30):
            assert proj.contains(x[:2], tol=1e-6)

    def test_keep_out_of_range(self, unit_box):
        with pytest.raises(ValueError, match="keep"):
            project_onto(unit_box, 2)


class TestModuleOperations:
    def test_minkowski_sum_variadic(self, unit_box, small_box):
        total = minkowski_sum(unit_box, small_box, small_box)
        lo, hi = total.bounding_box()
        np.testing.assert_allclose(hi, [2.0, 2.0])
        np.testing.assert_allclose(lo, [-2.0, -2.0])

    def test_minkowski_sum_empty_args(self):
        with pytest.raises(ValueError):
            minkowski_sum()

    def test_pontryagin_difference_function(self, unit_box, small_box):
        assert pontryagin_difference(unit_box, small_box).equals(
            unit_box.pontryagin_difference(small_box)
        )

    def test_intersection_variadic(self, unit_box):
        a = unit_box.translate([0.5, 0.0])
        b = unit_box.translate([0.0, 0.5])
        result = intersection(unit_box, a, b)
        assert result.contains([0.0, 0.0])
        assert not result.contains([-0.8, -0.8])

    def test_affine_preimage_function(self, unit_box):
        pre = affine_preimage(unit_box, np.diag([2.0, 2.0]))
        lo, hi = pre.bounding_box()
        np.testing.assert_allclose(hi, [0.5, 0.5])

    def test_iterated_sum_matches_fold(self, small_box):
        terms = [small_box] * 5
        tree = iterated_sum(terms)
        lo, hi = tree.bounding_box()
        np.testing.assert_allclose(hi, [2.5, 2.5])

    def test_iterated_sum_single(self, unit_box):
        assert iterated_sum([unit_box]).equals(unit_box)

    def test_matrix_power_sum_identity(self, small_box):
        # With M = I: W ⊕ W ⊕ W = 3W.
        total = matrix_power_sum(np.eye(2), small_box, 3)
        assert total.equals(small_box.scale(3.0), tol=1e-7)

    def test_matrix_power_sum_contraction(self, small_box):
        # With M = 0.5 I: W ⊕ 0.5W ⊕ 0.25W = 1.75 W.
        total = matrix_power_sum(0.5 * np.eye(2), small_box, 3)
        assert total.equals(small_box.scale(1.75), tol=1e-6)

    def test_matrix_power_sum_count_validation(self, small_box):
        with pytest.raises(ValueError):
            matrix_power_sum(np.eye(2), small_box, 0)

    def test_box_hull(self, triangle):
        hull = box_hull(triangle)
        assert hull.equals(HPolytope.from_box([0, 0], [2, 2]), tol=1e-7)

    def test_support_vector(self, unit_box):
        values = support_vector(unit_box, np.eye(2))
        np.testing.assert_allclose(values, [1.0, 1.0])
