"""Tests for RMPC variants and configuration paths not covered by the
main controller suite: Chisci-style closed-loop tightening, custom
terminal sets, cost-weight effects and cross-layer equivalences."""

import numpy as np
import pytest

from repro.controllers import (
    RobustMPC,
    build_terminal_set,
    lqr_gain,
    rmpc_feasible_set,
)
from repro.framework import run_controller_only
from repro.geometry import HPolytope
from repro.invariance import is_rci
from tests.conftest import make_double_integrator


@pytest.fixture(scope="module")
def system():
    return make_double_integrator()


class TestClosedLoopTightening:
    def test_chisci_variant_builds_and_solves(self, system):
        mpc = RobustMPC(system, horizon=6, tighten_with_closed_loop=True)
        u = mpc.compute([0.5, 0.1])
        assert np.isfinite(u).all()

    def test_chisci_tightening_differs_from_open_loop(self, system):
        open_loop = RobustMPC(system, horizon=6)
        closed_loop = RobustMPC(system, horizon=6, tighten_with_closed_loop=True)
        # The stable closed loop contracts the propagated disturbance, so
        # its final tightened set is no smaller than the open-loop one
        # (A is marginally stable for the double integrator, A_K stable).
        last_open = open_loop.tightened[-1]
        last_closed = closed_loop.tightened[-1]
        assert last_closed.contains_polytope(last_open, tol=1e-6)
        assert not last_open.equals(last_closed, tol=1e-4)

    def test_chisci_closed_loop_safety(self, system, rng):
        mpc = RobustMPC(system, horizon=6, tighten_with_closed_loop=True)
        feasible = rmpc_feasible_set(mpc)
        lo, hi = system.disturbance_set.bounding_box()
        for x0 in feasible.sample(rng, 3):
            W = rng.uniform(lo, hi, size=(40, 2))
            result = system.simulate(x0, lambda t, x: mpc.compute(x), W)
            assert result.always_safe


class TestCustomTerminalSet:
    def test_explicit_terminal_set_used(self, system):
        K = lqr_gain(system.A, system.B, np.eye(2), np.eye(1))
        tightened_last = RobustMPC(system, horizon=4).tightened[4]
        terminal = build_terminal_set(system, K, tightened_last).scale(0.5)
        mpc = RobustMPC(system, horizon=4, terminal_set=terminal)
        assert mpc.terminal_set is terminal
        sol = mpc.solve([0.2, 0.0])
        assert terminal.contains(sol.states[-1], tol=1e-6)

    def test_smaller_terminal_set_shrinks_feasible_region(self, system):
        base = RobustMPC(system, horizon=4)
        small_terminal = base.terminal_set.scale(0.3)
        restricted = RobustMPC(system, horizon=4, terminal_set=small_terminal)
        xf_base = rmpc_feasible_set(base)
        xf_restricted = rmpc_feasible_set(restricted)
        assert xf_base.contains_polytope(xf_restricted, tol=1e-6)


class TestCostWeights:
    def test_energy_weight_reduces_actuation(self, system, rng):
        cheap_energy = RobustMPC(system, horizon=6, input_weight=0.1)
        dear_energy = RobustMPC(system, horizon=6, input_weight=10.0)
        x0 = np.array([1.5, 0.3])
        W = np.zeros((30, 2))
        run_cheap = run_controller_only(system, cheap_energy, x0, W)
        run_dear = run_controller_only(system, dear_energy, x0, W)
        assert run_dear.energy <= run_cheap.energy + 1e-9

    def test_cost_is_monotone_in_state_norm(self, system):
        mpc = RobustMPC(system, horizon=6)
        near = mpc.solve([0.2, 0.0]).cost
        far = mpc.solve([2.0, 0.0]).cost
        assert far > near


class TestCrossLayerEquivalence:
    def test_simulate_matches_run_controller_only(self, system, rng):
        """The plant-level simulate() and the framework-level baseline
        runner must integrate identical trajectories."""
        mpc = RobustMPC(system, horizon=5)
        lo, hi = system.disturbance_set.bounding_box()
        W = rng.uniform(lo, hi, size=(20, 2))
        x0 = np.array([0.8, -0.2])
        sim = system.simulate(x0, lambda t, x: mpc.compute(x), W)
        framework = run_controller_only(system, mpc, x0, W)
        np.testing.assert_allclose(sim.states, framework.states, atol=1e-10)
        np.testing.assert_allclose(sim.inputs, framework.inputs, atol=1e-10)
