"""DRL-based skipping decision function (paper Sec. III-B.2).

Wraps a trained :class:`~repro.rl.dqn.DoubleDQNAgent` as a
:class:`~repro.skipping.base.SkippingPolicy`.  The agent's observation is
the paper's DRL state ``s(t) = {x(t), w(t−r+1), …, w(t)}``, optionally
normalised by per-component scales so the network sees O(1) features.

The disturbance components exposed to the agent can be restricted (the
ACC disturbance is 2-D in state space but only its first component
carries information), via ``disturbance_components``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.rl.dqn import DoubleDQNAgent
from repro.skipping.base import RUN, SKIP, DecisionContext, SkippingPolicy

__all__ = ["DRLSkippingPolicy", "build_observation"]


def build_observation(
    state: np.ndarray,
    past_disturbances: np.ndarray,
    state_scale: np.ndarray,
    disturbance_scale: float,
    disturbance_components: Sequence[int],
) -> np.ndarray:
    """Assemble and normalise the DRL observation vector.

    Layout: ``[x / state_scale, w_hist[:, components].ravel() / w_scale]``.
    """
    x = np.asarray(state, dtype=float) / state_scale
    w = np.atleast_2d(past_disturbances)[:, list(disturbance_components)]
    return np.concatenate([x, w.reshape(-1) / disturbance_scale])


class DRLSkippingPolicy(SkippingPolicy):
    """Ω implemented by a (trained) double-DQN agent.

    Args:
        agent: The agent; action 0 = skip, action 1 = run (matching the
            paper's ``z``).
        state_scale: Per-component normalisation of the plant state.
        disturbance_scale: Scalar normalisation of disturbance entries.
        disturbance_components: Which disturbance components enter the
            observation (default: component 0 only).
        epsilon: Exploration rate at decision time (0 for evaluation).
    """

    def __init__(
        self,
        agent: DoubleDQNAgent,
        state_scale,
        disturbance_scale: float = 1.0,
        disturbance_components: Sequence[int] = (0,),
        epsilon: float = 0.0,
    ):
        self.agent = agent
        self.state_scale = np.asarray(state_scale, dtype=float)
        if np.any(self.state_scale <= 0):
            raise ValueError("state_scale entries must be positive")
        self.disturbance_scale = float(disturbance_scale)
        if self.disturbance_scale <= 0:
            raise ValueError("disturbance_scale must be positive")
        self.disturbance_components = tuple(disturbance_components)
        self.epsilon = float(epsilon)
        # Greedy evaluation (ε = 0) is a pure function of the context, so
        # the lockstep engine may share one instance across episodes; any
        # exploration makes decisions draw-order dependent.
        self.stateless = self.epsilon == 0.0

    def observation(self, context: DecisionContext) -> np.ndarray:
        """The agent's observation for this decision context."""
        return build_observation(
            context.state,
            context.past_disturbances,
            self.state_scale,
            self.disturbance_scale,
            self.disturbance_components,
        )

    def decide(self, context: DecisionContext) -> int:
        action = self.agent.act(self.observation(context), self.epsilon)
        return RUN if action == 1 else SKIP
