"""Shared utilities: array validation, configuration, LP wrappers."""

from repro.utils.validation import (
    as_matrix,
    as_vector,
    check_square,
    check_shape_match,
)

__all__ = ["as_matrix", "as_vector", "check_square", "check_shape_match"]
