"""Tests for the batch experiment runner and result serialisation."""

import numpy as np
import pytest

from repro.controllers import LinearFeedback, lqr_gain
from repro.framework import BatchResult, BatchRunner, EpisodeRecord, SafetyMonitor
from repro.invariance import maximal_rpi, strengthened_safe_set
from repro.skipping import AlwaysSkipPolicy


@pytest.fixture
def batch_setup(double_integrator):
    system = double_integrator
    K = lqr_gain(system.A, system.B, np.eye(2), np.eye(1))
    seed = system.safe_set.intersect(system.input_set.linear_preimage(K))
    xi = maximal_rpi(
        system.closed_loop_matrix(K), seed, system.disturbance_set
    ).invariant_set
    xp = strengthened_safe_set(system, xi)
    runner = BatchRunner(
        system,
        LinearFeedback(K),
        monitor_factory=lambda: SafetyMonitor(
            strengthened_set=xp, invariant_set=xi, safe_set=system.safe_set
        ),
        policy_factory=AlwaysSkipPolicy,
    )
    return system, xp, runner


class TestBatchRunner:
    def test_run_collects_records(self, batch_setup, rng):
        system, xp, runner = batch_setup
        lo, hi = system.disturbance_set.bounding_box()
        states = xp.sample(rng, 4)
        result = runner.run(
            states, lambda i: rng.uniform(lo, hi, size=(30, 2))
        )
        assert len(result) == 4
        assert all(isinstance(r, EpisodeRecord) for r in result.records)
        assert all(r.max_violation <= 1e-9 for r in result.records)
        assert result.mean("skip_rate") > 0.5

    def test_mean_of_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            BatchResult().mean("energy")

    def test_json_roundtrip(self, batch_setup, rng, tmp_path):
        system, xp, runner = batch_setup
        lo, hi = system.disturbance_set.bounding_box()
        result = runner.run(
            xp.sample(rng, 2), lambda i: rng.uniform(lo, hi, size=(10, 2))
        )
        path = tmp_path / "batch.json"
        result.to_json(path)
        loaded = BatchResult.from_json(path)
        assert len(loaded) == 2
        assert loaded.records[0] == result.records[0]

    def test_csv_export(self, batch_setup, rng, tmp_path):
        system, xp, runner = batch_setup
        lo, hi = system.disturbance_set.bounding_box()
        result = runner.run(
            xp.sample(rng, 2), lambda i: rng.uniform(lo, hi, size=(10, 2))
        )
        path = tmp_path / "batch.csv"
        result.to_csv(path)
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 3
        assert lines[0].startswith("episode,energy,skip_rate")

    def test_csv_roundtrip_is_exact(self, batch_setup, rng, tmp_path):
        system, xp, runner = batch_setup
        lo, hi = system.disturbance_set.bounding_box()
        result = runner.run(
            xp.sample(rng, 3), lambda i: rng.uniform(lo, hi, size=(10, 2))
        )
        path = tmp_path / "batch.csv"
        result.to_csv(path)
        loaded = BatchResult.from_csv(path)
        # repr-based float serialisation round-trips bit-exactly.
        assert loaded.records == result.records

    def test_empty_batch_serialises_symmetrically(self, tmp_path):
        """Regression: to_json wrote [] while to_csv raised ValueError."""
        empty = BatchResult()
        json_path = tmp_path / "empty.json"
        csv_path = tmp_path / "empty.csv"
        empty.to_json(json_path)
        empty.to_csv(csv_path)
        assert json_path.read_text() == "[]"
        lines = csv_path.read_text().strip().split("\n")
        assert len(lines) == 1
        assert lines[0].startswith("episode,energy,skip_rate")
        assert len(BatchResult.from_json(json_path)) == 0
        assert len(BatchResult.from_csv(csv_path)) == 0

    def test_empty_roundtrip_both_formats(self, batch_setup, rng, tmp_path):
        system, xp, runner = batch_setup
        lo, hi = system.disturbance_set.bounding_box()
        result = runner.run(
            xp.sample(rng, 2), lambda i: rng.uniform(lo, hi, size=(8, 2))
        )
        for name, save, load in (
            ("r.json", result.to_json, BatchResult.from_json),
            ("r.csv", result.to_csv, BatchResult.from_csv),
        ):
            path = tmp_path / name
            save(path)
            assert load(path).records == result.records

    def test_record_field_types_survive_csv(self, batch_setup, rng, tmp_path):
        system, xp, runner = batch_setup
        lo, hi = system.disturbance_set.bounding_box()
        result = runner.run(
            xp.sample(rng, 1), lambda i: rng.uniform(lo, hi, size=(5, 2))
        )
        path = tmp_path / "typed.csv"
        result.to_csv(path)
        record = BatchResult.from_csv(path).records[0]
        assert isinstance(record.episode, int)
        assert isinstance(record.forced_steps, int)
        assert isinstance(record.energy, float)
