"""Continuous-to-discrete conversion helpers.

The ACC case study in the paper uses forward-Euler discretisation of
Newtonian dynamics with period ``δ = 0.1``; a zero-order-hold (ZOH) variant
is provided for users that want the exact discretisation instead.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

from repro.utils.validation import as_matrix, check_square

__all__ = ["euler_discretize", "zoh_discretize"]


def euler_discretize(A_cont, B_cont, dt: float) -> tuple:
    """Forward-Euler discretisation ``(I + dt A, dt B)``.

    This is the scheme used by the paper's ACC difference equations.

    Args:
        A_cont: Continuous-time state matrix.
        B_cont: Continuous-time input matrix.
        dt: Sampling period (> 0).

    Returns:
        ``(A_d, B_d)`` discrete matrices.
    """
    A_cont = check_square(as_matrix(A_cont, "A_cont"), "A_cont")
    B_cont = as_matrix(B_cont, "B_cont")
    if dt <= 0:
        raise ValueError("dt must be positive")
    n = A_cont.shape[0]
    return np.eye(n) + dt * A_cont, dt * B_cont


def zoh_discretize(A_cont, B_cont, dt: float) -> tuple:
    """Exact zero-order-hold discretisation via the augmented matrix
    exponential.

    Returns:
        ``(A_d, B_d)`` with ``A_d = e^{A dt}`` and
        ``B_d = ∫_0^dt e^{A s} ds · B``.
    """
    A_cont = check_square(as_matrix(A_cont, "A_cont"), "A_cont")
    B_cont = as_matrix(B_cont, "B_cont")
    if dt <= 0:
        raise ValueError("dt must be positive")
    n = A_cont.shape[0]
    m = B_cont.shape[1]
    block = np.zeros((n + m, n + m))
    block[:n, :n] = A_cont
    block[:n, n:] = B_cont
    exp_block = expm(block * dt)
    return exp_block[:n, :n], exp_block[:n, n:]
