"""Tests for the empirical invariance verifier."""

import numpy as np
import pytest

from repro.controllers import LinearFeedback, lqr_gain
from repro.geometry import HPolytope
from repro.invariance import (
    maximal_rpi,
    verify_invariance_under_controller,
)


class TestEmpiricalVerifier:
    def test_certified_set_passes(self, double_integrator, rng):
        system = double_integrator
        K = lqr_gain(system.A, system.B, np.eye(2), np.eye(1))
        seed = system.safe_set.intersect(system.input_set.linear_preimage(K))
        xi = maximal_rpi(
            system.closed_loop_matrix(K), seed, system.disturbance_set
        ).invariant_set
        report = verify_invariance_under_controller(
            system, LinearFeedback(K).compute, xi, rng, samples=120
        )
        assert report.passed
        assert report.worst_violation <= 1e-6
        assert report.samples == 120

    def test_non_invariant_set_fails_with_counterexamples(
        self, double_integrator, rng
    ):
        system = double_integrator
        # Zero control cannot keep a double integrator in a box: the set
        # is certainly not invariant under κ = 0 for boundary states.
        candidate = HPolytope.from_box([-5.0, -2.0], [5.0, 2.0])
        report = verify_invariance_under_controller(
            system, lambda x: np.zeros(1), candidate, rng, samples=200
        )
        assert not report.passed
        assert report.violations > 0
        assert len(report.counterexamples) > 0
        state, w, successor = report.counterexamples[0]
        # The recorded counterexample must actually reproduce.
        recomputed = system.A @ state + w
        np.testing.assert_allclose(recomputed, successor, atol=1e-12)
        assert candidate.violation(successor) > 1e-6

    def test_counterexample_cap(self, double_integrator, rng):
        system = double_integrator
        candidate = HPolytope.from_box([-5.0, -2.0], [5.0, 2.0])
        report = verify_invariance_under_controller(
            system, lambda x: np.zeros(1), candidate, rng,
            samples=200, max_counterexamples=3,
        )
        assert len(report.counterexamples) <= 3

    def test_rmpc_invariant_set_passes(self, acc_case, rng):
        """The paper's Prop. 1 set, verified against the *actual* RMPC —
        the nonlinear-controller case the LP certificate cannot cover."""
        report = verify_invariance_under_controller(
            acc_case.system, acc_case.mpc.compute, acc_case.invariant_set,
            rng, samples=40, tol=1e-5,
        )
        assert report.passed

    def test_sample_validation(self, double_integrator, rng):
        with pytest.raises(ValueError, match="samples"):
            verify_invariance_under_controller(
                double_integrator, lambda x: np.zeros(1),
                HPolytope.from_box([-1, -1], [1, 1]), rng, samples=0,
            )
