"""Nested run-trace spans for the telemetry subsystem.

A :class:`RunTrace` records a tree of named, timed spans — the
observability layer's answer to "where did this sweep spend its time,
structurally?".  The experiment runner opens a ``sweep`` span, each grid
cell runs under a ``cell`` span, :func:`~repro.framework.evaluation.
paired_evaluation` opens an ``episode-batch`` span per approach, and the
per-stage wall-clock of the lockstep hot loop (classify / decide /
control / step, measured by :class:`~repro.framework.profiling.
StageProfiler`) is folded in as leaf ``stage:*`` spans.

Spans are collected **only when telemetry is enabled** — the engines'
deterministic record fields never depend on them, and
:meth:`~repro.observability.metrics.MetricsRegistry.deterministic_snapshot`
excludes them entirely (wall-clock is machine noise, not a determinism
surface).

Cross-process composition: forked sweep workers serialise their spans
via :meth:`RunTrace.snapshot` (plain JSON-safe dicts), ship them through
``fork_map``'s result pipe, and the parent re-attaches them under its
currently open span with :meth:`RunTrace.attach` — so a sharded sweep's
trace has the same sweep → cell → episode-batch shape as an in-process
one.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import List, Optional

__all__ = ["Span", "RunTrace"]


class Span:
    """One node of the trace tree.

    Attributes:
        name: Free-form span name (``sweep``, ``cell``, ...).
        attributes: JSON-safe key/value annotations.
        start: Wall-clock epoch seconds when the span opened (None for
            synthetic spans added after the fact, e.g. folded profiler
            stages).
        duration: Seconds the span was open (None while still open).
        children: Child :class:`Span` objects or already-serialised span
            dicts merged from forked workers.
    """

    __slots__ = ("name", "attributes", "start", "duration", "children")

    def __init__(self, name: str, attributes=None, start: Optional[float] = None):
        self.name = name
        self.attributes = dict(attributes) if attributes else {}
        self.start = start
        self.duration: Optional[float] = None
        self.children: list = []

    def to_dict(self) -> dict:
        """JSON-safe representation (children recursively serialised)."""
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "start": self.start,
            "duration": self.duration,
            "children": [
                child.to_dict() if isinstance(child, Span) else child
                for child in self.children
            ],
        }

    def __repr__(self) -> str:
        took = "open" if self.duration is None else f"{self.duration:.4f}s"
        return f"Span({self.name!r}, {took}, {len(self.children)} children)"


class RunTrace:
    """A stack-based collector of nested :class:`Span` trees."""

    __slots__ = ("_roots", "_stack")

    def __init__(self):
        self._roots: list = []
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, **attributes):
        """Open a span; closing it (context exit) records the duration
        and files it under the enclosing span (or as a new root)."""
        node = Span(name, attributes, start=time.time())
        tick = time.perf_counter()
        self._stack.append(node)
        try:
            yield node
        finally:
            node.duration = time.perf_counter() - tick
            self._stack.pop()
            self._file(node)

    def add_span(self, name: str, duration: Optional[float] = None, **attributes):
        """Record an already-measured span (no wall-clock start) under
        the current span — how folded profiler stages become leaves."""
        node = Span(name, attributes)
        node.duration = duration
        self._file(node)
        return node

    def attach(self, span_dicts) -> None:
        """Graft serialised spans (from a forked worker's snapshot)
        under the currently open span, preserving their subtree."""
        if not span_dicts:
            return
        target = self._stack[-1].children if self._stack else self._roots
        target.extend(span_dicts)

    def _file(self, node: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self._roots.append(node)

    def snapshot(self) -> list:
        """Completed root spans as JSON-safe dicts (open spans are not
        included — take snapshots after the tree of interest closed)."""
        return [
            root.to_dict() if isinstance(root, Span) else root
            for root in self._roots
        ]

    def reset(self) -> None:
        """Drop all recorded spans (open spans keep collecting)."""
        self._roots.clear()

    def __len__(self) -> int:
        return len(self._roots)

    def __repr__(self) -> str:
        return f"RunTrace({len(self._roots)} roots, depth {len(self._stack)})"
