"""Vectorised lockstep execution of many episodes at once.

Where the serial :class:`~repro.framework.runner.BatchRunner` advances one
scalar state at a time through ``IntermittentController.run``, the
functions here step an ``(N, n)`` state matrix for ``N`` episodes
*simultaneously*:

* all ``N`` states are classified against ``X'`` **and** ``XI`` with a
  single fused broadcast per step: the two half-space systems are stacked
  once up front into a :class:`~repro.geometry.MembershipTester`, whose
  one multiply + pairwise reduction yields both memberships.  The fusion
  is invariant-preserving by construction — the reduction runs along the
  state axis, so each constraint row's float is independent of how many
  rows are stacked above it, and both testers pre-shift offsets by the
  same ``h + tol``; every boolean is bitwise-identical to the two
  separate :meth:`~repro.geometry.HPolytope.contains_batch` calls it
  replaces;
* RUN / SKIP / monitor-forced rows are masked, the safe controller runs
  once on the stacked RUN rows via
  :meth:`~repro.controllers.base.Controller.compute_batch`;
* the plant advances every active row in one
  :meth:`~repro.systems.lti.DiscreteLTISystem.step_batch` call.

On top of the numpy pipeline sits an optional **compiled kernel tier**
(:mod:`repro.framework.kernel`): for fully closed-form configurations —
an affine controller, context-free policies, uniform monitors, timing
collection off — the entire classify → decide → control → step loop runs
as one numba-compiled pass over the batch and horizon, bitwise-identical
to the numpy path.  Select it with ``kernel="auto"|"numba"|"numpy"``
(mirroring the ``lp_backend`` vocabulary: ``auto`` falls back silently,
an explicit ``numba`` raises when it cannot run).

This is the only execution engine that raises episodes/sec on a
single-core host — process fan-out (:class:`ParallelBatchRunner`) needs
physical cores, lockstep only needs numpy.

Determinism contract — two tiers, selected by the controller's
:attr:`~repro.controllers.base.Controller.bitwise_batch` flag:

* **bitwise** (closed-form controllers; every controller whose
  ``compute_batch`` evaluates the same floating-point expressions
  row-wise): each episode's :class:`RunStats` holds exactly the
  trajectory, inputs, decisions and forced mask the serial loop would
  produce (wall-clock timing arrays excepted — the shared per-step cost
  is amortised uniformly over the rows that paid it, and zeroed when
  ``collect_timing=False``).  The differential test harness proves
  record-for-record equality against the serial engine, on both the
  numpy and the compiled-kernel tier.
* **plan-equivalent** (stacked LP controllers, i.e.
  :class:`~repro.controllers.rmpc.RobustMPC` with its block-diagonal
  :meth:`solve_batch`): when an LP has multiple optimal vertices, the
  stacked solve need not return the same one as ``k`` scalar solves, so
  trajectories may diverge from the serial loop while every solve still
  attains the identical optimal cost (within 1e-9), every applied input
  is feasible in ``U``, and Theorem 1 keeps all episodes violation-free.
  :func:`repro.controllers.rmpc.verify_plan_equivalence` is the
  differential check for this tier.  Such controllers expose no affine
  closed form, so the compiled kernel never touches them — the only
  change this engine applies to their pipeline is the fused (bitwise)
  classification above.

Passing ``exact_solves=True`` opts out of the stacked path: non-bitwise
controllers are routed through row-by-row
:meth:`~repro.controllers.base.Controller.compute_rowwise`, restoring
bitwise record-for-record parity with the serial engine for audits (at
scalar-solve speed).  Bitwise controllers are unaffected by the flag.

Caveats mirroring the serial semantics they replace:

* policies flagged ``stateless`` are evaluated through one representative
  instance's :meth:`~repro.skipping.base.SkippingPolicy.decide_batch`;
  stateful/stochastic policies keep their per-episode instances and are
  queried row by row in episode order, so per-episode generator streams
  line up with the serial engine;
* policies additionally flagged ``wants_context = False`` (AlwaysRun,
  AlwaysSkip, Periodic) take a context-free fast path: no per-row
  :class:`DecisionContext` is materialised and the disturbance-history
  window is not maintained — the decisions are identical by the
  ``decide_batch_at`` contract;
* the history window itself is a ring buffer: step ``t`` writes slot
  ``t % r`` and contexts gather the window back in chronological order,
  so maintaining ``r > 1`` histories costs one row-write per step
  instead of rolling the whole ``(N, r, n)`` block;
* a strict monitor aborts the whole batch with
  :class:`SafetyViolationError` as soon as any episode leaves ``XI``.
  The serial loop discovers violations episode-major and lockstep
  discovers them time-major, so *which* episode is named can differ —
  but a batch either raises under both engines or under neither;
* ``policy.observe`` is never called (the engine is for evaluation;
  route DRL *training* rollouts through the serial loop).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.controllers.base import Controller
from repro.framework.accounting import RunStats
from repro.framework.kernel import (
    KernelError,
    fused_rollout,
    kernel_ineligibility,
    resolve_kernel,
)
from repro.framework.monitor import SafetyMonitor, SafetyViolationError
from repro.framework.profiling import StageProfiler, active_profiler
from repro.geometry import MembershipTester
from repro.observability.metrics import registry as _telemetry
from repro.skipping.base import RUN, DecisionContext, SkippingPolicy
from repro.systems.lti import DiscreteLTISystem
from repro.utils.validation import as_vector

__all__ = ["run_lockstep", "lockstep_controller_only"]


def _batch_compute_fn(
    controller: Controller, exact_solves: bool, lp_backend=None
):
    """The engine's per-step κ evaluator under the two-tier contract.

    ``exact_solves`` only changes anything for controllers that declare
    ``bitwise_batch = False``: their stacked batch path is swapped for
    the row-by-row scalar reference, restoring bitwise parity with the
    serial engine.  A non-None ``lp_backend`` is threaded down to
    controllers that expose ``set_lp_backend`` (stacked-LP solvers;
    sticky for the controller) and ignored by everything else — the
    scalar/exact path is backend-invariant by construction.
    """
    if lp_backend is not None and hasattr(controller, "set_lp_backend"):
        controller.set_lp_backend(lp_backend)
    if exact_solves and not getattr(controller, "bitwise_batch", True):
        return controller.compute_rowwise
    return controller.compute_batch


def _equal_value(left, right) -> bool:
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        return np.array_equal(left, right)
    try:
        return bool(left == right)
    except Exception:
        return False


def _interchangeable(policy, reference) -> bool:
    """True iff two policy instances are guaranteed to decide identically.

    ``stateless`` only promises decisions are a pure function of the
    context *and the instance's parameters* — ``PeriodicSkipPolicy(2)``
    and ``PeriodicSkipPolicy(3)`` are both stateless yet disagree.  One
    representative may serve every episode only when the instances are
    the same object or carry equal attributes; otherwise the engine falls
    back to querying each episode's own policy.
    """
    if policy is reference:
        return True
    if type(policy) is not type(reference):
        return False
    left = getattr(policy, "__dict__", None)
    right = getattr(reference, "__dict__", None)
    if left is None or right is None or left.keys() != right.keys():
        return False
    return all(
        left[key] is right[key] or _equal_value(left[key], right[key])
        for key in left
    )


def _padded_realisations(realisations, n: int) -> tuple:
    """Stack per-episode ``(T_i, n)`` arrays into ``(N, T_max, n)`` + horizons.

    Rows beyond an episode's own horizon are zero padding; the per-episode
    slices handed back out at the end never include them.
    """
    W = [np.atleast_2d(np.asarray(w, dtype=float)) for w in realisations]
    horizons = np.array([w.shape[0] for w in W], dtype=int)
    for i, w in enumerate(W):
        if w.shape[1] != n:
            raise ValueError(
                f"episode {i} realisation has dimension {w.shape[1]}, plant has {n}"
            )
    t_max = int(horizons.max()) if len(W) else 0
    padded = np.zeros((len(W), t_max, n))
    for i, w in enumerate(W):
        padded[i, : horizons[i]] = w
    return padded, horizons


def _context_free_run_flags(policy, t_max: int, count: int) -> np.ndarray:
    """Precompute the ``(t_max, N)`` RUN mask for a context-free policy.

    ``decide_batch_at`` decisions are a pure function of the step index
    (row-uniform — the same contract the per-step fast path already
    leans on), so the whole schedule can be materialised up front for
    the compiled kernel.
    """
    flags = np.zeros((t_max, count), dtype=np.int64)
    for t in range(t_max):
        flags[t] = np.asarray(policy.decide_batch_at(t, count)) == RUN
    return flags


def _dispatch_reason_tag(request: str, outcome: str, reason) -> str:
    """Compact label for why kernel dispatch landed where it did (full
    ineligibility prose stays in the KernelError / docs)."""
    if outcome == "numba":
        return "eligible"
    if reason is None:
        return "numpy-requested" if request == "numpy" else "numba-unavailable"
    if "affine" in reason:
        return "no-affine-form"
    if "context-free" in reason:
        return "policy-not-context-free"
    if "strict" in reason:
        return "mixed-strict"
    if "timing" in reason:
        return "collect-timing"
    if "MAX_KERNEL_DIM" in reason:
        return "dimension"
    return "other"


def _record_dispatch(request: str, outcome: str, reason, mode: str) -> None:
    """Count one kernel-dispatch decision (auto resolution outcome plus
    the ineligibility reason when the numpy path was selected)."""
    _telemetry().inc(
        "lockstep_kernel_dispatch_total",
        request=request,
        outcome=outcome,
        reason=_dispatch_reason_tag(request, outcome, reason),
        mode=mode,
    )


def _record_batch(mode: str, count: int, horizons) -> None:
    """Per-run episode/step counters (one call per lockstep entry)."""
    reg = _telemetry()
    reg.inc("lockstep_runs_total", mode=mode)
    reg.inc("lockstep_episodes_total", count, mode=mode)
    reg.inc("lockstep_steps_total", int(horizons.sum()), mode=mode)


def _kernel_stats(
    states, inputs, decisions, forced, W, horizons
) -> List[RunStats]:
    """Slice fused-rollout buffers into per-episode :class:`RunStats`.

    The kernel tier requires ``collect_timing=False``, so the timing
    arrays are zero-filled — exactly what the numpy path produces under
    the same flag.
    """
    return [
        RunStats(
            states=states[i, : horizons[i] + 1].copy(),
            inputs=inputs[i, : horizons[i]].copy(),
            decisions=decisions[i, : horizons[i]].copy(),
            forced=forced[i, : horizons[i]].copy(),
            controller_seconds=np.zeros(horizons[i]),
            monitor_seconds=np.zeros(horizons[i]),
            disturbances=W[i, : horizons[i]].copy(),
        )
        for i in range(len(horizons))
    ]


def run_lockstep(
    system: DiscreteLTISystem,
    controller: Controller,
    monitors: Sequence[SafetyMonitor],
    policies: Sequence[SkippingPolicy],
    initial_states,
    realisations,
    skip_input=None,
    memory_length: int = 1,
    reveal_future: bool = False,
    exact_solves: bool = False,
    lp_backend: Optional[str] = None,
    collect_timing: bool = True,
    kernel: str = "auto",
    profiler: Optional[StageProfiler] = None,
) -> List[RunStats]:
    """Run ``N`` Algorithm-1 episodes in lockstep.

    Args:
        system: The plant (shared across episodes).
        controller: Safe controller κ (shared; must be stateless across
            calls, as all the library's controllers are).
        monitors: One fresh :class:`SafetyMonitor` per episode (they carry
            violation counters).  All must share the same sets/config —
            true for any factory-built batch; the sets of ``monitors[0]``
            drive the batched classification.
        policies: One Ω per episode.  If every policy is ``stateless``
            *and* the instances are interchangeable (same object, or same
            type with equal attributes — true for any factory-built
            batch), ``policies[0].decide_batch`` serves all rows;
            otherwise each episode's own instance is queried row by row.
        initial_states: ``(N, n)`` start states (each must lie in ``XI``).
        realisations: Sequence of ``N`` disturbance arrays ``(T_i, n)``
            (horizons may differ; finished episodes simply stop stepping).
        skip_input: Constant input applied when skipping (default zero).
        memory_length: The paper's ``r`` — disturbance-history window.
        reveal_future: Pass the realised future to Ω via the context.
        exact_solves: Route non-bitwise controllers (stacked LP solvers)
            through the row-by-row scalar path for record-for-record
            parity with the serial engine (see the module's two-tier
            determinism contract).  No effect on bitwise controllers.
        lp_backend: Stacked-solve backend request (``auto|highs|scipy``,
            see :mod:`repro.utils.lp_backends`) applied to controllers
            exposing ``set_lp_backend``; ``None`` (default) leaves the
            controller's own setting untouched.  Irrelevant under
            ``exact_solves`` (the scalar path is backend-invariant).
        collect_timing: Maintain the per-row amortised wall-clock arrays
            in :class:`RunStats` (the default).  ``False`` skips every
            ``perf_counter`` call and leaves the timing arrays
            zero-filled — all other record fields are unchanged bit for
            bit.  Required for the compiled kernel tier.
        kernel: Compiled-kernel request — ``"auto"`` (default: use the
            numba kernel when importable *and* this run is eligible,
            else the numpy path, silently), ``"numba"`` (require it;
            :class:`~repro.framework.kernel.KernelError` when it cannot
            run), or ``"numpy"`` (never).  See
            :func:`repro.framework.kernel.kernel_ineligibility` for the
            eligibility rules.
        profiler: Optional :class:`~repro.framework.profiling.StageProfiler`
            charged with per-stage wall clock (``classify`` / ``decide``
            / ``control`` / ``step``, or ``kernel`` for a fused compiled
            pass).  ``None`` or a disabled profiler costs one pointer
            check per stage.

    Returns:
        ``N`` :class:`RunStats`, aligned with the inputs.

    Raises:
        ValueError: If any initial state is outside ``XI``.
        SafetyViolationError: Under a strict monitor, as soon as any
            episode's state leaves ``XI``.
        KernelError: Under an explicit ``kernel="numba"`` request that
            cannot be honoured.
    """
    if memory_length < 1:
        raise ValueError("memory_length must be >= 1")
    X0 = np.atleast_2d(np.asarray(initial_states, dtype=float))
    count = X0.shape[0]
    if count == 0:
        return []
    if len(monitors) != count or len(policies) != count:
        raise ValueError("need exactly one monitor and one policy per episode")
    n, m, r = system.n, system.m, int(memory_length)
    skip_u = np.zeros(m) if skip_input is None else as_vector(skip_input)
    W, horizons = _padded_realisations(realisations, n)
    t_max = W.shape[1]

    reference = monitors[0]
    sset, iset, tol = reference.strengthened_set, reference.invariant_set, reference.tol
    for monitor in monitors:
        if (
            monitor.strengthened_set is not sset
            or monitor.invariant_set is not iset
            or monitor.tol != tol
        ):
            raise ValueError(
                "lockstep monitors must share one set configuration "
                "(identical X'/XI objects and tol) — heterogeneous "
                "monitors would be classified against episode 0's sets"
            )
    for i in range(count):
        if not monitors[i].admissible_initial(X0[i]):
            raise ValueError("initial state must be inside the invariant set XI")

    shared_policy = all(getattr(p, "stateless", False) for p in policies) and all(
        _interchangeable(p, policies[0]) for p in policies[1:]
    )
    # Context-free fast path: a shared policy that declares it never reads
    # the context (beyond the step index) lets every step skip the per-row
    # DecisionContext materialisation — the largest remaining per-step
    # Python cost at large N.
    context_free = shared_policy and not getattr(
        policies[0], "wants_context", True
    )
    for policy in policies:
        policy.reset()
    controller.reset()
    _record_batch("monitored", count, horizons)

    resolved = resolve_kernel(kernel)
    if resolved == "numba":
        uniform_strict = all(
            monitor.strict == reference.strict for monitor in monitors
        )
        reason = kernel_ineligibility(
            controller,
            n,
            m,
            context_free=context_free,
            uniform_strict=uniform_strict,
            collect_timing=collect_timing,
        )
        if reason is None:
            _record_dispatch(kernel, "numba", None, "monitored")
            prof = active_profiler(profiler)
            ptick = prof.tick() if prof is not None else 0.0
            run_flags = _context_free_run_flags(policies[0], t_max, count)
            states, inputs, decisions, forced, violations, abort_t, abort_i = (
                fused_rollout(
                    system,
                    controller,
                    sset,
                    iset,
                    tol,
                    skip_u,
                    X0,
                    W,
                    horizons,
                    run_flags,
                    strict=reference.strict,
                )
            )
            total_violations = int(violations.sum())
            if total_violations:
                _telemetry().inc("safety_violations_total", total_violations)
            for i in np.flatnonzero(violations):
                monitors[i].violations += int(violations[i])
            if prof is not None:
                prof.add("kernel", ptick)
            if abort_t >= 0:
                raise SafetyViolationError(
                    f"state {states[abort_i, abort_t]} left the robust "
                    "invariant set"
                )
            return _kernel_stats(states, inputs, decisions, forced, W, horizons)
        if kernel == "numba":
            raise KernelError(f"kernel='numba' requested but {reason}")
        _record_dispatch(kernel, "numpy", reason, "monitored")
    else:
        _record_dispatch(kernel, "numpy", None, "monitored")

    compute_batch = _batch_compute_fn(controller, exact_solves, lp_backend)
    membership = MembershipTester((sset, iset), tol)
    prof = active_profiler(profiler)

    states = np.empty((count, t_max + 1, n))
    inputs = np.zeros((count, t_max, m))
    decisions = np.zeros((count, t_max), dtype=int)
    forced = np.zeros((count, t_max), dtype=bool)
    controller_seconds = np.zeros((count, t_max))
    monitor_seconds = np.zeros((count, t_max))
    states[:, 0] = X0
    X = X0.copy()
    # Disturbance-history ring buffer: step t writes slot t % r; contexts
    # gather slots back into chronological (oldest → newest) order.  One
    # row-write per step regardless of r, versus rolling the whole
    # (N, r, n) block.
    history = np.zeros((count, r, n))

    for t in range(t_max):
        idx = np.flatnonzero(horizons > t)
        w_t = W[idx, t]
        if not context_free:
            # The history window only ever feeds DecisionContexts, so the
            # context-free fast path skips maintaining it too.
            history[idx, t % r] = w_t
            window = np.arange(t + 1, t + 1 + r) % r

        if prof is not None:
            ptick = prof.tick()
        if collect_timing:
            tick = time.perf_counter()
        in_strengthened, in_invariant = membership.contains_each(X[idx])
        unsafe = ~in_strengthened & ~in_invariant
        if np.any(unsafe):
            _telemetry().inc(
                "safety_violations_total", int(np.count_nonzero(unsafe))
            )
            for gi in idx[unsafe]:
                monitors[gi].violations += 1
                if monitors[gi].strict:
                    raise SafetyViolationError(
                        f"state {X[gi]} left the robust invariant set"
                    )
        free_idx = idx[in_strengthened]
        forced_idx = idx[~in_strengthened]
        if prof is not None:
            ptick = prof.add("classify", ptick)

        if not len(free_idx):
            choices = np.zeros(0, dtype=int)
        elif context_free:
            choices = np.asarray(policies[0].decide_batch_at(t, len(free_idx)))
        else:
            contexts = [
                DecisionContext(
                    time=t,
                    state=X[gi].copy(),
                    past_disturbances=history[gi, window],
                    future_disturbances=(
                        W[gi, t : horizons[gi]].copy() if reveal_future else None
                    ),
                )
                for gi in free_idx
            ]
            if shared_policy:
                choices = np.asarray(policies[0].decide_batch(contexts))
            else:
                choices = np.array(
                    [policies[gi].decide(ctx) for gi, ctx in zip(free_idx, contexts)],
                    dtype=int,
                )
        if collect_timing and len(idx):
            monitor_seconds[idx, t] = (time.perf_counter() - tick) / len(idx)
        if prof is not None:
            ptick = prof.add("decide", ptick)

        run_idx = np.concatenate([forced_idx, free_idx[choices == RUN]])
        skip_idx = free_idx[choices != RUN]
        decisions[run_idx, t] = 1
        forced[forced_idx, t] = True
        if len(run_idx):
            if collect_timing:
                tick = time.perf_counter()
            inputs[run_idx, t] = compute_batch(X[run_idx])
            if collect_timing:
                controller_seconds[run_idx, t] = (
                    time.perf_counter() - tick
                ) / len(run_idx)
        inputs[skip_idx, t] = skip_u
        if prof is not None:
            ptick = prof.add("control", ptick)

        nxt = system.step_batch(X[idx], inputs[idx, t], w_t)
        X[idx] = nxt
        states[idx, t + 1] = nxt
        if prof is not None:
            prof.add("step", ptick)

    return [
        RunStats(
            states=states[i, : horizons[i] + 1].copy(),
            inputs=inputs[i, : horizons[i]].copy(),
            decisions=decisions[i, : horizons[i]].copy(),
            forced=forced[i, : horizons[i]].copy(),
            controller_seconds=controller_seconds[i, : horizons[i]].copy(),
            monitor_seconds=monitor_seconds[i, : horizons[i]].copy(),
            disturbances=W[i, : horizons[i]].copy(),
        )
        for i in range(count)
    ]


def lockstep_controller_only(
    system: DiscreteLTISystem,
    controller: Controller,
    initial_states,
    realisations,
    exact_solves: bool = False,
    lp_backend: Optional[str] = None,
    collect_timing: bool = True,
    kernel: str = "auto",
    profiler: Optional[StageProfiler] = None,
) -> List[RunStats]:
    """Vectorised :func:`~repro.framework.intermittent.run_controller_only`.

    κ runs on every row of every step (no monitor, no skipping) — the
    RMPC-only baseline leg of ``evaluate_approaches``, in lockstep.
    ``exact_solves`` and ``lp_backend`` select the determinism tier and
    stacked-solve backend exactly as in :func:`run_lockstep`, as do
    ``collect_timing``, ``kernel`` and ``profiler`` (the kernel tier runs
    the same fused loop with classification skipped and every step a
    RUN).  This is the workload where the warm-started ``highs`` backend
    shines: the stacked LP is identical every step except for its
    initial-state RHS, at a constant batch height.

    Returns:
        ``N`` :class:`RunStats` with all decisions 1 and zero monitor time.
    """
    X0 = np.atleast_2d(np.asarray(initial_states, dtype=float))
    count = X0.shape[0]
    if count == 0:
        return []
    n, m = system.n, system.m
    W, horizons = _padded_realisations(realisations, n)
    t_max = W.shape[1]
    controller.reset()
    _record_batch("controller_only", count, horizons)

    resolved = resolve_kernel(kernel)
    if resolved == "numba":
        reason = kernel_ineligibility(
            controller, n, m, collect_timing=collect_timing
        )
        if reason is None:
            _record_dispatch(kernel, "numba", None, "controller_only")
            prof = active_profiler(profiler)
            ptick = prof.tick() if prof is not None else 0.0
            run_flags = np.ones((t_max, count), dtype=np.int64)
            states, inputs, decisions, forced, _, _, _ = fused_rollout(
                system,
                controller,
                None,
                None,
                0.0,
                np.zeros(m),
                X0,
                W,
                horizons,
                run_flags,
            )
            if prof is not None:
                prof.add("kernel", ptick)
            return _kernel_stats(states, inputs, decisions, forced, W, horizons)
        if kernel == "numba":
            raise KernelError(f"kernel='numba' requested but {reason}")
        _record_dispatch(kernel, "numpy", reason, "controller_only")
    else:
        _record_dispatch(kernel, "numpy", None, "controller_only")

    compute_batch = _batch_compute_fn(controller, exact_solves, lp_backend)
    prof = active_profiler(profiler)

    states = np.empty((count, t_max + 1, n))
    inputs = np.zeros((count, t_max, m))
    controller_seconds = np.zeros((count, t_max))
    states[:, 0] = X0
    X = X0.copy()
    for t in range(t_max):
        idx = np.flatnonzero(horizons > t)
        if prof is not None:
            ptick = prof.tick()
        if collect_timing:
            tick = time.perf_counter()
        inputs[idx, t] = compute_batch(X[idx])
        if collect_timing and len(idx):
            controller_seconds[idx, t] = (time.perf_counter() - tick) / len(idx)
        if prof is not None:
            ptick = prof.add("control", ptick)
        nxt = system.step_batch(X[idx], inputs[idx, t], W[idx, t])
        X[idx] = nxt
        states[idx, t + 1] = nxt
        if prof is not None:
            prof.add("step", ptick)

    return [
        RunStats(
            states=states[i, : horizons[i] + 1].copy(),
            inputs=inputs[i, : horizons[i]].copy(),
            decisions=np.ones(horizons[i], dtype=int),
            forced=np.zeros(horizons[i], dtype=bool),
            controller_seconds=controller_seconds[i, : horizons[i]].copy(),
            monitor_seconds=np.zeros(horizons[i]),
            disturbances=W[i, : horizons[i]].copy(),
        )
        for i in range(count)
    ]
