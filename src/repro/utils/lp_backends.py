"""Pluggable LP backends for the stacked block-diagonal batch solves.

Two backends solve the stacked Eq.-5 problems of
:meth:`repro.controllers.rmpc.RobustMPC.solve_batch`:

* ``"scipy"`` — the always-available fallback: one
  :func:`scipy.optimize.linprog` call per batch over the cached CSR
  stack (:func:`repro.utils.lp.solve_lp_batch`).  Every call rebuilds
  the HiGHS internals and re-factorises the basis from scratch.
* ``"highs"`` — a *persistent* HiGHS process model
  (:class:`PersistentStackSolver`): the stacked model is passed to a
  ``highspy.Highs`` instance once, and subsequent solves only rewrite
  the initial-state equality right-hand side (``changeRowsBoundsBySet``)
  so HiGHS warm-starts from the previous solve's basis instead of
  re-factorising.  Across consecutive lockstep steps the stacked
  problem is identical except for that RHS, which is exactly the
  pattern warm-starting amortises.

``highspy`` is an optional extra (``pip install
repro-intermittent-control[highs]``); every entry point accepts a
backend *request* — ``"auto"`` (highs when importable, else scipy),
``"highs"`` (error if unavailable) or ``"scipy"`` — and
:func:`resolve_backend` turns the request into the effective backend.

Determinism: both backends attain the scalar solver's optimal cost
(the plan-equivalent tier of :mod:`repro.framework.lockstep`), but a
warm-started solve may land on a different optimal *vertex* than a cold
one when the LP is degenerate — the vertex can depend on the previous
step's basis.  Audits that need bitwise reproducibility use
``exact_solves=True``, which routes through the scalar scipy path under
every backend and is therefore backend-invariant.

Thread-safety: a :class:`PersistentStackSolver` mutates its ``Highs``
instances in place and is **not** re-entrant; one controller's persistent
solver must not be driven from concurrent threads.  Forked workers are
fine — the solver is built lazily, so each worker builds its own.
"""

from __future__ import annotations

import logging
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.observability.metrics import registry as _telemetry
from repro.utils.lp import LPError, LPSolution

logger = logging.getLogger(__name__)

__all__ = [
    "BACKENDS",
    "LPBackendError",
    "highs_available",
    "resolve_backend",
    "PersistentStackSolver",
]

#: Recognised backend requests (``resolve_backend`` maps them to an
#: effective backend in ``("highs", "scipy")``).
BACKENDS = ("auto", "highs", "scipy")

#: Batch sizes at or above this are split into fixed-size chunks, each
#: with its own persistent model: the single stacked solve's superlinear
#: tail would otherwise eat the warm-start amortisation, and fixed chunk
#: sizes keep the chunk models reusable when the batch size drifts
#: between steps (only the remainder chunk goes cold).
DEFAULT_CHUNK_SIZE = 1024

_HIGHS_AVAILABLE: Optional[bool] = None


class LPBackendError(RuntimeError):
    """Raised when a requested LP backend cannot be provided."""


def highs_available() -> bool:
    """True iff the optional ``highspy`` extra is importable (cached)."""
    global _HIGHS_AVAILABLE
    if _HIGHS_AVAILABLE is None:
        try:
            import highspy  # noqa: F401

            _HIGHS_AVAILABLE = True
        except ImportError:
            _HIGHS_AVAILABLE = False
    return _HIGHS_AVAILABLE


def resolve_backend(backend: str = "auto") -> str:
    """Map a backend request to the effective backend name.

    Args:
        backend: ``"auto"``, ``"highs"`` or ``"scipy"``.

    Returns:
        ``"highs"`` or ``"scipy"``.

    Raises:
        ValueError: On names outside :data:`BACKENDS`.
        LPBackendError: For an explicit ``"highs"`` request when
            ``highspy`` is not installed (``"auto"`` silently falls back
            to scipy instead).
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"lp backend must be one of {BACKENDS}, got {backend!r}"
        )
    if backend == "scipy":
        return "scipy"
    if highs_available():
        return "highs"
    if backend == "auto":
        logger.debug("lp backend 'auto': highspy unavailable, using scipy")
    if backend == "highs":
        raise LPBackendError(
            "lp backend 'highs' requested but highspy is not installed "
            "(pip install highspy, or the [highs] extra); "
            "use backend 'auto' to fall back to scipy"
        )
    return "scipy"


def _as_csr(matrix) -> sp.csr_matrix:
    if sp.issparse(matrix):
        return matrix.tocsr()
    return sp.csr_matrix(np.asarray(matrix, dtype=float))


class _ChunkModel:
    """One persistent ``highspy.Highs`` instance for a fixed chunk size.

    Holds the stacked model for ``blocks`` copies of the scalar block;
    built (``passModel``) exactly once, then every :meth:`solve` only
    rewrites the varying equality rows and re-runs — HiGHS reuses the
    incumbent basis, so repeated solves skip the from-scratch
    factorisation the scipy path pays every call.
    """

    def __init__(self, owner: "PersistentStackSolver", blocks: int):
        import highspy

        self._highspy = highspy
        self.blocks = int(blocks)
        n = owner.block_cols
        rows_ub = owner.rows_ub
        rows_eq = owner.rows_eq
        k = self.blocks

        stacked_ub = sp.block_diag([owner.a_ub] * k, format="csr")
        stacked_eq = sp.block_diag([owner.a_eq] * k, format="csr")
        matrix = sp.vstack([stacked_ub, stacked_eq], format="csc")

        num_col = n * k
        num_row = (rows_ub + rows_eq) * k
        inf = highspy.kHighsInf
        row_lower = np.empty(num_row)
        row_upper = np.empty(num_row)
        row_lower[: rows_ub * k] = -inf
        row_upper[: rows_ub * k] = np.tile(owner.b_ub, k)
        eq_rhs = np.tile(owner.b_eq, k)
        row_lower[rows_ub * k :] = eq_rhs
        row_upper[rows_ub * k :] = eq_rhs

        lp = highspy.HighsLp()
        lp.num_col_ = num_col
        lp.num_row_ = num_row
        lp.col_cost_ = np.tile(owner.cost, k)
        lp.col_lower_ = np.full(num_col, -inf)
        lp.col_upper_ = np.full(num_col, inf)
        lp.row_lower_ = row_lower
        lp.row_upper_ = row_upper
        lp.a_matrix_.format_ = highspy.MatrixFormat.kColwise
        lp.a_matrix_.start_ = matrix.indptr.astype(np.int32)
        lp.a_matrix_.index_ = matrix.indices.astype(np.int32)
        lp.a_matrix_.value_ = matrix.data.astype(np.float64)

        self._highs = highspy.Highs()
        self._highs.setOptionValue("output_flag", False)
        self._highs.passModel(lp)

        # Flat row indices of the varying equality entries: block i's
        # varying rows live at rows_ub*k + i*rows_eq + varying.
        vary = np.asarray(owner.varying_eq_rows, dtype=np.int64)
        offsets = rows_ub * k + rows_eq * np.arange(k, dtype=np.int64)
        self._vary_idx = (
            (offsets[:, None] + vary[None, :]).reshape(-1).astype(np.int32)
        )
        self._n = n
        self.solves = 0

    def solve(self, values: np.ndarray) -> np.ndarray:
        """Rewrite the varying equality RHS and re-solve (warm start).

        Args:
            values: ``(blocks, len(varying_eq_rows))`` per-block RHS.

        Returns:
            ``(blocks, block_cols)`` optimal points.

        Raises:
            LPError: If HiGHS does not reach optimality (infeasible,
                unbounded, or a numerical failure).
        """
        flat = np.ascontiguousarray(values, dtype=np.float64).reshape(-1)
        self._highs.changeRowsBoundsBySet(
            len(self._vary_idx), self._vary_idx, flat, flat
        )
        self._highs.run()
        status = self._highs.getModelStatus()
        # First solve of a freshly-passed model factorises from scratch;
        # every later one warm-starts from the incumbent basis.
        _telemetry().inc(
            "lp_persistent_solves_total",
            start="warm" if self.solves else "cold",
        )
        self.solves += 1
        if status != self._highspy.HighsModelStatus.kOptimal:
            raise LPError(
                f"persistent stacked LP ({self.blocks} blocks) failed: "
                f"{self._highs.modelStatusToString(status)}"
            )
        solution = np.asarray(
            self._highs.getSolution().col_value, dtype=float
        )
        return solution.reshape(self.blocks, self._n)

    def release(self) -> None:
        self._highs.clear()


class PersistentStackSolver:
    """Warm-started persistent-HiGHS solver for one controller's stack.

    Owns everything the stacked solves need — the scalar block data
    *and* the per-chunk-size ``Highs`` instances — so the controller
    that holds this solver is the explicit owner of its stacks: nothing
    is pinned in a global cache, and dropping the controller reclaims
    the models (see the ownership contract in :mod:`repro.utils.lp`).

    The solved problem family is ``min cost @ x`` subject to
    ``a_ub x <= b_ub`` and ``a_eq x = b_eq`` per block, where only the
    ``varying_eq_rows`` entries of ``b_eq`` differ between blocks and
    between calls (the RMPC initial-state pattern).  Batches of ``k``
    blocks are split into chunks of at most ``chunk_size`` (see
    :data:`DEFAULT_CHUNK_SIZE`); each distinct chunk size keeps one
    persistent model, LRU-bounded by ``max_models``.

    Args:
        cost: ``(n,)`` shared per-block objective.
        a_ub: ``(rows_ub, n)`` shared inequality block.
        b_ub: ``(rows_ub,)`` shared inequality RHS.
        a_eq: ``(rows_eq, n)`` shared equality block.
        b_eq: ``(rows_eq,)`` base equality RHS (varying entries are
            overwritten per solve).
        varying_eq_rows: Indices into the equality rows that change per
            block / per call.
        chunk_size: Chunk width for large batches.
        max_models: Persistent models kept across distinct chunk sizes.

    Raises:
        LPBackendError: If ``highspy`` is not installed.
    """

    def __init__(
        self,
        cost,
        a_ub,
        b_ub,
        a_eq,
        b_eq,
        varying_eq_rows,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_models: int = 8,
    ):
        if not highs_available():
            raise LPBackendError(
                "PersistentStackSolver needs highspy (the [highs] extra)"
            )
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.cost = np.asarray(cost, dtype=float)
        self.a_ub = _as_csr(a_ub)
        self.b_ub = np.asarray(b_ub, dtype=float).reshape(-1)
        self.a_eq = _as_csr(a_eq)
        self.b_eq = np.asarray(b_eq, dtype=float).reshape(-1)
        self.varying_eq_rows = np.asarray(varying_eq_rows, dtype=np.int64)
        self.block_cols = self.a_ub.shape[1]
        self.rows_ub = self.a_ub.shape[0]
        self.rows_eq = self.a_eq.shape[0]
        if self.cost.size != self.block_cols:
            raise ValueError("cost length must match the block column count")
        if self.a_eq.shape[1] != self.block_cols:
            raise ValueError("a_ub and a_eq must share a column count")
        if self.varying_eq_rows.size and (
            self.varying_eq_rows.min() < 0
            or self.varying_eq_rows.max() >= self.rows_eq
        ):
            raise ValueError("varying_eq_rows outside the equality rows")
        self.chunk_size = int(chunk_size)
        self.max_models = int(max_models)
        self._models: dict = {}  # chunk size -> _ChunkModel (LRU order)
        self.model_builds = 0
        self.solve_calls = 0

    def _model(self, blocks: int) -> _ChunkModel:
        model = self._models.pop(blocks, None)
        if model is None:
            model = _ChunkModel(self, blocks)
            self.model_builds += 1
            _telemetry().inc("lp_persistent_model_builds_total")
            logger.debug(
                "persistent HiGHS chunk model built (%d blocks, %d built)",
                blocks, self.model_builds,
            )
            while len(self._models) >= self.max_models:
                self._models.pop(next(iter(self._models))).release()
        self._models[blocks] = model  # re-insert: LRU recency refresh
        return model

    def solve_batch(self, values) -> List[LPSolution]:
        """Solve ``k`` blocks whose varying equality RHS rows are ``values``.

        Args:
            values: ``(k, len(varying_eq_rows))`` per-block RHS entries.

        Returns:
            ``k`` :class:`~repro.utils.lp.LPSolution`, aligned with the
            input rows.  Nothing partial: if any chunk fails the whole
            batch raises and no chunk's results are returned, so callers
            can fall back to scalar solves without double counting.

        Raises:
            LPError: If any chunk's solve does not reach optimality.
        """
        V = np.atleast_2d(np.asarray(values, dtype=float))
        k = V.shape[0]
        if k == 0:
            return []
        if V.shape[1] != self.varying_eq_rows.size:
            raise ValueError(
                f"values have {V.shape[1]} columns, expected "
                f"{self.varying_eq_rows.size} varying equality rows"
            )
        self.solve_calls += 1
        points = np.empty((k, self.block_cols))
        start = 0
        while start < k:
            stop = min(start + self.chunk_size, k)
            points[start:stop] = self._model(stop - start).solve(V[start:stop])
            start = stop
        costs = points @ self.cost
        return [
            LPSolution(x=points[i], value=float(costs[i]), status=0)
            for i in range(k)
        ]

    @property
    def warm_solves(self) -> int:
        """Solves served by an already-built model (basis reuse)."""
        return sum(max(0, model.solves - 1) for model in self._models.values())

    def release(self) -> None:
        """Free every persistent model (the stacks die with the owner
        anyway; this releases the HiGHS memory eagerly)."""
        for model in self._models.values():
            model.release()
        self._models.clear()
