"""Grid execution: materialise cells, run them, shard them over workers.

:func:`run_experiment` evaluates one :class:`ExperimentSpec`;
:func:`run_sweep` expands a :class:`SweepPlan` into grid cells and —
under the default cell-sharding strategy — fans whole cells out over
:func:`repro.utils.parallel.fork_map` workers, lockstep (or serial)
*inside* each cell.

Determinism: a cell's metrics depend only on its spec (scenario +
overrides, seed, cases, horizon) and the engine tier — never on worker
scheduling — because every realisation is derived from the spec's seed
before any episode runs, exactly as the legacy entry points drew them,
and sharded cells must use stateless policies (enforced), so no policy
state can leak between cells of an in-process run either.
Sharding therefore reproduces the ``jobs=1`` run record-for-record; only
cross-*engine* comparisons of stacked-LP controllers drop to the
plan-equivalent tier (PR 4's contract; pass ``exact_solves=True`` for
record-for-record audits).

Workload dispatch: a spec with ``pattern=None`` runs the generic
scenario workload (i.i.d. disturbances from the scenario's ``W``,
Problem-1 energy); ``pattern="overall"``/``"ex1"``.. selects the ACC
pattern workload (front-vehicle realisations, fuel metric) — the shape
of the paper's own Sec.-IV evaluation.
"""

from __future__ import annotations

import logging
import re
from contextlib import nullcontext
from dataclasses import dataclass, fields, replace
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.controllers.rmpc import RMPCInfeasibleError
from repro.experiments.checkpoint import SweepCheckpoint
from repro.experiments.execution import ExecutionConfig
from repro.experiments.plan import GridCell, SweepPlan
from repro.experiments.result import (
    ApproachResult,
    CellFailure,
    CellResult,
    ExperimentResult,
    SweepResult,
)
from repro.experiments.spec import (
    BASELINE,
    DEFAULT_APPROACHES,
    _BASELINE_RESERVED,
    ExperimentSpec,
)
from repro.framework.evaluation import paired_evaluation
from repro.observability import metrics as _obs
from repro.scenarios.spec import ScenarioSpec, ScenarioSynthesisError
from repro.skipping.base import AlwaysSkipPolicy, SkippingPolicy
from repro.skipping.heuristics import PeriodicSkipPolicy
from repro.utils import chaos
from repro.utils.lp import LPError
from repro.utils.lp_backends import LPBackendError
from repro.utils.parallel import fork_map, resolve_jobs

__all__ = ["run_experiment", "run_sweep", "RECOVERABLE_CELL_ERRORS"]

#: Exception classes a failing grid cell may raise that ``on_error``
#: policies absorb into :class:`CellFailure` records.  Anything outside
#: this set (a ``TypeError``, a bad spec) is a bug in the sweep itself
#: and always aborts, whatever the policy.
RECOVERABLE_CELL_ERRORS = (
    RMPCInfeasibleError,
    ScenarioSynthesisError,
    LPBackendError,
    LPError,
    FloatingPointError,
    np.linalg.LinAlgError,
)

#: The subset for which the graceful-degradation chain applies: one
#: re-attempt on the always-available scipy LP backend before recording.
_SOLVER_ERRORS = (LPBackendError, LPError)

logger = logging.getLogger(__name__)

_PERIODIC = re.compile(r"^periodic([1-9]\d*)$")

#: Per-case metric names of the generic workload (tuple order of the
#: metrics_of callable; the two wall-clock means follow).
_GENERIC_METRICS = ("energy", "skip_rate", "forced_steps", "max_violation")
_ACC_METRICS = ("fuel",) + _GENERIC_METRICS


@dataclass
class _Workload:
    """Everything :func:`paired_evaluation` needs for one cell."""

    case: object
    system: object
    controller: object
    monitor_factory: Callable
    skip_input: np.ndarray
    initial_states: np.ndarray
    realisations: list
    metrics_of: Callable
    metric_names: tuple


def _builtin_policy(name: str) -> Optional[SkippingPolicy]:
    """Built-in approach names: ``bang_bang`` and ``periodic<k>``."""
    if name == "bang_bang":
        return AlwaysSkipPolicy()
    match = _PERIODIC.match(name)
    if match:
        return PeriodicSkipPolicy(int(match.group(1)))
    return None


def _resolve_policies(
    spec: ExperimentSpec, case, require_stateless: bool = False
) -> Dict[str, SkippingPolicy]:
    """Approach name → policy instance for one materialised cell.

    Args:
        require_stateless: Under cell sharding, policy instances must be
            stateless — a stateful policy would carry state across cells
            in a ``jobs=1`` run but start pristine in each forked worker,
            breaking the jobs-invariance contract.  (The lockstep engine
            independently enforces the same flag per cell.)
    """
    supplied = spec.policies
    if supplied is not None and not isinstance(supplied, Mapping):
        supplied = supplied(case)  # callable case -> mapping (or None)
    supplied = dict(supplied or {})
    if BASELINE in supplied:
        raise ValueError(_BASELINE_RESERVED)
    names = spec.approaches
    if names is None:
        names = tuple(supplied) if supplied else DEFAULT_APPROACHES
    policies: Dict[str, SkippingPolicy] = {}
    for name in names:
        if name in supplied:
            value = supplied.pop(name)
            if not isinstance(value, SkippingPolicy) and callable(value):
                value = value(case)
            if not isinstance(value, SkippingPolicy):
                raise ValueError(
                    f"approach {name!r}: policies must supply a "
                    "SkippingPolicy (or a case -> policy factory), got "
                    f"{type(value).__name__}"
                )
            if require_stateless and not getattr(value, "stateless", False):
                raise ValueError(
                    f"approach {name!r}: sharded sweeps (jobs != 1) "
                    "require stateless policies — a stateful instance "
                    "carries state across cells in-process but starts "
                    "pristine in each forked worker; run with jobs=1 or "
                    "shard='none' instead"
                )
            policies[name] = value
            continue
        builtin = _builtin_policy(name)
        if builtin is None:
            known = ", ".join(sorted(supplied)) or "<none>"
            raise ValueError(
                f"unknown approach {name!r}: not a built-in "
                "('bang_bang', 'periodic<k>') and not supplied via "
                f"policies (supplied: {known})"
            )
        policies[name] = builtin
    if supplied:
        raise ValueError(
            f"policies {sorted(supplied)} are not named in approaches {names}"
        )
    return policies


# ----------------------------------------------------------------------
# Workload materialisation
# ----------------------------------------------------------------------
def _generic_workload(spec: ExperimentSpec, overrides: tuple) -> _Workload:
    """Registry/inline scenario with i.i.d. disturbances from ``W``."""
    from repro.scenarios import registry
    from repro.scenarios.builder import CaseStudy, build_case_study

    if not isinstance(spec.scenario, (str, ScenarioSpec, CaseStudy)):
        # Spec validation admits exactly one other type: ACCCaseStudy.
        raise ValueError(
            "an ACCCaseStudy runs the ACC pattern workload — set "
            "pattern='overall' (or an ex1..ex10 id) on the experiment"
        )
    if isinstance(spec.scenario, CaseStudy):
        # A pre-built case is evaluated exactly as passed (customised
        # controllers/monitors survive) — it cannot be re-synthesised,
        # so synthesis overrides have nothing to apply to.
        if overrides:
            raise ValueError(
                f"experiment {spec.display_label!r}: overrides/axes "
                f"{[key for key, _ in overrides]} need a scenario name or "
                "ScenarioSpec to re-synthesise; a pre-built CaseStudy "
                "cannot take synthesis overrides"
            )
        case = spec.scenario
    else:
        if isinstance(spec.scenario, str):
            base = registry.get(spec.scenario)
        else:
            base = spec.scenario
        point_spec = (
            base.with_overrides(**dict(overrides)) if overrides else base
        )
        case = build_case_study(point_spec)

    rng = np.random.default_rng(spec.seed)
    initial_states = case.sample_initial_states(rng, spec.num_cases)
    factory = case.disturbance_factory(spec.horizon)
    realisations = [
        factory(i, np.random.default_rng(child))
        for i, child in enumerate(
            np.random.SeedSequence(spec.seed).spawn(spec.num_cases)
        )
    ]

    safe_set = case.system.safe_set

    def metrics_of(stats) -> tuple:
        return (
            case.energy_of_run(stats),
            stats.skip_rate,
            stats.forced_steps,
            stats.max_violation(safe_set),
            1e3 * stats.mean_controller_time,
            1e3 * stats.mean_monitor_time,
        )

    return _Workload(
        case=case,
        system=case.system,
        controller=case.controller,
        monitor_factory=lambda: case.make_monitor(strict=True),
        skip_input=case.skip_input,
        initial_states=initial_states,
        realisations=realisations,
        metrics_of=metrics_of,
        metric_names=_GENERIC_METRICS,
    )


def _acc_workload(spec: ExperimentSpec, overrides: tuple) -> _Workload:
    """The paper's ACC evaluation: front-vehicle patterns + fuel meter.

    Override keys: :class:`~repro.acc.model.ACCParameters` fields,
    ``"pattern"`` (front-vehicle pattern id), or ``"experiment"`` (paper
    id setting the pattern *and* its Table-I ``vf_range`` together).
    The RNG consumption order (pattern, initial states, realisations)
    matches the historical ``evaluate_approaches`` draw for draw, so
    grid cells reproduce the paper harness metric-for-metric.
    """
    from repro.acc.case_study import ACCCaseStudy
    from repro.acc.case_study import build_case_study as build_acc_case
    from repro.acc.experiments import experiment_vf_range
    from repro.acc.model import ACCParameters
    from repro.traffic.patterns import experiment_pattern

    if spec.scenario_name != "acc":
        raise ValueError(
            f"pattern={spec.pattern!r} selects the ACC front-vehicle "
            f"workload, which requires scenario 'acc' (got "
            f"{spec.scenario_name!r}); non-ACC scenarios draw i.i.d. "
            "disturbances from their W"
        )
    pattern_id = spec.pattern
    if isinstance(spec.scenario, ACCCaseStudy):
        # A pre-built ACC case is evaluated exactly as passed (customised
        # controllers/monitors survive).  Its parameters are fixed, so
        # only pattern-selecting overrides make sense.
        params = spec.scenario.params
        for key, value in overrides:
            if key == "experiment":
                pattern_id = str(value)
                if experiment_vf_range(pattern_id) != params.vf_range:
                    raise ValueError(
                        f"experiment override {pattern_id!r} implies "
                        f"vf_range {experiment_vf_range(pattern_id)}, but "
                        f"the pre-built ACC case was synthesised for "
                        f"{params.vf_range}; pass scenario='acc' to let "
                        "the workload rebuild per point"
                    )
            elif key == "pattern":
                pattern_id = str(value)
            else:
                raise ValueError(
                    f"override {key!r}: a pre-built ACCCaseStudy has fixed "
                    "parameters — only 'pattern'/'experiment' overrides "
                    "apply; pass scenario='acc' for parameter axes"
                )
        case = spec.scenario
    elif not isinstance(spec.scenario, str):
        # The ACC workload is parameterised by ACCParameters (fuel meter,
        # coordinate transforms, pattern dt), which a generic spec or
        # generic CaseStudy does not carry — honouring one here would
        # silently evaluate a rebuilt default instead.
        raise ValueError(
            "the ACC pattern workload rebuilds its case study from "
            "ACCParameters overrides; pass scenario='acc' or a built "
            "ACCCaseStudy (a ScenarioSpec or generic CaseStudy cannot "
            "be honoured)"
        )
    else:
        param_fields = {f.name for f in fields(ACCParameters)}
        params = ACCParameters()
        for key, value in overrides:
            if key == "experiment":
                pattern_id = str(value)
                params = replace(
                    params, vf_range=experiment_vf_range(pattern_id)
                )
            elif key == "pattern":
                pattern_id = str(value)
            elif key == "vf_range":
                params = replace(
                    params, vf_range=(float(value[0]), float(value[1]))
                )
            elif key in param_fields:
                params = replace(params, **{key: value})
            else:
                allowed = ", ".join(
                    sorted(param_fields | {"experiment", "pattern"})
                )
                raise ValueError(
                    f"unknown ACC override {key!r}; valid keys: {allowed}"
                )
        case = build_acc_case(params)

    rng = np.random.default_rng(spec.seed)
    pattern = experiment_pattern(pattern_id, rng, dt=case.params.delta)
    initial_states = case.sample_initial_states(rng, spec.num_cases)
    realisations = [
        case.coords.disturbance_from_vf(pattern.generate(spec.horizon))
        for _ in range(spec.num_cases)
    ]

    safe_set = case.system.safe_set

    def metrics_of(stats) -> tuple:
        return (
            case.fuel_of_run(stats),
            case.raw_energy_of_run(stats),
            stats.skip_rate,
            stats.forced_steps,
            stats.max_violation(safe_set),
            1e3 * stats.mean_controller_time,
            1e3 * stats.mean_monitor_time,
        )

    return _Workload(
        case=case,
        system=case.system,
        controller=case.mpc,
        monitor_factory=lambda: case.make_monitor(strict=True),
        skip_input=case.skip_input,
        initial_states=initial_states,
        realisations=realisations,
        metrics_of=metrics_of,
        metric_names=_ACC_METRICS,
    )


def _materialise(cell: GridCell) -> _Workload:
    spec = cell.experiment
    if spec.pattern is not None:
        return _acc_workload(spec, cell.overrides)
    return _generic_workload(spec, cell.overrides)


def _finalize(
    rows: List[tuple], metric_names: tuple, solver: Optional[dict] = None
) -> ApproachResult:
    columns = list(zip(*rows))
    metrics = {
        name: np.array(columns[i]) for i, name in enumerate(metric_names)
    }
    return ApproachResult(
        metrics=metrics,
        mean_controller_ms=float(np.mean(columns[len(metric_names)])),
        mean_monitor_ms=float(np.mean(columns[len(metric_names) + 1])),
        solver=solver,
    )


def _cell_config(cell: GridCell, execution: ExecutionConfig) -> dict:
    """A cell's reproducibility config — the dict stored on
    :class:`CellResult` and hashed into the result-store address before
    a stored cell may substitute for a re-solve.

    The full override stack (base-spec overrides + axis points) is
    included via ``repr`` so an edited experiment — same label, changed
    override value — mismatches its old stored records and re-solves,
    while every untouched cell of the grid still hits the store.
    """
    spec = cell.experiment
    return {
        "cases": spec.num_cases,
        "horizon": spec.horizon,
        "seed": spec.seed,
        "memory_length": spec.memory_length,
        "engine": execution.engine,
        "exact_solves": execution.exact_solves,
        "lp_backend": execution.lp_backend,
        "collect_timing": execution.collect_timing,
        "kernel": execution.kernel,
        "pattern": spec.pattern,
        "overrides": [[key, repr(value)] for key, value in cell.overrides],
    }


def _evaluate_cell(
    cell: GridCell,
    execution: ExecutionConfig,
    inner_jobs: int,
    require_stateless: bool = False,
    attempt: int = 1,
) -> CellResult:
    """Run one grid cell's full paired comparison."""
    spec = cell.experiment
    chaos.check_cell_delay(cell.key)
    chaos.check_cell_fault(cell.key, attempt)
    workload = _materialise(cell)
    policies = _resolve_policies(
        spec, workload.case, require_stateless=require_stateless
    )

    approaches: Dict[str, Optional[SkippingPolicy]] = {"baseline": None}
    approaches.update(policies)
    logger.debug(
        "cell %s: %d approaches x %d cases (engine=%s)",
        cell.key, len(approaches), spec.num_cases, execution.engine,
    )
    solver_effort: Dict[str, Optional[dict]] = {}
    try:
        collected = paired_evaluation(
            workload.system,
            workload.controller,
            workload.monitor_factory,
            approaches,
            workload.initial_states,
            workload.realisations,
            workload.metrics_of,
            skip_input=workload.skip_input,
            memory_length=spec.memory_length,
            engine=execution.engine,
            jobs=inner_jobs,
            exact_solves=execution.exact_solves,
            lp_backend=execution.lp_backend,
            collect_timing=execution.collect_timing,
            kernel=execution.kernel,
            solver_effort=solver_effort,
        )
    except RMPCInfeasibleError as exc:
        # Carry the grid coordinates: "which cell of a 1000-cell sweep
        # was infeasible" must be answerable from the message alone.
        point = cell.point_label or "-"
        raise RMPCInfeasibleError(
            f"cell {cell.key!r} (scenario={spec.display_label!r}, "
            f"point={point!r}, seed={spec.seed}): {exc}"
        ) from exc
    return CellResult(
        key=cell.key,
        scenario=spec.display_label,
        coords=cell.coords,
        config=_cell_config(cell, execution),
        approaches={
            name: _finalize(
                collected[name], workload.metric_names,
                solver_effort.get(name),
            )
            for name in approaches
        },
    )


def _cell_with_scope(
    cell: GridCell,
    execution: ExecutionConfig,
    inner_jobs: int,
    require_stateless: bool,
    telemetry_on: bool,
    attempt: int = 1,
):
    """Run one cell under its own registry; return ``(result, snapshot)``.

    Both the sharded path (inside the forked worker) and the in-process
    path run cells through this exact scope, and the caller merges the
    returned snapshots in grid order — which is what makes a ``jobs=k``
    sweep's merged telemetry equal the ``jobs=1`` run's exactly.

    A raising cell discards its scoped registry wholesale (the snapshot
    is only taken on success), so a failed or retried attempt leaves no
    partial telemetry behind — the recovered sweep's merged snapshot
    stays equal to an undisturbed run's.
    """
    with _obs.scoped_registry(enabled=telemetry_on) as reg:
        with reg.span("cell", key=cell.key, scenario=cell.experiment.display_label):
            result = _evaluate_cell(
                cell, execution, inner_jobs,
                require_stateless=require_stateless, attempt=attempt,
            )
        snap = reg.snapshot()
    if telemetry_on:
        result.telemetry = snap
    return result, snap


def _guarded_cell(
    cell: GridCell,
    execution: ExecutionConfig,
    inner_jobs: int,
    require_stateless: bool,
    telemetry_on: bool,
):
    """Run one cell under the configured ``on_error`` policy.

    Returns ``(outcome, snapshot, attempts)`` where ``outcome`` is the
    :class:`CellResult` on success or a :class:`CellFailure` once the
    policy gives up (``snapshot`` is then ``None``).  Counter updates
    for retries/failures are the *caller's* job (from ``attempts`` and
    the outcome type) — this function runs inside forked workers, whose
    registries are discarded on failure.

    Retry discipline under ``on_error="retry"``: up to ``cell_retries``
    plain re-attempts; a solver-layer error
    (:data:`_SOLVER_ERRORS`) additionally earns one re-attempt on the
    always-available scipy LP backend — the graceful-degradation chain —
    before anything is recorded.  The scipy attempt also runs under
    ``on_error="record"`` (degrade-then-record), never under ``"fail"``.
    """
    mode = execution.on_error
    budget = 1 + (execution.cell_retries if mode == "retry" else 0)
    execution_now = execution
    degraded = False
    attempt = 0
    while True:
        attempt += 1
        try:
            result, snap = _cell_with_scope(
                cell, execution_now, inner_jobs,
                require_stateless=require_stateless,
                telemetry_on=telemetry_on, attempt=attempt,
            )
            return result, snap, attempt
        except RECOVERABLE_CELL_ERRORS as exc:
            if mode == "fail":
                raise
            if (
                isinstance(exc, _SOLVER_ERRORS)
                and not degraded
                and execution_now.lp_backend != "scipy"
            ):
                logger.warning(
                    "cell %s: %s on lp_backend=%r; degrading to scipy",
                    cell.key, type(exc).__name__, execution_now.lp_backend,
                )
                degraded = True
                execution_now = replace(execution_now, lp_backend="scipy")
                continue
            if mode == "retry" and attempt < budget:
                logger.warning(
                    "cell %s: attempt %d/%d failed (%s); retrying",
                    cell.key, attempt, budget, type(exc).__name__,
                )
                continue
            logger.error(
                "cell %s failed after %d attempt(s): %s: %s",
                cell.key, attempt, type(exc).__name__, exc,
            )
            failure = CellFailure(
                key=cell.key,
                scenario=cell.experiment.display_label,
                coords=cell.coords,
                error_type=type(exc).__name__,
                message=str(exc),
                attempts=attempt,
                stage="cell",
            )
            return failure, None, attempt


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def run_experiment(
    spec: ExperimentSpec,
    execution: Optional[ExecutionConfig] = None,
) -> ExperimentResult:
    """Evaluate one experiment (a single, axis-free grid cell).

    Args:
        spec: The experiment.
        execution: Execution configuration; ``jobs`` feeds the
            ``"parallel"`` engine's per-case fan-out (a single cell has
            nothing to shard).

    Returns:
        The cell's :class:`~repro.experiments.result.CellResult`; when
        telemetry is enabled its snapshot is attached as
        ``result.telemetry`` and merged into the ambient registry.
    """
    if execution is None:
        execution = ExecutionConfig()
    telemetry_on = execution.telemetry or _obs.telemetry_enabled()
    result, snap = _cell_with_scope(
        GridCell(experiment=spec),
        execution,
        inner_jobs=execution.jobs,
        require_stateless=False,
        telemetry_on=telemetry_on,
    )
    _obs.registry().merge_snapshot(snap)
    return result


def run_sweep(
    plan: SweepPlan,
    execution: Optional[ExecutionConfig] = None,
    on_cell: Optional[Callable[[CellResult], None]] = None,
    checkpoint=None,
    on_restored: Optional[Callable[[CellResult], None]] = None,
) -> SweepResult:
    """Execute a sweep plan's full grid, sharding cells over workers.

    Under the (default) ``"cell"`` shard strategy with ``jobs != 1``,
    whole grid cells are fanned out over forked workers — each worker
    runs its cell's entire paired batch with the configured engine
    (lockstep inside is the single-core fast path), so per-cell results
    are identical to a ``jobs=1`` run and only wall-clock fields vary.
    Sharded cells require stateless policies (a stateful instance would
    carry state across cells in-process but start pristine per worker);
    supplying one raises a :class:`ValueError` naming the approach.
    With ``shard="none"`` (or the ``"parallel"`` engine, whose per-case
    fan-out must not nest inside cell workers) cells run sequentially
    in-process.

    Fault tolerance: a worker that dies or hangs past
    ``execution.cell_timeout`` is respawned for its unfinished cells
    (bounded by ``execution.worker_retries``); a cell that raises a
    :data:`RECOVERABLE_CELL_ERRORS` exception is handled per
    ``execution.on_error`` — abort (``"fail"``, the default), record a
    :class:`~repro.experiments.result.CellFailure` on
    ``SweepResult.failures`` (``"record"``), or retry first
    (``"retry"``, with a scipy-backend degradation for solver errors).
    Recovery never perturbs results: a re-run cell is re-forked from the
    parent's unchanged state, failed attempts discard their telemetry
    scope, and the recovery counters (``worker_respawns_total``,
    ``cell_retries_total``, ``sweep_cell_failures_total``) are excluded
    from the deterministic telemetry view — so a recovered sweep equals
    an undisturbed one on every surviving cell.

    Telemetry (``execution.telemetry`` or a globally enabled registry):
    every cell runs under its own scoped registry — inside the forked
    worker when sharded, in-process otherwise — and the per-cell
    snapshots ship back through the result pipe and merge in grid order,
    so a ``jobs=k`` sweep's merged snapshot equals the ``jobs=1`` run's
    exactly.  The merged snapshot is stored as ``result.telemetry``
    (per-cell snapshots as ``cell.telemetry``) and folded into the
    ambient registry.  Telemetry never touches deterministic record
    fields: rows are bitwise-identical with telemetry on or off.

    Args:
        plan: The sweep plan.
        execution: Overrides ``plan.execution`` when given.
        on_cell: Optional progress callback, invoked once per completed
            cell (completion order under sharding, grid order otherwise;
            not invoked for checkpoint-restored or failed cells).
        checkpoint: Optional directory path,
            :class:`~repro.experiments.checkpoint.SweepCheckpoint`, or
            shared :class:`~repro.service.store.ResultStore` for
            resumable execution: each completed cell spills its JSON
            there the moment it finishes, and on restart cells already
            on disk — same stable key, same reproducibility config — are
            loaded instead of re-solved.  An interrupted sweep resumed
            this way re-solves only the missing/failed cells and returns
            the identical :class:`SweepResult`.  The restored-vs-solved
            split is logged, surfaced as ``SweepResult.restored``, and
            counted (``sweep_cells_restored_total`` /
            ``sweep_cells_solved_total`` — excluded from the
            deterministic telemetry view, like every persistence
            counter).
        on_restored: Optional callback, invoked once per
            checkpoint-restored cell (in grid order, before any pending
            cell executes) — the service's job feed uses it to serve
            store-hits immediately.

    Returns:
        A :class:`~repro.experiments.result.SweepResult` with cells in
        grid order regardless of worker scheduling (failed cells under
        ``on_error != "fail"`` are absent from ``cells`` and listed on
        ``failures`` instead).
    """
    if execution is None:
        execution = plan.execution
    telemetry_on = execution.telemetry or _obs.telemetry_enabled()
    cells = plan.cells()

    store: Optional[SweepCheckpoint] = None
    loaded: Dict[str, CellResult] = {}
    if checkpoint is not None:
        store = (
            checkpoint
            if isinstance(checkpoint, SweepCheckpoint)
            else SweepCheckpoint(checkpoint)
        )
        for cell in cells:
            prior = store.load(cell.key, _cell_config(cell, execution))
            if prior is not None:
                loaded[cell.key] = prior
        if loaded:
            logger.info(
                "sweep: restored %d/%d cells from checkpoint %s",
                len(loaded), len(cells), store.directory,
            )
        if on_restored is not None:
            for cell in cells:
                if cell.key in loaded:
                    on_restored(loaded[cell.key])
    pending = [cell for cell in cells if cell.key not in loaded]

    sharded = (
        execution.resolved_shard() == "cell"
        and len(pending) > 1
        and resolve_jobs(execution.jobs) > 1
    )
    logger.info(
        "sweep: %d cells, engine=%s, jobs=%d, sharded=%s, telemetry=%s",
        len(cells), execution.engine, resolve_jobs(execution.jobs),
        sharded, telemetry_on,
    )

    def _stream(outcome) -> None:
        # Per-completion stream (the checkpoint spill + progress hook);
        # fires for fresh CellResults only — failures and restored cells
        # have nothing new worth spilling.
        if not isinstance(outcome, CellResult):
            return
        if store is not None:
            store.store_cell(outcome)
        if on_cell is not None:
            on_cell(outcome)

    def _worker_failure(index: int, reason: str) -> tuple:
        # fork_map gave up on a cell after worker_retries deaths or
        # timeouts: synthesise the supervision-level failure outcome so
        # the rest of the grid still completes.
        cell = pending[index]
        failure = CellFailure(
            key=cell.key,
            scenario=cell.experiment.display_label,
            coords=cell.coords,
            error_type="WorkerFailure",
            message=reason,
            attempts=execution.worker_retries + 1,
            stage="worker",
        )
        return failure, None, 1

    scope = (
        _obs.scoped_registry(enabled=True)
        if telemetry_on
        else nullcontext(_obs.registry())
    )
    with scope as sweep_reg:
        with sweep_reg.span(
            "sweep", cells=len(cells), engine=execution.engine,
            jobs=execution.jobs, sharded=sharded,
        ):
            if sharded:
                triples = fork_map(
                    # require_stateless: the jobs-invariance contract
                    # below only holds when no policy state can leak
                    # across cells.
                    lambda cell: _guarded_cell(
                        cell, execution, inner_jobs=1,
                        require_stateless=True, telemetry_on=telemetry_on,
                    ),
                    pending,
                    jobs=execution.jobs,
                    on_result=lambda index, triple: _stream(triple[0]),
                    timeout=execution.cell_timeout,
                    max_retries=execution.worker_retries,
                    on_item_failure=(
                        None
                        if execution.on_error == "fail"
                        else _worker_failure
                    ),
                )
            else:
                triples = []
                for cell in pending:
                    triple = _guarded_cell(
                        cell, execution, inner_jobs=execution.jobs,
                        require_stateless=False, telemetry_on=telemetry_on,
                    )
                    _stream(triple[0])
                    triples.append(triple)
            # Grid-order assembly inside the open sweep span: cell spans
            # attach under it, and jobs=k accumulation order matches
            # jobs=1 regardless of worker scheduling.  Restored cells
            # contribute their *stored* snapshot, so a resumed sweep's
            # merged telemetry reflects the whole grid, and the recovery
            # counters land in the sweep registry (parent-side — worker
            # registries are per-attempt and discarded on failure).
            outcome_by_key = {
                cell.key: triple for cell, triple in zip(pending, triples)
            }
            results: List[CellResult] = []
            failures: List[CellFailure] = []
            for cell in cells:
                prior = loaded.get(cell.key)
                if prior is not None:
                    results.append(prior)
                    sweep_reg.merge_snapshot(prior.telemetry)
                    continue
                outcome, snap, attempts = outcome_by_key[cell.key]
                if attempts > 1:
                    sweep_reg.inc("cell_retries_total", attempts - 1)
                if isinstance(outcome, CellFailure):
                    failures.append(outcome)
                    sweep_reg.inc(
                        "sweep_cell_failures_total",
                        error=outcome.error_type,
                        stage=outcome.stage,
                    )
                else:
                    results.append(outcome)
                    sweep_reg.merge_snapshot(snap)
            if store is not None:
                # The restored-vs-solved split (persistence metrics,
                # excluded from the deterministic view): how much of
                # this grid the store served vs how much this run
                # actually solved.
                if loaded:
                    sweep_reg.inc(
                        "sweep_cells_restored_total", len(loaded)
                    )
                solved = len(results) - len(loaded)
                if solved:
                    sweep_reg.inc("sweep_cells_solved_total", solved)
        sweep_snapshot = sweep_reg.snapshot() if telemetry_on else None
    if telemetry_on:
        _obs.registry().merge_snapshot(sweep_snapshot)
    if failures:
        logger.warning(
            "sweep: %d/%d cells failed (%s)",
            len(failures), len(cells),
            ", ".join(f.key for f in failures),
        )
    return SweepResult(
        results, telemetry=sweep_snapshot, failures=failures,
        restored=[cell.key for cell in cells if cell.key in loaded],
    )
