"""Energy and computation accounting for intermittent-control runs.

Mirrors the quantities reported in the paper's Sec. IV-A:

* actuation energy Σ‖u(t)‖₁ (Problem 1's objective);
* per-step wall-clock of the safe controller vs. the monitor + Ω path;
* the skip rate and the resulting computation-saving formula

      saving = (T_κ·S − (T_mon·S + T_κ·(S − S_skip))) / (T_κ·S)

  with ``S`` total steps, ``S_skip`` skipped steps, ``T_κ`` the mean safe
  controller time and ``T_mon`` the mean monitor+Ω time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RunStats", "computation_saving"]


def computation_saving(
    controller_time: float,
    monitor_time: float,
    total_steps: int,
    skipped_steps: int,
) -> float:
    """The paper's computation-saving ratio (Sec. IV-A).

    Every step pays the monitor + Ω cost; only non-skipped steps pay the
    controller cost.  Baseline pays the controller cost every step.

    Returns:
        Fractional saving in ``[−∞, 1)``; negative values mean the
        monitoring overhead exceeded what skipping saved.
    """
    if total_steps <= 0:
        raise ValueError("total_steps must be positive")
    baseline = controller_time * total_steps
    ours = monitor_time * total_steps + controller_time * (
        total_steps - skipped_steps
    )
    return (baseline - ours) / baseline


@dataclass
class RunStats:
    """Aggregated statistics of one intermittent-control run.

    Attributes:
        states: Visited states ``(T+1, n)``.
        inputs: Applied inputs ``(T, m)`` (zero rows where skipped).
        decisions: Skip choices ``z(t)`` (1 = ran κ, 0 = skipped).
        forced: Mask of steps where the monitor forced ``z = 1``.
        controller_seconds: Wall-clock spent inside κ per step (0 when
            skipped).
        monitor_seconds: Wall-clock of monitor + Ω per step.
        disturbances: Realised disturbances ``(T, n)``.
    """

    states: np.ndarray
    inputs: np.ndarray
    decisions: np.ndarray
    forced: np.ndarray
    controller_seconds: np.ndarray
    monitor_seconds: np.ndarray
    disturbances: np.ndarray

    @property
    def steps(self) -> int:
        """Number of control steps T."""
        return int(self.inputs.shape[0])

    @property
    def energy(self) -> float:
        """Actuation energy Σ‖u‖₁ (the paper's Problem-1 objective)."""
        return float(np.abs(self.inputs).sum())

    @property
    def skipped_steps(self) -> int:
        """Steps where the controller computation was skipped."""
        return int(np.sum(self.decisions == 0))

    @property
    def skip_rate(self) -> float:
        """Fraction of steps skipped."""
        return self.skipped_steps / max(self.steps, 1)

    @property
    def forced_steps(self) -> int:
        """Steps where the monitor forced z = 1 (x ∈ XI − X')."""
        return int(np.sum(self.forced))

    @property
    def mean_controller_time(self) -> float:
        """Mean κ wall-clock over the steps where it actually ran."""
        ran = self.decisions == 1
        if not np.any(ran):
            return 0.0
        return float(self.controller_seconds[ran].mean())

    @property
    def mean_monitor_time(self) -> float:
        """Mean monitor + Ω wall-clock per step."""
        return float(self.monitor_seconds.mean())

    def max_violation(self, safe_set) -> float:
        """Largest ``safe_set`` violation over all visited states.

        One :meth:`~repro.geometry.HPolytope.violation_batch` broadcast over
        the ``(T+1, n)`` trajectory; <= 0 means the run never left the set.
        """
        return float(np.max(safe_set.violation_batch(self.states)))

    def computation_saving(self) -> float:
        """Sec. IV-A saving ratio for this run (see module docstring)."""
        t_controller = self.mean_controller_time
        if t_controller == 0.0:
            return 0.0
        return computation_saving(
            t_controller, self.mean_monitor_time, self.steps, self.skipped_steps
        )

    def summary(self) -> dict:
        """Plain-dict summary for tables and logs."""
        return {
            "steps": self.steps,
            "energy_l1": self.energy,
            "skipped": self.skipped_steps,
            "skip_rate": self.skip_rate,
            "forced": self.forced_steps,
            "mean_controller_ms": 1e3 * self.mean_controller_time,
            "mean_monitor_ms": 1e3 * self.mean_monitor_time,
            "computation_saving": self.computation_saving(),
        }
