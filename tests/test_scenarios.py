"""Tests for the scenario zoo: spec validation, builder synthesis,
registry behaviour, cache hygiene and the cross-scenario sweep."""

from __future__ import annotations

import numpy as np
import pytest

from repro import scenarios
from repro.geometry import HPolytope
from repro.scenarios import (
    CaseStudy,
    ScenarioSpec,
    ScenarioSynthesisError,
    build_case_study,
    clear_case_study_cache,
)
from repro.scenarios.builder import _CACHE as _BUILDER_CACHE
from repro.skipping import AlwaysSkipPolicy

#: Cheap 1-D spec used wherever synthesis cost matters.
def thermal_like_spec(**overrides) -> ScenarioSpec:
    config = dict(
        name="test_thermal",
        A=[[0.9]],
        B=[[0.05]],
        safe_set=HPolytope.from_box([-2.0], [2.0]),
        input_set=HPolytope.from_box([-15.0], [15.0]),
        disturbance_set=HPolytope.from_box([-0.1], [0.1]),
        controller="rmpc",
        horizon=5,
    )
    config.update(overrides)
    return ScenarioSpec(**config)


class TestScenarioSpec:
    def test_rejects_unknown_controller(self):
        with pytest.raises(ValueError, match="controller"):
            thermal_like_spec(controller="pid")

    def test_rejects_continuous_without_dt(self):
        with pytest.raises(ValueError, match="dt"):
            thermal_like_spec(continuous=True)

    def test_rejects_wrong_skip_input_dimension(self):
        with pytest.raises(ValueError, match="skip_input"):
            thermal_like_spec(skip_input=[0.0, 0.0])

    def test_rejects_wrong_set_dimensions(self):
        with pytest.raises(ValueError, match="safe_set"):
            thermal_like_spec(safe_set=HPolytope.from_box([-1, -1], [1, 1]))
        with pytest.raises(ValueError, match="disturbance_set"):
            thermal_like_spec(
                disturbance_set=HPolytope.from_box([-1, -1], [1, 1])
            )

    def test_rejects_wrong_gain_shape(self):
        with pytest.raises(ValueError, match="gain"):
            thermal_like_spec(controller="linear", gain=[[1.0, 2.0]])

    def test_discrete_matrices_euler(self):
        spec = thermal_like_spec(
            A=[[-0.1]], B=[[0.05]], continuous=True, dt=1.0
        )
        A_d, B_d = spec.discrete_matrices()
        assert np.allclose(A_d, [[0.9]])
        assert np.allclose(B_d, [[0.05]])

    def test_discrete_matrices_zoh_matches_expm(self):
        spec = thermal_like_spec(
            A=[[-0.1]], B=[[0.05]], continuous=True, dt=1.0,
            discretization="zoh",
        )
        A_d, B_d = spec.discrete_matrices()
        assert np.allclose(A_d, [[np.exp(-0.1)]])
        # B_d = (∫ e^{As} ds) B = (1 - e^{-0.1})/0.1 * 0.05
        assert np.allclose(B_d, [[(1 - np.exp(-0.1)) / 0.1 * 0.05]])

    def test_cache_key_ignores_labels(self):
        a = thermal_like_spec()
        b = thermal_like_spec(name="other", description="different words")
        assert a.cache_key == b.cache_key

    def test_cache_key_sensitive_to_every_numeric_ingredient(self):
        base = thermal_like_spec()
        variants = [
            thermal_like_spec(A=[[0.91]]),
            thermal_like_spec(horizon=6),
            thermal_like_spec(input_weight=2.0),
            thermal_like_spec(disturbance_set=HPolytope.from_box([-0.05], [0.05])),
            thermal_like_spec(skip_input=[1.0]),
        ]
        keys = {base.cache_key} | {v.cache_key for v in variants}
        assert len(keys) == len(variants) + 1

    def test_equality_and_hash_follow_cache_key(self):
        a = thermal_like_spec()
        b = thermal_like_spec(name="other")   # labels excluded from key
        c = thermal_like_spec(horizon=6)
        assert a == b and a is not b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a spec"
        assert len({a, b, c}) == 2  # usable as dict/set keys

    def test_with_name_keeps_cache_key(self):
        spec = thermal_like_spec()
        renamed = spec.with_name("renamed", "new words")
        assert renamed.name == "renamed"
        assert renamed.description == "new words"
        assert renamed.cache_key == spec.cache_key

    def test_with_overrides_relabels_and_rekeys(self):
        # The parameter-axis primitive: one changed override => a new
        # name (distinct listings/rows) AND a new cache key (distinct
        # builder-cache entry) — extending the skip-input no-collision
        # guarantee to arbitrary axis points.
        base = thermal_like_spec()
        a = base.with_overrides(horizon=6)
        b = base.with_overrides(horizon=7)
        assert a.name == "test_thermal@horizon=6"
        assert b.name == "test_thermal@horizon=7"
        assert len({base.cache_key, a.cache_key, b.cache_key}) == 3
        # A pure relabel (no overrides) keeps sharing the synthesis.
        assert base.with_overrides(label="alias").cache_key == base.cache_key

    def test_with_overrides_rejects_label_fields(self):
        with pytest.raises(ValueError, match="overridable"):
            thermal_like_spec().with_overrides(description="nope")

    def test_fractional_horizon_rejected_integral_coerced(self):
        # int(horizon) feeds both the RMPC and the cache key, so a
        # fractional axis point would silently alias its floor's
        # synthesis; integral floats are fine and normalised to int.
        with pytest.raises(ValueError, match="horizon must be an integer"):
            thermal_like_spec(horizon=5.5)
        spec = thermal_like_spec(horizon=5.0)
        assert spec.horizon == 5 and isinstance(spec.horizon, int)
        assert spec.cache_key == thermal_like_spec(horizon=5).cache_key

    def test_with_overrides_rejects_empty_label_with_overrides(self):
        # An empty label would alias two different syntheses under one
        # name; the rename invariant forbids it.
        with pytest.raises(ValueError, match="non-empty label"):
            thermal_like_spec().with_overrides(label="", horizon=6)


class TestBuilder:
    def test_builds_certified_nested_sets(self):
        case = build_case_study(thermal_like_spec(), use_cache=False)
        assert isinstance(case, CaseStudy)
        # X' ⊆ XI ⊆ X (Definition 3 nesting, monitor precondition).
        assert case.invariant_set.contains_polytope(case.strengthened_set)
        assert case.system.safe_set.contains_polytope(
            case.invariant_set, tol=1e-6
        )
        assert not case.strengthened_set.is_empty()

    def test_linear_controller_synthesis(self):
        spec = thermal_like_spec(controller="linear")
        case = build_case_study(spec, use_cache=False)
        assert case.invariant_set.contains_polytope(case.strengthened_set)
        # The auto-LQR gain respects input limits inside XI by construction.
        K = case.controller.K
        for vertex in case.invariant_set.vertices():
            assert case.system.input_set.contains(K @ vertex, tol=1e-6)

    def test_monitor_and_sampler(self, rng):
        case = build_case_study(thermal_like_spec(), use_cache=False)
        states = case.sample_initial_states(rng, 8)
        assert states.shape == (8, 1)
        monitor = case.make_monitor()
        for state in states:
            assert monitor.may_skip(state)

    def test_disturbance_factory_seeded_and_inside_w(self):
        case = build_case_study(thermal_like_spec(), use_cache=False)
        factory = case.disturbance_factory(horizon=7)
        a = factory(0, np.random.default_rng(3))
        b = factory(0, np.random.default_rng(3))
        assert np.array_equal(a, b)
        assert a.shape == (7, 1)
        assert case.system.disturbance_set.contains_points(a).all()

    def test_energy_counts_only_controller_steps(self):
        case = build_case_study(
            thermal_like_spec(skip_input=[2.0]), use_cache=False
        )
        from repro.framework.accounting import RunStats

        stats = RunStats(
            states=np.zeros((3, 1)),
            inputs=np.array([[2.0], [5.0]]),
            decisions=np.array([0, 1]),
            forced=np.array([False, False]),
            controller_seconds=np.zeros(2),
            monitor_seconds=np.zeros(2),
            disturbances=np.zeros((2, 1)),
        )
        # The skip step's |2.0| is free; only the controller step counts.
        assert case.energy_of_run(stats) == 5.0

    def test_empty_invariant_set_raises_named_error(self):
        # Unstable 1-D plant whose disturbance exceeds the input authority:
        # no robust control invariant subset of X can exist.
        spec = thermal_like_spec(
            name="doomed",
            A=[[2.0]],
            B=[[1.0]],
            input_set=HPolytope.from_box([-0.5], [0.5]),
            disturbance_set=HPolytope.from_box([-2.0], [2.0]),
        )
        with pytest.raises(ScenarioSynthesisError, match="doomed"):
            build_case_study(spec, use_cache=False)

    def test_skip_input_emptying_strengthened_set_raises(self):
        # A skip input far outside any sensible regime throws every state
        # out of XI in one step: X' must come back empty => clear error.
        spec = thermal_like_spec(name="bad_skip", skip_input=[200.0])
        with pytest.raises(
            ScenarioSynthesisError, match="bad_skip.*strengthened"
        ):
            build_case_study(spec, use_cache=False)


class TestBuilderCache:
    def setup_method(self):
        clear_case_study_cache()

    def teardown_method(self):
        clear_case_study_cache()

    def test_cache_returns_same_object(self):
        spec = thermal_like_spec()
        assert build_case_study(spec) is build_case_study(spec)

    def test_specs_differing_only_in_skip_input_do_not_collide(self):
        base = thermal_like_spec()
        # B u_skip = 1.0: drifts upward hard enough that B(XI, u_skip)
        # visibly truncates X' (but does not empty it).
        coasting = thermal_like_spec(skip_input=[20.0])
        case_a = build_case_study(base)
        case_b = build_case_study(coasting)
        assert case_a is not case_b
        # Different skip inputs => different strengthened sets; a cache
        # collision would hand back the wrong X'.
        assert not case_a.strengthened_set.equals(
            case_b.strengthened_set, tol=1e-9
        )

    def test_clear_cache_forces_rebuild(self):
        spec = thermal_like_spec()
        first = build_case_study(spec)
        clear_case_study_cache()
        assert build_case_study(spec) is not first

    def test_relabel_shares_synthesis(self):
        spec = thermal_like_spec()
        original = build_case_study(spec)
        relabelled = build_case_study(spec.with_name("alias"))
        assert relabelled.spec.name == "alias"
        assert relabelled.invariant_set is original.invariant_set
        assert relabelled.strengthened_set is original.strengthened_set

    def test_use_cache_false_bypasses(self):
        spec = thermal_like_spec()
        build_case_study(spec, use_cache=False)
        assert spec.cache_key not in _BUILDER_CACHE


class TestRegistry:
    def test_zoo_has_at_least_five_scenarios(self):
        names = scenarios.list_scenarios()
        assert len(names) >= 5
        assert {"acc", "thermal", "pendulum", "dc_motor", "lane_keeping"} <= set(
            names
        )

    def test_specs_span_state_dimensions_one_to_four(self):
        dims = {scenarios.get(name).n for name in scenarios.list_scenarios()}
        assert {1, 2, 3, 4} <= dims

    def test_both_controller_recipes_are_represented(self):
        kinds = {
            scenarios.get(name).controller
            for name in scenarios.list_scenarios()
        }
        assert kinds == {"rmpc", "linear"}

    def test_get_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="acc"):
            scenarios.get("nope")

    def test_duplicate_registration_rejected(self):
        scenarios.register("dup_test", thermal_like_spec)
        try:
            with pytest.raises(ValueError, match="already registered"):
                scenarios.register("dup_test", thermal_like_spec)
            scenarios.register("dup_test", thermal_like_spec, overwrite=True)
        finally:
            scenarios.unregister("dup_test")
        assert "dup_test" not in scenarios.list_scenarios()

    def test_factory_name_mismatch_rejected(self):
        scenarios.register("mismatch", thermal_like_spec)
        try:
            with pytest.raises(ValueError, match="mismatch"):
                scenarios.get("mismatch")
        finally:
            scenarios.unregister("mismatch")

    def test_acc_scenario_matches_acc_case_study(self, acc_case):
        case = scenarios.build("acc")
        assert case.invariant_set.equals(acc_case.invariant_set)
        assert case.strengthened_set.equals(acc_case.strengthened_set)
        assert np.array_equal(case.skip_input, acc_case.skip_input)


@pytest.fixture(scope="module")
def thermal_case():
    return build_case_study(thermal_like_spec(name="test_thermal"))


@pytest.fixture(scope="module")
def pendulum_case():
    return scenarios.build("pendulum")


class TestScenarioExecution:
    def test_lockstep_matches_serial_records(self, pendulum_case):
        from repro.framework import BatchRunner

        case = pendulum_case
        rng = np.random.default_rng(0)
        states = case.sample_initial_states(rng, 5)
        factory = case.disturbance_factory(15)

        def run(engine):
            return BatchRunner(
                case.system,
                case.controller,
                monitor_factory=case.make_monitor,
                policy_factory=AlwaysSkipPolicy,
                skip_input=case.skip_input,
                engine=engine,
            ).run_seeded(states, factory, root_seed=0)

        serial = run("serial")
        lockstep = run("lockstep")
        assert (
            serial.deterministic_records() == lockstep.deterministic_records()
        )
        assert max(r.max_violation for r in serial.records) <= 0.0

    def test_evaluate_scenario_engines_agree(self, thermal_case):
        results = {
            engine: scenarios.evaluate_scenario(
                thermal_case, num_cases=4, horizon=12, seed=3, engine=engine
            )
            for engine in ("serial", "lockstep")
        }
        a, b = results["serial"], results["lockstep"]
        assert np.array_equal(a.baseline.energy, b.baseline.energy)
        for name in a.approaches:
            assert np.array_equal(
                a.approaches[name].energy, b.approaches[name].energy
            )
            assert np.array_equal(
                a.approaches[name].forced_steps, b.approaches[name].forced_steps
            )

    def test_evaluate_scenario_paired_and_safe(self, thermal_case):
        result = scenarios.evaluate_scenario(
            thermal_case, num_cases=5, horizon=10, seed=2
        )
        assert result.scenario == "test_thermal"
        assert result.baseline.energy.shape == (5,)
        for name, stats in result.approaches.items():
            assert stats.energy.shape == (5,)
            assert result.energy_saving(name).shape == (5,)
        assert result.always_safe
        # Bang-bang skips whenever allowed => never more energy than the
        # run-every-step baseline on the same realisations.
        assert (result.energy_saving("bang_bang") >= -1e-12).all()

    def test_evaluate_scenario_rejects_baseline_name(self, thermal_case):
        with pytest.raises(ValueError, match="baseline"):
            scenarios.evaluate_scenario(
                thermal_case, policies={"baseline": AlwaysSkipPolicy()}
            )

    def test_stats_unknown_approach(self, thermal_case):
        result = scenarios.evaluate_scenario(
            thermal_case, num_cases=2, horizon=5
        )
        with pytest.raises(ValueError, match="unknown approach"):
            result.stats("nope")

    def test_sweep_subset(self, thermal_case):
        scenarios.register("test_thermal", lambda: thermal_like_spec())
        try:
            results = scenarios.sweep_scenarios(
                ["test_thermal"], num_cases=3, horizon=8, seed=1
            )
        finally:
            scenarios.unregister("test_thermal")
        assert [r.scenario for r in results] == ["test_thermal"]
        assert results[0].always_safe
