"""Tests for the declarative experiment API (`repro.experiments`):
spec/axis/plan validation, grid expansion, cache-correct axis points,
sharded execution determinism, result round-trips, and the ACC Table-I
acceptance criterion (a single sweep reproduces the legacy harness
metric-for-metric)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExecutionConfig,
    ExperimentSpec,
    ParameterAxis,
    SweepPlan,
    SweepResult,
    run_experiment,
    run_sweep,
)
from repro.geometry import HPolytope
from repro.scenarios import ScenarioSpec, build_case_study
from repro.scenarios.builder import _CACHE as _BUILDER_CACHE
from repro.skipping import AlwaysSkipPolicy


def cheap_spec(name="exp_thermal", **overrides) -> ScenarioSpec:
    """Cheap 1-D RMPC scenario (synthesis well under a second)."""
    config = dict(
        name=name,
        A=[[0.9]],
        B=[[0.05]],
        safe_set=HPolytope.from_box([-2.0], [2.0]),
        input_set=HPolytope.from_box([-15.0], [15.0]),
        disturbance_set=HPolytope.from_box([-0.1], [0.1]),
        controller="rmpc",
        horizon=5,
    )
    config.update(overrides)
    return ScenarioSpec(**config)


# ----------------------------------------------------------------------
# Declarative layer
# ----------------------------------------------------------------------
class TestParameterAxis:
    def test_points_and_labels(self):
        axis = ParameterAxis("horizon", (5, 8))
        points = axis.points()
        assert [(p.axis, p.key, p.label, p.value) for p in points] == [
            ("horizon", "horizon", "5", 5),
            ("horizon", "horizon", "8", 8),
        ]

    def test_field_defaults_to_name_but_can_differ(self):
        axis = ParameterAxis("w", (0.1,), field="input_weight")
        assert axis.points()[0].key == "input_weight"

    def test_tuple_values_get_terse_labels(self):
        axis = ParameterAxis("vf_range", ((30.0, 50.0), (38.0, 42.0)))
        assert [p.label for p in axis.points()] == ["30-50", "38-42"]

    def test_explicit_labels_must_match_length(self):
        with pytest.raises(ValueError, match="labels"):
            ParameterAxis("a", (1, 2), labels=("only-one",))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one value"):
            ParameterAxis("a", ())

    def test_linspace(self):
        axis = ParameterAxis.linspace("state_weight", 1.0, 2.0, 3)
        assert axis.values == (1.0, 1.5, 2.0)
        assert len(axis) == 3


class TestExperimentSpec:
    def test_defaults(self):
        spec = ExperimentSpec(scenario="thermal")
        # approaches defaults to None = derive at run time (built-in
        # bang_bang/periodic2 when no policies are supplied).
        assert spec.approaches is None
        assert spec.scenario_name == "thermal"
        assert spec.display_label == "thermal"

    def test_bare_policies_mapping_needs_no_approaches(self):
        spec = ExperimentSpec(
            scenario="thermal", policies={"custom": AlwaysSkipPolicy()}
        )
        assert spec.approaches is None  # names derived from the mapping

    def test_inline_scenario_spec(self):
        spec = ExperimentSpec(scenario=cheap_spec())
        assert spec.scenario_name == "exp_thermal"

    def test_rejects_baseline_approach(self):
        with pytest.raises(ValueError, match="baseline"):
            ExperimentSpec(scenario="thermal", approaches=("baseline",))

    def test_rejects_baseline_policy(self):
        with pytest.raises(ValueError, match="baseline"):
            ExperimentSpec(
                scenario="thermal",
                approaches=None,
                policies={"baseline": AlwaysSkipPolicy()},
            )

    def test_rejects_stray_policies(self):
        with pytest.raises(ValueError, match="not named in approaches"):
            ExperimentSpec(
                scenario="thermal",
                approaches=("bang_bang",),
                policies={"custom": AlwaysSkipPolicy()},
            )

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError, match="num_cases"):
            ExperimentSpec(scenario="thermal", num_cases=0)
        with pytest.raises(ValueError, match="horizon"):
            ExperimentSpec(scenario="thermal", horizon=0)

    def test_overrides_accept_mapping(self):
        spec = ExperimentSpec(scenario="thermal", overrides={"horizon": 7})
        assert spec.overrides == (("horizon", 7),)


class TestExecutionConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="engine"):
            ExecutionConfig(engine="warp")
        with pytest.raises(ValueError, match="jobs"):
            ExecutionConfig(jobs=-1)
        with pytest.raises(ValueError, match="shard"):
            ExecutionConfig(shard="episode")
        with pytest.raises(ValueError, match="lp_backend"):
            ExecutionConfig(lp_backend="cplex")

    def test_lp_backend_values(self):
        # None (default) means "leave each controller's setting alone".
        assert ExecutionConfig().lp_backend is None
        for name in ("auto", "highs", "scipy"):
            assert ExecutionConfig(lp_backend=name).lp_backend == name

    def test_cell_shard_rejects_parallel_engine(self):
        with pytest.raises(ValueError, match="nest"):
            ExecutionConfig(engine="parallel", shard="cell")

    def test_auto_shard_resolution(self):
        assert ExecutionConfig(engine="lockstep").resolved_shard() == "cell"
        assert ExecutionConfig(engine="serial").resolved_shard() == "cell"
        assert ExecutionConfig(engine="parallel").resolved_shard() == "none"
        assert ExecutionConfig(shard="none").resolved_shard() == "none"


class TestSweepPlan:
    def test_grid_expansion_and_keys(self):
        plan = SweepPlan(
            experiments=["thermal", "pendulum"],
            axes=[ParameterAxis("horizon", (5, 8))],
        )
        cells = plan.cells()
        assert plan.grid_shape == (2, 2)
        assert [cell.key for cell in cells] == [
            "thermal@horizon=5",
            "thermal@horizon=8",
            "pendulum@horizon=5",
            "pendulum@horizon=8",
        ]
        assert cells[1].overrides == (("horizon", 8),)

    def test_multi_axis_cartesian_product(self):
        plan = SweepPlan(
            experiments=["thermal"],
            axes=[
                ParameterAxis("horizon", (5, 8)),
                ParameterAxis("state_weight", (1.0, 2.0)),
            ],
        )
        assert plan.grid_shape == (1, 2, 2)
        assert [cell.key for cell in plan.cells()] == [
            "thermal@horizon=5,state_weight=1",
            "thermal@horizon=5,state_weight=2",
            "thermal@horizon=8,state_weight=1",
            "thermal@horizon=8,state_weight=2",
        ]

    def test_single_spec_and_name_normalisation(self):
        assert SweepPlan(experiments="thermal").cells()[0].key == "thermal"
        spec = ExperimentSpec(scenario="thermal")
        assert SweepPlan(experiments=spec).experiments == (spec,)

    def test_rejects_duplicate_keys(self):
        with pytest.raises(ValueError, match="duplicate row keys"):
            SweepPlan(experiments=["thermal", "thermal"])

    def test_labels_disambiguate(self):
        plan = SweepPlan(
            experiments=[
                ExperimentSpec(scenario="thermal", seed=1, label="a"),
                ExperimentSpec(scenario="thermal", seed=2, label="b"),
            ]
        )
        assert [cell.key for cell in plan.cells()] == ["a", "b"]

    def test_rejects_duplicate_axis_names(self):
        with pytest.raises(ValueError, match="duplicate axis"):
            SweepPlan(
                experiments=["thermal"],
                axes=[ParameterAxis("h", (1,)), ParameterAxis("h", (2,))],
            )

    def test_rejects_empty_experiments(self):
        with pytest.raises(ValueError, match="at least one experiment"):
            SweepPlan(experiments=[])


# ----------------------------------------------------------------------
# Axis cache-key safety (satellite): every grid point is cache-correct
# ----------------------------------------------------------------------
class TestAxisCacheSafety:
    def test_axis_points_get_distinct_cache_keys(self):
        base = cheap_spec()
        points = [
            base.with_overrides(**{point.key: point.value})
            for point in ParameterAxis("horizon", (5, 8)).points()
        ]
        keys = {spec.cache_key for spec in points}
        assert len(keys) == 2
        assert base.cache_key in keys  # horizon=5 equals the base numerics

    def test_one_override_one_builder_cache_entry(self):
        # Distinctive numerics: cache keys ignore names, so the probe
        # must not collide with entries other test files may have built.
        base = cheap_spec(name="cache_probe", A=[[0.77]])
        variant = base.with_overrides(input_weight=2.5)
        assert variant.cache_key != base.cache_key
        assert variant.name == "cache_probe@input_weight=2.5"
        before = set(_BUILDER_CACHE)
        case_a = build_case_study(base)
        case_b = build_case_study(variant)
        try:
            new = set(_BUILDER_CACHE) - before
            assert {base.cache_key, variant.cache_key} <= new
            assert case_a.invariant_set is not case_b.invariant_set
        finally:
            _BUILDER_CACHE.pop(base.cache_key, None)
            _BUILDER_CACHE.pop(variant.cache_key, None)

    def test_with_overrides_rejects_labels_and_unknown_fields(self):
        base = cheap_spec()
        with pytest.raises(ValueError, match="overridable"):
            base.with_overrides(name="other")
        with pytest.raises(ValueError, match="overridable"):
            base.with_overrides(vf_range=(30, 50))


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
class TestRunExperiment:
    @pytest.fixture(scope="class")
    def cell(self):
        return run_experiment(
            ExperimentSpec(scenario=cheap_spec(), num_cases=4, horizon=10, seed=3)
        )

    def test_shape_and_names(self, cell):
        assert cell.key == "exp_thermal"
        assert list(cell.approaches) == ["baseline", "bang_bang", "periodic2"]
        for stats in cell.approaches.values():
            assert stats.metrics["energy"].shape == (4,)

    def test_paired_and_safe(self, cell):
        assert cell.always_safe
        # Bang-bang skips whenever allowed: never more energy than the
        # κ-every-step baseline on the same realisations.
        assert (cell.energy_saving("bang_bang") >= -1e-12).all()

    def test_unknown_approach_lookup(self, cell):
        with pytest.raises(ValueError, match="unknown approach"):
            cell.stats("nope")

    def test_fuel_requires_acc_workload(self, cell):
        with pytest.raises(ValueError, match="fuel"):
            cell.fuel_saving("bang_bang")

    def test_unknown_approach_name_rejected(self):
        with pytest.raises(ValueError, match="unknown approach 'warp'"):
            run_experiment(
                ExperimentSpec(
                    scenario=cheap_spec(), approaches=("warp",), num_cases=1
                )
            )

    def test_periodic_parametric_builtin(self):
        cell = run_experiment(
            ExperimentSpec(
                scenario=cheap_spec(),
                approaches=("periodic3",),
                num_cases=2,
                horizon=9,
            )
        )
        # Period-3 pattern runs κ every third step => skip rate 2/3
        # unless the monitor forces extra runs.
        assert (cell.approaches["periodic3"].metrics["skip_rate"] <= 2 / 3 + 1e-12).all()

    def test_policies_factory_callable(self):
        def factory(case):
            return {"custom": AlwaysSkipPolicy()}

        cell = run_experiment(
            ExperimentSpec(
                scenario=cheap_spec(),
                approaches=None,
                policies=factory,
                num_cases=2,
                horizon=6,
            )
        )
        assert list(cell.approaches) == ["baseline", "custom"]

    def test_pattern_requires_acc(self):
        with pytest.raises(ValueError, match="requires scenario 'acc'"):
            run_experiment(
                ExperimentSpec(
                    scenario=cheap_spec(), pattern="overall", num_cases=1
                )
            )

    def test_pattern_rejects_inline_spec_and_generic_case(self):
        # The ACC workload rebuilds from ACCParameters overrides; an
        # acc-named generic spec or generic case would be silently
        # discarded, so both are refused outright.
        with pytest.raises(ValueError, match="scenario='acc'"):
            run_experiment(
                ExperimentSpec(
                    scenario=cheap_spec(name="acc"),
                    pattern="overall",
                    num_cases=1,
                )
            )
        acc_like_case = build_case_study(cheap_spec(name="acc"))
        with pytest.raises(ValueError, match="scenario='acc'"):
            run_experiment(
                ExperimentSpec(
                    scenario=acc_like_case, pattern="overall", num_cases=1
                )
            )

    def test_prebuilt_acc_case_evaluated_as_passed(self, acc_case):
        # The ACC shim contract: a pre-built ACCCaseStudy is honoured
        # exactly (here: a customised controller must be the one that
        # actually runs, visible through its solve counter).
        import dataclasses

        from repro.controllers.rmpc import RobustMPC

        # Same horizon (so the feasible region still covers X'), custom
        # weights: the private instance's solve counter proves identity.
        custom = RobustMPC(acc_case.system, horizon=10, input_weight=5.0)
        customised = dataclasses.replace(acc_case, mpc=custom)
        before = custom.solve_count
        cell = run_experiment(
            ExperimentSpec(
                scenario=customised,
                pattern="overall",
                approaches=("bang_bang",),
                num_cases=2,
                horizon=5,
            )
        )
        assert custom.solve_count > before
        assert cell.approaches["baseline"].metrics["fuel"].shape == (2,)

    def test_prebuilt_acc_case_rejects_parameter_overrides(self, acc_case):
        with pytest.raises(ValueError, match="fixed"):
            run_experiment(
                ExperimentSpec(
                    scenario=acc_case,
                    pattern="overall",
                    overrides={"vf_range": (35.0, 45.0)},
                    num_cases=1,
                )
            )
        # An ACC case without a pattern has no generic workload either.
        with pytest.raises(ValueError, match="pattern"):
            run_experiment(ExperimentSpec(scenario=acc_case, num_cases=1))

    def test_prebuilt_case_evaluated_as_passed(self):
        # A customised case (here: an idle controller swapped in after
        # the build) must be evaluated exactly as given, not re-derived
        # from its spec.
        import dataclasses

        from repro.controllers.linear import LinearFeedback

        pristine = build_case_study(cheap_spec())
        aggressive = dataclasses.replace(
            pristine, controller=LinearFeedback(np.array([[-20.0]]))
        )
        cell_pristine = run_experiment(
            ExperimentSpec(scenario=pristine, num_cases=3, horizon=8, seed=1)
        )
        cell_aggressive = run_experiment(
            ExperimentSpec(scenario=aggressive, num_cases=3, horizon=8, seed=1)
        )
        # u = -20x spends strictly positive energy from any nonzero x0;
        # the paper's Σ|u|-minimising κ_R does not follow that trace.
        energies = cell_aggressive.approaches["baseline"].metrics["energy"]
        assert (energies > 0.0).all()
        assert not np.array_equal(
            energies, cell_pristine.approaches["baseline"].metrics["energy"]
        )

    def test_prebuilt_case_rejects_overrides(self):
        case = build_case_study(cheap_spec())
        with pytest.raises(ValueError, match="CaseStudy"):
            run_sweep(
                SweepPlan(
                    experiments=[ExperimentSpec(scenario=case, num_cases=1)],
                    axes=[ParameterAxis("horizon", (4, 6))],
                )
            )

    def test_policies_must_be_skipping_policies(self):
        with pytest.raises(ValueError, match="SkippingPolicy"):
            run_experiment(
                ExperimentSpec(
                    scenario=cheap_spec(),
                    approaches=("x",),
                    policies={"x": "bang_bang"},
                    num_cases=1,
                )
            )


class TestSweepExecution:
    @pytest.fixture(scope="class")
    def grid(self):
        """2 scenarios x 2 axis points on cheap 1-D RMPC plants."""
        return SweepPlan(
            experiments=[
                ExperimentSpec(scenario=cheap_spec("grid_a"), num_cases=3,
                               horizon=8, seed=5),
                ExperimentSpec(scenario=cheap_spec("grid_b", A=[[0.8]]),
                               num_cases=3, horizon=8, seed=5),
            ],
            axes=[ParameterAxis("input_weight", (1.0, 2.0))],
        )

    @pytest.fixture(scope="class")
    def reference(self, grid):
        return run_sweep(grid, ExecutionConfig(engine="lockstep", jobs=1))

    def test_grid_runs_and_is_safe(self, grid, reference):
        assert len(reference) == 4
        assert reference.always_safe
        assert reference.row_keys()[0] == "grid_a@input_weight=1/baseline"

    def test_sharded_jobs2_matches_jobs1(self, grid, reference):
        sharded = run_sweep(grid, ExecutionConfig(engine="lockstep", jobs=2))
        assert sharded.deterministic_rows() == reference.deterministic_rows()

    def test_exact_solves_matches_serial_record_for_record(self, grid, reference):
        serial = run_sweep(grid, ExecutionConfig(engine="serial", jobs=1))
        audit = run_sweep(
            grid,
            ExecutionConfig(engine="lockstep", jobs=2, exact_solves=True),
        )
        assert audit.deterministic_rows() == serial.deterministic_rows()
        # And the plan-equivalent default tier attains the same metrics
        # within the contract tolerance on this (non-degenerate) grid.
        for lhs, rhs in zip(reference.rows(), serial.rows()):
            assert lhs["max_violation"] <= 0.0
            assert lhs["mean_energy"] == pytest.approx(
                rhs["mean_energy"], abs=1e-9
            )

    def test_shard_none_runs_in_process(self, grid, reference):
        seen = []
        result = run_sweep(
            grid,
            ExecutionConfig(engine="lockstep", jobs=2, shard="none"),
            on_cell=lambda cell: seen.append(cell.key),
        )
        assert result.deterministic_rows() == reference.deterministic_rows()
        assert seen == [cell.key for cell in grid.cells()]

    def test_sharded_sweep_rejects_stateful_policies(self, grid):
        from repro.skipping.base import SkippingPolicy

        class Sticky(SkippingPolicy):  # stateless defaults to False
            def decide(self, context):
                return 1

        plan = SweepPlan(
            experiments=[
                ExperimentSpec(
                    scenario=cheap_spec("stateful_probe"),
                    approaches=("sticky",),
                    policies={"sticky": Sticky()},
                    num_cases=2,
                    horizon=5,
                    label="a",
                ),
                ExperimentSpec(
                    scenario=cheap_spec("stateful_probe"),
                    approaches=("sticky",),
                    policies={"sticky": Sticky()},
                    num_cases=2,
                    horizon=5,
                    seed=2,
                    label="b",
                ),
            ]
        )
        # In-process (jobs=1 or shard='none') keeps legacy semantics...
        run_sweep(plan, ExecutionConfig(engine="serial", jobs=1))
        # ...but sharding would let state leak in-process while forked
        # workers start pristine, so it must refuse.
        with pytest.raises(RuntimeError, match="stateless"):
            run_sweep(plan, ExecutionConfig(engine="serial", jobs=2))

    def test_on_cell_fires_per_cell_when_sharded(self, grid, reference):
        seen = []
        run_sweep(
            grid,
            ExecutionConfig(engine="lockstep", jobs=2),
            on_cell=lambda cell: seen.append(cell.key),
        )
        assert sorted(seen) == sorted(cell.key for cell in grid.cells())


class TestResultSerialisation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sweep(
            SweepPlan(
                experiments=[
                    ExperimentSpec(scenario=cheap_spec(), num_cases=2, horizon=6)
                ],
                axes=[ParameterAxis("horizon", (4, 5))],
            )
        )

    def test_csv_round_trip_exact(self, result, tmp_path):
        path = str(tmp_path / "sweep.csv")
        result.to_csv(path)
        back = SweepResult.from_csv(path)
        assert back.rows() == result.rows()
        assert back.row_keys() == result.row_keys()

    def test_json_round_trip_full_fidelity(self, result, tmp_path):
        path = str(tmp_path / "sweep.json")
        result.to_json(path)
        back = SweepResult.from_json(path)
        assert back.rows() == result.rows()
        for old, new in zip(result.cells, back.cells):
            assert old.key == new.key
            for name in old.approaches:
                np.testing.assert_array_equal(
                    old.approaches[name].metrics["energy"],
                    new.approaches[name].metrics["energy"],
                )

    def test_from_csv_rejects_foreign_columns(self, result, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="unexpected columns"):
            SweepResult.from_csv(str(path))

    def test_cell_lookup(self, result):
        assert result.cell("exp_thermal@horizon=4").always_safe
        with pytest.raises(KeyError, match="unknown cell"):
            result.cell("nope")


# ----------------------------------------------------------------------
# Acceptance (a): one run_sweep reproduces the ACC Table-I comparison
# metric-for-metric against the legacy harness.
# ----------------------------------------------------------------------
class TestACCTableOne:
    def test_table1_axis_sweep_matches_evaluate_approaches(self, acc_case):
        from repro.acc.experiments import (
            case_study_for_experiment,
            evaluate_approaches,
            table1_axis,
        )

        experiments = ("ex1", "ex4")  # ex1 shares the session fixture's build
        plan = SweepPlan(
            experiments=[
                ExperimentSpec(
                    scenario="acc",
                    pattern="overall",
                    approaches=("bang_bang",),
                    num_cases=4,
                    horizon=12,
                    seed=77,
                )
            ],
            axes=[table1_axis(experiments)],
        )
        sweep = run_sweep(plan)
        assert [cell.key for cell in sweep] == [
            "acc@experiment=ex1",
            "acc@experiment=ex4",
        ]
        for cell, experiment in zip(sweep, experiments):
            legacy = evaluate_approaches(
                case_study_for_experiment(experiment),
                experiment,
                num_cases=4,
                horizon=12,
                seed=77,
            )
            baseline = cell.approaches["baseline"].metrics
            bang = cell.approaches["bang_bang"].metrics
            np.testing.assert_array_equal(baseline["fuel"], legacy.rmpc_only.fuel)
            np.testing.assert_array_equal(baseline["energy"], legacy.rmpc_only.energy)
            np.testing.assert_array_equal(bang["fuel"], legacy.bang_bang.fuel)
            np.testing.assert_array_equal(bang["energy"], legacy.bang_bang.energy)
            np.testing.assert_array_equal(
                bang["skip_rate"], legacy.bang_bang.skip_rate
            )
            np.testing.assert_array_equal(
                bang["forced_steps"], legacy.bang_bang.forced_steps
            )
            assert cell.fuel_saving("bang_bang") == pytest.approx(
                legacy.fuel_saving("bang_bang")
            )
