"""Command-line interface for reproducing the paper's experiments.

Usage (after ``pip install -e .``)::

    python -m repro.cli sets                 # Fig. 1: nested safe sets
    python -m repro.cli compare --cases 12   # Sec. IV-A three-way comparison
    python -m repro.cli experiment ex5       # one Table-I/Fig-5/6 scenario
    python -m repro.cli timing               # computation-saving numbers
    python -m repro.cli batch --episodes 64 --jobs 4 --seed 7 --out b.json
    python -m repro.cli scenarios            # list the registered scenario zoo
    python -m repro.cli scenarios --detail   # + synthesised set sizes/timing
    python -m repro.cli batch --scenario pendulum --engine lockstep
    python -m repro.cli sweep --cases 8      # Table-I-style cross-scenario sweep
    python -m repro.cli serve --store /tmp/store        # experiment service
    python -m repro.cli submit --wait --cases 4         # sweep over HTTP
    python -m repro.cli jobs                 # service job list + store stats

Each subcommand prints the same tables the benchmark suite emits, at a
scale chosen via flags, so results can be regenerated without pytest.

Execution engines: ``batch``, ``compare`` and ``experiment`` accept
``--engine {serial,parallel,lockstep}``.  ``parallel`` fans
episodes/cases out over ``--jobs N`` forked worker processes
(``--jobs 0`` = one per CPU); ``lockstep`` advances all episodes as a
single ``(N, n)`` state matrix in one process — the fast path on
single-core hosts.  Results are reproducible by construction:
``--seed S`` fixes a root seed from which every episode derives its own
private ``numpy`` generator streams (disturbances and stochastic
policies alike), so any engine/jobs choice produces the same
deterministic record fields (energy, skip rate, forced steps,
violations) as a serial run — wall-clock timing fields naturally vary
with contention.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext

import numpy as np


def _echo(text="", err: bool = False) -> None:
    """Write one line of user-facing CLI output.

    The CLI's tables go to stdout via this helper; diagnostics go
    through :mod:`logging` (``-v``/``-vv``; see
    :mod:`repro.observability.logconfig`), so the two streams never
    interleave in pipelines.
    """
    stream = sys.stderr if err else sys.stdout
    stream.write(str(text) + "\n")


def _telemetry_scope(args):
    """``(context manager, on)`` for a subcommand's telemetry flags."""
    from repro.observability import metrics as _obs

    on = bool(getattr(args, "telemetry", False)) or bool(
        getattr(args, "telemetry_out", None)
    )
    return (_obs.scoped_registry(enabled=True) if on else nullcontext(None)), on


def _emit_snapshot(snapshot: dict, out) -> None:
    """Render a snapshot to stdout, or write it as JSON to ``out``."""
    import json

    from repro.observability import render_table

    if out:
        with open(out, "w") as handle:
            json.dump(snapshot, handle, indent=2)
        _echo(f"telemetry snapshot written to {out}")
    else:
        _echo()
        _echo(render_table(snapshot))


def _add_telemetry_flags(parser) -> None:
    parser.add_argument(
        "--telemetry", action="store_true",
        help="collect metrics/spans for this run and print the snapshot "
             "table (deterministic record fields are bitwise-unchanged)",
    )
    parser.add_argument(
        "--telemetry-out", default=None, metavar="PATH", dest="telemetry_out",
        help="write the telemetry snapshot as JSON to PATH instead of "
             "printing it (implies --telemetry; inspect later with "
             "`repro telemetry PATH`)",
    )


def _cmd_sets(args) -> int:
    from repro.acc import build_case_study
    from repro.geometry import ascii_sets

    case = build_case_study()
    _echo("Nested safe sets (paper Fig. 1): '.'=X  '+'=XI  '#'=X'\n")
    _echo(
        ascii_sets(
            [case.system.safe_set, case.invariant_set, case.strengthened_set],
            glyphs=[".", "+", "#"],
            width=args.width,
            height=args.height,
        )
    )
    _echo(f"\nareas: X={case.system.safe_set.volume():.0f} "
          f"XI={case.invariant_set.volume():.0f} "
          f"X'={case.strengthened_set.volume():.0f}")
    return 0


def _cmd_compare(args) -> int:
    from repro.acc import build_case_study, evaluate_approaches, train_skipping_agent

    case = build_case_study()
    _echo(f"training DQN ({args.episodes} episodes, {args.restarts} restart(s))...")
    agent, _env, _history = train_skipping_agent(
        case, args.experiment, episodes=args.episodes, seed=args.seed,
        restarts=args.restarts,
    )
    result = evaluate_approaches(
        case, args.experiment, num_cases=args.cases, horizon=args.horizon,
        seed=args.seed + 1, agent=agent, jobs=args.jobs,
        engine=_resolve_engine(args), exact_solves=args.exact_solves,
        lp_backend=args.lp_backend,
    )
    _echo(f"\n{'approach':<12} {'fuel[g]':>8} {'saving':>8} {'skip%':>6}")
    _echo(f"{'RMPC-only':<12} {result.rmpc_only.fuel.mean():8.2f} {'-':>8} {0:5d}%")
    for name in ("bang_bang", "drl"):
        stats = result.stats(name)
        _echo(
            f"{name:<12} {stats.fuel.mean():8.2f} "
            f"{100*result.fuel_saving(name).mean():7.2f}% "
            f"{100*stats.skip_rate.mean():5.0f}%"
        )
    return 0


def _cmd_experiment(args) -> int:
    from repro.acc import (
        case_study_for_experiment,
        evaluate_approaches,
        train_skipping_agent,
    )

    case = case_study_for_experiment(args.name)
    agent, _env, _history = train_skipping_agent(
        case, args.name, episodes=args.episodes, seed=args.seed,
        restarts=args.restarts,
    )
    result = evaluate_approaches(
        case, args.name, num_cases=args.cases, horizon=args.horizon,
        seed=args.seed + 1, agent=agent, jobs=args.jobs,
        engine=_resolve_engine(args), exact_solves=args.exact_solves,
        lp_backend=args.lp_backend,
    )
    _echo(
        f"{args.name}: DRL saving {100*result.fuel_saving('drl').mean():.2f}%  "
        f"bang-bang {100*result.fuel_saving('bang_bang').mean():.2f}%  "
        f"(skip {result.drl.skip_rate.mean():.2f}, "
        f"forced {result.drl.forced_steps.mean():.1f})"
    )
    return 0


def _resolve_engine(args) -> str:
    """The effective engine: explicit ``--engine`` wins, else ``--jobs``."""
    from repro.framework.evaluation import default_engine

    return default_engine(args.engine, args.jobs)


def _parse_axis(text: str):
    """``name=lo:hi:n`` → a numeric :class:`ParameterAxis`.

    ``name`` is the overridden scenario-spec field; integral values
    collapse to ``int`` so integer fields (e.g. the RMPC ``horizon``)
    stay integers.
    """
    import argparse as _argparse

    from repro.experiments import ParameterAxis

    try:
        name, spec = text.split("=", 1)
        lo_text, hi_text, num_text = spec.split(":")
        lo, hi, num = float(lo_text), float(hi_text), int(num_text)
    except ValueError:
        raise _argparse.ArgumentTypeError(
            f"axis must look like 'field=lo:hi:n', got {text!r}"
        ) from None
    if not name or num < 1:
        raise _argparse.ArgumentTypeError(
            f"axis must look like 'field=lo:hi:n' with n >= 1, got {text!r}"
        )
    axis = ParameterAxis.linspace(name, lo, hi, num)
    values = tuple(
        int(v) if float(v).is_integer() else float(v) for v in axis.values
    )
    return ParameterAxis(name=name, values=values)


def _cmd_scenarios(args) -> int:
    import time

    from repro import scenarios

    names = scenarios.list_scenarios()
    _echo(f"{len(names)} registered scenario(s):\n")
    if not args.detail:
        _echo(f"{'name':<14} {'n':>2} {'m':>2} {'controller':<10} description")
        for name in names:
            spec = scenarios.get(name)
            _echo(
                f"{name:<14} {spec.n:>2} {spec.m:>2} {spec.controller:<10} "
                f"{spec.description}"
            )
        _echo("\n(--detail synthesises each scenario's certified sets)")
        return 0
    _echo(
        f"{'name':<14} {'n':>2} {'controller':<10} {'build[s]':>9} "
        f"{'XI rows':>7} {'X` rows':>7} {'X` radius':>9}"
    )
    for name in names:
        tick = time.perf_counter()
        case = scenarios.build(name)
        elapsed = time.perf_counter() - tick
        _, radius = case.strengthened_set.chebyshev_center()
        _echo(
            f"{name:<14} {case.system.n:>2} {case.spec.controller:<10} "
            f"{elapsed:>9.2f} {case.invariant_set.num_constraints:>7} "
            f"{case.strengthened_set.num_constraints:>7} {radius:>9.4f}"
        )
    return 0


def _cmd_sweep(args) -> int:
    from repro import scenarios
    from repro.experiments import ExecutionConfig, SweepPlan, run_sweep

    names = args.scenarios or scenarios.list_scenarios()
    axes = tuple(args.axis or ())
    plan = SweepPlan.for_scenarios(
        names,
        axes=axes,
        num_cases=args.cases,
        horizon=args.horizon,
        seed=args.seed,
    )
    telemetry_on = args.telemetry or bool(args.telemetry_out)
    execution = ExecutionConfig(
        engine=args.engine, jobs=args.jobs, exact_solves=args.exact_solves,
        lp_backend=args.lp_backend, collect_timing=args.collect_timing,
        kernel=args.kernel, telemetry=telemetry_on,
        on_error=args.on_error, cell_retries=args.cell_retries,
        cell_timeout=args.cell_timeout,
        worker_retries=args.worker_retries,
    )
    cells = len(plan.cells())
    _echo(
        f"grid sweep: {len(names)} scenario(s)"
        + "".join(f" x {len(axis)} {axis.name}" for axis in axes)
        + f" = {cells} cell(s), {args.cases} cases x {args.horizon} steps, "
        f"engine={args.engine}, jobs={args.jobs}, seed={args.seed}\n"
    )
    result = run_sweep(plan, execution, checkpoint=args.checkpoint)
    if args.checkpoint is not None:
        # The resume split, on stderr so piped stdout tables stay clean
        # (also counted as sweep_cells_restored_total /
        # sweep_cells_solved_total in the telemetry snapshot).
        _echo(
            f"checkpoint {args.checkpoint}: "
            f"{len(result.restored)} cell(s) restored, "
            f"{len(result.cells) - len(result.restored)} re-solved",
            err=True,
        )
    _echo(
        f"{'cell':<26} {'approach':<10} {'saving':>8} {'skip%':>6} "
        f"{'forced':>7} {'max viol':>9} {'safe':>5}"
    )
    for row in result.rows():
        if row["approach"] == "baseline":
            continue
        _echo(
            f"{(row['scenario'] + ('@' + row['point'] if row['point'] else '')):<26} "
            f"{row['approach']:<10} "
            f"{100 * row['energy_saving']:7.1f}% "
            f"{100 * row['mean_skip_rate']:5.0f}% "
            f"{row['mean_forced_steps']:7.1f} "
            f"{row['max_violation']:9.2e} "
            f"{str(row['safe']):>5}"
        )
    if args.out:
        if args.out.endswith(".csv"):
            result.to_csv(args.out)
        else:
            result.to_json(args.out)
        _echo(f"\nsweep table written to {args.out}")
    if telemetry_on:
        _emit_snapshot(result.telemetry, args.telemetry_out)
    status = 0
    if result.failures:
        _echo(
            f"\nERROR: {len(result.failures)}/{cells} cell(s) failed:",
            err=True,
        )
        for failure in result.failures:
            _echo(
                f"  {failure.key}: {failure.error_type} "
                f"(stage={failure.stage}, attempts={failure.attempts}): "
                f"{failure.message}",
                err=True,
            )
        status = 1
    if not result.always_safe:
        _echo("\nERROR: a trajectory left the safe set under the monitor")
        return 1
    if status == 0:
        _echo("\nall scenarios safe under the certified monitor")
    return status


def _cmd_serve(args) -> int:
    from repro.service import serve

    server = serve(args.store, host=args.host, port=args.port)
    _echo(
        f"experiment service on {server.url} (store: {args.store}) — "
        "Ctrl-C to stop",
        err=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        _echo("shutting down", err=True)
    finally:
        server.close()
    return 0


def _build_submit_plan(args):
    """A declarative SweepPlan from `repro submit`'s flags."""
    from repro import scenarios
    from repro.experiments import ExecutionConfig, SweepPlan

    names = args.scenarios or scenarios.list_scenarios()
    execution = ExecutionConfig(
        engine=args.engine, jobs=args.jobs, exact_solves=args.exact_solves,
        lp_backend=args.lp_backend, collect_timing=args.collect_timing,
        kernel=args.kernel, telemetry=args.telemetry,
        on_error=args.on_error,
    )
    return SweepPlan.for_scenarios(
        names,
        axes=tuple(args.axis or ()),
        execution=execution,
        num_cases=args.cases,
        horizon=args.horizon,
        seed=args.seed,
    )


def _cmd_submit(args) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        job_id = client.submit(_build_submit_plan(args))
    except (ServiceError, OSError) as exc:
        _echo(f"error: submission to {args.url} failed: {exc}", err=True)
        return 2
    _echo(f"submitted {job_id} to {args.url}")
    if not args.wait:
        return 0
    status = client.wait(job_id, timeout=args.timeout, poll=args.poll)
    restored = status["cells_restored"]
    _echo(
        f"{job_id}: {status['state']} — {status['cells_done']}/"
        f"{status['cells_total']} cell(s), {restored} served from the "
        f"store, {status['cells_done'] - restored} solved",
        err=True,
    )
    if status["state"] != "done":
        if status["error"]:
            _echo(f"error: {status['error']}", err=True)
        return 1
    result = client.result(job_id)
    if args.out:
        if args.out.endswith(".csv"):
            result.to_csv(args.out)
        else:
            result.to_json(args.out)
        _echo(f"sweep table written to {args.out}")
    if result.failures:
        _echo(
            f"WARNING: {len(result.failures)} cell(s) failed", err=True
        )
        return 1
    return 0


def _cmd_jobs(args) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        jobs = client.jobs()
        stats = client.store_stats()
    except (ServiceError, OSError) as exc:
        _echo(f"error: cannot reach {args.url}: {exc}", err=True)
        return 2
    _echo(f"{'job':<10} {'state':<10} {'cells':>7} {'restored':>8} "
          f"{'rows':>6} {'failures':>8}")
    for job in jobs:
        _echo(
            f"{job['id']:<10} {job['state']:<10} "
            f"{job['cells_done']:>3}/{job['cells_total']:<3} "
            f"{job['cells_restored']:>8} {job['rows']:>6} "
            f"{len(job['failures']):>8}"
        )
    _echo(
        f"\nstore: {stats['files']} record(s), {stats['bytes']} bytes, "
        f"{stats['hits']} hit(s) / {stats['misses']} miss(es) / "
        f"{stats['puts']} put(s) this server"
    )
    return 0


def _cmd_batch(args) -> int:
    import time

    from repro.framework import BatchRunner, ParallelBatchRunner
    from repro.skipping import AlwaysSkipPolicy

    engine = _resolve_engine(args)
    if args.scenario == "acc":
        from repro.acc import acc_disturbance_factory, build_case_study

        case = build_case_study()
        controller = case.mpc
        factory = acc_disturbance_factory(
            case, args.experiment or "overall", args.horizon
        )
    else:
        if args.experiment is not None:
            _echo(
                f"error: --experiment selects an ACC front-vehicle pattern "
                f"and does not apply to scenario {args.scenario!r} "
                "(non-ACC scenarios draw i.i.d. disturbances from their W)",
                err=True,
            )
            return 2
        from repro import scenarios

        case = scenarios.build(args.scenario)
        controller = case.controller
        factory = case.disturbance_factory(args.horizon)
    common = dict(
        monitor_factory=case.make_monitor,
        policy_factory=AlwaysSkipPolicy,
        skip_input=case.skip_input,
    )
    if engine == "parallel":
        runner = ParallelBatchRunner(
            case.system, controller, jobs=args.jobs, **common
        )
    else:
        runner = BatchRunner(
            case.system, controller, engine=engine,
            exact_solves=args.exact_solves, lp_backend=args.lp_backend,
            collect_timing=args.collect_timing, kernel=args.kernel,
            **common,
        )
    rng = np.random.default_rng(args.seed)
    states = case.sample_initial_states(rng, args.episodes)
    scope, telemetry_on = _telemetry_scope(args)
    tick = time.perf_counter()
    with scope as reg:
        result = runner.run_seeded(states, factory, root_seed=args.seed)
        snapshot = reg.snapshot() if reg is not None else None
    elapsed = time.perf_counter() - tick
    _echo(
        f"{len(result)} episodes in {elapsed:.2f}s "
        f"({len(result) / elapsed:.2f} ep/s, scenario={args.scenario}, "
        f"engine={engine}, jobs={args.jobs})"
    )
    if result.records:
        _echo(
            f"skip rate {result.mean('skip_rate'):.3f}  "
            f"energy {result.mean('energy'):.3f}  "
            f"forced {result.mean('forced_steps'):.2f}  "
            f"max violation {max(r.max_violation for r in result.records):.2e}"
        )
    if args.out:
        if args.out.endswith(".csv"):
            result.to_csv(args.out)
        else:
            result.to_json(args.out)
        _echo(f"records written to {args.out}")
    if telemetry_on:
        _emit_snapshot(snapshot, args.telemetry_out)
    return 0


def _cmd_telemetry(args) -> int:
    import json

    from repro.observability import render_prometheus, render_table

    with open(args.file) as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and "counters" in payload:
        snapshot = payload  # a bare snapshot
    elif isinstance(payload, dict):
        snapshot = payload.get("telemetry")  # embedded (sweep JSON, bench)
    else:
        snapshot = None
    if not isinstance(snapshot, dict):
        _echo(
            f"error: {args.file} contains no telemetry snapshot (expected "
            "a snapshot object or a result JSON with a 'telemetry' key — "
            "was the run made with --telemetry?)",
            err=True,
        )
        return 2
    render = render_prometheus if args.format == "prometheus" else render_table
    _echo(render(snapshot))
    return 0


def _cmd_timing(args) -> int:
    import timeit

    from repro.acc import build_case_study
    from repro.framework import computation_saving

    case = build_case_study()
    rng = np.random.default_rng(0)
    states = case.invariant_set.sample(rng, 16)
    t_controller = timeit.timeit(
        lambda: case.mpc.compute(states[0]), number=20
    ) / 20
    t_monitor = timeit.timeit(
        lambda: case.strengthened_set.contains(states[0]), number=200
    ) / 200
    _echo(f"controller: {1e3*t_controller:.3f} ms/step")
    _echo(f"monitor:    {1e3*t_monitor:.4f} ms/step")
    for skips in (60, 79, 90):
        saving = computation_saving(t_controller, t_monitor, 100, skips)
        _echo(f"computation saving at {skips} skips/100: {100*saving:.1f}%")
    return 0


def _add_engine_flag(parser) -> None:
    """Attach the shared ``--engine`` choice to a subcommand parser."""
    parser.add_argument(
        "--engine", choices=("serial", "parallel", "lockstep"), default=None,
        help="execution engine; default: parallel if --jobs != 1, else "
             "serial (lockstep advances all episodes as one state matrix "
             "— the single-core fast path)",
    )
    parser.add_argument(
        "--exact-solves", action="store_true", dest="exact_solves",
        help="lockstep only: keep MPC solves on the scalar path for "
             "record-for-record parity with the serial engine (default: "
             "stacked block-diagonal solves, plan-equivalent)",
    )
    _add_lp_backend_flag(parser)


def _add_lp_backend_flag(parser) -> None:
    """Attach the shared ``--lp-backend`` choice to a subcommand parser."""
    parser.add_argument(
        "--lp-backend", choices=("auto", "highs", "scipy"), default=None,
        dest="lp_backend",
        help="lockstep only: stacked-solve LP backend ('auto' = "
             "warm-started persistent HiGHS when highspy is installed, "
             "scipy otherwise; 'highs' requires highspy; 'scipy' forces "
             "the linprog path); default: keep each controller's own "
             "setting",
    )


def _add_kernel_flags(parser) -> None:
    """Attach the lockstep ``--kernel`` / ``--no-timing`` pair."""
    parser.add_argument(
        "--kernel", choices=("auto", "numba", "numpy"), default="auto",
        help="lockstep only: compiled closed-form step kernel ('auto' = "
             "numba kernel when importable and the run is eligible, numpy "
             "otherwise; 'numba' requires it and fails loudly; 'numpy' "
             "never compiles); bitwise-identical either way",
    )
    parser.add_argument(
        "--no-timing", action="store_false", dest="collect_timing",
        help="lockstep only: skip per-row wall-clock collection (timing "
             "columns read zero; deterministic metrics are unchanged bit "
             "for bit; required for the compiled kernel tier)",
    )


def _job_count(value: str) -> int:
    """argparse type for ``--jobs``: non-negative int (0 = one per CPU)."""
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(
            "jobs must be >= 0 (0 = one worker per CPU)"
        )
    return count


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DAC'20 opportunistic intermittent control"
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="diagnostic logging on stderr under the 'repro' logger "
             "namespace (-v: INFO, -vv: DEBUG); tables stay on stdout",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sets = sub.add_parser("sets", help="render the nested safe sets")
    p_sets.add_argument("--width", type=int, default=66)
    p_sets.add_argument("--height", type=int, default=22)
    p_sets.set_defaults(func=_cmd_sets)

    p_cmp = sub.add_parser("compare", help="three-way Sec. IV-A comparison")
    p_cmp.add_argument("--experiment", default="overall")
    p_cmp.add_argument("--cases", type=int, default=12)
    p_cmp.add_argument("--horizon", type=int, default=100)
    p_cmp.add_argument("--episodes", type=int, default=120)
    p_cmp.add_argument("--restarts", type=int, default=1)
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument(
        "--jobs", type=_job_count, default=1,
        help="evaluation worker processes (0 = one per CPU)",
    )
    _add_engine_flag(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_exp = sub.add_parser("experiment", help="run one ex1..ex10 scenario")
    p_exp.add_argument("name", help="experiment id (ex1..ex10, overall)")
    p_exp.add_argument("--cases", type=int, default=12)
    p_exp.add_argument("--horizon", type=int, default=100)
    p_exp.add_argument("--episodes", type=int, default=80)
    p_exp.add_argument("--restarts", type=int, default=1)
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument(
        "--jobs", type=_job_count, default=1,
        help="evaluation worker processes (0 = one per CPU)",
    )
    _add_engine_flag(p_exp)
    p_exp.set_defaults(func=_cmd_experiment)

    p_bat = sub.add_parser(
        "batch",
        help="run a seeded bang-bang episode batch (serial or parallel)",
    )
    p_bat.add_argument("--episodes", type=int, default=16)
    p_bat.add_argument("--horizon", type=int, default=100)
    p_bat.add_argument(
        "--experiment", default=None,
        help="ACC front-vehicle pattern id (overall, ex1..ex10); only "
             "valid with --scenario acc (default: overall)",
    )
    p_bat.add_argument(
        "--scenario", default="acc",
        help="registered scenario to run (see `repro scenarios`); 'acc' "
             "keeps the paper's front-vehicle disturbance patterns, other "
             "scenarios draw i.i.d. disturbances from their W",
    )
    p_bat.add_argument(
        "--jobs", type=_job_count, default=1,
        help="worker processes (0 = one per CPU, 1 = serial)",
    )
    p_bat.add_argument(
        "--seed", type=int, default=0,
        help="root seed for the per-episode generator streams",
    )
    p_bat.add_argument(
        "--out", default=None,
        help="write records to this path (.csv for CSV, else JSON)",
    )
    _add_engine_flag(p_bat)
    _add_kernel_flags(p_bat)
    _add_telemetry_flags(p_bat)
    p_bat.set_defaults(func=_cmd_batch)

    p_tim = sub.add_parser("timing", help="computation-saving numbers")
    p_tim.set_defaults(func=_cmd_timing)

    p_scn = sub.add_parser(
        "scenarios", help="list the registered scenario zoo"
    )
    p_scn.add_argument(
        "--detail", action="store_true",
        help="synthesise each scenario and report set sizes + build time",
    )
    p_scn.set_defaults(func=_cmd_scenarios)

    p_swp = sub.add_parser(
        "sweep", help="Table-I-style paired grid sweep across scenarios"
    )
    p_swp.add_argument(
        "--scenarios", nargs="+", default=None, metavar="NAME",
        help="scenario subset (default: every registered scenario)",
    )
    p_swp.add_argument(
        "--axis", type=_parse_axis, action="append", default=None,
        metavar="FIELD=LO:HI:N",
        help="parameter axis: N evenly-spaced overrides of a scenario-spec "
             "field (e.g. 'horizon=6:12:3', 'state_weight=0.5:2:4'); "
             "repeatable — multiple axes form their cartesian product",
    )
    p_swp.add_argument("--cases", type=int, default=8)
    p_swp.add_argument("--horizon", type=int, default=50)
    p_swp.add_argument("--seed", type=int, default=1)
    p_swp.add_argument(
        "--jobs", type=_job_count, default=1,
        help="worker processes (0 = one per CPU): grid cells are sharded "
             "whole across workers for the serial/lockstep engines; for "
             "the parallel engine this is the per-case fan-out width",
    )
    p_swp.add_argument(
        "--engine", choices=("serial", "parallel", "lockstep"),
        default="serial",
        help="execution engine inside every grid cell",
    )
    p_swp.add_argument(
        "--exact-solves", action="store_true", dest="exact_solves",
        help="lockstep only: scalar MPC solves for record-for-record "
             "parity with the serial engine",
    )
    _add_lp_backend_flag(p_swp)
    _add_kernel_flags(p_swp)
    p_swp.add_argument(
        "--on-error", choices=("fail", "record", "retry"), default="fail",
        dest="on_error",
        help="cell-failure policy: abort the sweep (fail, default), "
             "record a structured CellFailure and keep going (record), "
             "or retry the cell first — with a scipy LP-backend "
             "degradation for solver errors (retry)",
    )
    p_swp.add_argument(
        "--cell-retries", type=int, default=1, dest="cell_retries",
        metavar="N",
        help="extra attempts per failing cell under --on-error retry",
    )
    p_swp.add_argument(
        "--cell-timeout", type=float, default=None, dest="cell_timeout",
        metavar="SECONDS",
        help="per-cell wall-clock budget under sharded execution "
             "(jobs > 1): a hung worker is killed and its cells respawn",
    )
    p_swp.add_argument(
        "--worker-retries", type=int, default=2, dest="worker_retries",
        metavar="N",
        help="worker deaths/timeouts tolerated per cell before giving "
             "it up",
    )
    p_swp.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="spill each completed cell's JSON into DIR and, on rerun, "
             "load matching cells from there instead of re-solving",
    )
    p_swp.add_argument(
        "--out", default=None,
        help="write the sweep table to this path (.csv for the flat "
             "aggregate table, else full-fidelity JSON — telemetry "
             "snapshots are embedded in the JSON form)",
    )
    _add_telemetry_flags(p_swp)
    p_swp.set_defaults(func=_cmd_sweep)

    p_srv = sub.add_parser(
        "serve",
        help="run the experiment service (sweeps over HTTP, backed by a "
             "shared content-addressed result store)",
    )
    p_srv.add_argument(
        "--store", required=True, metavar="DIR",
        help="result-store directory shared by every job (created if "
             "missing; also usable as a `repro sweep --checkpoint` dir)",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port", type=int, default=8712,
        help="TCP port (0 = pick an ephemeral port; default: 8712)",
    )
    p_srv.set_defaults(func=_cmd_serve)

    p_sub = sub.add_parser(
        "submit",
        help="submit a grid sweep to a running experiment service",
    )
    p_sub.add_argument(
        "--url", default="http://127.0.0.1:8712",
        help="service base URL (default: http://127.0.0.1:8712)",
    )
    p_sub.add_argument(
        "--scenarios", nargs="+", default=None, metavar="NAME",
        help="scenario subset (default: every registered scenario)",
    )
    p_sub.add_argument(
        "--axis", type=_parse_axis, action="append", default=None,
        metavar="FIELD=LO:HI:N",
        help="parameter axis, repeatable (same syntax as `repro sweep`)",
    )
    p_sub.add_argument("--cases", type=int, default=8)
    p_sub.add_argument("--horizon", type=int, default=50)
    p_sub.add_argument("--seed", type=int, default=1)
    p_sub.add_argument(
        "--jobs", type=_job_count, default=1,
        help="server-side worker processes for the dirty cells",
    )
    p_sub.add_argument(
        "--engine", choices=("serial", "parallel", "lockstep"),
        default="serial",
        help="execution engine inside every grid cell",
    )
    p_sub.add_argument(
        "--exact-solves", action="store_true", dest="exact_solves",
        help="lockstep only: scalar MPC solves for record-for-record "
             "parity with the serial engine",
    )
    _add_lp_backend_flag(p_sub)
    _add_kernel_flags(p_sub)
    p_sub.add_argument(
        "--on-error", choices=("fail", "record", "retry"), default="fail",
        dest="on_error",
        help="server-side cell-failure policy (same as `repro sweep`)",
    )
    p_sub.add_argument(
        "--telemetry", action="store_true",
        help="run the job with full telemetry (embedded in the result "
             "JSON fetched with --wait --out)",
    )
    p_sub.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes and report the restored/solved "
             "split (exit 1 on failure)",
    )
    p_sub.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="give up waiting after this long (with --wait)",
    )
    p_sub.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="status poll interval (with --wait; default: 0.2)",
    )
    p_sub.add_argument(
        "--out", default=None,
        help="with --wait: write the finished sweep table to this path "
             "(.csv for the flat table, else full-fidelity JSON)",
    )
    p_sub.set_defaults(func=_cmd_submit)

    p_job = sub.add_parser(
        "jobs", help="list a running experiment service's jobs + store stats"
    )
    p_job.add_argument(
        "--url", default="http://127.0.0.1:8712",
        help="service base URL (default: http://127.0.0.1:8712)",
    )
    p_job.set_defaults(func=_cmd_jobs)

    p_tel = sub.add_parser(
        "telemetry", help="render a saved telemetry snapshot"
    )
    p_tel.add_argument(
        "file",
        help="a snapshot JSON (--telemetry-out), a sweep JSON (--out), or "
             "any JSON with a 'telemetry' key",
    )
    p_tel.add_argument(
        "--format", choices=("table", "prometheus"), default="table",
        help="output format (prometheus = text exposition format)",
    )
    p_tel.set_defaults(func=_cmd_telemetry)
    return parser


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    from repro.observability import configure_logging

    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.verbose)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
