"""Property-based tests (hypothesis) for the geometry kernel.

These check the algebraic laws the invariance computations rely on:
erosion/dilation duality, support-function subadditivity, monotonicity of
the set operations, and soundness of preimages.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import HPolytope

# Keep each property test fast: geometry ops run several LPs per call.
FAST = settings(max_examples=25, deadline=None)


def boxes(dim=2, max_half=3.0):
    """Strategy: random full-dimensional boxes around random centres."""
    center = st.lists(
        st.floats(-2.0, 2.0, allow_nan=False), min_size=dim, max_size=dim
    )
    half = st.lists(
        st.floats(0.05, max_half, allow_nan=False), min_size=dim, max_size=dim
    )
    return st.tuples(center, half).map(
        lambda ch: HPolytope.from_box(
            np.array(ch[0]) - np.array(ch[1]), np.array(ch[0]) + np.array(ch[1])
        )
    )


def directions(dim=2):
    """Strategy: non-zero direction vectors."""
    return st.lists(
        st.floats(-1.0, 1.0, allow_nan=False), min_size=dim, max_size=dim
    ).filter(lambda v: float(np.linalg.norm(v)) > 1e-3).map(np.array)


@FAST
@given(boxes(), boxes(), directions())
def test_support_additive_under_minkowski_sum(p, q, d):
    total = p.minkowski_sum(q)
    assert total.support(d) == pytest.approx(p.support(d) + q.support(d), abs=1e-6)


@FAST
@given(boxes(), boxes())
def test_erosion_then_dilation_is_contained(p, q):
    # (P ⊖ Q) ⊕ Q ⊆ P always (equality only for special shapes).
    eroded = p.pontryagin_difference(q)
    if eroded.is_empty():
        return
    back = eroded.minkowski_sum(q)
    assert p.contains_polytope(back, tol=1e-6)


@FAST
@given(boxes(), boxes())
def test_erosion_membership_certificate(p, q):
    eroded = p.pontryagin_difference(q)
    if eroded.is_empty():
        return
    center, radius = eroded.chebyshev_center()
    if radius < 0:
        return
    for vertex in q.vertices():
        assert p.contains(center + vertex, tol=1e-6)


def origin_boxes(dim=2, max_half=3.0):
    """Strategy: boxes that contain the origin (0 ∈ B)."""
    half = st.lists(
        st.floats(0.05, max_half, allow_nan=False), min_size=dim, max_size=dim
    )
    return half.map(
        lambda h: HPolytope.from_box(-np.array(h), np.array(h))
    )


@FAST
@given(boxes(), origin_boxes(), origin_boxes())
def test_containment_is_transitive(a, b, c):
    # Summing origin-containing sets only grows a set, and containment
    # chains transitively.
    small = a
    mid = a.minkowski_sum(b)
    large = mid.minkowski_sum(c)
    assert mid.contains_polytope(small, tol=1e-6)
    assert large.contains_polytope(mid, tol=1e-6)
    assert large.contains_polytope(small, tol=1e-6)


@FAST
@given(boxes(), st.floats(0.1, 3.0, allow_nan=False))
def test_scale_support_homogeneous(p, alpha):
    d = np.array([0.7, -0.3])
    # Scaling about the origin scales the support function.
    assert p.scale(alpha).support(d) == pytest.approx(
        alpha * p.support(d), rel=1e-9, abs=1e-9
    )


@FAST
@given(boxes(), directions())
def test_translate_shifts_support(p, d):
    t = np.array([0.5, -1.0])
    moved = p.translate(t)
    assert moved.support(d) == pytest.approx(
        p.support(d) + float(d @ t), abs=1e-8
    )


@FAST
@given(boxes())
def test_preimage_soundness(p):
    A = np.array([[0.8, 0.2], [-0.1, 1.1]])
    pre = p.linear_preimage(A)
    rng = np.random.default_rng(0)
    if pre.is_empty():
        return
    for x in pre.sample(rng, 10):
        assert p.contains(A @ x, tol=1e-6)


@FAST
@given(boxes())
def test_redundancy_removal_preserves_set(p):
    # Duplicate every constraint, add a loose bounding box, then prune.
    loose = HPolytope.from_box([-100.0, -100.0], [100.0, 100.0])
    fat = HPolytope(
        np.vstack([p.H, p.H, loose.H]), np.concatenate([p.h, p.h + 0.5, loose.h])
    )
    pruned = fat.remove_redundancies()
    assert pruned.equals(p, tol=1e-6)
    assert pruned.num_constraints <= p.num_constraints


@FAST
@given(boxes(), boxes())
def test_intersection_is_largest_common_subset(p, q):
    inter = p.intersect(q)
    if inter.is_empty():
        return
    assert p.contains_polytope(inter, tol=1e-6)
    assert q.contains_polytope(inter, tol=1e-6)


@FAST
@given(boxes())
def test_vertices_reconstruct_polytope(p):
    rebuilt = HPolytope.from_vertices(p.vertices())
    assert rebuilt.equals(p, tol=1e-6)
