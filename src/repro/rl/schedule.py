"""Exploration-rate schedules for ε-greedy action selection."""

from __future__ import annotations

__all__ = ["LinearSchedule", "ExponentialSchedule", "ConstantSchedule"]


class ConstantSchedule:
    """ε fixed at ``value`` forever."""

    def __init__(self, value: float):
        if not 0.0 <= value <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.value = float(value)

    def __call__(self, step: int) -> float:
        return self.value


class LinearSchedule:
    """Linear anneal from ``start`` to ``end`` over ``duration`` steps."""

    def __init__(self, start: float, end: float, duration: int):
        if duration < 1:
            raise ValueError("duration must be >= 1")
        self.start = float(start)
        self.end = float(end)
        self.duration = int(duration)

    def __call__(self, step: int) -> float:
        frac = min(max(step, 0) / self.duration, 1.0)
        return self.start + frac * (self.end - self.start)


class ExponentialSchedule:
    """Exponential decay ``end + (start − end) · decay^step``."""

    def __init__(self, start: float, end: float, decay: float):
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.start = float(start)
        self.end = float(end)
        self.decay = float(decay)

    def __call__(self, step: int) -> float:
        return self.end + (self.start - self.end) * (self.decay ** max(step, 0))
