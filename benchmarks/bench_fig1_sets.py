"""Fig. 1 / Sec. III-A — the nested safe sets and their computation.

Fig. 1 is conceptual (X ⊇ XI ⊇ X'), but it rests on the set pipeline of
Sec. III-A: the RMPC feasible region (Prop. 1), the RCI certificate and
the strengthened safe set.  This bench regenerates the three sets,
reports their areas and nesting, and times the X' computation (the
artefact a deployment would re-run when retuning the controller).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.invariance import is_rci, strengthened_safe_set


def bench_fig1_nested_sets(benchmark, acc_case):
    case = acc_case
    areas = {
        "X (safe set)": case.system.safe_set.volume(),
        "XI (robust invariant)": case.invariant_set.volume(),
        "X' (strengthened)": case.strengthened_set.volume(),
    }
    rows = [(name, f"{area:.1f}") for name, area in areas.items()]
    emit("Fig. 1 — nested safe sets (areas, shifted coords)", rows, ("set", "area"))

    assert case.system.safe_set.contains_polytope(case.invariant_set, tol=1e-6)
    assert case.invariant_set.contains_polytope(case.strengthened_set, tol=1e-7)
    assert is_rci(
        case.system.A, case.system.B, case.invariant_set,
        case.system.input_set, case.system.disturbance_set, tol=1e-6,
    )
    benchmark.extra_info["areas"] = {k: float(v) for k, v in areas.items()}

    benchmark(
        lambda: strengthened_safe_set(
            case.system, case.invariant_set, skip_input=case.skip_input
        )
    )


def bench_fig1_membership_check(benchmark, acc_case):
    """The runtime monitor's X'-membership test (the per-step cost the
    whole scheme hinges on being cheap)."""
    rng = np.random.default_rng(0)
    states = acc_case.invariant_set.sample(rng, 64)
    idx = [0]

    def check():
        idx[0] = (idx[0] + 1) % len(states)
        return acc_case.strengthened_set.contains(states[idx[0]])

    benchmark(check)
