"""Labelled metrics registry — the repo's single telemetry sink.

Why one registry
----------------
Before this module the repo's operational counters were scattered:
``RobustMPC._solve_count``, the ``BlockStack`` hit/miss dict in
``repro.utils.lp``, ``PersistentStackSolver.model_builds``, the
scenario-builder cache, the monitor nesting-proof cache — each with its
own accessor and reset semantics.  :class:`MetricsRegistry` folds them
into one place with one ``snapshot()`` / ``reset()`` surface, plus run
traces (:mod:`repro.observability.trace`) and renderings (JSON snapshot,
Prometheus text, aligned table).

Cost model (mirrors :func:`~repro.framework.profiling.active_profiler`)
-----------------------------------------------------------------------
* **Structural counters are always on.**  Sites that fire at most once
  per solve / cache probe / model build / episode batch record
  unconditionally — a dict update is noise next to an LP solve, and it
  keeps the legacy cache-stats shims working without any setup.
* **Hot-path instrumentation is gated.**  Anything that would fire per
  simulation step (stage profiling, spans) is guarded by
  :func:`active`, which returns the ambient registry iff telemetry is
  enabled and ``None`` otherwise — a single ``is not None`` test on the
  disabled path, exactly like ``active_profiler``.

Hard contract (gated by ``tests/test_telemetry.py``): telemetry never
touches deterministic record fields — every engine record is
bitwise-identical with telemetry on or off.

Determinism of snapshots
------------------------
:meth:`MetricsRegistry.deterministic_snapshot` drops spans and every
metric whose name carries a wall-clock marker (``_seconds`` / ``_ms``),
leaving pure event counts — the view under which a sharded ``jobs=2``
sweep must equal ``jobs=1`` exactly (same exclusion idea as
``TIMING_COLUMNS`` in :mod:`repro.experiments.result`).

Fork composition
----------------
Forked workers run under :func:`scoped_registry` (a fresh registry
swapped into the module global), return ``snapshot()`` dicts through
``fork_map``'s result pipe, and the parent folds them back with
:meth:`MetricsRegistry.merge_snapshot` in deterministic grid order — so
``jobs=k`` telemetry equals the sum of its workers.
"""

from __future__ import annotations

import math
from contextlib import contextmanager, nullcontext
from contextvars import ContextVar
from typing import Dict, Iterable, Optional, Tuple

from .trace import RunTrace

__all__ = [
    "MetricsRegistry",
    "registry",
    "active",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry_enabled",
    "scoped_registry",
    "deterministic_view",
    "FAULT_RECOVERY_METRICS",
    "PERSISTENCE_METRICS",
    "render_prometheus",
    "render_table",
]

#: Metric-name markers that flag wall-clock content; such metrics are
#: excluded from :meth:`MetricsRegistry.deterministic_snapshot`.
TIMING_MARKERS = ("_seconds", "_ms")

#: Fault-recovery bookkeeping counters.  They describe *how* a run got
#: to its answer (a worker died and was respawned, a cell was retried),
#: not the answer itself — a faulted-then-recovered sweep must still
#: equal an unfaulted reference in the deterministic view, so these are
#: excluded alongside the wall-clock metrics.
FAULT_RECOVERY_METRICS = frozenset(
    {"worker_respawns_total", "sweep_cell_failures_total",
     "cell_retries_total"}
)

#: Persistence bookkeeping counters (result store / checkpoint traffic,
#: restored-vs-solved splits, service job states).  Like the
#: fault-recovery counters they describe how a result was *obtained* —
#: served from the store vs re-solved — not the result itself, so a
#: warm-store sweep must still equal an uncached one in the
#: deterministic view.
PERSISTENCE_METRICS = frozenset(
    {"result_store_events_total", "checkpoint_files_skipped_total",
     "sweep_cells_restored_total", "sweep_cells_solved_total",
     "service_jobs_total"}
)

#: Default histogram bucket upper bounds (powers of two — sized for
#: batch-size style observations like stacked-solve k).
DEFAULT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                   512.0, 1024.0, 2048.0, 4096.0)

_LabelKey = Tuple[Tuple[str, str], ...]
_MetricKey = Tuple[str, _LabelKey]


def _label_key(labels: dict) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def deterministic_view(snapshot: dict) -> dict:
    """A saved snapshot minus spans and wall-clock metrics — the view
    under which ``jobs=k`` telemetry must equal ``jobs=1`` exactly
    (works on any :meth:`MetricsRegistry.snapshot` dict, e.g. one loaded
    back from a ``--telemetry-out`` file)."""
    return {
        family: {
            name: entries
            for name, entries in snapshot.get(family, {}).items()
            if not any(marker in name for marker in TIMING_MARKERS)
            and name not in FAULT_RECOVERY_METRICS
            and name not in PERSISTENCE_METRICS
        }
        for family in ("counters", "gauges", "histograms")
    }


def _le_str(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return f"{bound:g}"


class _Histogram:
    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: Tuple[float, ...]):
        self.bounds = bounds
        # one slot per finite bound plus the implicit +Inf overflow slot
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        slot = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                slot = i
                break
        self.bucket_counts[slot] += 1
        self.count += 1
        self.sum += value

    def buckets(self) -> Dict[str, int]:
        """Cumulative (Prometheus-style) ``le`` → count mapping."""
        out: Dict[str, int] = {}
        running = 0
        for bound, slot in zip(self.bounds, self.bucket_counts):
            running += slot
            out[_le_str(bound)] = running
        out["+Inf"] = self.count
        return out


class MetricsRegistry:
    """Counters, gauges, and histograms with string labels.

    Attributes:
        enabled: Gates the *hot-path* tier only (spans and per-step
            instrumentation via :func:`active`).  Structural counters
            record regardless — see the module docstring's cost model.
        trace: The registry's :class:`~repro.observability.trace.RunTrace`.
    """

    __slots__ = ("enabled", "trace", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self.trace = RunTrace()
        self._counters: Dict[_MetricKey, float] = {}
        self._gauges: Dict[_MetricKey, float] = {}
        self._histograms: Dict[_MetricKey, _Histogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value=1, **labels) -> None:
        """Add ``value`` to the counter ``name{labels}``."""
        key = (name, _label_key(labels))
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value, **labels) -> None:
        """Set the gauge ``name{labels}`` (last write wins)."""
        self._gauges[(name, _label_key(labels))] = value

    def observe(self, name: str, value, buckets: Optional[Iterable[float]] = None,
                **labels) -> None:
        """Record ``value`` into the histogram ``name{labels}``."""
        key = (name, _label_key(labels))
        hist = self._histograms.get(key)
        if hist is None:
            bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
            hist = self._histograms[key] = _Histogram(bounds)
        hist.observe(value)

    def span(self, name: str, **attributes):
        """Open a trace span — a no-op context manager when disabled."""
        if not self.enabled:
            return nullcontext()
        return self.trace.span(name, **attributes)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def value(self, name: str, **labels):
        """The counter ``name{labels}`` under exactly these labels."""
        return self._counters.get((name, _label_key(labels)), 0)

    def total(self, name: str, **labels):
        """Sum of every ``name`` counter whose labels include the given
        subset (``total("x")`` sums across all label combinations)."""
        want = _label_key(labels)
        total = 0
        for (metric, key), value in self._counters.items():
            if metric == name and all(pair in key for pair in want):
                total += value
        return total

    def snapshot(self, spans: bool = True) -> dict:
        """JSON-safe state dump, deterministically ordered.

        Returns ``{"counters", "gauges", "histograms", "spans"}`` where
        each metric family maps name → list of ``{"labels", ...}``
        entries sorted by label key.
        """
        counters: Dict[str, list] = {}
        for (name, key) in sorted(self._counters):
            counters.setdefault(name, []).append(
                {"labels": dict(key), "value": self._counters[(name, key)]}
            )
        gauges: Dict[str, list] = {}
        for (name, key) in sorted(self._gauges):
            gauges.setdefault(name, []).append(
                {"labels": dict(key), "value": self._gauges[(name, key)]}
            )
        histograms: Dict[str, list] = {}
        for (name, key) in sorted(self._histograms):
            hist = self._histograms[(name, key)]
            histograms.setdefault(name, []).append(
                {
                    "labels": dict(key),
                    "count": hist.count,
                    "sum": hist.sum,
                    "buckets": hist.buckets(),
                }
            )
        snap = {"counters": counters, "gauges": gauges, "histograms": histograms}
        if spans:
            snap["spans"] = self.trace.snapshot()
        return snap

    def deterministic_snapshot(self) -> dict:
        """The snapshot minus spans and wall-clock metrics — the view
        under which ``jobs=k`` must equal ``jobs=1`` exactly."""
        return deterministic_view(self.snapshot(spans=False))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self, name: Optional[str] = None) -> None:
        """Zero everything (and the trace), or just metric ``name`` —
        per-name reset is what the legacy cache-stats shims map onto."""
        if name is None:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self.trace.reset()
            return
        for family in (self._counters, self._gauges, self._histograms):
            for key in [k for k in family if k[0] == name]:
                del family[key]

    def merge_snapshot(self, snap: Optional[dict]) -> None:
        """Fold a :meth:`snapshot` dict (typically from a forked worker)
        into this registry: counters and histograms add, gauges take the
        incoming value, spans graft under the currently open span."""
        if not snap:
            return
        for name, entries in snap.get("counters", {}).items():
            for entry in entries:
                self.inc(name, entry["value"], **entry["labels"])
        for name, entries in snap.get("gauges", {}).items():
            for entry in entries:
                self.set_gauge(name, entry["value"], **entry["labels"])
        for name, entries in snap.get("histograms", {}).items():
            for entry in entries:
                key = (name, _label_key(entry["labels"]))
                hist = self._histograms.get(key)
                bounds = tuple(
                    float("inf") if le == "+Inf" else float(le)
                    for le in entry["buckets"]
                )[:-1]  # drop the +Inf slot; it is implicit
                if hist is None:
                    hist = self._histograms[key] = _Histogram(bounds)
                # de-cumulate the Prometheus-style buckets back to slots
                previous = 0
                for i, le in enumerate(entry["buckets"]):
                    cumulative = entry["buckets"][le]
                    slot = i if i < len(hist.bucket_counts) else -1
                    hist.bucket_counts[slot] += cumulative - previous
                    previous = cumulative
                hist.count += entry["count"]
                hist.sum += entry["sum"]
        if self.enabled:
            self.trace.attach(snap.get("spans") or [])

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({'on' if self.enabled else 'off'}; "
            f"{len(self._counters)} counters, {len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms)"
        )


# ----------------------------------------------------------------------
# Ambient registry (context-local, swapped by scoped_registry)
# ----------------------------------------------------------------------
# One process-wide default registry, with scopes tracked per execution
# context (a ContextVar, so per thread): every thread that has not
# entered a scope reads the same shared default, while a scope entered
# in one thread — a cell running on the service's job-executor thread,
# say — is invisible to every other.  A plain module global swapped in
# place would be corrupted by interleaved scope enter/exit across
# threads (thread A's ``finally`` restoring over thread B's swap),
# which can strand an *enabled* per-cell registry as the process
# ambient.  ContextVars also survive ``fork``: a forked worker's main
# thread continues with the forking thread's context, so in-worker
# scopes behave exactly as before.
_DEFAULT_REGISTRY = MetricsRegistry(enabled=False)
_REGISTRY_VAR: "ContextVar[MetricsRegistry]" = ContextVar(
    "repro_metrics_registry", default=_DEFAULT_REGISTRY
)


def registry() -> MetricsRegistry:
    """The ambient registry — always exists; structural counters record
    into it unconditionally."""
    return _REGISTRY_VAR.get()


def active() -> Optional[MetricsRegistry]:
    """The ambient registry iff telemetry is enabled, else ``None`` —
    the hot-path guard (``reg = active()`` … ``if reg is not None``)."""
    reg = _REGISTRY_VAR.get()
    return reg if reg.enabled else None


def enable_telemetry() -> MetricsRegistry:
    """Turn on the hot-path tier (spans, stage folding) globally."""
    reg = _REGISTRY_VAR.get()
    reg.enabled = True
    return reg


def disable_telemetry() -> MetricsRegistry:
    """Turn the hot-path tier back off (counters keep recording)."""
    reg = _REGISTRY_VAR.get()
    reg.enabled = False
    return reg


def telemetry_enabled() -> bool:
    """Whether the ambient registry's hot-path tier is on."""
    return _REGISTRY_VAR.get().enabled


@contextmanager
def scoped_registry(enabled: Optional[bool] = None):
    """Swap in a fresh ambient registry for the duration of the block.

    The sweep runner wraps every grid cell in one of these (in the
    parent for in-process sweeps, inside the forked worker for sharded
    ones) so each cell's telemetry is isolated, snapshotted, and merged
    back in deterministic grid order — the mechanism behind the
    ``jobs=k`` ≡ ``jobs=1`` snapshot contract.

    The scope is context-local: concurrent threads (e.g. the service's
    job executor and its HTTP handlers) each see their own scopes, and
    a thread with no scope open reads the shared process default.

    Args:
        enabled: Override the hot-path flag for the scope; by default
            the fresh registry inherits the current registry's flag.
    """
    parent = _REGISTRY_VAR.get()
    token = _REGISTRY_VAR.set(
        MetricsRegistry(enabled=parent.enabled if enabled is None else enabled)
    )
    try:
        yield _REGISTRY_VAR.get()
    finally:
        _REGISTRY_VAR.reset(token)


# ----------------------------------------------------------------------
# Renderings
# ----------------------------------------------------------------------
def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def render_prometheus(snapshot: dict) -> str:
    """The snapshot as Prometheus text-exposition lines."""
    lines = []
    for name, entries in snapshot.get("counters", {}).items():
        lines.append(f"# TYPE {name} counter")
        for entry in entries:
            lines.append(
                f"{name}{_format_labels(entry['labels'])} {entry['value']}"
            )
    for name, entries in snapshot.get("gauges", {}).items():
        lines.append(f"# TYPE {name} gauge")
        for entry in entries:
            lines.append(
                f"{name}{_format_labels(entry['labels'])} {entry['value']}"
            )
    for name, entries in snapshot.get("histograms", {}).items():
        lines.append(f"# TYPE {name} histogram")
        for entry in entries:
            for le, count in entry["buckets"].items():
                labels = dict(entry["labels"], le=le)
                lines.append(f"{name}_bucket{_format_labels(labels)} {count}")
            suffix = _format_labels(entry["labels"])
            lines.append(f"{name}_sum{suffix} {entry['sum']}")
            lines.append(f"{name}_count{suffix} {entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _iter_table_rows(snapshot: dict):
    for name, entries in snapshot.get("counters", {}).items():
        for entry in entries:
            yield "counter", name + _format_labels(entry["labels"]), entry["value"]
    for name, entries in snapshot.get("gauges", {}).items():
        for entry in entries:
            yield "gauge", name + _format_labels(entry["labels"]), entry["value"]
    for name, entries in snapshot.get("histograms", {}).items():
        for entry in entries:
            mean = entry["sum"] / entry["count"] if entry["count"] else 0.0
            yield (
                "histogram",
                name + _format_labels(entry["labels"]),
                f"count={entry['count']} mean={mean:g}",
            )


def _span_lines(span: dict, depth: int, out: list) -> None:
    duration = span.get("duration")
    took = "open" if duration is None else f"{duration:.4f}s"
    attrs = span.get("attributes") or {}
    suffix = (
        " [" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]"
        if attrs
        else ""
    )
    out.append(f"{'  ' * depth}- {span['name']}: {took}{suffix}")
    for child in span.get("children", []):
        _span_lines(child, depth + 1, out)


def render_table(snapshot: dict) -> str:
    """The snapshot as an aligned, human-readable table (plus a span
    tree when the snapshot carries one)."""
    rows = list(_iter_table_rows(snapshot))
    if not rows and not snapshot.get("spans"):
        return "(empty telemetry snapshot)\n"
    width = max((len(row[1]) for row in rows), default=0)
    lines = [f"{name:<{width}}  {value}  ({kind})" for kind, name, value in rows]
    spans = snapshot.get("spans") or []
    if spans:
        lines.append("")
        lines.append("spans:")
        for span in spans:
            _span_lines(span, 1, lines)
    return "\n".join(lines) + "\n"
