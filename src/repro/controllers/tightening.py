"""Recursive constraint tightening for robust MPC (paper Eq. 5).

The paper defines, for the safe set ``X`` and disturbance ``W``:

    X(0) = X,
    X(k) = {x ∈ X(k-1) : x ⊕ A^{k-1} W ⊆ X(k-1)},  k >= 1,

i.e. ``X(k) = X(k-1) ⊖ A^{k-1} W`` (the intersection with ``X(k-1)`` is
implied because ``0 ∈ W``).  Chisci et al. (2001) use the closed-loop
matrix ``A + B K`` of a disturbance-rejecting feedback instead of ``A``;
:func:`tightened_constraints` takes the propagation matrix as an argument
so both variants are available (the paper's open-loop variant is the
default).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry import HPolytope
from repro.utils.validation import as_matrix

__all__ = ["tightened_constraints", "tightened_input_constraints"]


def tightened_constraints(
    safe_set: HPolytope,
    disturbance: HPolytope,
    horizon: int,
    propagation=None,
) -> list:
    """Tightened state-constraint sequence ``[X(0), …, X(horizon)]``.

    Args:
        safe_set: ``X(0) = X``.
        disturbance: ``W``.
        horizon: Number of tightening steps ``N``.
        propagation: Matrix propagating the disturbance between steps —
            ``A`` for the paper's scheme, ``A + B K`` for Chisci's.
            Identity by default of ``None`` is *not* assumed; pass the
            system matrix explicitly.

    Returns:
        List of ``horizon + 1`` polytopes, nested by construction.

    Raises:
        ValueError: If any tightened set becomes empty (horizon too long
            for the disturbance magnitude).
    """
    if propagation is None:
        raise ValueError(
            "pass the disturbance propagation matrix (A for the paper's "
            "scheme, A+BK for Chisci's)"
        )
    M = as_matrix(propagation, "propagation")
    sets = [safe_set]
    mapped = disturbance
    for k in range(1, horizon + 1):
        tightened = sets[-1].pontryagin_difference(mapped)
        if tightened.is_empty():
            raise ValueError(
                f"tightened constraint X({k}) is empty; shorten the horizon "
                "or reduce the disturbance set"
            )
        sets.append(tightened.remove_redundancies())
        # Next step erodes by M^k W: map the current eroding set once more.
        vertices_ok = mapped.dim <= 2
        if vertices_ok:
            V = mapped.vertices() @ M.T
            spread = V.max(axis=0) - V.min(axis=0)
            if np.all(spread > 1e-12):
                mapped = HPolytope.from_vertices(V)
            else:
                pad = 1e-12
                mapped = HPolytope.from_box(V.min(axis=0) - pad, V.max(axis=0) + pad)
        else:
            mapped = mapped.linear_image(M)
    return sets


def tightened_input_constraints(
    input_set: HPolytope,
    disturbance: HPolytope,
    horizon: int,
    gain,
    propagation,
) -> list:
    """Chisci-style input tightening ``U(k) = U(k-1) ⊖ K M^{k-1} W``.

    Only needed for the closed-loop prediction variant; the paper's RMPC
    leaves ``U`` untightened.
    """
    K = as_matrix(gain, "gain")
    M = as_matrix(propagation, "propagation")
    sets = [input_set]
    power = np.eye(M.shape[0])
    for _ in range(1, horizon + 1):
        KW = _input_image(disturbance, K @ power)
        tightened = sets[-1].pontryagin_difference(KW)
        if tightened.is_empty():
            raise ValueError("tightened input constraint is empty")
        sets.append(tightened.remove_redundancies())
        power = M @ power
    return sets


def _input_image(disturbance: HPolytope, T: np.ndarray) -> HPolytope:
    """Image of ``W`` under a (possibly rank-deficient) map into input space."""
    V = disturbance.vertices() @ T.T
    lower = V.min(axis=0)
    upper = V.max(axis=0)
    if V.shape[1] <= 2 and np.all(upper - lower > 1e-12):
        return HPolytope.from_vertices(V)
    return HPolytope.from_box(lower, upper)
