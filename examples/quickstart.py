#!/usr/bin/env python3
"""Quickstart: safe intermittent control on a double integrator.

Walks through the whole pipeline of the paper on the smallest possible
system:

1. define a constrained LTI plant with a bounded disturbance;
2. design a safe controller (LQR);
3. compute the robust invariant set XI and the strengthened safe set X';
4. run Algorithm 1 with the bang-bang skipping policy;
5. compare energy and computation against running the controller at
   every step.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.controllers import LinearFeedback, lqr_gain
from repro.framework import (
    IntermittentController,
    SafetyMonitor,
    run_controller_only,
)
from repro.geometry import HPolytope
from repro.invariance import maximal_rpi, strengthened_safe_set
from repro.skipping import AlwaysSkipPolicy
from repro.systems import DiscreteLTISystem


def main():
    # 1. Plant: x = (position, velocity), u = acceleration, |w| <= 0.05.
    dt = 0.1
    A = np.array([[1.0, dt], [0.0, 1.0]])
    B = np.array([[0.5 * dt * dt], [dt]])
    system = DiscreteLTISystem(
        A,
        B,
        safe_set=HPolytope.from_box([-5.0, -2.0], [5.0, 2.0]),
        input_set=HPolytope.from_box([-3.0], [3.0]),
        disturbance_set=HPolytope.from_box([-0.05, -0.05], [0.05, 0.05]),
    )

    # 2. Underlying safe controller: LQR state feedback.
    K = lqr_gain(A, B, np.eye(2), np.eye(1))
    controller = LinearFeedback(K)
    print(f"LQR gain K = {np.round(K, 3)}")

    # 3. Safe sets: XI (robust invariant under u = Kx, respecting U) and
    #    the strengthened set X' = B(XI, 0) ∩ XI (Definition 3).
    seed = system.safe_set.intersect(system.input_set.linear_preimage(K))
    xi = maximal_rpi(
        system.closed_loop_matrix(K), seed, system.disturbance_set
    ).invariant_set
    x_prime = strengthened_safe_set(system, xi)
    print(f"XI area  = {xi.volume():.2f}  (safe set area {system.safe_set.volume():.2f})")
    print(f"X' area  = {x_prime.volume():.2f}")

    # 4. Algorithm 1 with the bang-bang policy: skip whenever allowed.
    monitor = SafetyMonitor(
        strengthened_set=x_prime, invariant_set=xi, safe_set=system.safe_set
    )
    runner = IntermittentController(
        system, controller, monitor, AlwaysSkipPolicy()
    )
    rng = np.random.default_rng(0)
    lo, hi = system.disturbance_set.bounding_box()
    disturbances = rng.uniform(lo, hi, size=(200, 2))
    # Algorithm 1 requires x(0) ∈ XI; start from a random state in X'.
    x0 = x_prime.sample(rng, 1)[0]
    stats = runner.run(x0, disturbances)

    # 5. Compare with running the controller every step.
    baseline = run_controller_only(system, controller, x0, disturbances)
    print("\n--- 200 steps from x0 =", np.round(x0, 3), "---")
    print(f"always-run  energy Σ|u| = {baseline.energy:8.3f}")
    print(f"intermittent energy Σ|u| = {stats.energy:8.3f}  "
          f"({100 * (1 - stats.energy / baseline.energy):.1f}% saved)")
    print(f"skipped {stats.skipped_steps}/{stats.steps} steps "
          f"({stats.forced_steps} monitor-forced)")
    print(f"all states safe: {system.safe_set.contains_points(stats.states).all()}")
    # Computation saving is only meaningful when κ is expensive (an
    # LQR gain costs microseconds, so monitoring dominates here); see
    # examples/acc_energy_saving.py for the RMPC numbers of Sec. IV-A.
    saving = stats.computation_saving()
    if saving > 0:
        print(f"computation saving (measured): {100 * saving:.1f}%")
    else:
        print("computation saving: n/a for a trivial controller "
              "(monitoring costs more than u = Kx itself)")


if __name__ == "__main__":
    main()
