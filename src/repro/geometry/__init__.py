"""Polytope geometry kernel.

Everything the set-theoretic side of the paper needs: halfspace polytopes,
Minkowski algebra, projections and support functions.  See
:class:`repro.geometry.HPolytope` for the core type.
"""

from repro.geometry.hpolytope import EmptySetError, HPolytope, MembershipTester
from repro.geometry.operations import (
    affine_image,
    affine_preimage,
    box_hull,
    intersection,
    iterated_sum,
    matrix_power_sum,
    minkowski_sum,
    pontryagin_difference,
    support_vector,
)
from repro.geometry.projection import eliminate_variable, project_onto
from repro.geometry.render import ascii_sets, ascii_trajectory

__all__ = [
    "ascii_sets",
    "ascii_trajectory",
    "HPolytope",
    "MembershipTester",
    "EmptySetError",
    "minkowski_sum",
    "pontryagin_difference",
    "intersection",
    "affine_preimage",
    "affine_image",
    "iterated_sum",
    "matrix_power_sum",
    "box_hull",
    "support_vector",
    "project_onto",
    "eliminate_variable",
]
