"""Structured results of experiments and sweeps.

A :class:`CellResult` keeps one grid cell's full per-case metric arrays
(every approach saw the identical realisations, so the arrays are
paired); a :class:`SweepResult` collects the cells and flattens them into
a stable row table — one row per (cell, approach) with a unique ``key`` —
that round-trips through CSV (the flat aggregate view) and JSON (full
per-case fidelity).
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

__all__ = [
    "ApproachResult",
    "CellFailure",
    "CellResult",
    "ExperimentResult",
    "SweepResult",
    "cell_from_dict",
    "cell_to_dict",
]

#: Fixed CSV column order of the flat row table.
CSV_COLUMNS = (
    "key",
    "scenario",
    "point",
    "approach",
    "cases",
    "horizon",
    "seed",
    "engine",
    "exact_solves",
    "mean_energy",
    "energy_saving",
    "mean_skip_rate",
    "mean_forced_steps",
    "max_violation",
    "mean_fuel",
    "fuel_saving",
    "mean_controller_ms",
    "mean_monitor_ms",
    "safe",
    "solve_count",
    "stacked_solves",
    "scalar_solves",
    "lp_backend_used",
)

_INT_COLUMNS = frozenset(
    {"cases", "horizon", "seed", "solve_count", "stacked_solves",
     "scalar_solves"}
)
_BOOL_COLUMNS = frozenset({"exact_solves", "safe"})
_STR_COLUMNS = frozenset({"key", "scenario", "point", "approach", "engine"})
_OPT_STR_COLUMNS = frozenset({"lp_backend_used"})

#: Wall-clock-derived columns excluded from determinism comparisons.
TIMING_COLUMNS = frozenset({"mean_controller_ms", "mean_monitor_ms"})

#: Execution-metadata columns (how a sweep ran, not what it computed),
#: also excluded when comparing runs across engines/tiers/worker counts.
EXECUTION_COLUMNS = frozenset({"engine", "exact_solves"})

#: Solver-effort columns.  Like execution metadata they describe *how*
#: a cell was computed — the lockstep engine batches solves the serial
#: engine performs one by one — so they are excluded from the
#: deterministic comparison view too.
SOLVER_COLUMNS = frozenset(
    {"solve_count", "stacked_solves", "scalar_solves", "lp_backend_used"}
)


@dataclass
class ApproachResult:
    """Per-case metrics of one approach in one grid cell.

    Attributes:
        metrics: Metric name → per-case array (``energy``, ``skip_rate``,
            ``forced_steps``, ``max_violation``; the ACC pattern workload
            adds ``fuel``).
        mean_controller_ms: Mean κ wall-clock per invocation [ms].
        mean_monitor_ms: Mean monitor+Ω wall-clock per step [ms].
        solver: Solver-effort summary for this approach's leg
            (``solve_count``, ``scalar_solves``, ``stacked_solves``,
            ``stacked_fallbacks``, ``lp_backend``), measured from the
            always-on telemetry counters — or ``None`` when the
            controller performs no LP solves (linear feedback κ).
    """

    metrics: Dict[str, np.ndarray]
    mean_controller_ms: float
    mean_monitor_ms: float
    solver: Optional[dict] = None


@dataclass
class CellResult:
    """One evaluated grid cell: every approach over shared realisations.

    Attributes:
        key: The cell's stable row key (``scenario[@axis=label,...]``).
        scenario: The experiment's display label.
        coords: ``((axis, label), ...)`` grid coordinates.
        config: Reproducibility metadata (``cases``, ``horizon``,
            ``seed``, ``memory_length``, ``engine``, ``exact_solves``,
            ``pattern``).
        approaches: Approach name → :class:`ApproachResult`; the
            κ-every-step reference leg is ``"baseline"``.
        telemetry: This cell's metrics/span snapshot
            (:meth:`repro.observability.MetricsRegistry.snapshot`) when
            the cell ran with telemetry enabled, else ``None``.
    """

    key: str
    scenario: str
    coords: tuple
    config: dict
    approaches: Dict[str, ApproachResult]
    telemetry: Optional[dict] = None

    def stats(self, approach: str) -> ApproachResult:
        """Stats by approach name (``"baseline"`` or a policy name)."""
        try:
            return self.approaches[approach]
        except KeyError:
            known = ", ".join(sorted(self.approaches)) or "<none>"
            raise ValueError(
                f"unknown approach {approach!r}; evaluated: {known}"
            ) from None

    def _saving(self, approach: str, metric: str) -> np.ndarray:
        stats = self.stats(approach)
        if metric not in stats.metrics:
            raise ValueError(
                f"cell {self.key!r} has no {metric!r} metric "
                "(only the ACC pattern workload measures fuel)"
            )
        base = self.approaches["baseline"].metrics[metric]
        out = np.zeros_like(base)
        nonzero = np.abs(base) > 1e-12
        out[nonzero] = (base[nonzero] - stats.metrics[metric][nonzero]) / base[nonzero]
        return out

    def energy_saving(self, approach: str) -> np.ndarray:
        """Per-case fractional Σ‖u‖₁ saving vs the baseline (0/0 → 0)."""
        return self._saving(approach, "energy")

    def fuel_saving(self, approach: str) -> np.ndarray:
        """Per-case fractional fuel saving vs the baseline (ACC only)."""
        return self._saving(approach, "fuel")

    @property
    def always_safe(self) -> bool:
        """True iff no approach ever left the safe set in any case."""
        return all(
            float(stats.metrics["max_violation"].max()) <= 0.0
            for stats in self.approaches.values()
        )

    def rows(self) -> List[dict]:
        """This cell's flat table rows (baseline first)."""
        point = ",".join(f"{axis}={label}" for axis, label in self.coords)
        rows = []
        for name, stats in self.approaches.items():
            fuel = stats.metrics.get("fuel")
            solver = stats.solver or {}
            rows.append(
                {
                    "key": f"{self.key}/{name}",
                    "scenario": self.scenario,
                    "point": point,
                    "approach": name,
                    "cases": int(self.config["cases"]),
                    "horizon": int(self.config["horizon"]),
                    "seed": int(self.config["seed"]),
                    "engine": str(self.config["engine"]),
                    "exact_solves": bool(self.config["exact_solves"]),
                    "mean_energy": float(stats.metrics["energy"].mean()),
                    "energy_saving": (
                        0.0
                        if name == "baseline"
                        else float(self.energy_saving(name).mean())
                    ),
                    "mean_skip_rate": float(stats.metrics["skip_rate"].mean()),
                    "mean_forced_steps": float(
                        stats.metrics["forced_steps"].mean()
                    ),
                    "max_violation": float(stats.metrics["max_violation"].max()),
                    "mean_fuel": None if fuel is None else float(fuel.mean()),
                    "fuel_saving": (
                        None
                        if fuel is None
                        else (
                            0.0
                            if name == "baseline"
                            else float(self.fuel_saving(name).mean())
                        )
                    ),
                    "mean_controller_ms": float(stats.mean_controller_ms),
                    "mean_monitor_ms": float(stats.mean_monitor_ms),
                    "safe": bool(
                        float(stats.metrics["max_violation"].max()) <= 0.0
                    ),
                    "solve_count": solver.get("solve_count"),
                    "stacked_solves": solver.get("stacked_solves"),
                    "scalar_solves": solver.get("scalar_solves"),
                    "lp_backend_used": solver.get("lp_backend"),
                }
            )
        return rows


#: :func:`~repro.experiments.runner.run_experiment` returns one cell.
ExperimentResult = CellResult


@dataclass
class CellFailure:
    """One grid cell that could not be evaluated.

    Produced by :func:`~repro.experiments.runner.run_sweep` under
    ``on_error="record"``/``"retry"`` (and for worker-retry exhaustion)
    instead of aborting the grid — the surviving cells' rows stay valid
    and the failure is queryable afterwards.

    Attributes:
        key: The failed cell's stable key.
        scenario: The experiment's display label.
        coords: ``((axis, label), ...)`` grid coordinates.
        error_type: Exception class name (e.g. ``"RMPCInfeasibleError"``)
            or ``"WorkerFailure"`` for a worker that died/hung past its
            retry budget.
        message: The final attempt's error message.
        attempts: How many evaluation attempts were made in total.
        stage: ``"cell"`` for an exception raised by the cell body,
            ``"worker"`` for a supervision-level failure (dead or hung
            worker past its retry budget).
    """

    key: str
    scenario: str
    coords: tuple
    error_type: str
    message: str
    attempts: int = 1
    stage: str = "cell"

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "scenario": self.scenario,
            "coords": [list(pair) for pair in self.coords],
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "stage": self.stage,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CellFailure":
        return cls(
            key=payload["key"],
            scenario=payload["scenario"],
            coords=tuple(tuple(pair) for pair in payload["coords"]),
            error_type=payload["error_type"],
            message=payload["message"],
            attempts=int(payload.get("attempts", 1)),
            stage=payload.get("stage", "cell"),
        )


def cell_to_dict(cell: CellResult) -> dict:
    """A :class:`CellResult` as a JSON-safe dict (full per-case arrays).

    The unit of both :meth:`SweepResult.to_json` and the per-cell
    checkpoint spill (:mod:`repro.experiments.checkpoint`).
    """
    return {
        "key": cell.key,
        "scenario": cell.scenario,
        "coords": [list(pair) for pair in cell.coords],
        "config": cell.config,
        "approaches": {
            name: {
                "metrics": {
                    metric: values.tolist()
                    for metric, values in stats.metrics.items()
                },
                "mean_controller_ms": stats.mean_controller_ms,
                "mean_monitor_ms": stats.mean_monitor_ms,
                "solver": stats.solver,
            }
            for name, stats in cell.approaches.items()
        },
        "telemetry": cell.telemetry,
    }


def cell_from_dict(entry: dict) -> CellResult:
    """Inverse of :func:`cell_to_dict` (arrays restored as float64)."""
    return CellResult(
        key=entry["key"],
        scenario=entry["scenario"],
        coords=tuple(tuple(pair) for pair in entry["coords"]),
        config=dict(entry["config"]),
        approaches={
            name: ApproachResult(
                metrics={
                    metric: np.asarray(values, dtype=float)
                    for metric, values in stats["metrics"].items()
                },
                mean_controller_ms=float(stats["mean_controller_ms"]),
                mean_monitor_ms=float(stats["mean_monitor_ms"]),
                solver=stats.get("solver"),
            )
            for name, stats in entry["approaches"].items()
        },
        telemetry=entry.get("telemetry"),
    )


class SweepResult:
    """The structured table a sweep returns.

    Iterating yields :class:`CellResult`s in grid order; :meth:`rows`
    flattens them into one dict per (cell, approach) with stable unique
    ``key``s and the fixed :data:`CSV_COLUMNS` schema.

    Serialisation: :meth:`to_json`/:meth:`from_json` round-trip the full
    per-case arrays; :meth:`to_csv`/:meth:`from_csv` round-trip the flat
    aggregate row table exactly (floats are written with ``repr``).
    """

    def __init__(
        self,
        cells,
        rows: Optional[List[dict]] = None,
        telemetry: Optional[dict] = None,
        failures: Optional[List[CellFailure]] = None,
        restored: Optional[List[str]] = None,
    ):
        self.cells: List[CellResult] = list(cells)
        if rows is None:
            rows = [row for cell in self.cells for row in cell.rows()]
        self._rows = [dict(row) for row in rows]
        #: The whole sweep's merged metrics/span snapshot when it ran
        #: with telemetry enabled, else ``None``.
        self.telemetry = telemetry
        #: Cells that could not be evaluated (``on_error="record"`` /
        #: ``"retry"``), in grid order; empty on a clean sweep.
        self.failures: List[CellFailure] = list(failures or [])
        #: Keys of cells served from a checkpoint/result store instead
        #: of being solved in this run, in grid order.  Empty on an
        #: uncached sweep — and excluded from equality-of-results
        #: comparisons, since *where* a cell came from is provenance,
        #: not data.
        self.restored: List[str] = list(restored or [])

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.cells)

    def cell(self, key: str) -> CellResult:
        """Cell lookup by its stable key."""
        for cell in self.cells:
            if cell.key == key:
                return cell
        known = ", ".join(cell.key for cell in self.cells) or "<none>"
        raise KeyError(f"unknown cell {key!r}; cells: {known}")

    @property
    def always_safe(self) -> bool:
        """True iff every cell was violation-free under every approach."""
        return all(row["safe"] for row in self._rows)

    @property
    def ok(self) -> bool:
        """True iff every planned cell was actually evaluated."""
        return not self.failures

    def rows(self) -> List[dict]:
        """The flat row table (one dict per cell × approach)."""
        return [dict(row) for row in self._rows]

    def row_keys(self) -> List[str]:
        """Stable unique keys, one per row, in table order."""
        return [row["key"] for row in self._rows]

    def deterministic_rows(self) -> List[dict]:
        """Rows minus wall-clock, execution-metadata and solver-effort
        columns — the cross-worker/engine comparison view of the
        sharding contract."""
        excluded = TIMING_COLUMNS | EXECUTION_COLUMNS | SOLVER_COLUMNS
        return [
            {k: v for k, v in row.items() if k not in excluded}
            for row in self._rows
        ]

    # ------------------------------------------------------------------
    def to_csv(self, path: str) -> None:
        """Write the flat row table (``None`` → empty field)."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(CSV_COLUMNS)
            for row in self._rows:
                writer.writerow(
                    [
                        ""
                        if row[column] is None
                        else (
                            repr(row[column])
                            if isinstance(row[column], float)
                            else row[column]
                        )
                        for column in CSV_COLUMNS
                    ]
                )

    @classmethod
    def from_csv(cls, path: str) -> "SweepResult":
        """Rebuild the row table (cells are not recoverable from CSV)."""
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise ValueError(f"{path}: empty CSV") from None
            if tuple(header) != CSV_COLUMNS:
                raise ValueError(
                    f"{path}: unexpected columns {header}; expected "
                    f"{list(CSV_COLUMNS)}"
                )
            rows = [
                {
                    column: _parse_csv_field(column, value)
                    for column, value in zip(CSV_COLUMNS, record)
                }
                for record in reader
            ]
        return cls(cells=[], rows=rows)

    def to_payload(self) -> dict:
        """The full-fidelity JSON-safe dict (per-case arrays included)
        behind :meth:`to_json` — also what the experiment service's
        ``GET /v1/sweeps/{id}/result`` returns."""
        return {
            "cells": [cell_to_dict(cell) for cell in self.cells],
            "telemetry": self.telemetry,
            "failures": [failure.to_dict() for failure in self.failures],
            "restored": list(self.restored),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SweepResult":
        """Inverse of :meth:`to_payload`."""
        cells = [cell_from_dict(entry) for entry in payload["cells"]]
        failures = [
            CellFailure.from_dict(entry)
            for entry in payload.get("failures", [])
        ]
        return cls(
            cells=cells,
            telemetry=payload.get("telemetry"),
            failures=failures,
            restored=payload.get("restored"),
        )

    def to_json(self, path: str) -> None:
        """Write full-fidelity cells (per-case arrays included)."""
        with open(path, "w") as handle:
            json.dump(self.to_payload(), handle, indent=2)

    @classmethod
    def from_json(cls, path: str) -> "SweepResult":
        """Rebuild cells (and hence rows) from :meth:`to_json` output."""
        with open(path) as handle:
            payload = json.load(handle)
        return cls.from_payload(payload)


def _parse_csv_field(column: str, value: str):
    if column in _STR_COLUMNS:
        return value
    if value == "":
        return None
    if column in _OPT_STR_COLUMNS:
        return value
    if column in _INT_COLUMNS:
        return int(value)
    if column in _BOOL_COLUMNS:
        return value == "True"
    return float(value)
