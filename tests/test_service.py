"""End-to-end proofs for the experiment service.

The central contract (ISSUE 10's acceptance criterion): a
``SweepResult`` fetched through the HTTP API — cold store, warm store,
or a resubmission after editing one cell of the grid — has
``deterministic_rows()`` and deterministic-view telemetry exactly equal
to an uncached in-process ``run_sweep(jobs=1)``, with warm results
byte-identical (timing included) to the run that populated the store,
and the edited resubmission re-solving *only* the dirty cells (proved
via ``scenario_builds_total`` and store hit/miss counters).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.experiments import (
    ExecutionConfig,
    ExperimentSpec,
    ParameterAxis,
    SweepPlan,
    plan_from_dict,
    plan_to_dict,
    run_sweep,
)
from repro.experiments.runner import _cell_config
from repro.experiments.serialization import (
    PLAN_FORMAT,
    execution_from_dict,
    execution_to_dict,
)
from repro.observability import metrics as obs
from repro.service import (
    JobManager,
    ResultStore,
    ServiceClient,
    ServiceError,
    serve,
)
from repro.utils import chaos

PLAN_KW = dict(num_cases=2, horizon=6, seed=3)
EXEC = ExecutionConfig(engine="lockstep", jobs=1, telemetry=True)


def make_plan(values=(5, 6)):
    return SweepPlan.for_scenarios(
        ["thermal"],
        axes=(ParameterAxis("horizon", values),),
        execution=EXEC,
        **PLAN_KW,
    )


@pytest.fixture(scope="module")
def reference():
    """The uncached in-process jobs=1 run every service result must
    reproduce — after a warm-up sweep so in-process caches (scenario
    builder, monitor proofs, LP stacks) are in the same state for the
    reference and for every later service job."""
    run_sweep(make_plan((5, 6, 7)))
    return run_sweep(make_plan())


@pytest.fixture()
def service(tmp_path):
    """A live server over a fresh store + a client bound to it."""
    server = serve(tmp_path / "store", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield ServiceClient(server.url)
    finally:
        server.close()
        thread.join(timeout=10)


def counter_total(snapshot, name: str, **labels):
    return sum(
        entry["value"]
        for entry in (snapshot or {}).get("counters", {}).get(name, [])
        if all(entry["labels"].get(k) == v for k, v in labels.items())
    )


# ----------------------------------------------------------------------
# Plan serialisation
# ----------------------------------------------------------------------
class TestPlanSerialization:
    def test_roundtrip_preserves_cells_and_store_addresses(self):
        plan = make_plan()
        hop = plan_from_dict(json.loads(json.dumps(plan_to_dict(plan))))
        assert [c.key for c in hop.cells()] == [
            c.key for c in plan.cells()
        ]
        # Identical reproducibility configs → identical store addresses.
        for ours, theirs in zip(plan.cells(), hop.cells()):
            assert _cell_config(ours, plan.execution) == _cell_config(
                theirs, hop.execution
            )

    def test_tuple_override_values_survive_the_json_hop(self):
        plan = SweepPlan(
            experiments=(
                ExperimentSpec(
                    scenario="thermal",
                    overrides={"disturbance_scale": (0.5, 1.5)},
                    **PLAN_KW,
                ),
            ),
        )
        hop = plan_from_dict(json.loads(json.dumps(plan_to_dict(plan))))
        assert hop.experiments[0].overrides == (
            ("disturbance_scale", (0.5, 1.5)),
        )
        assert _cell_config(hop.cells()[0], hop.execution) == _cell_config(
            plan.cells()[0], plan.execution
        )

    def test_execution_roundtrips_every_field(self):
        execution = ExecutionConfig(
            engine="lockstep", jobs=3, exact_solves=True,
            lp_backend="scipy", shard="none", collect_timing=False,
            kernel="numpy", telemetry=True, on_error="retry",
            cell_retries=2, cell_timeout=9.5, worker_retries=1,
        )
        assert execution_from_dict(
            execution_to_dict(execution)
        ) == execution

    def test_unknown_execution_field_rejected(self):
        with pytest.raises(ValueError, match="unknown execution fields"):
            execution_from_dict({"engine": "serial", "bogus": 1})

    def test_policies_do_not_serialise(self):
        plan = SweepPlan(
            experiments=(
                ExperimentSpec(
                    scenario="thermal",
                    approaches=("custom",),
                    policies={"custom": object()},
                ),
            ),
        )
        with pytest.raises(ValueError, match="policies"):
            plan_to_dict(plan)

    def test_format_version_mismatch_rejected(self):
        payload = plan_to_dict(make_plan())
        payload["format"] = PLAN_FORMAT + 1
        with pytest.raises(ValueError, match="unsupported plan format"):
            plan_from_dict(payload)


# ----------------------------------------------------------------------
# JobManager (in-process)
# ----------------------------------------------------------------------
class TestJobManager:
    def test_cold_job_equals_uncached_run_sweep(self, tmp_path, reference):
        manager = JobManager(tmp_path / "store")
        try:
            job = manager.submit_plan(make_plan())
            assert job.wait(timeout=300)
            assert job.state == "done"
            assert job.result.deterministic_rows() == (
                reference.deterministic_rows()
            )
            assert obs.deterministic_view(job.result.telemetry) == (
                obs.deterministic_view(reference.telemetry)
            )
            assert job.result.restored == []
        finally:
            manager.shutdown()

    def test_second_job_served_entirely_from_the_store(
        self, tmp_path, reference
    ):
        manager = JobManager(tmp_path / "store")
        try:
            first = manager.submit_plan(make_plan())
            second = manager.submit_plan(make_plan())
            assert second.wait(timeout=300)
            # Byte-identical (timing columns included): the rows *are*
            # the stored first-job rows.
            assert second.result.rows() == first.result.rows()
            assert second.result.restored == [
                cell.key for cell in make_plan().cells()
            ]
            assert second.status()["cells_restored"] == 2
            assert obs.deterministic_view(second.result.telemetry) == (
                obs.deterministic_view(reference.telemetry)
            )
        finally:
            manager.shutdown()

    def test_rows_feed_streams_with_cursor(self, tmp_path):
        manager = JobManager(tmp_path / "store")
        try:
            job = manager.submit_plan(make_plan())
            assert job.wait(timeout=300)
            rows, cursor = job.rows_since(0)
            assert cursor == len(rows) == 6  # 2 cells x 3 approaches
            more, cursor2 = job.rows_since(cursor)
            assert more == [] and cursor2 == cursor
            tail, _ = job.rows_since(3)
            assert tail == rows[3:]
        finally:
            manager.shutdown()

    def test_cancel_queued_job(self, tmp_path):
        manager = JobManager(tmp_path / "store")
        try:
            running = manager.submit_plan(make_plan())
            queued = manager.submit_plan(make_plan((7, 8)))
            assert manager.cancel(queued.id)
            assert queued.wait(timeout=10)
            assert queued.state == "cancelled"
            assert running.wait(timeout=300)
            assert running.state == "done"
            # Terminal jobs cannot be re-cancelled.
            assert not manager.cancel(queued.id)
            assert not manager.cancel(running.id)
        finally:
            manager.shutdown()

    def test_cancel_running_job_stops_at_cell_boundary(self, tmp_path):
        manager = JobManager(tmp_path / "store")
        try:
            # Stall the second cell so the cancel deterministically
            # lands while the job is mid-grid.
            stall = chaos.FaultPlan(
                cell_delays=(
                    chaos.CellDelay(key="thermal@horizon=6", seconds=2.0),
                )
            )
            with chaos.inject(stall):
                job = manager.submit_plan(make_plan())
                while job.status()["cells_done"] < 1:
                    assert not job.done, job.status()
                assert job.cancel()
                assert job.wait(timeout=60)
            assert job.state == "cancelled"
            # The first cell's record survived into the shared store.
            store = manager.store
            config = _cell_config(make_plan().cells()[0], EXEC)
            assert store.contains("thermal@horizon=5", config)
        finally:
            manager.shutdown()

    def test_invalid_payload_rejected_on_submit(self, tmp_path):
        manager = JobManager(tmp_path / "store")
        try:
            with pytest.raises(ValueError):
                manager.submit({"format": 99, "experiments": []})
            with pytest.raises(ValueError):
                manager.submit({"experiments": []})
        finally:
            manager.shutdown()

    def test_shutdown_rejects_new_jobs(self, tmp_path):
        manager = JobManager(tmp_path / "store")
        manager.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            manager.submit_plan(make_plan())


# ----------------------------------------------------------------------
# HTTP API: the service determinism proof
# ----------------------------------------------------------------------
class TestServiceHTTP:
    def test_cold_warm_and_edited_resubmit_determinism(
        self, service, reference
    ):
        # Hit/miss/put counters are cumulative over the server process
        # (other tests in this process count too) — assert differentials.
        stats0 = service.store_stats()

        # --- cold: every cell solved server-side ---------------------
        cold_id = service.submit(make_plan())
        status = service.wait(cold_id, timeout=300)
        assert status["state"] == "done"
        assert status["cells_restored"] == 0
        cold = service.result(cold_id)
        assert cold.deterministic_rows() == reference.deterministic_rows()
        assert obs.deterministic_view(cold.telemetry) == (
            obs.deterministic_view(reference.telemetry)
        )

        # --- warm: resubmitting the identical grid is 100% store-hits
        warm_id = service.submit(plan_to_dict(make_plan()))
        status = service.wait(warm_id, timeout=300)
        assert status["cells_restored"] == status["cells_total"] == 2
        warm = service.result(warm_id)
        # Byte-identical to the run that populated the store — timing
        # columns included — and equal to the uncached reference in the
        # deterministic view.
        assert warm.rows() == cold.rows()
        assert warm.deterministic_rows() == reference.deterministic_rows()
        assert obs.deterministic_view(warm.telemetry) == (
            obs.deterministic_view(reference.telemetry)
        )
        # Each warm cell evaluated no scenario at all: builds appear
        # only in the (restored) stored snapshots, in the same counts
        # as the reference run.
        assert counter_total(
            warm.telemetry, "scenario_builds_total"
        ) == counter_total(reference.telemetry, "scenario_builds_total")

        # --- edited resubmit: only the dirty cell re-solves ----------
        edited_id = service.submit(make_plan((5, 7)))  # 6 → 7: one edit
        status = service.wait(edited_id, timeout=300)
        assert status["state"] == "done"
        assert status["cells_restored"] == 1  # horizon=5 from the store
        edited = service.result(edited_id)
        assert edited.restored == ["thermal@horizon=5"]
        ref_edited = run_sweep(make_plan((5, 7)))
        assert edited.deterministic_rows() == (
            ref_edited.deterministic_rows()
        )
        assert obs.deterministic_view(edited.telemetry) == (
            obs.deterministic_view(ref_edited.telemetry)
        )
        # Store-level differential: the edited job probed 2 addresses
        # and missed exactly the dirty one.
        stats = service.store_stats()
        assert stats["files"] == 3  # horizon 5, 6, 7
        assert stats["hits"] - stats0["hits"] == 3  # 2 warm + 1 edited
        assert (
            stats["misses"] - stats0["misses"] == 3
        )  # 2 cold + 1 edited (dirty cell)
        assert stats["puts"] - stats0["puts"] == 3  # every miss re-solved

    def test_status_rows_and_listing_routes(self, service):
        job_id = service.submit(make_plan())
        status = service.wait(job_id, timeout=300)
        assert status["id"] == job_id
        assert status["cells_done"] == status["cells_total"] == 2
        rows, cursor, state = service.rows(job_id)
        assert state == "done" and cursor == 6
        assert [row["key"] for row in rows] == [
            row["key"] for row in service.result(job_id).rows()
        ]
        # Cursor resumes mid-feed.
        tail, cursor2, _ = service.rows(job_id, cursor=4)
        assert tail == rows[4:] and cursor2 == 6
        listing = service.jobs()
        assert [job["id"] for job in listing] == [job_id]
        assert service.health() == {"status": "ok"}

    def test_error_routes(self, service):
        with pytest.raises(ServiceError) as info:
            service.status("job-999")
        assert info.value.status == 404
        with pytest.raises(ServiceError) as info:
            service.submit({"experiments": []})
        assert info.value.status == 400
        job_id = service.submit(make_plan())
        # Result before completion is a 409 (the job may legitimately
        # finish first on a fast box; accept either outcome).
        try:
            service.result(job_id)
        except ServiceError as exc:
            assert exc.status == 409
        service.wait(job_id, timeout=300)
        with pytest.raises(ServiceError) as info:
            service._request("GET", "/v1/nope")
        assert info.value.status == 404

    def test_cancel_route(self, service):
        first = service.submit(make_plan())
        queued = service.submit(make_plan((7, 8)))
        payload = service.cancel(queued)
        assert payload["cancelled"] is True
        assert service.wait(queued, timeout=30)["state"] == "cancelled"
        assert service.wait(first, timeout=300)["state"] == "done"


# ----------------------------------------------------------------------
# Shared-store concurrency: two managers + a checkpointed sweep
# ----------------------------------------------------------------------
class TestSharedStoreConcurrency:
    def test_two_managers_and_a_checkpointed_sweep_share_one_store(
        self, tmp_path, reference
    ):
        store_dir = tmp_path / "store"
        managers = [JobManager(store_dir) for _ in range(2)]
        try:
            # Both managers race the same grid into one store while a
            # checkpointed sweep of the same plan runs in this thread —
            # three concurrent writers of the same two addresses.
            jobs = [m.submit_plan(make_plan()) for m in managers]
            swept = run_sweep(make_plan(), checkpoint=str(store_dir))
            for job in jobs:
                assert job.wait(timeout=300)
                assert job.state == "done"
                assert job.result.deterministic_rows() == (
                    reference.deterministic_rows()
                )
            assert swept.deterministic_rows() == (
                reference.deterministic_rows()
            )
            # Last write wins, whole records only: both addresses hold
            # valid, loadable cells.
            store = ResultStore(store_dir)
            for cell in make_plan().cells():
                found, reason = store.lookup(
                    cell.key, _cell_config(cell, EXEC)
                )
                assert found is not None, reason
        finally:
            for manager in managers:
                manager.shutdown()
