"""Generic case-study builder: ScenarioSpec → ready-to-run benchmark.

:func:`build_case_study` performs, for any constrained LTI plant, exactly
the synthesis pipeline ``repro.acc`` used to hand-roll for the ACC model:

1. discretize the dynamics if the spec is continuous-time;
2. instantiate the constrained plant (:class:`DiscreteLTISystem`);
3. construct the safe controller κ — the tube RMPC of Eq. 5, or a linear
   feedback with an auto-synthesised LQR gain;
4. synthesise a *certified* robust (control) invariant set ``XI``
   (Prop. 1 feasible region for the RMPC; maximal RPI set of the closed
   loop for linear feedback);
5. derive the strengthened safe set ``X' = B(XI, u_skip) ∩ XI`` (Def. 3).

Synthesis is cached per parameter set (see
:attr:`repro.scenarios.spec.ScenarioSpec.cache_key`) within the process;
:func:`clear_case_study_cache` drops all entries, mirroring the contract
the ACC case study has always offered.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.controllers.base import Controller
from repro.controllers.feasible import rmpc_invariant_set
from repro.controllers.linear import LinearFeedback, lqr_gain
from repro.controllers.rmpc import RobustMPC
from repro.framework.accounting import RunStats
from repro.framework.monitor import SafetyMonitor
from repro.geometry import HPolytope
from repro.invariance.rci import maximal_rpi
from repro.invariance.reach import strengthened_safe_set
from repro.observability.metrics import registry as _telemetry
from repro.scenarios.spec import ScenarioSpec, ScenarioSynthesisError
from repro.systems.lti import DiscreteLTISystem

logger = logging.getLogger(__name__)

__all__ = ["CaseStudy", "build_case_study", "clear_case_study_cache"]


@dataclass
class CaseStudy:
    """A fully-synthesised benchmark: plant, κ, certified sets, helpers.

    The scenario-agnostic counterpart of
    :class:`repro.acc.case_study.ACCCaseStudy` — everything the runners,
    the sweep and the benchmarks need, for any registered plant.

    Attributes:
        spec: The originating specification.
        system: The constrained discrete plant.
        controller: The safe controller κ (RMPC or linear feedback).
        invariant_set: Certified robust (control) invariant set ``XI``.
        strengthened_set: ``X' = B(XI, u_skip) ∩ XI``.
    """

    spec: ScenarioSpec
    system: DiscreteLTISystem
    controller: Controller
    invariant_set: HPolytope
    strengthened_set: HPolytope

    @property
    def name(self) -> str:
        """The scenario's registry name."""
        return self.spec.name

    @property
    def skip_input(self) -> np.ndarray:
        """Constant input applied when skipping."""
        return self.spec.effective_skip_input()

    def make_monitor(self, strict: bool = True) -> SafetyMonitor:
        """A fresh safety monitor over this scenario's nested sets."""
        return SafetyMonitor(
            strengthened_set=self.strengthened_set,
            invariant_set=self.invariant_set,
            safe_set=self.system.safe_set,
            strict=strict,
        )

    def sample_initial_states(
        self, rng: np.random.Generator, count: int, region: str = "strengthened"
    ) -> np.ndarray:
        """Random initial states inside ``X'`` (default) or ``XI``."""
        if region == "strengthened":
            return self.strengthened_set.sample(rng, count)
        if region == "invariant":
            return self.invariant_set.sample(rng, count)
        raise ValueError("region must be 'strengthened' or 'invariant'")

    def disturbance_factory(self, horizon: int) -> Callable:
        """Seeded per-episode disturbance factory (uniform i.i.d. in ``W``).

        Returns a ``(episode, rng) -> (T, n)`` callable for the batch
        runners' ``run_seeded``: realisations depend only on the root
        seed and episode index, never on worker scheduling.  Scenarios
        with structured environments (the ACC front-vehicle patterns)
        supply their own factory instead.
        """
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        disturbance_set = self.system.disturbance_set

        def factory(episode: int, rng: np.random.Generator) -> np.ndarray:
            return disturbance_set.sample(rng, horizon)

        return factory

    def energy_of_run(self, stats: RunStats) -> float:
        """Problem-1 energy Σ‖u‖₁ over the steps where κ actually ran.

        Skipped steps apply the scenario's constant skip input, which the
        paper's Problem 1 treats as free (its skip is literally zero
        actuation).  Counting only controller steps keeps the metric
        meaningful for scenarios whose skip input is nonzero in shifted
        coordinates (the ACC's coast input) — for zero-skip scenarios it
        coincides with ``stats.energy``.
        """
        run_steps = stats.decisions == 1
        return float(np.abs(stats.inputs[run_steps]).sum())


_CACHE: Dict[str, CaseStudy] = {}


def _fail(spec: ScenarioSpec, stage: str, detail: str) -> ScenarioSynthesisError:
    return ScenarioSynthesisError(
        f"scenario {spec.name!r}: {stage} failed — {detail}"
    )


def _synthesise_rmpc(spec: ScenarioSpec, system: DiscreteLTISystem) -> tuple:
    """κ_R + certified ``XI`` (the RMPC feasible region, Prop. 1)."""
    try:
        controller = RobustMPC(
            system,
            horizon=spec.horizon,
            state_weight=spec.state_weight,
            input_weight=spec.input_weight,
        )
    except ValueError as exc:
        raise _fail(spec, "RMPC construction", str(exc)) from exc
    try:
        invariant = rmpc_invariant_set(controller, verify=True)
    except ValueError as exc:
        raise _fail(
            spec,
            "invariant-set synthesis",
            f"{exc} (the disturbance set may be too large for the input "
            "authority, or the tightening may empty the feasible region)",
        ) from exc
    return controller, invariant


def _synthesise_linear(spec: ScenarioSpec, system: DiscreteLTISystem) -> tuple:
    """``κ(x) = K x`` + certified ``XI`` (maximal RPI of the closed loop).

    The candidate region is ``X ∩ {x : K x ∈ U}`` so the invariant set
    respects the input limits; within it the feedback never saturates,
    which is what makes the RPI certificate transfer to the saturated
    controller actually deployed.
    """
    if spec.gain is not None:
        K = spec.gain
    else:
        try:
            K = lqr_gain(
                system.A,
                system.B,
                spec.state_weight * np.eye(system.n),
                spec.input_weight * np.eye(system.m),
            )
        except Exception as exc:
            raise _fail(
                spec, "LQR gain synthesis", f"{type(exc).__name__}: {exc}"
            ) from exc
    lower, upper = system.input_set.bounding_box()
    controller = LinearFeedback(K, saturation=(lower, upper))
    seed = system.safe_set.intersect(system.input_set.linear_preimage(K))
    if seed.is_empty():
        raise _fail(
            spec,
            "invariant-set synthesis",
            "X ∩ {x : K x ∈ U} is empty — the gain saturates everywhere",
        )
    try:
        result = maximal_rpi(
            system.closed_loop_matrix(K), seed, system.disturbance_set
        )
    except ValueError as exc:
        raise _fail(
            spec,
            "invariant-set synthesis",
            f"{exc} (no RPI subset under u = K x; soften the gain via "
            "input_weight or shrink the disturbance set)",
        ) from exc
    return controller, result.invariant_set


def build_case_study(spec: ScenarioSpec, use_cache: bool = True) -> CaseStudy:
    """Synthesise (or fetch from cache) the full benchmark for ``spec``.

    Args:
        spec: The scenario specification.
        use_cache: Reuse previously-synthesised instances whose
            :attr:`~repro.scenarios.spec.ScenarioSpec.cache_key` matches.

    Returns:
        A ready :class:`CaseStudy` with certified, non-empty ``XI`` and
        ``X'``.

    Raises:
        ScenarioSynthesisError: When any synthesis stage fails — the
            dynamics/constraints admit no certified invariant set, or the
            skip input empties the strengthened set.  The message names
            the scenario and the failing stage.
    """
    if use_cache and spec.cache_key in _CACHE:
        cached = _CACHE[spec.cache_key]
        _telemetry().inc(
            "scenario_builds_total", scenario=spec.name, source="cache"
        )
        if cached.spec is spec or cached.spec.name == spec.name:
            return cached
        # Same numerics under a different label: share the synthesis but
        # present the caller's own spec.
        return CaseStudy(
            spec=spec,
            system=cached.system,
            controller=cached.controller,
            invariant_set=cached.invariant_set,
            strengthened_set=cached.strengthened_set,
        )
    tick = time.perf_counter()
    A, B = spec.discrete_matrices()
    try:
        system = DiscreteLTISystem(
            A, B, spec.safe_set, spec.input_set, spec.disturbance_set
        )
    except ValueError as exc:
        raise _fail(spec, "plant construction", str(exc)) from exc
    if spec.controller == "rmpc":
        controller, invariant = _synthesise_rmpc(spec, system)
    else:
        controller, invariant = _synthesise_linear(spec, system)
    if invariant.is_empty():
        raise _fail(
            spec, "invariant-set synthesis", "the synthesised XI is empty"
        )
    strengthened = strengthened_safe_set(
        system, invariant, skip_input=spec.effective_skip_input()
    )
    if strengthened.is_empty():
        raise _fail(
            spec,
            "strengthened-set synthesis",
            "X' = B(XI, u_skip) ∩ XI is empty — the skip input throws "
            "every state out of XI within one step, so skipping is never "
            "admissible",
        )
    case = CaseStudy(
        spec=spec,
        system=system,
        controller=controller,
        invariant_set=invariant,
        strengthened_set=strengthened,
    )
    _telemetry().inc(
        "scenario_builds_total", scenario=spec.name, source="synthesised"
    )
    logger.info(
        "scenario %r synthesised in %.2fs (%s, n=%d)",
        spec.name, time.perf_counter() - tick, spec.controller, system.n,
    )
    if use_cache:
        _CACHE[spec.cache_key] = case
    return case


def clear_case_study_cache() -> None:
    """Drop all cached scenario case studies (tests use this for isolation)."""
    _CACHE.clear()
