"""Episodes/sec of the three batch engines: serial vs parallel vs lockstep.

Standalone script (not a pytest-benchmark kernel) so CI can smoke it at
tiny scale and operators can size batches::

    PYTHONPATH=src python benchmarks/bench_lockstep.py \
        --episodes 256 --horizon 100 --jobs 2

It runs the same seeded bang-bang batch on the ACC case study through
every engine and cross-checks that all of them produced
record-for-record identical deterministic fields (the differential
guarantee the test suite proves at small scale); any mismatch makes the
script exit non-zero.

Two controller configurations are timed:

* ``linear`` — an LQR feedback (vectorised ``compute_batch``, non-strict
  monitor).  Every per-step cost is batchable, so this row isolates the
  engine overhead: it is where lockstep's single-core speedup shows
  (the headline number), while fork-based parallelism pays overhead on
  a single-CPU container.
* ``rmpc`` — the paper's robust MPC κ_R.  Its LP solve falls back to the
  per-row path in every engine, so the achievable speedup is bounded by
  the fraction of monitor-forced steps; the row quantifies exactly that.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.acc import acc_disturbance_factory, build_case_study
from repro.controllers import LinearFeedback, lqr_gain
from repro.framework import BatchRunner, ParallelBatchRunner
from repro.skipping import AlwaysSkipPolicy


def visible_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _configurations(case) -> dict:
    """controller-name -> (controller, monitor_factory) pairs to bench."""
    system = case.system
    lo, hi = system.input_set.bounding_box()
    lqr = LinearFeedback(
        lqr_gain(system.A, system.B, np.eye(system.n), np.eye(system.m)),
        saturation=(lo, hi),
    )
    return {
        # Non-strict monitor: the LQR is not the certified κ, so XI
        # excursions must be recorded (identically per engine), not raised.
        "linear": (lqr, lambda: case.make_monitor(strict=False)),
        "rmpc": (case.mpc, case.make_monitor),
    }


def run_benchmark(
    episodes: int,
    horizon: int,
    jobs: int,
    seed: int,
    experiment: str = "overall",
    controllers=("linear", "rmpc"),
) -> dict:
    """Time one batch per (controller configuration, engine).

    Returns:
        Dict with per-configuration throughput, speedup over that
        configuration's serial baseline, and the identical-records flag.
    """
    case = build_case_study()
    factory = acc_disturbance_factory(case, experiment, horizon)
    rng = np.random.default_rng(seed)
    states = case.sample_initial_states(rng, episodes)
    available = _configurations(case)

    rows = []
    for name in controllers:
        controller, monitor_factory = available[name]

        def make_runner(cls, **extra):
            return cls(
                case.system,
                controller,
                monitor_factory=monitor_factory,
                policy_factory=AlwaysSkipPolicy,
                skip_input=case.skip_input,
                **extra,
            )

        def timed(runner):
            tick = time.perf_counter()
            result = runner.run_seeded(states, factory, root_seed=seed)
            return result, time.perf_counter() - tick

        serial_result, serial_seconds = timed(make_runner(BatchRunner))
        reference = serial_result.deterministic_records()
        engines = [
            ("serial", make_runner(BatchRunner), serial_result, serial_seconds),
            ("parallel", make_runner(ParallelBatchRunner, jobs=jobs), None, None),
            ("lockstep", make_runner(BatchRunner, engine="lockstep"), None, None),
        ]
        for engine, runner, result, seconds in engines:
            if result is None:
                result, seconds = timed(runner)
            rows.append(
                {
                    "controller": name,
                    "engine": engine,
                    "jobs": jobs if engine == "parallel" else 1,
                    "seconds": seconds,
                    "episodes_per_sec": episodes / seconds,
                    "speedup": serial_seconds / seconds,
                    "identical": result.deterministic_records() == reference,
                }
            )
    return {
        "episodes": episodes,
        "horizon": horizon,
        "seed": seed,
        "cpus": visible_cpus(),
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--episodes", type=int, default=256)
    parser.add_argument("--horizon", type=int, default=100)
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker count for the parallel engine rows",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--experiment", default="overall")
    parser.add_argument(
        "--controllers", nargs="+", default=["linear", "rmpc"],
        choices=["linear", "rmpc"],
        help="controller configurations to bench",
    )
    parser.add_argument("--json", default=None, help="also dump results here")
    args = parser.parse_args(argv)

    report = run_benchmark(
        args.episodes, args.horizon, args.jobs, args.seed,
        args.experiment, args.controllers,
    )
    print(
        f"lockstep benchmark: {report['episodes']} episodes x "
        f"{report['horizon']} steps, {report['cpus']} visible CPU(s)"
    )
    print(
        f"{'controller':<11} {'engine':<9} {'jobs':>4} {'sec':>8} "
        f"{'ep/s':>8} {'speedup':>8} {'identical':>9}"
    )
    for row in report["rows"]:
        print(
            f"{row['controller']:<11} {row['engine']:<9} {row['jobs']:>4} "
            f"{row['seconds']:>8.2f} {row['episodes_per_sec']:>8.2f} "
            f"{row['speedup']:>7.2f}x {str(row['identical']):>9}"
        )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.json}")
    if not all(row["identical"] for row in report["rows"]):
        print("ERROR: an engine's records diverged from the serial reference")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
