"""Shim-equivalence: the legacy entry points (`evaluate_scenario`,
`sweep_scenarios`, `evaluate_approaches`) are thin clients of the
experiment API and must produce metric-identical results to direct
`run_experiment`/`run_sweep` calls (serial engine, same seed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import scenarios
from repro.experiments import (
    ExecutionConfig,
    ExperimentSpec,
    SweepPlan,
    run_experiment,
    run_sweep,
)
from repro.geometry import HPolytope
from repro.scenarios import ScenarioSpec
from repro.skipping import AlwaysSkipPolicy
from repro.skipping.heuristics import PeriodicSkipPolicy


def shim_spec(name="shim_thermal", **overrides) -> ScenarioSpec:
    config = dict(
        name=name,
        A=[[0.9]],
        B=[[0.05]],
        safe_set=HPolytope.from_box([-2.0], [2.0]),
        input_set=HPolytope.from_box([-15.0], [15.0]),
        disturbance_set=HPolytope.from_box([-0.1], [0.1]),
        controller="rmpc",
        horizon=5,
    )
    config.update(overrides)
    return ScenarioSpec(**config)


class TestEvaluateScenarioShim:
    def test_matches_run_experiment(self):
        case = scenarios.build_case_study(shim_spec())
        legacy = scenarios.evaluate_scenario(
            case, num_cases=4, horizon=10, seed=6, engine="serial"
        )
        direct = run_experiment(
            ExperimentSpec(
                scenario=case.spec, approaches=None, num_cases=4,
                horizon=10, seed=6,
            ),
            ExecutionConfig(engine="serial"),
        )
        assert legacy.scenario == direct.scenario == "shim_thermal"
        np.testing.assert_array_equal(
            legacy.baseline.energy, direct.approaches["baseline"].metrics["energy"]
        )
        for name in legacy.approaches:
            for legacy_field, metric in (
                ("energy", "energy"),
                ("skip_rate", "skip_rate"),
                ("forced_steps", "forced_steps"),
                ("max_violation", "max_violation"),
            ):
                np.testing.assert_array_equal(
                    getattr(legacy.approaches[name], legacy_field),
                    direct.approaches[name].metrics[metric],
                )

    def test_custom_policies_flow_through(self):
        case = scenarios.build_case_study(shim_spec())
        policies = {"every3": PeriodicSkipPolicy(3)}
        legacy = scenarios.evaluate_scenario(
            case, policies=policies, num_cases=3, horizon=8, seed=2
        )
        direct = run_experiment(
            ExperimentSpec(
                scenario=case.spec, approaches=("every3",),
                policies={"every3": PeriodicSkipPolicy(3)},
                num_cases=3, horizon=8, seed=2,
            )
        )
        assert list(legacy.approaches) == ["every3"]
        np.testing.assert_array_equal(
            legacy.approaches["every3"].energy,
            direct.approaches["every3"].metrics["energy"],
        )

    def test_baseline_policy_name_still_rejected(self):
        case = scenarios.build_case_study(shim_spec())
        with pytest.raises(ValueError, match="baseline"):
            scenarios.evaluate_scenario(
                case, policies={"baseline": AlwaysSkipPolicy()}
            )


class TestSweepScenariosShim:
    def test_matches_run_sweep(self):
        scenarios.register("shim_a", lambda: shim_spec("shim_a"))
        scenarios.register(
            "shim_b", lambda: shim_spec("shim_b", A=[[0.8]])
        )
        try:
            legacy = scenarios.sweep_scenarios(
                ["shim_a", "shim_b"], num_cases=3, horizon=8, seed=4
            )
            direct = run_sweep(
                SweepPlan(
                    experiments=[
                        ExperimentSpec(scenario=name, approaches=None,
                                       num_cases=3, horizon=8, seed=4)
                        for name in ("shim_a", "shim_b")
                    ],
                    execution=ExecutionConfig(engine="serial"),
                )
            )
        finally:
            scenarios.unregister("shim_a")
            scenarios.unregister("shim_b")
        assert [r.scenario for r in legacy] == [c.scenario for c in direct]
        for comparison, cell in zip(legacy, direct):
            np.testing.assert_array_equal(
                comparison.baseline.energy,
                cell.approaches["baseline"].metrics["energy"],
            )
            for name in comparison.approaches:
                np.testing.assert_array_equal(
                    comparison.approaches[name].energy,
                    cell.approaches[name].metrics["energy"],
                )
                np.testing.assert_array_equal(
                    comparison.approaches[name].max_violation,
                    cell.approaches[name].metrics["max_violation"],
                )


class TestEvaluateApproachesShim:
    def test_matches_run_experiment(self, acc_case):
        from repro.acc.experiments import evaluate_approaches

        legacy = evaluate_approaches(
            acc_case, "overall", num_cases=3, horizon=10, seed=9,
            engine="serial",
        )
        direct = run_experiment(
            ExperimentSpec(
                scenario="acc", pattern="overall", approaches=("bang_bang",),
                num_cases=3, horizon=10, seed=9,
            ),
            ExecutionConfig(engine="serial"),
        )
        baseline = direct.approaches["baseline"].metrics
        bang = direct.approaches["bang_bang"].metrics
        np.testing.assert_array_equal(legacy.rmpc_only.fuel, baseline["fuel"])
        np.testing.assert_array_equal(legacy.rmpc_only.energy, baseline["energy"])
        np.testing.assert_array_equal(legacy.bang_bang.fuel, bang["fuel"])
        np.testing.assert_array_equal(
            legacy.bang_bang.skip_rate, bang["skip_rate"]
        )
        np.testing.assert_array_equal(
            legacy.bang_bang.forced_steps, bang["forced_steps"]
        )
        np.testing.assert_array_equal(
            legacy.fuel_saving("bang_bang"), direct.fuel_saving("bang_bang")
        )
