"""Ablations over the design choices DESIGN.md calls out.

1. **Engine-map convexity** (fuel quadratic coefficient): skipping gains
   shrink as the map gets more convex — the trade the substitution notes
   in DESIGN.md §4.
2. **Skip mode**: coast (paper's zero input) vs trim-hold — coast is
   where the fuel savings live.
3. **Multi-skip strengthened sets** ``S_k``: how much state space still
   admits k guaranteed consecutive skips (extension of Definition 3).
4. **Monitor strictness overhead**: the classify cost with/without the
   X' short-circuit.
"""

import numpy as np

from benchmarks.conftest import HORIZON, emit, pct
from repro.acc import build_case_study, evaluate_approaches
from repro.acc.model import ACCParameters
from repro.invariance import k_step_strengthened_sets
from repro.traffic.fuel import FuelModel, HBEFA3Fuel


def bench_ablation_fuel_convexity(benchmark, acc_case, overall_agent):
    agent, _env, _history = overall_agent
    meter_backup = acc_case.fuel_meter.model
    rows = []
    savings = {}
    try:
        for quad in (0.0, 2e-7, 8e-7):
            acc_case.fuel_meter.__init__(FuelModel(quadratic=quad))
            result = evaluate_approaches(
                acc_case, "overall", num_cases=12, horizon=HORIZON,
                seed=1, agent=agent,
            )
            bb = float(result.fuel_saving("bang_bang").mean())
            drl = float(result.fuel_saving("drl").mean())
            savings[quad] = (bb, drl)
            rows.append((f"{quad:.0e}", pct(bb), pct(drl)))
    finally:
        acc_case.fuel_meter.__init__(meter_backup)
    emit(
        "Ablation — engine-map convexity vs skipping gains",
        rows,
        ("quadratic coeff", "bang-bang saving", "DRL saving"),
    )
    # Bang-bang's coast-and-burst strategy degrades fastest with
    # convexity (its savings fall monotonically).
    bb_savings = [savings[q][0] for q in (0.0, 2e-7, 8e-7)]
    assert bb_savings[0] > bb_savings[1] > bb_savings[2]
    benchmark.extra_info["savings"] = {str(k): v for k, v in savings.items()}
    benchmark(lambda: acc_case.fuel_meter.trip_fuel(
        np.full(100, 40.0), np.full(100, 8.0), 0.1
    ))


def bench_ablation_skip_mode(benchmark, acc_case):
    """Coast-mode skipping vs trim-hold skipping (energy + fuel)."""
    trim_case = build_case_study(ACCParameters(skip_mode="trim"))
    rows = []
    info = {}
    for name, case in (("coast", acc_case), ("trim", trim_case)):
        result = evaluate_approaches(
            case, "overall", num_cases=10, horizon=HORIZON, seed=1
        )
        fuel = float(result.fuel_saving("bang_bang").mean())
        energy = float(result.energy_saving("bang_bang").mean())
        skip = float(result.bang_bang.skip_rate.mean())
        info[name] = {"fuel": fuel, "energy": energy, "skip": skip}
        rows.append((name, pct(fuel), pct(energy), f"{skip:.2f}"))
    emit(
        "Ablation — skip mode (bang-bang vs RMPC-only)",
        rows,
        ("skip mode", "fuel saving", "energy saving", "skip rate"),
    )
    # Coast skipping is what actually saves fuel; trim-hold cannot.
    assert info["coast"]["fuel"] > info["trim"]["fuel"]
    benchmark.extra_info.update(info)
    benchmark(lambda: trim_case.strengthened_set.contains(np.zeros(2)))


def bench_ablation_multi_skip_sets(benchmark, acc_case):
    """Area of the k-consecutive-skip sets S_1 ⊇ S_2 ⊇ … (Def. 3 extension)."""
    depth = 6
    sets = k_step_strengthened_sets(
        acc_case.system, acc_case.invariant_set, depth,
        skip_input=acc_case.skip_input,
    )
    base = acc_case.invariant_set.volume()
    rows = []
    areas = []
    for k, poly in enumerate(sets, start=1):
        area = poly.volume()
        areas.append(area)
        rows.append((k, f"{area:.1f}", pct(area / base)))
    emit(
        "Ablation — k-consecutive-skip sets (area, % of XI)",
        rows,
        ("k", "area", "fraction of XI"),
    )
    assert all(a >= b - 1e-9 for a, b in zip(areas, areas[1:]))
    benchmark.extra_info["areas"] = [float(a) for a in areas]
    benchmark(
        lambda: k_step_strengthened_sets(
            acc_case.system, acc_case.invariant_set, 2,
            skip_input=acc_case.skip_input,
        )
    )


def bench_ablation_reward_weights(benchmark, acc_case):
    """Sensitivity of the trained policy to the reward weight w2 —
    run three short trainings and compare skip rates."""
    from repro.acc import train_skipping_agent

    rows = []
    skip_rates = {}
    for w2 in (0.003, 0.03, 0.3):
        agent, _env, _history = train_skipping_agent(
            acc_case, "overall", episodes=25, seed=0, weight_energy=w2
        )
        result = evaluate_approaches(
            acc_case, "overall", num_cases=6, horizon=HORIZON, seed=1,
            agent=agent,
        )
        skip = float(result.drl.skip_rate.mean())
        skip_rates[w2] = skip
        rows.append((w2, f"{skip:.2f}", pct(float(result.fuel_saving('drl').mean()))))
    emit(
        "Ablation — reward energy weight w2 vs learned skip rate",
        rows,
        ("w2", "DRL skip rate", "DRL fuel saving"),
    )
    # More energy pressure → the agent skips more.
    assert skip_rates[0.3] > skip_rates[0.003]
    benchmark.extra_info["skip_rates"] = {str(k): v for k, v in skip_rates.items()}
    benchmark(lambda: acc_case.strengthened_set.contains(np.zeros(2)))
