"""StageProfiler unit tests + lockstep stage-breakdown integration."""

import numpy as np
import pytest

from repro.controllers import LinearFeedback, lqr_gain
from repro.framework import SafetyMonitor, StageProfiler, run_lockstep
from repro.framework.lockstep import lockstep_controller_only
from repro.framework.profiling import active_profiler
from repro.invariance import maximal_rpi, strengthened_safe_set
from repro.skipping import PeriodicSkipPolicy


class TestStageProfiler:
    def test_add_accumulates_and_chains(self):
        profiler = StageProfiler()
        tick = profiler.tick()
        next_tick = profiler.add("classify", tick)
        assert next_tick >= tick
        profiler.add("classify", profiler.tick())
        assert profiler.calls("classify") == 2
        assert profiler.seconds("classify") >= 0.0
        assert profiler.stages == ("classify",)

    def test_charges_elapsed_time(self):
        import time

        profiler = StageProfiler()
        tick = profiler.tick()
        time.sleep(0.01)
        profiler.add("slow", tick)
        assert profiler.seconds("slow") >= 0.005

    def test_count_without_timing(self):
        profiler = StageProfiler()
        profiler.count("episodes", 7)
        assert profiler.calls("episodes") == 7
        assert profiler.seconds("episodes") == 0.0

    def test_report_shares_sum_to_one(self):
        profiler = StageProfiler()
        for stage in ("a", "b", "c"):
            tick = profiler.tick()
            profiler.add(stage, tick)
        report = profiler.report()
        assert set(report) == {"a", "b", "c"}
        assert sum(row["share"] for row in report.values()) == pytest.approx(1.0)
        for row in report.values():
            assert row["calls"] == 1
            assert row["seconds"] >= 0.0

    def test_empty_report(self):
        profiler = StageProfiler()
        assert profiler.report() == {}
        assert profiler.total_seconds() == 0.0
        assert profiler.seconds("never") == 0.0
        assert profiler.calls("never") == 0

    def test_merge_and_reset(self):
        left, right = StageProfiler(), StageProfiler()
        left.add("x", left.tick())
        right.add("x", right.tick())
        right.add("y", right.tick())
        left.merge(right)
        assert left.calls("x") == 2
        assert left.calls("y") == 1
        left.reset()
        assert left.stages == ()
        assert left.enabled

    def test_active_profiler_normalisation(self):
        enabled = StageProfiler()
        disabled = StageProfiler(enabled=False)
        assert active_profiler(enabled) is enabled
        assert active_profiler(disabled) is None
        assert active_profiler(None) is None

    def test_repr_mentions_stages(self):
        profiler = StageProfiler()
        profiler.add("classify", profiler.tick())
        assert "classify" in repr(profiler)
        assert "on" in repr(profiler)


@pytest.fixture
def di_setup(double_integrator):
    system = double_integrator
    K = lqr_gain(system.A, system.B, np.eye(2), np.eye(1))
    seed_set = system.safe_set.intersect(system.input_set.linear_preimage(K))
    xi = maximal_rpi(
        system.closed_loop_matrix(K), seed_set, system.disturbance_set
    ).invariant_set
    xp = strengthened_safe_set(system, xi)
    controller = LinearFeedback(K)

    def monitors(count):
        return [
            SafetyMonitor(
                strengthened_set=xp, invariant_set=xi, safe_set=system.safe_set
            )
            for _ in range(count)
        ]

    rng = np.random.default_rng(42)
    states = xp.sample(np.random.default_rng(5), 4)
    lo, hi = system.disturbance_set.bounding_box()
    realisations = [rng.uniform(lo, hi, size=(20, system.n)) for _ in states]
    return system, controller, monitors, states, realisations


class TestLockstepProfiling:
    def test_numpy_path_reports_all_stages(self, di_setup):
        system, controller, monitors, states, realisations = di_setup
        profiler = StageProfiler()
        run_lockstep(
            system,
            controller,
            monitors(len(states)),
            [PeriodicSkipPolicy(2) for _ in states],
            states,
            realisations,
            kernel="numpy",
            profiler=profiler,
        )
        assert set(profiler.stages) == {"classify", "decide", "control", "step"}
        # every stage charged once per step
        assert profiler.calls("classify") == 20
        assert profiler.calls("step") == 20
        assert profiler.total_seconds() > 0.0

    def test_controller_only_reports_control_and_step(self, di_setup):
        system, controller, _monitors, states, realisations = di_setup
        profiler = StageProfiler()
        lockstep_controller_only(
            system, controller, states, realisations,
            kernel="numpy", profiler=profiler,
        )
        assert set(profiler.stages) == {"control", "step"}

    def test_disabled_profiler_records_nothing(self, di_setup):
        system, controller, monitors, states, realisations = di_setup
        profiler = StageProfiler(enabled=False)
        run_lockstep(
            system,
            controller,
            monitors(len(states)),
            [PeriodicSkipPolicy(2) for _ in states],
            states,
            realisations,
            kernel="numpy",
            profiler=profiler,
        )
        assert profiler.stages == ()

    def test_profiler_does_not_change_records(self, di_setup):
        system, controller, monitors, states, realisations = di_setup
        plain = run_lockstep(
            system, controller, monitors(len(states)),
            [PeriodicSkipPolicy(2) for _ in states], states, realisations,
            kernel="numpy",
        )
        profiled = run_lockstep(
            system, controller, monitors(len(states)),
            [PeriodicSkipPolicy(2) for _ in states], states, realisations,
            kernel="numpy", profiler=StageProfiler(),
        )
        for a, b in zip(plain, profiled):
            assert np.array_equal(a.states, b.states)
            assert np.array_equal(a.inputs, b.inputs)
            assert np.array_equal(a.decisions, b.decisions)
            assert np.array_equal(a.forced, b.forced)
