"""Disturbance (perturbation) processes.

The paper treats the disturbance ``w(t)`` as the carrier of "operation
context and environment" — in the ACC case study it is the front vehicle's
velocity deviation.  Each model here generates bounded sequences inside a
given interval/box, with different degrees of *regularity* matching the
Ex.6–Ex.10 experiment axis:

* :class:`SinusoidalDisturbance` — Eq. (8): ``a_f sin(π/2 δ t) + noise``.
* :class:`UniformDisturbance` — i.i.d. uniform over the box ("completely
  random", Ex.6 style).
* :class:`RandomWalkDisturbance` — bounded increments ("continuous
  change", Ex.7 style).
* :class:`TraceDisturbance` — replay a recorded trace.
* :class:`ConstantDisturbance` — fixed vector (worst-case probes in tests).

All models are deterministic given their ``numpy.random.Generator`` and
expose ``sample(horizon)`` returning a ``(horizon, dim)`` array plus a
scalar convenience path for 1-D processes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.utils.validation import as_vector

__all__ = [
    "DisturbanceModel",
    "SinusoidalDisturbance",
    "UniformDisturbance",
    "RandomWalkDisturbance",
    "TraceDisturbance",
    "ConstantDisturbance",
]


class DisturbanceModel(ABC):
    """Interface for bounded disturbance processes.

    Attributes:
        lower: Componentwise lower bound of the process.
        upper: Componentwise upper bound.
    """

    def __init__(self, lower, upper):
        self.lower = as_vector(lower, "lower")
        self.upper = as_vector(upper, "upper")
        if self.lower.shape != self.upper.shape:
            raise ValueError("lower/upper shape mismatch")
        if np.any(self.lower > self.upper):
            raise ValueError("lower bound exceeds upper bound")

    @property
    def dim(self) -> int:
        """Dimension of the disturbance vector."""
        return self.lower.size

    @abstractmethod
    def sample(self, horizon: int) -> np.ndarray:
        """Generate a ``(horizon, dim)`` disturbance sequence."""

    def _clip(self, values: np.ndarray) -> np.ndarray:
        """Clip a raw sequence into the declared bounds."""
        return np.clip(values, self.lower, self.upper)


class SinusoidalDisturbance(DisturbanceModel):
    """The paper's Eq. (8) pattern: sinusoid plus bounded uniform noise.

    ``w(t) = amplitude * sin(π/2 · dt · t + phase) + noise``, clipped to
    the declared bounds.  With ``amplitude=9``, ``noise_bound=1`` and
    bounds ``±10`` this reproduces Ex.10 / the Sec. IV-A pattern (after
    centring; the traffic layer adds the mean velocity back).

    Args:
        amplitude: ``a_f`` in Eq. (8).
        dt: Sampling period ``δ`` (the paper uses 0.1).
        noise_bound: Half-width of the uniform noise term.
        bound: Hard bound ``|w| <= bound`` (defaults to amplitude+noise).
        rng: Random generator (required unless noise_bound == 0).
        phase: Phase offset in radians.
    """

    def __init__(
        self,
        amplitude: float,
        dt: float = 0.1,
        noise_bound: float = 0.0,
        bound: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
        phase: float = 0.0,
    ):
        if bound is None:
            bound = abs(amplitude) + abs(noise_bound)
        super().__init__([-bound], [bound])
        if noise_bound > 0 and rng is None:
            raise ValueError("rng is required when noise_bound > 0")
        self.amplitude = float(amplitude)
        self.dt = float(dt)
        self.noise_bound = float(noise_bound)
        self.rng = rng
        self.phase = float(phase)
        self._t = 0

    def sample(self, horizon: int) -> np.ndarray:
        t = np.arange(self._t, self._t + horizon)
        self._t += horizon
        base = self.amplitude * np.sin(np.pi / 2.0 * self.dt * t + self.phase)
        if self.noise_bound > 0:
            base = base + self.rng.uniform(
                -self.noise_bound, self.noise_bound, size=horizon
            )
        return self._clip(base[:, None])

    def reset(self, t: int = 0) -> None:
        """Rewind the internal clock (the sinusoid is time-indexed)."""
        self._t = int(t)


class UniformDisturbance(DisturbanceModel):
    """I.i.d. uniform samples over the box — the least regular pattern."""

    def __init__(self, lower, upper, rng: np.random.Generator):
        super().__init__(lower, upper)
        self.rng = rng

    def sample(self, horizon: int) -> np.ndarray:
        return self.rng.uniform(
            self.lower, self.upper, size=(horizon, self.dim)
        )


class RandomWalkDisturbance(DisturbanceModel):
    """Bounded random walk: uniform increments, reflected at the bounds.

    Models a disturbance that "can only change continuously" (Ex.7): the
    per-step increment is bounded by ``max_step``.
    """

    def __init__(
        self,
        lower,
        upper,
        max_step,
        rng: np.random.Generator,
        start=None,
    ):
        super().__init__(lower, upper)
        self.max_step = as_vector(max_step, "max_step")
        if np.any(self.max_step < 0):
            raise ValueError("max_step must be non-negative")
        self.rng = rng
        if start is None:
            start = (self.lower + self.upper) / 2.0
        self._state = self._clip(as_vector(start, "start"))

    def sample(self, horizon: int) -> np.ndarray:
        out = np.empty((horizon, self.dim))
        state = self._state
        for t in range(horizon):
            step = self.rng.uniform(-self.max_step, self.max_step)
            state = state + step
            # Reflect at the boundaries to avoid sticking to them.
            over = state > self.upper
            under = state < self.lower
            state = np.where(over, 2 * self.upper - state, state)
            state = np.where(under, 2 * self.lower - state, state)
            state = self._clip(state)
            out[t] = state
        self._state = state
        return out


class TraceDisturbance(DisturbanceModel):
    """Replay a recorded disturbance trace (wraps around at the end)."""

    def __init__(self, trace):
        trace = np.atleast_2d(np.asarray(trace, dtype=float))
        if trace.shape[0] == 1 and trace.shape[1] > 1:
            trace = trace.T
        super().__init__(trace.min(axis=0), trace.max(axis=0))
        self.trace = trace
        self._cursor = 0

    def sample(self, horizon: int) -> np.ndarray:
        idx = (self._cursor + np.arange(horizon)) % self.trace.shape[0]
        self._cursor = int((self._cursor + horizon) % self.trace.shape[0])
        return self.trace[idx]


class ConstantDisturbance(DisturbanceModel):
    """A constant disturbance vector — handy for worst-case probes."""

    def __init__(self, value):
        value = as_vector(value, "value")
        super().__init__(value, value)
        self.value = value

    def sample(self, horizon: int) -> np.ndarray:
        return np.tile(self.value, (horizon, 1))
