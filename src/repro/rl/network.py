"""Minimal feed-forward neural network with manual backpropagation.

No deep-learning framework is available offline, so the double-DQN agent
runs on this numpy implementation: fully-connected layers with ReLU hidden
activations and a linear head, He initialisation, and exact gradients for
a loss specified as ``dL/dy`` on the outputs.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["MLP"]


class MLP:
    """Multi-layer perceptron ``R^in → R^out`` with ReLU hidden layers.

    Args:
        layer_sizes: E.g. ``[4, 64, 64, 2]`` — input, hidden…, output.
        rng: Generator for reproducible He-initialised weights.

    The parameter list alternates ``[W1, b1, W2, b2, …]``; gradients from
    :meth:`backward` use the same layout, which keeps the optimiser
    trivially generic.
    """

    def __init__(self, layer_sizes: Sequence[int], rng: np.random.Generator):
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        self.layer_sizes = list(int(s) for s in layer_sizes)
        self.params: List[np.ndarray] = []
        for fan_in, fan_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.params.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.params.append(np.zeros(fan_out))
        self._cache: List[np.ndarray] = []

    @property
    def num_layers(self) -> int:
        """Number of affine layers."""
        return len(self.params) // 2

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Forward pass for a batch ``(B, in)`` (1-D inputs are promoted).

        With ``train=True`` the activations are cached for
        :meth:`backward`.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        cache = [x]
        h = x
        for layer in range(self.num_layers):
            W = self.params[2 * layer]
            b = self.params[2 * layer + 1]
            h = h @ W + b
            if layer < self.num_layers - 1:
                h = np.maximum(h, 0.0)
            cache.append(h)
        if train:
            self._cache = cache
        return h

    def backward(self, grad_output: np.ndarray) -> List[np.ndarray]:
        """Gradients of the loss w.r.t. every parameter.

        Args:
            grad_output: ``dL/dy`` for the last :meth:`forward`
                call made with ``train=True``, shape ``(B, out)``.

        Returns:
            List of gradients matching :attr:`params` layout.
        """
        if not self._cache:
            raise RuntimeError("call forward(..., train=True) before backward")
        grads: List[np.ndarray] = [None] * len(self.params)
        delta = np.asarray(grad_output, dtype=float)
        for layer in reversed(range(self.num_layers)):
            inputs = self._cache[layer]
            if layer < self.num_layers - 1:
                # ReLU mask of this layer's *output* activation.
                delta = delta * (self._cache[layer + 1] > 0.0)
            grads[2 * layer] = inputs.T @ delta
            grads[2 * layer + 1] = delta.sum(axis=0)
            if layer > 0:
                delta = delta @ self.params[2 * layer].T
        return grads

    def copy_from(self, other: "MLP") -> None:
        """Hard-copy parameters from ``other`` (target-network sync)."""
        if other.layer_sizes != self.layer_sizes:
            raise ValueError("architecture mismatch")
        for mine, theirs in zip(self.params, other.params):
            np.copyto(mine, theirs)

    def soft_update_from(self, other: "MLP", tau: float) -> None:
        """Polyak averaging: ``θ ← (1 − τ) θ + τ θ_other``."""
        if not 0.0 < tau <= 1.0:
            raise ValueError("tau must be in (0, 1]")
        for mine, theirs in zip(self.params, other.params):
            mine *= 1.0 - tau
            mine += tau * theirs

    def state_dict(self) -> list:
        """Deep copy of all parameters (checkpointing)."""
        return [p.copy() for p in self.params]

    def load_state_dict(self, state: list) -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        if len(state) != len(self.params):
            raise ValueError("state length mismatch")
        for mine, saved in zip(self.params, state):
            np.copyto(mine, saved)
