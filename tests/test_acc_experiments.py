"""Tests for the experiment harness utilities (fast paths only —
the full pipelines are covered by test_integration and the benchmarks)."""

import numpy as np
import pytest

from repro.acc.experiments import (
    FIG4_BIN_EDGES,
    ApproachStats,
    ComparisonResult,
    evaluate_approaches,
    experiment_vf_range,
    train_skipping_agent,
)
from repro.rl.dqn import DQNConfig, DoubleDQNAgent
from repro.skipping.drl import DRLSkippingPolicy


def _stats(fuel, energy=None):
    fuel = np.asarray(fuel, dtype=float)
    if energy is None:
        energy = fuel * 10.0
    return ApproachStats(
        fuel=fuel,
        energy=np.asarray(energy, dtype=float),
        skip_rate=np.full(fuel.shape, 0.8),
        forced_steps=np.full(fuel.shape, 5.0),
        mean_controller_ms=3.0,
        mean_monitor_ms=0.05,
    )


@pytest.fixture
def comparison():
    return ComparisonResult(
        experiment="unit",
        rmpc_only=_stats([10.0, 20.0, 40.0]),
        bang_bang=_stats([9.0, 15.0, 36.0]),
        drl=_stats([8.0, 14.0, 30.0]),
    )


class TestComparisonResult:
    def test_fuel_saving_values(self, comparison):
        np.testing.assert_allclose(
            comparison.fuel_saving("bang_bang"), [0.1, 0.25, 0.1]
        )
        np.testing.assert_allclose(
            comparison.fuel_saving("drl"), [0.2, 0.3, 0.25]
        )

    def test_energy_saving_values(self, comparison):
        np.testing.assert_allclose(
            comparison.energy_saving("drl"), [0.2, 0.3, 0.25]
        )

    def test_energy_saving_zero_base(self):
        result = ComparisonResult(
            experiment="unit",
            rmpc_only=_stats([10.0], energy=[0.0]),
            bang_bang=_stats([9.0], energy=[0.0]),
            drl=None,
        )
        np.testing.assert_allclose(result.energy_saving("bang_bang"), [0.0])

    def test_histogram_bins(self, comparison):
        counts = comparison.saving_histogram("drl")
        assert counts.sum() == 3
        # Savings 0.2, 0.3, 0.25 land in the 20-30% bin (two) and 30-40%.
        assert counts[2] == 2
        assert counts[3] == 1

    def test_histogram_clips_out_of_range(self):
        result = ComparisonResult(
            experiment="unit",
            rmpc_only=_stats([10.0, 10.0]),
            bang_bang=_stats([11.0, 2.0]),  # -10% and +80% savings
            drl=None,
        )
        counts = result.saving_histogram("bang_bang")
        assert counts.sum() == 2
        assert counts[0] == 1  # clipped below
        assert counts[-1] == 1  # clipped above

    def test_missing_drl_raises(self):
        result = ComparisonResult(
            experiment="unit",
            rmpc_only=_stats([10.0]),
            bang_bang=_stats([9.0]),
            drl=None,
        )
        with pytest.raises(ValueError, match="unavailable"):
            result.fuel_saving("drl")

    def test_unknown_approach_raises(self, comparison):
        with pytest.raises(ValueError):
            comparison.fuel_saving("magic")


class TestEvaluateEngines:
    """The lockstep engine must reproduce the serial evaluation exactly
    for every approach of the paper's comparison — RMPC-only
    (controller-only rollout), bang-bang (AlwaysSkip) and the DRL policy
    (a greedy, ε = 0 DQN wrapper)."""

    @pytest.fixture(scope="class")
    def paired(self, acc_case):
        # Untrained but deterministic agent: the comparison only needs a
        # fixed decision function, not a good one.
        agent = DoubleDQNAgent(
            DQNConfig(state_dim=3, hidden=(8, 8)), np.random.default_rng(7)
        )
        lower, upper = acc_case.system.safe_set.bounding_box()
        policy = DRLSkippingPolicy(
            agent,
            state_scale=np.maximum(np.abs(lower), np.abs(upper)),
            disturbance_scale=max(acc_case.params.w_bound, 1e-6),
        )
        kwargs = dict(num_cases=4, horizon=15, seed=123, drl_policy=policy)
        serial = evaluate_approaches(acc_case, "overall", engine="serial", **kwargs)
        lockstep = evaluate_approaches(
            acc_case, "overall", engine="lockstep", **kwargs
        )
        return serial, lockstep

    @pytest.mark.parametrize("approach", ["rmpc_only", "bang_bang", "drl"])
    def test_lockstep_matches_serial(self, paired, approach):
        serial, lockstep = paired
        left, right = serial.stats(approach), lockstep.stats(approach)
        np.testing.assert_array_equal(left.fuel, right.fuel)
        np.testing.assert_array_equal(left.energy, right.energy)
        np.testing.assert_array_equal(left.skip_rate, right.skip_rate)
        np.testing.assert_array_equal(left.forced_steps, right.forced_steps)

    def test_engine_validation(self, acc_case):
        with pytest.raises(ValueError, match="engine"):
            evaluate_approaches(acc_case, "overall", num_cases=1, engine="warp")
        with pytest.raises(ValueError, match="num_cases"):
            evaluate_approaches(acc_case, "overall", num_cases=0)

    def test_lockstep_rejects_stateful_drl_policy(self, acc_case):
        """An exploring (ε > 0) DRL policy is draw-order dependent: the
        lockstep engine must refuse it rather than silently diverge."""
        agent = DoubleDQNAgent(
            DQNConfig(state_dim=3, hidden=(8, 8)), np.random.default_rng(7)
        )
        lower, upper = acc_case.system.safe_set.bounding_box()
        exploring = DRLSkippingPolicy(
            agent,
            state_scale=np.maximum(np.abs(lower), np.abs(upper)),
            disturbance_scale=max(acc_case.params.w_bound, 1e-6),
            epsilon=0.1,
        )
        with pytest.raises(ValueError, match="stateless"):
            evaluate_approaches(
                acc_case, "overall", num_cases=2, horizon=5,
                drl_policy=exploring, engine="lockstep",
            )


class TestHarnessValidation:
    def test_bin_edges_cover_paper_bins(self):
        assert FIG4_BIN_EDGES[0] == 0.0
        assert FIG4_BIN_EDGES[-1] == pytest.approx(0.6)
        assert len(FIG4_BIN_EDGES) == 7

    def test_vf_ranges_match_table1(self):
        assert experiment_vf_range("ex1") == (30.0, 50.0)
        assert experiment_vf_range("ex5") == (39.0, 41.0)

    def test_restarts_validation(self, acc_case):
        with pytest.raises(ValueError, match="restarts"):
            train_skipping_agent(acc_case, "overall", episodes=1, restarts=0)
