"""Scenario zoo: registry + builder turning any constrained LTI plant
into a full paper-style benchmark (certified ``XI``, strengthened ``X'``,
skip-aware monitor, initial-state sampler, seeded disturbances).

Importing this package registers the built-in scenarios
(:mod:`repro.scenarios.library`): ``acc``, ``thermal``, ``pendulum``,
``dc_motor`` and ``lane_keeping``.
"""

from repro.scenarios.builder import (
    CaseStudy,
    build_case_study,
    clear_case_study_cache,
)
from repro.scenarios.registry import (
    build,
    get,
    list_scenarios,
    register,
    register_scenario,
    unregister,
)
from repro.scenarios.spec import ScenarioSpec, ScenarioSynthesisError

# Populate the registry with the built-in zoo (must come after the
# builder/registry imports above; the library leans on both).
from repro.scenarios import library as _library  # noqa: E402,F401
from repro.scenarios.evaluate import (
    ScenarioApproachStats,
    ScenarioComparison,
    default_policies,
    evaluate_scenario,
    sweep_scenarios,
)

__all__ = [
    "ScenarioSpec",
    "ScenarioSynthesisError",
    "CaseStudy",
    "build_case_study",
    "clear_case_study_cache",
    "register",
    "register_scenario",
    "unregister",
    "get",
    "build",
    "list_scenarios",
    "ScenarioApproachStats",
    "ScenarioComparison",
    "default_policies",
    "evaluate_scenario",
    "sweep_scenarios",
]
