"""Shared environment fingerprint for the perf-trajectory artifacts.

Every standalone benchmark (`bench_lockstep.py`, `bench_sweep.py`,
`bench_batch_throughput.py`) embeds the same machine info in its JSON
artifact so successive commits stay comparable; one definition keeps the
artifacts' schemas from drifting apart.
"""

from __future__ import annotations

import os
import platform
import time

import numpy as np
import scipy


def visible_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def machine_info() -> dict:
    """Environment fingerprint for the perf-trajectory artifact."""
    return {
        "cpus": visible_cpus(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
