"""Episodic training loop for the double-DQN agent.

Environments follow a minimal gym-like protocol (``reset() -> obs`` and
``step(action) -> (obs, reward, done, info)``); the ACC skipping
environment in :mod:`repro.acc.env` implements it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

import numpy as np

from repro.rl.dqn import DoubleDQNAgent
from repro.rl.schedule import LinearSchedule

__all__ = ["Environment", "TrainingHistory", "train_dqn"]


class Environment(Protocol):
    """Minimal episodic environment protocol."""

    def reset(self) -> np.ndarray:
        """Start a new episode and return the initial observation."""
        ...

    def step(self, action: int) -> tuple:
        """Apply ``action``; return ``(obs, reward, done, info)``."""
        ...


@dataclass
class TrainingHistory:
    """Per-episode training diagnostics.

    Attributes:
        returns: Undiscounted episode returns.
        losses: Mean TD loss per episode (NaN before learning starts).
        epsilons: ε used at the start of each episode.
    """

    returns: list = field(default_factory=list)
    losses: list = field(default_factory=list)
    epsilons: list = field(default_factory=list)

    @property
    def episodes(self) -> int:
        return len(self.returns)

    def moving_average(self, window: int = 10) -> np.ndarray:
        """Smoothed returns for convergence reporting."""
        r = np.asarray(self.returns, dtype=float)
        if r.size == 0:
            return r
        window = min(window, r.size)
        kernel = np.ones(window) / window
        return np.convolve(r, kernel, mode="valid")


def train_dqn(
    agent: DoubleDQNAgent,
    env: Environment,
    episodes: int,
    max_steps: int = 100,
    epsilon_schedule: Optional[Callable[[int], float]] = None,
    updates_per_step: int = 1,
    callback: Optional[Callable[[int, float], None]] = None,
) -> TrainingHistory:
    """Train ``agent`` on ``env`` for a fixed number of episodes.

    Args:
        agent: The double-DQN agent (modified in place).
        env: Episodic environment.
        episodes: Number of training episodes.
        max_steps: Step cap per episode (the paper simulates 100 steps).
        epsilon_schedule: ``step -> ε``; defaults to a linear anneal from
            1.0 to 0.05 over the first 60% of total steps.
        updates_per_step: Gradient updates per environment step.
        callback: Optional ``(episode, episode_return)`` hook.

    Returns:
        A :class:`TrainingHistory`.
    """
    if episodes < 1:
        raise ValueError("episodes must be >= 1")
    if epsilon_schedule is None:
        total = max(int(episodes * max_steps * 0.6), 1)
        epsilon_schedule = LinearSchedule(1.0, 0.05, total)
    history = TrainingHistory()
    global_step = 0
    for episode in range(episodes):
        obs = env.reset()
        episode_return = 0.0
        losses = []
        history.epsilons.append(epsilon_schedule(global_step))
        for _ in range(max_steps):
            epsilon = epsilon_schedule(global_step)
            action = agent.act(obs, epsilon)
            next_obs, reward, done, _info = env.step(action)
            agent.remember(obs, action, reward, next_obs, done)
            for _ in range(updates_per_step):
                loss = agent.update()
                if loss is not None:
                    losses.append(loss)
            obs = next_obs
            episode_return += float(reward)
            global_step += 1
            if done:
                break
        history.returns.append(episode_return)
        history.losses.append(float(np.mean(losses)) if losses else float("nan"))
        if callback is not None:
            callback(episode, episode_return)
    return history
