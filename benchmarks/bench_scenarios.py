"""Every registered scenario through the lockstep engine, parity-checked.

Standalone script (not a pytest-benchmark kernel) so CI can smoke the
whole scenario zoo and a new scenario cannot merge without engine
parity::

    PYTHONPATH=src python benchmarks/bench_scenarios.py --quick
    PYTHONPATH=src python benchmarks/bench_scenarios.py \
        --episodes 128 --horizon 100

For each registered scenario it runs the same seeded bang-bang batch on
the serial reference engine and on the lockstep engine, then asserts

* **identical records** — every deterministic field (energy, skip rate,
  forced steps, max violation) matches record for record; and
* **zero safety violations** — the strict certified monitor never saw a
  state leave ``XI`` (it would raise), and no visited state violates the
  safe set ``X`` (``max_violation <= 0``).

Any mismatch or violation makes the script exit non-zero.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro import scenarios
from repro.framework import BatchRunner
from repro.skipping import AlwaysSkipPolicy


def bench_scenario(
    name: str, episodes: int, horizon: int, seed: int
) -> dict:
    """One scenario's build + serial/lockstep timing + parity row."""
    tick = time.perf_counter()
    case = scenarios.build(name)
    build_seconds = time.perf_counter() - tick

    rng = np.random.default_rng(seed)
    states = case.sample_initial_states(rng, episodes)
    factory = case.disturbance_factory(horizon)

    def timed(engine: str):
        runner = BatchRunner(
            case.system,
            case.controller,
            monitor_factory=case.make_monitor,  # strict: XI exits raise
            policy_factory=AlwaysSkipPolicy,
            skip_input=case.skip_input,
            engine=engine,
        )
        start = time.perf_counter()
        result = runner.run_seeded(states, factory, root_seed=seed)
        return result, time.perf_counter() - start

    serial_result, serial_seconds = timed("serial")
    lockstep_result, lockstep_seconds = timed("lockstep")
    max_violation = max(
        record.max_violation for record in serial_result.records
    )
    return {
        "scenario": name,
        "n": case.system.n,
        "controller": case.spec.controller,
        "build_seconds": build_seconds,
        "serial_seconds": serial_seconds,
        "lockstep_seconds": lockstep_seconds,
        "speedup": serial_seconds / lockstep_seconds,
        "identical": (
            serial_result.deterministic_records()
            == lockstep_result.deterministic_records()
        ),
        "max_violation": max_violation,
        "safe": max_violation <= 0.0,
    }


def run_benchmark(
    episodes: int, horizon: int, seed: int, names=None
) -> dict:
    """Bench every requested scenario; returns rows + the overall verdict."""
    if names is None:
        names = scenarios.list_scenarios()
    rows = [bench_scenario(name, episodes, horizon, seed) for name in names]
    return {
        "episodes": episodes,
        "horizon": horizon,
        "seed": seed,
        "rows": rows,
        "ok": all(row["identical"] and row["safe"] for row in rows),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--episodes", type=int, default=64)
    parser.add_argument("--horizon", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scenarios", nargs="+", default=None, metavar="NAME",
        help="scenario subset (default: every registered scenario)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke scale: 4 episodes x 10 steps",
    )
    parser.add_argument("--json", default=None, help="also dump results here")
    args = parser.parse_args(argv)
    episodes = 4 if args.quick else args.episodes
    horizon = 10 if args.quick else args.horizon

    report = run_benchmark(episodes, horizon, args.seed, args.scenarios)
    print(
        f"scenario zoo benchmark: {len(report['rows'])} scenario(s), "
        f"{episodes} episodes x {horizon} steps"
    )
    print(
        f"{'scenario':<14} {'n':>2} {'ctrl':<7} {'build[s]':>9} "
        f"{'serial[s]':>9} {'lock[s]':>8} {'speedup':>8} "
        f"{'identical':>9} {'max viol':>9}"
    )
    for row in report["rows"]:
        print(
            f"{row['scenario']:<14} {row['n']:>2} {row['controller']:<7} "
            f"{row['build_seconds']:>9.2f} {row['serial_seconds']:>9.2f} "
            f"{row['lockstep_seconds']:>8.2f} {row['speedup']:>7.2f}x "
            f"{str(row['identical']):>9} {row['max_violation']:>9.2e}"
        )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.json}")
    if not report["ok"]:
        print(
            "ERROR: an engine's records diverged from the serial reference "
            "or a trajectory left the safe set"
        )
        return 1
    print("all scenarios: lockstep == serial record-for-record, zero violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
