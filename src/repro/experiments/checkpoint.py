"""Per-cell checkpoint spill/restore for resumable sweeps.

``run_sweep(checkpoint=dir)`` writes each completed
:class:`~repro.experiments.result.CellResult` to its own JSON file the
moment it streams out of the execution layer, and on restart loads the
cells already on disk instead of re-solving them.  This is the stepping
stone to the ROADMAP's content-addressed result store: the file name is
derived from the cell's stable :class:`~repro.experiments.plan.GridCell`
key, and a stored cell is only reused when its key *and* its full
reproducibility config (cases, horizon, seed, engine, ...) match what
the resuming sweep would compute — a stale or foreign file is silently
re-solved, never trusted.

Writes are atomic (``os.replace`` of a same-directory temp file), so an
interrupt mid-write leaves either the previous file or nothing — a
half-written cell can never poison a resume.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from typing import Optional

from repro.experiments.result import CellResult, cell_from_dict, cell_to_dict

__all__ = ["SweepCheckpoint"]

_SUFFIX = ".cell.json"


def _slug(key: str) -> str:
    """A filesystem-safe, collision-free file stem for a cell key.

    The readable prefix keeps directories human-browsable; the hash
    suffix guarantees distinct keys never collide after sanitisation.
    """
    safe = re.sub(r"[^A-Za-z0-9._=@-]+", "_", key)[:80]
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:12]
    return f"{safe}-{digest}"


class SweepCheckpoint:
    """A directory of per-cell JSON spills keyed by stable cell keys.

    Args:
        directory: Checkpoint directory; created if missing.
    """

    def __init__(self, directory: str):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def path_for(self, key: str) -> str:
        """The spill path of the cell with stable key ``key``."""
        return os.path.join(self.directory, _slug(key) + _SUFFIX)

    def store(self, result: CellResult) -> str:
        """Atomically write ``result``'s full-fidelity JSON; returns the
        final path.  Safe to call from the ``on_result`` stream — each
        cell is its own file, so partial sweeps checkpoint incrementally.
        """
        path = self.path_for(result.key)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=_SUFFIX
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(cell_to_dict(result), handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    def load(self, key: str, expected_config: Optional[dict] = None
             ) -> Optional[CellResult]:
        """The stored cell for ``key``, or ``None`` when it must be
        (re-)solved.

        ``None`` is returned — never an exception — for a missing file,
        unparseable JSON, a key mismatch (hash-prefix collision or a
        renamed cell), or, when ``expected_config`` is given, any
        difference in the reproducibility config: a checkpoint written
        under different cases/horizon/seed/engine settings must not leak
        into this sweep's results.
        """
        path = self.path_for(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
            cell = cell_from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if cell.key != key:
            return None
        if expected_config is not None and cell.config != expected_config:
            return None
        return cell

    def __repr__(self) -> str:
        return f"SweepCheckpoint({self.directory!r})"
