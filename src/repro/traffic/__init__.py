"""Traffic substrate: front-vehicle patterns, fuel meter, raw simulator."""

from repro.traffic.fuel import FuelModel, HBEFA3Fuel
from repro.traffic.patterns import (
    EXPERIMENT_IDS,
    BoundedAccelerationPattern,
    ConstantPattern,
    FrontVehiclePattern,
    PureRandomPattern,
    SinusoidalPattern,
    experiment_pattern,
)
from repro.traffic.simulator import LongitudinalSimulator, TrafficTrace

__all__ = [
    "FuelModel",
    "HBEFA3Fuel",
    "FrontVehiclePattern",
    "SinusoidalPattern",
    "PureRandomPattern",
    "BoundedAccelerationPattern",
    "ConstantPattern",
    "experiment_pattern",
    "EXPERIMENT_IDS",
    "LongitudinalSimulator",
    "TrafficTrace",
]
