"""Tests for the experiment harness utilities (fast paths only —
the full pipelines are covered by test_integration and the benchmarks)."""

import numpy as np
import pytest

from repro.acc.experiments import (
    FIG4_BIN_EDGES,
    ApproachStats,
    ComparisonResult,
    experiment_vf_range,
    train_skipping_agent,
)


def _stats(fuel, energy=None):
    fuel = np.asarray(fuel, dtype=float)
    if energy is None:
        energy = fuel * 10.0
    return ApproachStats(
        fuel=fuel,
        energy=np.asarray(energy, dtype=float),
        skip_rate=np.full(fuel.shape, 0.8),
        forced_steps=np.full(fuel.shape, 5.0),
        mean_controller_ms=3.0,
        mean_monitor_ms=0.05,
    )


@pytest.fixture
def comparison():
    return ComparisonResult(
        experiment="unit",
        rmpc_only=_stats([10.0, 20.0, 40.0]),
        bang_bang=_stats([9.0, 15.0, 36.0]),
        drl=_stats([8.0, 14.0, 30.0]),
    )


class TestComparisonResult:
    def test_fuel_saving_values(self, comparison):
        np.testing.assert_allclose(
            comparison.fuel_saving("bang_bang"), [0.1, 0.25, 0.1]
        )
        np.testing.assert_allclose(
            comparison.fuel_saving("drl"), [0.2, 0.3, 0.25]
        )

    def test_energy_saving_values(self, comparison):
        np.testing.assert_allclose(
            comparison.energy_saving("drl"), [0.2, 0.3, 0.25]
        )

    def test_energy_saving_zero_base(self):
        result = ComparisonResult(
            experiment="unit",
            rmpc_only=_stats([10.0], energy=[0.0]),
            bang_bang=_stats([9.0], energy=[0.0]),
            drl=None,
        )
        np.testing.assert_allclose(result.energy_saving("bang_bang"), [0.0])

    def test_histogram_bins(self, comparison):
        counts = comparison.saving_histogram("drl")
        assert counts.sum() == 3
        # Savings 0.2, 0.3, 0.25 land in the 20-30% bin (two) and 30-40%.
        assert counts[2] == 2
        assert counts[3] == 1

    def test_histogram_clips_out_of_range(self):
        result = ComparisonResult(
            experiment="unit",
            rmpc_only=_stats([10.0, 10.0]),
            bang_bang=_stats([11.0, 2.0]),  # -10% and +80% savings
            drl=None,
        )
        counts = result.saving_histogram("bang_bang")
        assert counts.sum() == 2
        assert counts[0] == 1  # clipped below
        assert counts[-1] == 1  # clipped above

    def test_missing_drl_raises(self):
        result = ComparisonResult(
            experiment="unit",
            rmpc_only=_stats([10.0]),
            bang_bang=_stats([9.0]),
            drl=None,
        )
        with pytest.raises(ValueError, match="unavailable"):
            result.fuel_saving("drl")

    def test_unknown_approach_raises(self, comparison):
        with pytest.raises(ValueError):
            comparison.fuel_saving("magic")


class TestHarnessValidation:
    def test_bin_edges_cover_paper_bins(self):
        assert FIG4_BIN_EDGES[0] == 0.0
        assert FIG4_BIN_EDGES[-1] == pytest.approx(0.6)
        assert len(FIG4_BIN_EDGES) == 7

    def test_vf_ranges_match_table1(self):
        assert experiment_vf_range("ex1") == (30.0, 50.0)
        assert experiment_vf_range("ex5") == (39.0, 41.0)

    def test_restarts_validation(self, acc_case):
        with pytest.raises(ValueError, match="restarts"):
            train_skipping_agent(acc_case, "overall", episodes=1, restarts=0)
