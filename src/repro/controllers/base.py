"""Controller interface.

A controller is a state-feedback law ``u = κ(x)``.  The framework layer
times each evaluation to reproduce the paper's computation-saving numbers,
so controllers should do all their work inside :meth:`Controller.compute`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import as_vector

__all__ = ["Controller", "ConstantController"]


class Controller(ABC):
    """Abstract state-feedback controller ``u = κ(x)``."""

    #: Dimension of the produced input vector; subclasses must set it.
    input_dim: int

    #: Determinism tier of :meth:`compute_batch` (the two-tier contract of
    #: :mod:`repro.framework.lockstep`).  True — the default, and what
    #: every closed-form controller satisfies — promises row ``i`` equals
    #: ``compute(states[i])`` bit for bit.  Controllers whose batch path
    #: is a stacked LP solve (:class:`~repro.controllers.rmpc.RobustMPC`)
    #: set it False and promise *plan equivalence* instead: identical
    #: optimal cost, feasible inputs, but possibly a different optimal
    #: vertex when the LP is degenerate.
    bitwise_batch: bool = True

    @abstractmethod
    def compute(self, state) -> np.ndarray:
        """Compute the control input for ``state``.

        Returns:
            Input vector of shape ``(input_dim,)``.
        """

    def compute_rowwise(self, states) -> np.ndarray:
        """Row-by-row :meth:`compute` over an ``(N, n)`` state matrix.

        The bitwise reference path: row ``i`` *is* ``compute(states[i])``.
        The lockstep engine routes non-bitwise controllers through this
        when ``exact_solves=True`` is requested for record-for-record
        audits.
        """
        X = np.atleast_2d(np.asarray(states, dtype=float))
        if X.shape[0] == 0:
            return np.zeros((0, self.input_dim))
        return np.stack(
            [as_vector(self.compute(x), "controller output") for x in X]
        )

    def compute_batch(self, states) -> np.ndarray:
        """Compute inputs for every row of an ``(N, n)`` state matrix.

        The generic fallback evaluates :meth:`compute` row by row, so any
        controller works inside the lockstep engine; controllers with a
        closed form (:class:`~repro.controllers.linear.LinearFeedback`,
        :class:`ConstantController`) override it with a single vectorised
        expression.  Unless a subclass declares ``bitwise_batch = False``,
        row ``i`` of the result must equal ``compute(states[i])``
        exactly — the batch engines' bitwise determinism tier is built on
        that contract (non-bitwise overrides owe plan equivalence; see
        :attr:`bitwise_batch`).

        Returns:
            Array of shape ``(N, input_dim)``.
        """
        return self.compute_rowwise(states)

    def affine_feedback(self):
        """The controller's closed form as ``u = clip(K x + c)``, or None.

        Controllers that are a saturated affine law return a 4-tuple
        ``(K, offset, lower, upper)`` — any entry may be ``None`` (no
        gain / no offset / no saturation).  This is the eligibility
        handshake for the compiled lockstep kernel tier
        (:mod:`repro.framework.kernel`): the fused step loop evaluates
        exactly these pieces with the same multiply + pairwise-reduce
        rounding as :meth:`compute_batch`, so only controllers whose
        batch path *is* that expression may return non-None.  Everything
        else (stacked-LP solvers, learned controllers) returns ``None``
        and keeps the numpy per-step pipeline.
        """
        return None

    def __call__(self, state) -> np.ndarray:
        return self.compute(state)

    def reset(self) -> None:
        """Clear internal state (warm starts, caches).  Default: no-op."""


class ConstantController(Controller):
    """Always returns the same input (e.g. the zero/skip input)."""

    def __init__(self, value):
        self.value = as_vector(value, "value")
        self.input_dim = self.value.size

    def compute(self, state) -> np.ndarray:
        return self.value.copy()

    def compute_batch(self, states) -> np.ndarray:
        X = np.atleast_2d(np.asarray(states, dtype=float))
        return np.tile(self.value, (X.shape[0], 1))

    def affine_feedback(self):
        """Constant output: no gain, offset = value, no saturation."""
        return (None, self.value, None, None)
