"""ACC case study (paper Sec. IV): model, sets, DRL env, experiments."""

from repro.acc.case_study import (
    ACCCaseStudy,
    acc_scenario_spec,
    build_case_study,
    clear_case_study_cache,
)
from repro.acc.env import ACCSkippingEnv
from repro.acc.experiments import (
    FIG4_BIN_EDGES,
    ApproachStats,
    ComparisonResult,
    acc_disturbance_factory,
    case_study_for_experiment,
    evaluate_approaches,
    experiment_vf_range,
    train_skipping_agent,
)
from repro.acc.model import ACCCoordinates, ACCParameters, build_acc_system

__all__ = [
    "ACCParameters",
    "ACCCoordinates",
    "build_acc_system",
    "ACCCaseStudy",
    "acc_scenario_spec",
    "build_case_study",
    "clear_case_study_cache",
    "ACCSkippingEnv",
    "train_skipping_agent",
    "acc_disturbance_factory",
    "evaluate_approaches",
    "case_study_for_experiment",
    "experiment_vf_range",
    "ApproachStats",
    "ComparisonResult",
    "FIG4_BIN_EDGES",
]
