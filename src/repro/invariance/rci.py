"""Robust (control) invariant set computations (Definition 1).

Two maximal-set iterations are provided:

* :func:`maximal_rpi` — largest robust *positively* invariant subset of a
  constraint set for an autonomous closed loop ``x⁺ = M x + w``.  This is
  the natural ``XI`` for a linear feedback controller: start from
  ``S = X ∩ {x : K x ∈ U}`` so the invariant set also respects input
  limits.
* :func:`maximal_rci` — largest robust *control* invariant subset, with
  the input free in ``U`` (the textbook Definition 1).  Uses the
  Fourier–Motzkin predecessor.

Both iterate ``Ω_{k+1} = Ω_k ∩ Pre(Ω_k)`` from ``Ω_0 = S`` and stop when
``Ω_k ⊆ Ω_{k+1}`` (set convergence) or when the iteration budget runs
out — in the latter case the last iterate is returned only if it is
verified invariant, otherwise an error is raised, because an unverified
"invariant" set would silently void the paper's Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import HPolytope
from repro.geometry.hpolytope import EmptySetError
from repro.invariance.pre import pre_autonomous, pre_controllable
from repro.utils.validation import as_matrix

__all__ = ["maximal_rpi", "maximal_rci", "is_rpi", "is_rci", "InvarianceResult"]


@dataclass
class InvarianceResult:
    """Outcome of a maximal-invariant-set iteration.

    Attributes:
        invariant_set: The computed invariant polytope.
        iterations: Number of Pre-iterations performed.
        converged: Whether the fixed point was certified (as opposed to
            hitting the iteration budget with a still-shrinking set).
    """

    invariant_set: HPolytope
    iterations: int
    converged: bool


def maximal_rpi(
    M,
    constraint: HPolytope,
    disturbance: HPolytope,
    max_iterations: int = 100,
    tol: float = 1e-7,
) -> InvarianceResult:
    """Maximal robust positively invariant subset of ``constraint``
    for ``x⁺ = M x + w``, ``w ∈ W``.

    Raises:
        ValueError: If the iteration exhausts its budget without producing
            a certified invariant set, or the set becomes empty (no RPI
            subset exists).
    """
    M = as_matrix(M, "M")
    current = constraint
    for iteration in range(1, max_iterations + 1):
        try:
            pre = pre_autonomous(M, current, disturbance)
            nxt = current.intersect(pre).remove_redundancies()
        except EmptySetError:
            # A predecessor so restrictive it is empty by construction
            # (e.g. the disturbance support exceeds the target's extent).
            raise ValueError(
                "no robust positively invariant subset exists"
            ) from None
        if nxt.is_empty():
            raise ValueError("no robust positively invariant subset exists")
        if current.contains_polytope(nxt, tol) and nxt.contains_polytope(current, tol):
            return InvarianceResult(nxt, iteration, converged=True)
        current = nxt
    if is_rpi(M, current, disturbance, tol=max(tol, 1e-6)):
        return InvarianceResult(current, max_iterations, converged=False)
    raise ValueError(
        f"maximal_rpi did not converge within {max_iterations} iterations"
    )


def maximal_rci(
    A,
    B,
    constraint: HPolytope,
    input_set: HPolytope,
    disturbance: HPolytope,
    max_iterations: int = 50,
    tol: float = 1e-7,
) -> InvarianceResult:
    """Maximal robust control invariant subset of ``constraint`` (Def. 1
    with the input existentially quantified over ``U``).

    Raises:
        ValueError: As in :func:`maximal_rpi`.
    """
    A = as_matrix(A, "A")
    B = as_matrix(B, "B")
    current = constraint
    for iteration in range(1, max_iterations + 1):
        try:
            pre = pre_controllable(A, B, input_set, current, disturbance)
            nxt = current.intersect(pre).remove_redundancies()
        except EmptySetError:
            raise ValueError(
                "no robust control invariant subset exists"
            ) from None
        if nxt.is_empty():
            raise ValueError("no robust control invariant subset exists")
        if current.contains_polytope(nxt, tol) and nxt.contains_polytope(current, tol):
            return InvarianceResult(nxt, iteration, converged=True)
        current = nxt
    if is_rci(A, B, current, input_set, disturbance, tol=max(tol, 1e-6)):
        return InvarianceResult(current, max_iterations, converged=False)
    raise ValueError(
        f"maximal_rci did not converge within {max_iterations} iterations"
    )


def is_rpi(M, candidate: HPolytope, disturbance: HPolytope, tol: float = 1e-7) -> bool:
    """Certify ``M · candidate ⊕ W ⊆ candidate`` (robust positive invariance)."""
    pre = pre_autonomous(as_matrix(M, "M"), candidate, disturbance)
    return pre.contains_polytope(candidate, tol)


def is_rci(
    A,
    B,
    candidate: HPolytope,
    input_set: HPolytope,
    disturbance: HPolytope,
    tol: float = 1e-7,
) -> bool:
    """Certify robust control invariance of ``candidate`` (Def. 1)."""
    pre = pre_controllable(
        as_matrix(A, "A"), as_matrix(B, "B"), input_set, candidate, disturbance
    )
    return pre.contains_polytope(candidate, tol)
