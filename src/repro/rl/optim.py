"""Adam optimiser for the numpy MLP."""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["Adam"]


class Adam:
    """Standard Adam (Kingma & Ba 2015) over a parameter list.

    Args:
        params: The *live* parameter arrays (updated in place).
        lr: Learning rate.
        beta1: First-moment decay.
        beta2: Second-moment decay.
        eps: Numerical floor.
        grad_clip: Optional global-norm clip applied before the update —
            DQN targets are non-stationary, so clipping keeps early
            training from blowing up.
    """

    def __init__(
        self,
        params: List[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        grad_clip: float = 10.0,
    ):
        self.params = params
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.grad_clip = grad_clip
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self, grads: List[np.ndarray]) -> None:
        """Apply one Adam update given gradients matching the params."""
        if len(grads) != len(self.params):
            raise ValueError("gradient/parameter count mismatch")
        if self.grad_clip is not None:
            total = np.sqrt(sum(float(np.sum(g * g)) for g in grads))
            if total > self.grad_clip and total > 0.0:
                scale = self.grad_clip / total
                grads = [g * scale for g in grads]
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, g, m, v in zip(self.params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
