"""Built-in scenario zoo: the registered case studies.

Five plants spanning state dimensions 1–4 and both safe-controller
recipes, all pushed through the identical pipeline (certified ``XI``,
strengthened ``X'``, skip-aware monitor):

* ``acc`` — the paper's adaptive cruise control (2 states, RMPC, coast
  skip input); parameters from Huang et al., DAC 2020, Sec. IV.
* ``thermal`` — room-temperature regulation about a setpoint (1 state,
  RMPC); first-order RC building model, textbook constants.
* ``pendulum`` — inverted pendulum stabilised about the upright (2
  states, RMPC, ZOH discretisation); unit-mass unit-length pendulum.
* ``dc_motor`` — DC-servo positioning (3 states: angle, speed, current;
  LQR feedback); classic armature-controlled motor constants.
* ``lane_keeping`` — highway lateral/yaw error dynamics at 20 m/s (4
  states, LQR feedback); linearised bicycle model (Rajamani, *Vehicle
  Dynamics and Control*, ch. 2–3) with mid-size-sedan constants.

Each factory returns a fresh :class:`~repro.scenarios.spec.ScenarioSpec`;
synthesis results are shared through the builder cache, so repeated
``build`` calls stay cheap.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import HPolytope
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "acc_spec",
    "thermal_spec",
    "pendulum_spec",
    "dc_motor_spec",
    "lane_keeping_spec",
]


@register_scenario("acc")
def acc_spec() -> ScenarioSpec:
    """The paper's ACC case study as a registry scenario.

    Delegates to :func:`repro.acc.case_study.acc_scenario_spec` (imported
    lazily to keep the registry import-light and cycle-free), so the
    registered scenario and ``repro.acc.build_case_study`` share one
    parameter source and one cache entry.
    """
    from repro.acc.case_study import acc_scenario_spec

    return acc_scenario_spec()


@register_scenario("thermal")
def thermal_spec() -> ScenarioSpec:
    """Room-temperature control: 1 state, RMPC, forward-Euler.

    First-order building thermal model about the setpoint,
    ``Ṫ = −a T + b u + w`` with leakage ``a = 0.1 /min``, heater/cooler
    authority ``b = 0.05 K/min`` per unit power and ambient fluctuation
    ``|w| ≤ 0.1 K`` per 1-minute sampling period.  Comfort band ±2 K.
    The skip input is zero (HVAC idles), so the strengthened set is the
    band from which one minute of pure drift provably stays certified.
    """
    return ScenarioSpec(
        name="thermal",
        description="room-temperature regulation, 1 state, RMPC",
        source="first-order RC building model, textbook constants",
        A=[[-0.1]],
        B=[[0.05]],
        continuous=True,
        dt=1.0,
        discretization="euler",
        safe_set=HPolytope.from_box([-2.0], [2.0]),
        input_set=HPolytope.from_box([-15.0], [15.0]),
        disturbance_set=HPolytope.from_box([-0.1], [0.1]),
        controller="rmpc",
        horizon=10,
        input_weight=0.1,
    )


@register_scenario("pendulum")
def pendulum_spec() -> ScenarioSpec:
    """Inverted pendulum about the upright: 2 states, RMPC, ZOH.

    Unit-mass, unit-length pendulum linearised at the unstable upright
    equilibrium: ``θ̈ = (g/l) θ + u / (m l²)`` with ``g = 9.81``.
    Sampled at 20 ms with the exact zero-order hold (exercising the
    non-Euler discretisation path).  The open loop is unstable, so —
    unlike the ACC — skipping is only admissible in a genuinely
    strict subset of ``XI``.
    """
    return ScenarioSpec(
        name="pendulum",
        description="inverted pendulum about upright, 2 states, RMPC",
        source="unit-mass unit-length pendulum, linearised upright",
        A=[[0.0, 1.0], [9.81, 0.0]],
        B=[[0.0], [1.0]],
        continuous=True,
        dt=0.02,
        discretization="zoh",
        safe_set=HPolytope.from_box([-0.3, -1.5], [0.3, 1.5]),
        input_set=HPolytope.from_box([-8.0], [8.0]),
        disturbance_set=HPolytope.from_box([-1e-3, -5e-3], [1e-3, 5e-3]),
        controller="rmpc",
        horizon=10,
    )


@register_scenario("dc_motor")
def dc_motor_spec() -> ScenarioSpec:
    """DC-servo positioning: 3 states (angle, speed, current), LQR.

    Armature-controlled DC motor — ``θ̇ = ω``,
    ``ω̇ = (K_t i − b ω) / J``, ``i̇ = (−R i − K_e ω + u) / L`` — with
    classic demo constants ``J = 0.01``, ``b = 0.1``, ``K_t = K_e =
    0.01``, ``R = 1``, ``L = 0.5``, sampled at 50 ms.  Load-torque and
    supply-ripple disturbances enter on the speed and current states.
    """
    return ScenarioSpec(
        name="dc_motor",
        description="DC-servo positioning, 3 states, LQR feedback",
        source="armature-controlled DC motor, classic demo constants",
        A=[[0.0, 1.0, 0.0], [0.0, -10.0, 1.0], [0.0, -0.02, -2.0]],
        B=[[0.0], [0.0], [2.0]],
        continuous=True,
        dt=0.05,
        discretization="euler",
        safe_set=HPolytope.from_box([-1.0, -2.0, -5.0], [1.0, 2.0, 5.0]),
        input_set=HPolytope.from_box([-12.0], [12.0]),
        disturbance_set=HPolytope.from_box(
            [-0.002, -0.01, -0.01], [0.002, 0.01, 0.01]
        ),
        controller="linear",
        state_weight=1.0,
        input_weight=1.0,
    )


@register_scenario("lane_keeping")
def lane_keeping_spec() -> ScenarioSpec:
    """Highway lane keeping: 4 states, LQR feedback.

    Linearised bicycle-model error dynamics at ``v_x = 20 m/s`` —
    states are lateral offset, lateral velocity, yaw error, yaw-rate
    error; the input is the front steering angle.  Mid-size-sedan
    constants ``m = 1500 kg``, ``I_z = 3000 kg m²``, ``C_f = C_r =
    60 kN/rad``, ``l_f = 1.2 m``, ``l_r = 1.6 m`` (Rajamani ch. 2–3),
    sampled at 20 ms.  Crosswind and road-crown disturbances enter on
    the lateral-velocity and yaw-rate states.
    """
    return ScenarioSpec(
        name="lane_keeping",
        description="highway lane keeping, 4 states, LQR feedback",
        source="linearised bicycle model (Rajamani), sedan at 20 m/s",
        A=[
            [0.0, 1.0, 0.0, 0.0],
            [0.0, -8.0, 160.0, 1.6],
            [0.0, 0.0, 0.0, 1.0],
            [0.0, 0.8, -16.0, -8.0],
        ],
        B=[[0.0], [80.0], [0.0], [48.0]],
        continuous=True,
        dt=0.02,
        discretization="euler",
        safe_set=HPolytope.from_box(
            [-1.0, -2.0, -0.15, -0.6], [1.0, 2.0, 0.15, 0.6]
        ),
        input_set=HPolytope.from_box([-0.15], [0.15]),
        disturbance_set=HPolytope.from_box(
            [0.0, -0.01, 0.0, -0.005], [0.0, 0.01, 0.0, 0.005]
        ),
        controller="linear",
        state_weight=1.0,
        input_weight=50.0,
    )
