"""Content-addressed result store — the persistence layer of the
experiment service.

Every grid cell of a sweep is already a pure function of its stable
:class:`~repro.experiments.plan.GridCell` key plus its reproducibility
config (cases, horizon, seed, engine tier, overrides, ...).  The
:class:`ResultStore` exploits that: a cell record's address is the
sha256 of *(key, canonical-config-JSON)*, so any job — a checkpointed
``run_sweep``, a service job, a later resubmission of an edited grid —
that would compute the identical cell finds the stored
:class:`~repro.experiments.result.CellResult` instead and serves it
without re-solving.  Incremental sweeps fall out for free: resubmitting
a 1000-cell grid with one edited scenario mismatches only the edited
cells' addresses.

Records are single JSON files in one flat directory, each wrapped in a
versioned envelope::

    {"format": 1, "key": "<grid key>", "config": {...}, "cell": {...}}

``format`` (:data:`STORE_FORMAT`) lets future layout changes invalidate
cleanly — an old-format record reads as a *miss* (and re-solving then
overwrites it) instead of mis-deserialising.  Writes are atomic
(``mkstemp`` + ``os.replace`` in the same directory), so concurrent
writers of one address are last-write-wins and a reader can never see a
torn record; an interrupt mid-write leaves the previous record or
nothing.

Observability: every probe and write records into the ambient
:mod:`repro.observability` registry as
``result_store_events_total{event=hit|miss|put|evict, reason=...}``.
These are operational counters (*how* a result was obtained, never what
it contains) and are excluded from the deterministic telemetry view.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
import tempfile
import time
from typing import List, Optional, Tuple

from repro.experiments.result import CellResult, cell_from_dict, cell_to_dict
from repro.observability import metrics as _obs

__all__ = ["ResultStore", "STORE_FORMAT", "MISS_REASONS"]

#: Cell-record envelope format version.  Bump on any change to the
#: envelope layout or to the semantics of the stored cell payload; a
#: record with any other version is a miss (``reason="format"``).
STORE_FORMAT = 1

#: Everything :meth:`ResultStore.lookup` can answer besides ``"hit"``.
#: ``absent``  — no record at the address (the normal cold miss);
#: ``corrupt`` — unreadable/unparseable record file;
#: ``format``  — envelope from another :data:`STORE_FORMAT` version;
#: ``key``/``config`` — envelope disagrees with the requested address
#: (tampering or a hash-prefix collision — never trusted).
MISS_REASONS = ("absent", "corrupt", "format", "key", "config")

_SUFFIX = ".cell.json"

logger = logging.getLogger(__name__)


def canonical_config(config: dict) -> str:
    """The canonical JSON rendering of a reproducibility config — the
    exact bytes hashed into a record address, so ``{"a": 1, "b": 2}``
    and ``{"b": 2, "a": 1}`` share one address."""
    return json.dumps(config, sort_keys=True, separators=(",", ":"))


def _slug(key: str) -> str:
    """A filesystem-safe, human-readable prefix for a cell key."""
    return re.sub(r"[^A-Za-z0-9._=@-]+", "_", key)[:80]


class ResultStore:
    """A directory of content-addressed cell records shared across jobs.

    Args:
        directory: Store directory; created if missing.

    Thread/process safety: :meth:`put` is atomic-replace, :meth:`get`
    reads whole files, and addresses are deterministic — any number of
    sweeps, jobs, or forked workers may hit one store concurrently with
    last-write-wins semantics and no torn reads.
    """

    def __init__(self, directory):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def digest_for(self, key: str, config: dict) -> str:
        """sha256 of the record address (stable grid key + config)."""
        digest = hashlib.sha256()
        digest.update(key.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(canonical_config(config).encode("utf-8"))
        return digest.hexdigest()

    def path_for(self, key: str, config: dict) -> str:
        """The record path of cell ``key`` under config ``config``."""
        name = f"{_slug(key)}-{self.digest_for(key, config)[:16]}{_SUFFIX}"
        return os.path.join(self.directory, name)

    # ------------------------------------------------------------------
    # Read/write
    # ------------------------------------------------------------------
    def contains(self, key: str, config: dict) -> bool:
        """Whether a record exists at this address (existence probe
        only — no envelope validation, no hit/miss counters)."""
        return os.path.exists(self.path_for(key, config))

    def lookup(
        self, key: str, config: dict
    ) -> Tuple[Optional[CellResult], str]:
        """``(cell, "hit")`` or ``(None, reason)`` without counting.

        The counter-free primitive behind :meth:`get`;
        :class:`~repro.experiments.checkpoint.SweepCheckpoint` uses it
        directly so it can classify skips into its own
        ``checkpoint_files_skipped_total`` reasons.
        """
        path = self.path_for(key, config)
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except OSError:
            return None, "absent"
        except ValueError:
            return None, "corrupt"
        if not isinstance(envelope, dict):
            return None, "corrupt"
        if envelope.get("format") != STORE_FORMAT:
            return None, "format"
        if envelope.get("key") != key:
            return None, "key"
        if envelope.get("config") != config:
            return None, "config"
        try:
            cell = cell_from_dict(envelope["cell"])
        except (KeyError, TypeError, ValueError):
            return None, "corrupt"
        # Refresh the record's mtime so age/size GC evicts by last use,
        # not first write (best-effort; a concurrently replaced file is
        # fine to skip).
        try:
            os.utime(path)
        except OSError:
            pass
        return cell, "hit"

    def get_with_reason(
        self, key: str, config: dict
    ) -> Tuple[Optional[CellResult], str]:
        """:meth:`lookup`, with the hit/miss counted in the ambient
        registry (``result_store_events_total{event=hit}`` /
        ``{event=miss, reason=...}``)."""
        cell, reason = self.lookup(key, config)
        if cell is not None:
            _obs.registry().inc("result_store_events_total", event="hit")
        else:
            _obs.registry().inc(
                "result_store_events_total", event="miss", reason=reason
            )
        return cell, reason

    def get(self, key: str, config: dict) -> Optional[CellResult]:
        """The stored cell for this address, or ``None`` on any miss
        (counted — see :meth:`get_with_reason`)."""
        cell, _ = self.get_with_reason(key, config)
        return cell

    def put(self, cell: CellResult) -> str:
        """Atomically write ``cell``'s full-fidelity record (telemetry
        snapshot included); returns the final path.

        Safe from any process or thread: the envelope lands via
        ``os.replace`` of a same-directory temp file, so concurrent
        writers of one address are last-write-wins and a reader never
        observes a partial record.
        """
        path = self.path_for(cell.key, cell.config)
        envelope = {
            "format": STORE_FORMAT,
            "key": cell.key,
            "config": cell.config,
            "cell": cell_to_dict(cell),
        }
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=_SUFFIX
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        _obs.registry().inc("result_store_events_total", event="put")
        return path

    def find(self, key: str) -> List[CellResult]:
        """Every valid stored cell whose grid key is ``key``, any
        config (a directory scan — diagnostics, not the hot path)."""
        out = []
        prefix = _slug(key) + "-"
        for name in sorted(os.listdir(self.directory)):
            if not (name.startswith(prefix) and name.endswith(_SUFFIX)):
                continue
            try:
                with open(os.path.join(self.directory, name)) as handle:
                    envelope = json.load(handle)
                if (
                    isinstance(envelope, dict)
                    and envelope.get("format") == STORE_FORMAT
                    and envelope.get("key") == key
                ):
                    out.append(cell_from_dict(envelope["cell"]))
            except (OSError, KeyError, TypeError, ValueError):
                continue
        return out

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _records(self) -> List[Tuple[str, float, int]]:
        """``(path, mtime, bytes)`` of every record file, oldest first."""
        records = []
        for name in os.listdir(self.directory):
            if not name.endswith(_SUFFIX) or name.startswith(".tmp-"):
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue  # concurrently evicted/replaced
            records.append((path, stat.st_mtime, stat.st_size))
        records.sort(key=lambda record: record[1])
        return records

    def gc(
        self,
        max_age: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> dict:
        """Evict records by age and/or total size; returns a summary.

        Args:
            max_age: Remove records last used more than this many
                seconds ago (hits refresh a record's mtime, so this is
                time-since-last-use).
            max_bytes: After the age pass, remove least-recently-used
                records until the store fits in this many bytes.

        Returns:
            ``{"removed", "bytes_freed", "files", "bytes"}`` — evictions
            performed and the store's state afterwards.  Evictions count
            as ``result_store_events_total{event=evict, reason=age|bytes}``.
        """
        removed = 0
        freed = 0
        records = self._records()
        if max_age is not None:
            cutoff = time.time() - float(max_age)
            survivors = []
            for path, mtime, size in records:
                if mtime < cutoff:
                    if self._evict(path, "age"):
                        removed += 1
                        freed += size
                else:
                    survivors.append((path, mtime, size))
            records = survivors
        if max_bytes is not None:
            total = sum(size for _, _, size in records)
            for path, _, size in records:
                if total <= max_bytes:
                    break
                if self._evict(path, "bytes"):
                    removed += 1
                    freed += size
                    total -= size
        remaining = self._records()
        summary = {
            "removed": removed,
            "bytes_freed": freed,
            "files": len(remaining),
            "bytes": sum(size for _, _, size in remaining),
        }
        if removed:
            logger.info(
                "store gc: evicted %d record(s), %d bytes freed (%s)",
                removed, freed, self.directory,
            )
        return summary

    def _evict(self, path: str, reason: str) -> bool:
        try:
            os.unlink(path)
        except OSError:
            return False  # concurrently removed — someone else's evict
        _obs.registry().inc(
            "result_store_events_total", event="evict", reason=reason
        )
        return True

    def stats(self) -> dict:
        """Store-level stats: file/byte footprint plus this process's
        cumulative hit/miss/put/evict counters."""
        records = self._records()
        reg = _obs.registry()
        return {
            "directory": self.directory,
            "format": STORE_FORMAT,
            "files": len(records),
            "bytes": sum(size for _, _, size in records),
            "hits": reg.total("result_store_events_total", event="hit"),
            "misses": reg.total("result_store_events_total", event="miss"),
            "puts": reg.total("result_store_events_total", event="put"),
            "evictions": reg.total(
                "result_store_events_total", event="evict"
            ),
        }

    def __repr__(self) -> str:
        return f"ResultStore({self.directory!r})"
