"""Sec. IV-A computation-saving numbers.

Paper: RMPC computation ≈ 0.12 s/step vs monitor + NN ≈ 0.02 s/step on
their desktop; with 79.4 of 100 steps skipped the overall computation
saving is ≈ 60%:

    (0.12·100 − (0.02·100 + 0.12·(100−79.4))) / (0.12·100) ≈ 0.63.

This bench re-measures both per-step costs on the current host, reads
the realised skip rate from a bang-bang run, and evaluates the same
formula.  Absolute times differ from the paper (their RMPC ran in
MATLAB-era tooling); the *ratio* monitor ≪ controller and the formula's
output are the reproduced artefacts.  Two separate pytest-benchmark
kernels time κ_R and the monitor+Ω path.
"""

import numpy as np

from benchmarks.conftest import HORIZON, emit, pct
from repro.acc import evaluate_approaches
from repro.framework import computation_saving
from repro.skipping import DRLSkippingPolicy


def bench_rmpc_step(benchmark, acc_case, rng=np.random.default_rng(3)):
    """Per-step cost of the underlying safe controller κ_R."""
    states = acc_case.invariant_set.sample(rng, 32)
    idx = [0]

    def solve_one():
        idx[0] = (idx[0] + 1) % len(states)
        return acc_case.mpc.compute(states[idx[0]])

    benchmark(solve_one)


def bench_monitor_and_policy_step(benchmark, acc_case, overall_agent):
    """Per-step cost of the X'-membership check plus the DQN forward."""
    agent, env, _history = overall_agent
    policy = DRLSkippingPolicy(
        agent, state_scale=env.state_scale,
        disturbance_scale=env.disturbance_scale,
    )
    monitor = acc_case.make_monitor()
    rng = np.random.default_rng(4)
    states = acc_case.strengthened_set.sample(rng, 32)
    from repro.skipping.base import DecisionContext

    contexts = [
        DecisionContext(
            time=0, state=s, past_disturbances=np.zeros((1, 2)),
        )
        for s in states
    ]
    idx = [0]

    def decide_one():
        idx[0] = (idx[0] + 1) % len(states)
        monitor.classify(states[idx[0]])
        return policy.decide(contexts[idx[0]])

    benchmark(decide_one)


def bench_overall_computation_saving(benchmark, acc_case, overall_agent):
    """The full Sec. IV-A computation-saving figure on this host."""
    agent, _env, _history = overall_agent
    result = evaluate_approaches(
        acc_case, "overall", num_cases=8, horizon=HORIZON, seed=5, agent=agent
    )
    t_controller = result.rmpc_only.mean_controller_ms / 1e3
    t_monitor = result.drl.mean_monitor_ms / 1e3
    skipped = float(result.drl.skip_rate.mean()) * HORIZON
    saving = computation_saving(t_controller, t_monitor, HORIZON, int(skipped))
    emit(
        "Sec. IV-A — computation saving (paper: ~60%, 79.4 skips/100)",
        [
            ("controller ms/step", f"{1e3*t_controller:.3f}"),
            ("monitor+NN ms/step", f"{1e3*t_monitor:.3f}"),
            ("skipped steps /100", f"{skipped:.1f}"),
            ("computation saving", pct(saving)),
        ],
        ("quantity", "value"),
    )
    benchmark.extra_info["controller_ms"] = 1e3 * t_controller
    benchmark.extra_info["monitor_ms"] = 1e3 * t_monitor
    benchmark.extra_info["skipped_per_100"] = skipped
    benchmark.extra_info["computation_saving"] = saving

    # Shape: monitoring is much cheaper than control; skipping most
    # steps therefore yields a large net compute saving.
    assert t_monitor < 0.5 * t_controller
    assert saving > 0.3

    benchmark(lambda: computation_saving(t_controller, t_monitor, 100, 79))
