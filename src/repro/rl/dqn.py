"""Double deep Q-learning (van Hasselt et al. 2016) — the paper's Ω learner.

The agent keeps an online network and a target network.  Targets are the
double-DQN estimate

    y = r + γ · Q_target(s', argmax_a Q_online(s', a)) · (1 − done)

with a Huber loss on the TD error, trained by Adam.  Everything runs on
the numpy :class:`~repro.rl.network.MLP`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.rl.network import MLP
from repro.rl.optim import Adam
from repro.rl.replay import Batch, ReplayBuffer

__all__ = ["DoubleDQNAgent", "DQNConfig"]


@dataclass(frozen=True)
class DQNConfig:
    """Hyper-parameters for :class:`DoubleDQNAgent`.

    Attributes:
        state_dim: Observation dimension.
        num_actions: Size of the discrete action set (2 for skip/run).
        hidden: Hidden-layer widths.
        gamma: Discount factor.
        lr: Adam learning rate.
        batch_size: Replay mini-batch size.
        buffer_capacity: Replay buffer size.
        target_sync_every: Hard target-network sync period (updates).
        huber_delta: Huber loss transition point.
        learn_start: Minimum buffer fill before updates begin.
    """

    state_dim: int
    num_actions: int = 2
    hidden: Sequence[int] = (64, 64)
    gamma: float = 0.95
    lr: float = 1e-3
    batch_size: int = 64
    buffer_capacity: int = 50_000
    target_sync_every: int = 250
    huber_delta: float = 1.0
    learn_start: int = 500


class DoubleDQNAgent:
    """Double-DQN agent over a discrete action space.

    Args:
        config: Hyper-parameters.
        rng: Source of randomness for init, exploration and replay.
    """

    def __init__(self, config: DQNConfig, rng: np.random.Generator):
        self.config = config
        self.rng = rng
        sizes = [config.state_dim, *config.hidden, config.num_actions]
        self.online = MLP(sizes, rng)
        self.target = MLP(sizes, rng)
        self.target.copy_from(self.online)
        self.optimizer = Adam(self.online.params, lr=config.lr)
        self.buffer = ReplayBuffer(config.buffer_capacity, rng)
        self.updates = 0

    # ------------------------------------------------------------------
    def q_values(self, state) -> np.ndarray:
        """Online Q(s, ·) for a single state."""
        return self.online.forward(np.asarray(state, dtype=float))[0]

    def act(self, state, epsilon: float = 0.0) -> int:
        """ε-greedy action."""
        if epsilon > 0.0 and self.rng.random() < epsilon:
            return int(self.rng.integers(self.config.num_actions))
        return int(np.argmax(self.q_values(state)))

    def greedy_policy(self):
        """A picklable-free callable ``state -> action`` (ε = 0)."""
        return lambda state: self.act(state, epsilon=0.0)

    # ------------------------------------------------------------------
    def remember(self, state, action: int, reward: float, next_state, done: bool) -> None:
        """Store one transition in the replay buffer."""
        self.buffer.push(state, action, reward, next_state, done)

    def update(self) -> Optional[float]:
        """One gradient step on a replay batch.

        Returns:
            The batch loss, or None when the buffer has not yet reached
            ``learn_start`` transitions.
        """
        cfg = self.config
        if len(self.buffer) < cfg.learn_start:
            return None
        batch = self.buffer.sample(cfg.batch_size)
        targets = self._double_dqn_targets(batch)
        q_all = self.online.forward(batch.states, train=True)
        idx = np.arange(cfg.batch_size)
        q_taken = q_all[idx, batch.actions]
        td = q_taken - targets
        # Huber gradient on the taken action only.
        grad_td = np.clip(td, -cfg.huber_delta, cfg.huber_delta) / cfg.batch_size
        grad_output = np.zeros_like(q_all)
        grad_output[idx, batch.actions] = grad_td
        grads = self.online.backward(grad_output)
        self.optimizer.step(grads)
        self.updates += 1
        if self.updates % cfg.target_sync_every == 0:
            self.target.copy_from(self.online)
        abs_td = np.abs(td)
        quad = np.minimum(abs_td, cfg.huber_delta)
        loss = float(np.mean(0.5 * quad**2 + cfg.huber_delta * (abs_td - quad)))
        return loss

    def _double_dqn_targets(self, batch: Batch) -> np.ndarray:
        """``r + γ Q_target(s', argmax_a Q_online(s', a))`` with done mask."""
        online_next = self.online.forward(batch.next_states)
        best_actions = np.argmax(online_next, axis=1)
        target_next = self.target.forward(batch.next_states)
        idx = np.arange(batch.states.shape[0])
        bootstrap = target_next[idx, best_actions]
        return batch.rewards + self.config.gamma * bootstrap * (~batch.dones)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpoint of both networks."""
        return {
            "online": self.online.state_dict(),
            "target": self.target.state_dict(),
            "updates": self.updates,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a checkpoint produced by :meth:`state_dict`."""
        self.online.load_state_dict(state["online"])
        self.target.load_state_dict(state["target"])
        self.updates = int(state["updates"])
