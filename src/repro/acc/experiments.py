"""Experiment harness for the paper's Sec. IV evaluation.

Provides, for every experiment id (``overall``, ``ex1`` … ``ex10``):

* the correctly-parameterised case study (Ex.1–Ex.5 change the
  front-velocity range, hence the disturbance set and the safe sets);
* double-DQN training of the skipping agent on that scenario;
* paired evaluation of the three approaches — RMPC-only, bang-bang
  (Eq. 7) and DRL-based opportunistic intermittent control — on shared
  disturbance realisations, reporting fuel (HBEFA3 surrogate), the formal
  Σ‖u‖₁ energy, skip rates and timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.acc.case_study import ACCCaseStudy, build_case_study
from repro.acc.env import ACCSkippingEnv
from repro.framework.evaluation import default_engine
from repro.rl.dqn import DQNConfig, DoubleDQNAgent
from repro.rl.schedule import LinearSchedule
from repro.rl.training import TrainingHistory, train_dqn
from repro.skipping.base import SkippingPolicy
from repro.skipping.drl import DRLSkippingPolicy
from repro.traffic.patterns import experiment_pattern

__all__ = [
    "experiment_vf_range",
    "case_study_for_experiment",
    "train_skipping_agent",
    "acc_disturbance_factory",
    "table1_axis",
    "ApproachStats",
    "ComparisonResult",
    "evaluate_approaches",
    "FIG4_BIN_EDGES",
]

#: Fuel-saving histogram bin edges of the paper's Fig. 4 (fractions).
FIG4_BIN_EDGES = np.array([0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6])

#: Table I — front-velocity range per experiment id.
_EXPERIMENT_VF_RANGES = {
    "overall": (30.0, 50.0),
    "ex1": (30.0, 50.0),
    "ex2": (32.5, 47.5),
    "ex3": (35.0, 45.0),
    "ex4": (38.0, 42.0),
    "ex5": (39.0, 41.0),
    "ex6": (30.0, 50.0),
    "ex7": (30.0, 50.0),
    "ex8": (30.0, 50.0),
    "ex9": (30.0, 50.0),
    "ex10": (30.0, 50.0),
}


def experiment_vf_range(experiment: str) -> tuple:
    """Front-velocity range of a paper experiment id (Table I)."""
    try:
        return _EXPERIMENT_VF_RANGES[experiment.lower()]
    except KeyError:
        raise ValueError(f"unknown experiment id {experiment!r}") from None


def case_study_for_experiment(experiment: str) -> ACCCaseStudy:
    """Case study with the disturbance set matching the experiment.

    Ex.2–Ex.5 shrink the vf range: the disturbance polytope, the RMPC
    tightening, ``XI`` and ``X'`` are all recomputed (and cached).
    """
    return build_case_study(vf_range=experiment_vf_range(experiment))


def train_skipping_agent(
    case: ACCCaseStudy,
    experiment: str,
    episodes: int = 250,
    seed: int = 0,
    episode_steps: int = 100,
    memory_length: int = 1,
    reward_mode: str = "fuel",
    weight_unsafe: float = 0.01,
    weight_energy: float = 0.03,
    dqn_config: Optional[DQNConfig] = None,
    restarts: int = 1,
    validation_cases: int = 8,
) -> tuple:
    """Train the paper's double-DQN skipping agent for one scenario.

    Defaults were calibrated so the paper's qualitative result (DRL
    saving > bang-bang saving > 0 against RMPC-only) reproduces: the
    reward's energy term reads the same fuel meter the evaluation uses
    (``reward_mode="fuel"``; the paper trains against SUMO's meter), and
    (w₁, w₂) are rebalanced for this meter's magnitudes.  Pass
    ``reward_mode="l1"`` with ``weight_energy=1e-4`` for the paper's
    printed formula instead.

    DQN training has high seed variance; with ``restarts > 1`` several
    agents are trained (seeds ``seed, seed+1, …``) and the one with the
    best mean fuel saving on a small held-out validation set (evaluation
    seed 9999, disjoint from both training and the benchmark evaluation
    seeds) is returned — standard practice the paper's single-number
    results implicitly rely on.

    Returns:
        ``(agent, env, history)`` of the selected restart — the env is
        returned because its normalisation scales are needed to build
        the evaluation policy.
    """
    if restarts < 1:
        raise ValueError("restarts must be >= 1")
    best = None
    best_score = -np.inf
    for attempt in range(restarts):
        rng = np.random.default_rng(seed + attempt)
        pattern = experiment_pattern(experiment, rng, dt=case.params.delta)
        env = ACCSkippingEnv(
            case,
            pattern,
            rng,
            episode_steps=episode_steps,
            memory_length=memory_length,
            weight_unsafe=weight_unsafe,
            weight_energy=weight_energy,
            reward_mode=reward_mode,
        )
        if dqn_config is None:
            config = DQNConfig(
                state_dim=env.observation_dim,
                num_actions=2,
                hidden=(64, 64),
                gamma=0.98,
                lr=5e-4,
                batch_size=64,
                buffer_capacity=50_000,
                target_sync_every=400,
                learn_start=500,
            )
        else:
            config = dqn_config
        agent = DoubleDQNAgent(config, rng)
        anneal = max(int(episodes * episode_steps * 0.7), 1)
        history = train_dqn(
            agent,
            env,
            episodes=episodes,
            max_steps=episode_steps,
            epsilon_schedule=LinearSchedule(1.0, 0.02, anneal),
        )
        if restarts == 1:
            return agent, env, history
        validation = evaluate_approaches(
            case, experiment, num_cases=validation_cases,
            horizon=episode_steps, seed=9999, agent=agent,
        )
        score = float(validation.fuel_saving("drl").mean())
        if score > best_score:
            best_score = score
            best = (agent, env, history)
    return best


def acc_disturbance_factory(case: ACCCaseStudy, experiment: str, horizon: int):
    """A seeded per-episode disturbance factory for the ACC case study.

    Returns a ``(episode, rng) -> (T, n)`` callable for the batch
    runners' ``run_seeded``: each episode builds its own front-vehicle
    pattern from its private generator, so realisations depend only on
    the root seed and the episode index — never on worker scheduling.
    """

    def factory(episode: int, rng) -> np.ndarray:
        pattern = experiment_pattern(experiment, rng, dt=case.params.delta)
        return case.coords.disturbance_from_vf(pattern.generate(horizon))

    return factory


@dataclass
class ApproachStats:
    """Per-case metrics of one control approach over the evaluation set.

    Attributes:
        fuel: Trip fuel per case [g].
        energy: Σ‖u‖₁ per case on raw commands (Problem-1 objective;
            coast-mode skips cost zero, matching the paper's zero input).
        skip_rate: Fraction of skipped steps per case.
        forced_steps: Monitor-forced steps per case.
        mean_controller_ms: Mean κ wall-clock per invocation [ms].
        mean_monitor_ms: Mean monitor+Ω wall-clock per step [ms].
    """

    fuel: np.ndarray
    energy: np.ndarray
    skip_rate: np.ndarray
    forced_steps: np.ndarray
    mean_controller_ms: float
    mean_monitor_ms: float


@dataclass
class ComparisonResult:
    """Paired comparison of the three approaches (paper Sec. IV).

    All arrays are aligned per evaluation case (same initial state and
    disturbance realisation across approaches).
    """

    experiment: str
    rmpc_only: ApproachStats
    bang_bang: ApproachStats
    drl: Optional[ApproachStats]

    def fuel_saving(self, approach: str) -> np.ndarray:
        """Per-case fractional fuel saving of ``approach`` vs RMPC-only."""
        stats = self.stats(approach)
        return (self.rmpc_only.fuel - stats.fuel) / self.rmpc_only.fuel

    def energy_saving(self, approach: str) -> np.ndarray:
        """Per-case fractional Σ‖u‖₁ saving vs RMPC-only (0/0 → 0)."""
        stats = self.stats(approach)
        base = self.rmpc_only.energy
        out = np.zeros_like(base)
        nonzero = base > 1e-12
        out[nonzero] = (base[nonzero] - stats.energy[nonzero]) / base[nonzero]
        return out

    def saving_histogram(self, approach: str, edges=FIG4_BIN_EDGES) -> np.ndarray:
        """Fig.-4-style histogram of fuel savings (counts per bin)."""
        savings = self.fuel_saving(approach)
        counts, _ = np.histogram(np.clip(savings, edges[0], edges[-1] - 1e-9), bins=edges)
        return counts

    def stats(self, approach: str) -> ApproachStats:
        """Per-approach stats by name (``rmpc_only``/``bang_bang``/``drl``).

        Raises:
            ValueError: For unknown names or when the DRL leg was not
                evaluated (no agent passed).
        """
        mapping = {
            "bang_bang": self.bang_bang,
            "drl": self.drl,
            "rmpc_only": self.rmpc_only,
        }
        stats = mapping.get(approach)
        if stats is None:
            raise ValueError(
                f"approach {approach!r} unavailable (was a DRL agent passed?)"
            )
        return stats

    # Backwards-compatible private alias (used before stats() was public).
    _stats = stats


def table1_axis(experiments: tuple = ("ex1", "ex2", "ex3", "ex4", "ex5")):
    """Table I's vf-range sweep as a declarative parameter axis.

    Each point is a paper experiment id; the ACC pattern workload maps it
    onto both the front-vehicle pattern *and* its ``vf_range`` (the
    disturbance set, hence ``XI``/``X'``, are re-synthesised per point —
    cache-correctly, because :class:`~repro.acc.model.ACCParameters` keys
    the case-study cache).  Use it in a plan::

        plan = SweepPlan(
            experiments=[ExperimentSpec(scenario="acc", pattern="overall",
                                        approaches=("bang_bang",))],
            axes=[table1_axis()],
        )
    """
    from repro.experiments import ParameterAxis

    for experiment in experiments:
        experiment_vf_range(experiment)  # validate ids eagerly
    return ParameterAxis(name="experiment", values=tuple(experiments))


def evaluate_approaches(
    case: ACCCaseStudy,
    experiment: str,
    num_cases: int = 50,
    horizon: int = 100,
    seed: int = 1,
    agent: Optional[DoubleDQNAgent] = None,
    drl_policy: Optional[SkippingPolicy] = None,
    memory_length: int = 1,
    jobs: int = 1,
    engine: Optional[str] = None,
    exact_solves: bool = False,
    lp_backend: Optional[str] = None,
) -> ComparisonResult:
    """Run the paired three-way comparison of the paper's Sec. IV.

    Deprecated thin client of :func:`repro.experiments.run_experiment`
    (metric-identical: the ACC pattern workload draws the pattern,
    initial states and realisations in the historical order).  New code
    should build an :class:`~repro.experiments.spec.ExperimentSpec` with
    ``scenario="acc"`` and ``pattern=experiment`` directly — that adds
    parameter axes (:func:`table1_axis`) and sharded grids this wrapper
    never grew.

    Each case draws an initial state in ``X'`` and one front-vehicle
    trace; all approaches see the identical realisation.

    Args:
        case: The scenario's case study.
        experiment: Paper experiment id (chooses the vf pattern).
        num_cases: Number of evaluation cases (paper: 500).
        horizon: Steps per case (paper: 100).
        seed: Evaluation seed (independent of training).
        agent: Trained DQN agent; omit to skip the DRL approach.
        drl_policy: Pre-built policy overriding ``agent``.
        memory_length: ``r`` used when building the DRL policy.
        jobs: Worker processes for the per-case fan-out (``None``/0 = one
            per CPU; only meaningful for the parallel engine).  All
            realisations are drawn up front in the parent, so any
            ``jobs``/``engine`` choice yields the same
            fuel/energy/skip/forced numbers — only the wall-clock columns
            (``mean_controller_ms``/``mean_monitor_ms``) vary.  (Sole
            exception: lockstep's stacked κ_R solves are plan-equivalent,
            not bitwise — see ``engine``/``exact_solves`` below.)
        engine: ``"serial"`` (per-case loop, forces ``jobs=1``),
            ``"parallel"`` (per-case fork fan-out over ``jobs`` workers)
            or ``"lockstep"`` (all cases of one approach advance as a
            single state matrix; single-core friendly).  ``None`` keeps
            the legacy behaviour: parallel iff ``jobs != 1``.  The DRL
            leg requires a stateless (ε = 0) policy under lockstep.
            Under lockstep κ_R solves its LPs stacked, which is
            plan-equivalent rather than bitwise to the other engines —
            pass ``exact_solves=True`` for record-for-record parity
            (see :mod:`repro.framework.lockstep`).
        exact_solves: Lockstep only — keep κ_R on the scalar solve path
            for bitwise parity with the serial engine instead of the
            plan-equivalent stacked solve.
        lp_backend: Lockstep only — stacked-solve backend request
            (``auto|highs|scipy``; see :mod:`repro.utils.lp_backends`).
            ``None`` keeps the controller's own setting.

    Returns:
        A :class:`ComparisonResult`.
    """
    from repro.experiments import ExecutionConfig, ExperimentSpec, run_experiment

    engine = default_engine(engine, jobs)  # validates; None = legacy inference
    if engine == "serial":
        jobs = 1

    policy_drl = drl_policy
    if policy_drl is None and agent is not None:
        lower, upper = case.system.safe_set.bounding_box()
        policy_drl = DRLSkippingPolicy(
            agent,
            state_scale=np.maximum(np.abs(lower), np.abs(upper)),
            disturbance_scale=max(case.params.w_bound, 1e-6),
        )

    approaches = ("bang_bang",) + (() if policy_drl is None else ("drl",))
    spec = ExperimentSpec(
        # The case itself (not just its parameters): the ACC workload
        # then evaluates exactly the object the caller built — customised
        # controllers/monitors and non-default parameter sets included.
        scenario=case,
        pattern=experiment,
        approaches=approaches,
        num_cases=num_cases,
        horizon=horizon,
        seed=seed,
        memory_length=memory_length,
        policies=None if policy_drl is None else {"drl": policy_drl},
    )
    cell = run_experiment(
        spec,
        ExecutionConfig(
            engine=engine, jobs=jobs, exact_solves=exact_solves,
            lp_backend=lp_backend,
        ),
    )

    def finalize(name: str) -> ApproachStats:
        stats = cell.approaches[name]
        return ApproachStats(
            fuel=stats.metrics["fuel"],
            energy=stats.metrics["energy"],
            skip_rate=stats.metrics["skip_rate"],
            forced_steps=stats.metrics["forced_steps"],
            mean_controller_ms=stats.mean_controller_ms,
            mean_monitor_ms=stats.mean_monitor_ms,
        )

    return ComparisonResult(
        experiment=experiment,
        rmpc_only=finalize("baseline"),
        bang_bang=finalize("bang_bang"),
        drl=finalize("drl") if policy_drl is not None else None,
    )
