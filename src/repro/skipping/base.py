"""Skipping decision function Ω interface (paper Sec. III-B).

At every step where the monitor allows it (``x ∈ X'``), the framework asks
a :class:`SkippingPolicy` for the binary choice ``z``:

* ``z = 1`` — run the safe controller κ and actuate its output;
* ``z = 0`` — skip the computation and apply the (zero) skip input.

Policies receive a :class:`DecisionContext` carrying the current state,
the recent disturbance history (the paper's ``w̄(t)`` with memory length
``r``) and — for the model-based optimiser — the known future disturbance
when the environment is predictable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["DecisionContext", "SkippingPolicy", "AlwaysRunPolicy", "AlwaysSkipPolicy"]

RUN = 1
SKIP = 0


@dataclass
class DecisionContext:
    """Everything a skipping policy may condition on at step ``t``.

    Attributes:
        time: Current step index ``t``.
        state: Measured state ``x(t)``.
        past_disturbances: ``(r, n)`` array of the most recent observed
            disturbances ``w(t−r+1) … w(t)``, zero-padded at the start of
            a run.  ``w(t)`` is included because in the paper's ACC the
            disturbance is the (radar-observable) front-vehicle velocity.
        future_disturbances: ``(H, n)`` known upcoming disturbances, or
            None when the environment is not predictable (the DRL case).
    """

    time: int
    state: np.ndarray
    past_disturbances: np.ndarray
    future_disturbances: Optional[np.ndarray] = None


class SkippingPolicy(ABC):
    """Interface for the decision function Ω."""

    @abstractmethod
    def decide(self, context: DecisionContext) -> int:
        """Return 1 to run the controller, 0 to skip."""

    def observe(
        self,
        context: DecisionContext,
        decision: int,
        forced: bool,
        next_state: np.ndarray,
        applied_input: np.ndarray,
    ) -> None:
        """Hook called after every transition (for online learners)."""

    def reset(self) -> None:
        """Clear per-episode internal state."""


class AlwaysRunPolicy(SkippingPolicy):
    """Ω ≡ 1: never skip (the RMPC-only baseline inside the framework)."""

    def decide(self, context: DecisionContext) -> int:
        return RUN


class AlwaysSkipPolicy(SkippingPolicy):
    """Ω ≡ 0: the bang-bang scheme of Eq. (7).

    Combined with the monitor this *is* the paper's bang-bang baseline:
    zero input whenever ``x ∈ X'``, κ whenever the monitor forces it.
    """

    def decide(self, context: DecisionContext) -> int:
        return SKIP
