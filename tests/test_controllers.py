"""Tests for linear feedback / LQR, constraint tightening and the RMPC."""

import numpy as np
import pytest

from repro.controllers import (
    ConstantController,
    LinearFeedback,
    RMPCInfeasibleError,
    RobustMPC,
    build_terminal_set,
    deadbeat_like_gain,
    lqr_gain,
    rmpc_feasible_set,
    rmpc_invariant_set,
    tightened_constraints,
    tightened_input_constraints,
)
from repro.geometry import HPolytope
from repro.invariance import is_rci, is_rpi


class TestLinearFeedback:
    def test_lqr_stabilizes(self, double_integrator):
        K = lqr_gain(double_integrator.A, double_integrator.B, np.eye(2), np.eye(1))
        M = double_integrator.closed_loop_matrix(K)
        assert np.max(np.abs(np.linalg.eigvals(M))) < 1.0

    def test_lqr_cheap_input_is_faster(self, double_integrator):
        A, B = double_integrator.A, double_integrator.B
        slow = lqr_gain(A, B, np.eye(2), 10.0 * np.eye(1))
        fast = lqr_gain(A, B, np.eye(2), 0.01 * np.eye(1))
        rho = lambda K: np.max(np.abs(np.linalg.eigvals(A + B @ K)))
        assert rho(fast) < rho(slow)

    def test_deadbeat_like_gain_stabilizes(self, double_integrator):
        A, B = double_integrator.A, double_integrator.B
        K = deadbeat_like_gain(A, B)
        rho = lambda gain: np.max(np.abs(np.linalg.eigvals(A + B @ gain)))
        assert rho(K) < 1.0
        # Cheaper input than the unit-weight LQR: strictly faster loop.
        assert rho(K) < rho(lqr_gain(A, B, np.eye(2), np.eye(1)))

    def test_feedback_computes_kx(self):
        fb = LinearFeedback([[1.0, -2.0]])
        np.testing.assert_allclose(fb.compute([3.0, 1.0]), [1.0])

    def test_feedback_saturates(self):
        fb = LinearFeedback([[10.0, 0.0]], saturation=([-1.0], [1.0]))
        np.testing.assert_allclose(fb.compute([5.0, 0.0]), [1.0])
        np.testing.assert_allclose(fb.compute([-5.0, 0.0]), [-1.0])

    def test_feedback_saturation_shape_check(self):
        with pytest.raises(ValueError, match="saturation"):
            LinearFeedback([[1.0, 0.0]], saturation=([-1.0, -1.0], [1.0, 1.0]))

    def test_constant_controller(self):
        c = ConstantController([0.7])
        np.testing.assert_allclose(c.compute([123.0, 4.0]), [0.7])


class TestTightening:
    def test_sequence_is_nested(self, double_integrator):
        seq = tightened_constraints(
            double_integrator.safe_set,
            double_integrator.disturbance_set,
            5,
            propagation=double_integrator.A,
        )
        assert len(seq) == 6
        for outer, inner in zip(seq, seq[1:]):
            assert outer.contains_polytope(inner, tol=1e-7)

    def test_first_step_erodes_by_w(self, double_integrator):
        seq = tightened_constraints(
            double_integrator.safe_set,
            double_integrator.disturbance_set,
            1,
            propagation=double_integrator.A,
        )
        expected = double_integrator.safe_set.pontryagin_difference(
            double_integrator.disturbance_set
        )
        assert seq[1].equals(expected, tol=1e-7)

    def test_requires_propagation(self, double_integrator):
        with pytest.raises(ValueError, match="propagation"):
            tightened_constraints(
                double_integrator.safe_set,
                double_integrator.disturbance_set,
                3,
            )

    def test_empty_tightening_raises(self, double_integrator):
        big_w = HPolytope.from_box([-6.0, -3.0], [6.0, 3.0])
        with pytest.raises(ValueError, match="empty"):
            tightened_constraints(
                double_integrator.safe_set, big_w, 1, propagation=double_integrator.A
            )

    def test_input_tightening_nested(self, double_integrator):
        K = lqr_gain(double_integrator.A, double_integrator.B, np.eye(2), np.eye(1))
        seq = tightened_input_constraints(
            double_integrator.input_set,
            double_integrator.disturbance_set,
            4,
            gain=K,
            propagation=double_integrator.closed_loop_matrix(K),
        )
        for outer, inner in zip(seq, seq[1:]):
            assert outer.contains_polytope(inner, tol=1e-7)


class TestTerminalSet:
    def test_terminal_is_rpi(self, double_integrator):
        K = lqr_gain(double_integrator.A, double_integrator.B, np.eye(2), np.eye(1))
        terminal = build_terminal_set(
            double_integrator, K, double_integrator.safe_set
        )
        M = double_integrator.closed_loop_matrix(K)
        assert is_rpi(M, terminal, double_integrator.disturbance_set, tol=1e-6)

    def test_terminal_respects_inputs(self, double_integrator):
        K = lqr_gain(double_integrator.A, double_integrator.B, np.eye(2), np.eye(1))
        terminal = build_terminal_set(
            double_integrator, K, double_integrator.safe_set
        )
        for v in terminal.vertices():
            assert double_integrator.input_set.contains(K @ v, tol=1e-6)


@pytest.fixture(scope="module")
def di_mpc():
    """RMPC on the double integrator (module-scoped: construction is slow)."""
    from tests.conftest import make_double_integrator

    system = make_double_integrator()
    return system, RobustMPC(system, horizon=6)


class TestRobustMPC:
    def test_solves_at_origin(self, di_mpc):
        _system, mpc = di_mpc
        u = mpc.compute([0.0, 0.0])
        np.testing.assert_allclose(u, [0.0], atol=1e-7)

    def test_plan_shapes(self, di_mpc):
        _system, mpc = di_mpc
        sol = mpc.solve([1.0, 0.0])
        assert sol.inputs.shape == (6, 1)
        assert sol.states.shape == (7, 2)
        assert sol.cost >= 0

    def test_plan_satisfies_nominal_dynamics(self, di_mpc):
        system, mpc = di_mpc
        sol = mpc.solve([1.0, 0.2])
        for k in range(mpc.horizon):
            predicted = system.step(sol.states[k], sol.inputs[k])
            np.testing.assert_allclose(predicted, sol.states[k + 1], atol=1e-6)

    def test_plan_respects_input_bounds(self, di_mpc):
        system, mpc = di_mpc
        sol = mpc.solve([3.0, 1.0])
        lo, hi = system.input_set.bounding_box()
        assert np.all(sol.inputs >= lo - 1e-7)
        assert np.all(sol.inputs <= hi + 1e-7)

    def test_terminal_constraint_enforced(self, di_mpc):
        _system, mpc = di_mpc
        sol = mpc.solve([2.0, 0.5])
        assert mpc.terminal_set.contains(sol.states[-1], tol=1e-6)

    def test_infeasible_far_state_raises(self, di_mpc):
        _system, mpc = di_mpc
        with pytest.raises(RMPCInfeasibleError):
            mpc.compute([4.9, 1.99])

    def test_is_feasible_probe(self, di_mpc):
        _system, mpc = di_mpc
        assert mpc.is_feasible([0.0, 0.0])
        assert not mpc.is_feasible([4.9, 1.99])

    def test_is_feasible_does_not_count_as_solve(self, di_mpc):
        """Regression: feasibility probes used to inflate solve_count,
        polluting the paper's computation-saving accounting."""
        _system, mpc = di_mpc
        mpc.reset()
        mpc.is_feasible([0.0, 0.0])
        mpc.is_feasible([4.9, 1.99])
        assert mpc.solve_count == 0

    def test_solve_count_and_reset(self, di_mpc):
        _system, mpc = di_mpc
        mpc.reset()
        mpc.compute([0.0, 0.0])
        mpc.compute([0.1, 0.0])
        assert mpc.solve_count == 2
        mpc.reset()
        assert mpc.solve_count == 0

    def test_solve_is_reentrant(self, di_mpc):
        """Regression: solve() used to write the initial state into the
        shared ``_b_eq`` buffer in place; the solve must leave the
        assembled LP data untouched (fork/parallel safety contract)."""
        _system, mpc = di_mpc
        before = mpc._b_eq.copy()
        mpc.solve([1.0, 0.2])
        mpc.solve([-0.5, 0.1])
        assert np.array_equal(mpc._b_eq, before)

    def test_constraint_matrices_are_sparse(self, di_mpc):
        import scipy.sparse as sp

        _system, mpc = di_mpc
        assert sp.issparse(mpc._A_ub)
        assert sp.issparse(mpc._A_eq)

    def test_state_dimension_check(self, di_mpc):
        _system, mpc = di_mpc
        with pytest.raises(ValueError, match="dimension"):
            mpc.compute([0.0, 0.0, 0.0])

    def test_horizon_validation(self, double_integrator):
        with pytest.raises(ValueError, match="horizon"):
            RobustMPC(double_integrator, horizon=0)

    def test_closed_loop_safety_monte_carlo(self, di_mpc, rng):
        """The central robustness claim: closed-loop RMPC keeps the state
        in the safe set under worst-case-bounded random disturbances."""
        system, mpc = di_mpc
        feasible = rmpc_feasible_set(mpc)
        x0s = feasible.sample(rng, 5)
        lo, up = system.disturbance_set.bounding_box()
        for x0 in x0s:
            W = rng.uniform(lo, up, size=(40, 2))
            result = system.simulate(x0, lambda t, x: mpc.compute(x), W)
            assert result.always_safe


class TestFeasibleSet:
    def test_feasible_set_matches_lp_feasibility(self, di_mpc, rng):
        system, mpc = di_mpc
        feasible = rmpc_feasible_set(mpc)
        # Points inside the computed X_F must be LP-feasible, points well
        # outside must not be.
        for x in feasible.sample(rng, 10):
            assert mpc.is_feasible(x)
        lo, hi = system.safe_set.bounding_box()
        outside_probes = 0
        for x in system.safe_set.sample(rng, 40):
            if feasible.violation(x) > 0.2:
                outside_probes += 1
                assert not mpc.is_feasible(x)
        assert outside_probes > 0  # the probe actually exercised the claim

    def test_invariant_set_certified(self, di_mpc):
        system, mpc = di_mpc
        xi = rmpc_invariant_set(mpc, verify=True)
        assert is_rci(
            system.A, system.B, xi, system.input_set,
            system.disturbance_set, tol=1e-6,
        )

    def test_invariant_subset_of_safe(self, di_mpc):
        system, mpc = di_mpc
        xi = rmpc_invariant_set(mpc, verify=True)
        assert system.safe_set.contains_polytope(xi, tol=1e-6)
