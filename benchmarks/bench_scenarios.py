"""Every registered scenario through the lockstep engine, parity-checked.

Standalone script (not a pytest-benchmark kernel) so CI can smoke the
whole scenario zoo and a new scenario cannot merge without engine
parity::

    PYTHONPATH=src python benchmarks/bench_scenarios.py --quick
    PYTHONPATH=src python benchmarks/bench_scenarios.py \
        --episodes 128 --horizon 100

For each registered scenario it runs the same seeded bang-bang batch on
the serial reference engine and on the lockstep engine, then asserts
the two-tier determinism contract (see ``repro.framework.lockstep``):

* **bitwise scenarios** (closed-form κ, e.g. the LQR recipes): every
  deterministic field (energy, skip rate, forced steps, max violation)
  matches record for record between serial and lockstep;
* **plan-equivalent scenarios** (RMPC recipes, whose lockstep path is
  the stacked block-diagonal solve): the ``exact_solves=True`` audit run
  must match serial record for record, and the stacked run must pass
  ``verify_plan_equivalence`` (scalar-equal optimal cost, feasible
  first inputs) at the batch's initial states; and
* **zero safety violations** everywhere — the strict certified monitor
  never saw a state leave ``XI`` (it would raise), and no visited state
  violates the safe set ``X`` (``max_violation <= 0``) under any engine;
* **telemetry transparency** — the same paired evaluation run with full
  telemetry (spans, stage profiling, metrics) produces bitwise-identical
  deterministic metric arrays to the telemetry-off run, for every
  scenario (the :mod:`repro.observability` hard contract).

Any mismatch or violation makes the script exit non-zero.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro import scenarios
from repro.controllers import verify_plan_equivalence
from repro.experiments import ExecutionConfig, ExperimentSpec, run_experiment
from repro.framework import BatchRunner
from repro.skipping import AlwaysSkipPolicy


def _deterministic_metrics(cell) -> dict:
    """A cell's per-approach metric arrays as comparable nested lists."""
    return {
        name: {
            metric: values.tolist()
            for metric, values in stats.metrics.items()
        }
        for name, stats in cell.approaches.items()
    }


def telemetry_parity(name: str, episodes: int, horizon: int, seed: int) -> bool:
    """True iff telemetry on/off leaves the paired evaluation bitwise-equal.

    Runs the scenario's paired lockstep evaluation twice — once plain,
    once with full telemetry (cell/episode-batch spans, per-approach
    stage profiling, solver-effort probes) — and compares every
    deterministic per-case metric array exactly.
    """
    spec = ExperimentSpec(
        scenario=name, num_cases=episodes, horizon=horizon, seed=seed
    )
    plain = run_experiment(
        spec, ExecutionConfig(engine="lockstep", telemetry=False)
    )
    instrumented = run_experiment(
        spec, ExecutionConfig(engine="lockstep", telemetry=True)
    )
    return (
        _deterministic_metrics(plain) == _deterministic_metrics(instrumented)
        and instrumented.telemetry is not None
    )


def bench_scenario(
    name: str, episodes: int, horizon: int, seed: int
) -> dict:
    """One scenario's build + serial/lockstep timing + parity row."""
    tick = time.perf_counter()
    case = scenarios.build(name)
    build_seconds = time.perf_counter() - tick

    rng = np.random.default_rng(seed)
    states = case.sample_initial_states(rng, episodes)
    factory = case.disturbance_factory(horizon)
    bitwise = getattr(case.controller, "bitwise_batch", True)

    def timed(engine: str, **extra):
        runner = BatchRunner(
            case.system,
            case.controller,
            monitor_factory=case.make_monitor,  # strict: XI exits raise
            policy_factory=AlwaysSkipPolicy,
            skip_input=case.skip_input,
            engine=engine,
            **extra,
        )
        start = time.perf_counter()
        result = runner.run_seeded(states, factory, root_seed=seed)
        return result, time.perf_counter() - start

    serial_result, serial_seconds = timed("serial")
    lockstep_result, lockstep_seconds = timed("lockstep")
    reference = serial_result.deterministic_records()
    identical = lockstep_result.deterministic_records() == reference
    if bitwise:
        parity = identical
    else:
        # Plan-equivalent tier: the audit mode must restore bitwise
        # parity, and the stacked solves must be cost-identical with
        # feasible inputs at the visited start states.
        exact_result, _ = timed("lockstep", exact_solves=True)
        parity = (
            exact_result.deterministic_records() == reference
            and verify_plan_equivalence(case.controller, states)["equivalent"]
        )
    max_violation = max(
        record.max_violation
        for result in (serial_result, lockstep_result)
        for record in result.records
    )
    transparent = telemetry_parity(name, episodes, horizon, seed)
    return {
        "scenario": name,
        "n": case.system.n,
        "controller": case.spec.controller,
        "contract": "bitwise" if bitwise else "plan-equivalent",
        "build_seconds": build_seconds,
        "serial_seconds": serial_seconds,
        "lockstep_seconds": lockstep_seconds,
        "speedup": serial_seconds / lockstep_seconds,
        "identical": identical,
        "parity": parity,
        "telemetry_transparent": transparent,
        "max_violation": max_violation,
        "safe": max_violation <= 0.0,
    }


def run_benchmark(
    episodes: int, horizon: int, seed: int, names=None
) -> dict:
    """Bench every requested scenario; returns rows + the overall verdict."""
    if names is None:
        names = scenarios.list_scenarios()
    rows = [bench_scenario(name, episodes, horizon, seed) for name in names]
    return {
        "episodes": episodes,
        "horizon": horizon,
        "seed": seed,
        "rows": rows,
        "ok": all(
            row["parity"] and row["safe"] and row["telemetry_transparent"]
            for row in rows
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--episodes", type=int, default=64)
    parser.add_argument("--horizon", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scenarios", nargs="+", default=None, metavar="NAME",
        help="scenario subset (default: every registered scenario)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke scale: 4 episodes x 10 steps",
    )
    parser.add_argument("--json", default=None, help="also dump results here")
    args = parser.parse_args(argv)
    episodes = 4 if args.quick else args.episodes
    horizon = 10 if args.quick else args.horizon

    report = run_benchmark(episodes, horizon, args.seed, args.scenarios)
    print(
        f"scenario zoo benchmark: {len(report['rows'])} scenario(s), "
        f"{episodes} episodes x {horizon} steps"
    )
    print(
        f"{'scenario':<14} {'n':>2} {'ctrl':<7} {'contract':>15} "
        f"{'build[s]':>9} {'serial[s]':>9} {'lock[s]':>8} {'speedup':>8} "
        f"{'parity':>6} {'telem':>5} {'max viol':>9}"
    )
    for row in report["rows"]:
        print(
            f"{row['scenario']:<14} {row['n']:>2} {row['controller']:<7} "
            f"{row['contract']:>15} "
            f"{row['build_seconds']:>9.2f} {row['serial_seconds']:>9.2f} "
            f"{row['lockstep_seconds']:>8.2f} {row['speedup']:>7.2f}x "
            f"{str(row['parity']):>6} {str(row['telemetry_transparent']):>5} "
            f"{row['max_violation']:>9.2e}"
        )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.json}")
    if not report["ok"]:
        print(
            "ERROR: an engine failed its determinism-contract check, "
            "telemetry perturbed the deterministic records, or a "
            "trajectory left the safe set"
        )
        return 1
    print(
        "all scenarios: determinism contract holds "
        "(bitwise / plan-equivalent), telemetry transparent, "
        "zero violations"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
