"""Uniform experience replay buffer."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReplayBuffer", "Batch"]


@dataclass
class Batch:
    """A sampled mini-batch of transitions (arrays share the batch axis)."""

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    dones: np.ndarray


class ReplayBuffer:
    """Fixed-capacity ring buffer of ``(s, a, r, s', done)`` transitions.

    Storage is pre-allocated on the first :meth:`push`, so sampling never
    allocates beyond the batch arrays.
    """

    def __init__(self, capacity: int, rng: np.random.Generator):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.rng = rng
        self._states = None
        self._actions = None
        self._rewards = None
        self._next_states = None
        self._dones = None
        self._size = 0
        self._cursor = 0

    def __len__(self) -> int:
        return self._size

    def push(self, state, action: int, reward: float, next_state, done: bool) -> None:
        """Append one transition, overwriting the oldest when full."""
        state = np.asarray(state, dtype=float)
        next_state = np.asarray(next_state, dtype=float)
        if self._states is None:
            dim = state.size
            self._states = np.empty((self.capacity, dim))
            self._actions = np.empty(self.capacity, dtype=int)
            self._rewards = np.empty(self.capacity)
            self._next_states = np.empty((self.capacity, dim))
            self._dones = np.empty(self.capacity, dtype=bool)
        i = self._cursor
        self._states[i] = state
        self._actions[i] = int(action)
        self._rewards[i] = float(reward)
        self._next_states[i] = next_state
        self._dones[i] = bool(done)
        self._cursor = (self._cursor + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int) -> Batch:
        """Uniformly sample ``batch_size`` transitions (with replacement
        only when the buffer is smaller than the batch)."""
        if self._size == 0:
            raise ValueError("cannot sample from an empty buffer")
        replace = self._size < batch_size
        idx = self.rng.choice(self._size, size=batch_size, replace=replace)
        return Batch(
            states=self._states[idx].copy(),
            actions=self._actions[idx].copy(),
            rewards=self._rewards[idx].copy(),
            next_states=self._next_states[idx].copy(),
            dones=self._dones[idx].copy(),
        )
