"""Setup script (also the canonical packaging metadata).

The offline environment has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build their editable wheel; use
``python setup.py develop`` there instead.  With ``wheel`` present,
``pip install -e . --no-build-isolation`` works as usual.

Package discovery is configured explicitly for the ``src/`` layout:
bare ``find_packages()`` would look in the repo root and find nothing,
silently installing an empty distribution — ``package_dir`` plus
``find_packages(where="src")`` picks up every ``repro.*`` subpackage
(including ``repro.scenarios``) automatically.
"""

from setuptools import find_packages, setup

setup(
    name="repro-intermittent-control",
    version="1.0.0",
    description=(
        "Reproduction of 'Opportunistic Intermittent Control with Safety "
        "Guarantees for Autonomous Systems' (DAC 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
    extras_require={
        # Warm-started persistent-HiGHS LP backend for the stacked RMPC
        # solves (repro.utils.lp_backends); everything falls back to the
        # scipy linprog path without it.
        "highs": ["highspy"],
        # JIT-compiled closed-form lockstep step kernel
        # (repro.framework.kernel); kernel="auto" falls back to the
        # bitwise-identical fused numpy path without it.
        "numba": ["numba"],
    },
)
