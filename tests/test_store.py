"""Unit and concurrency tests for the content-addressed result store.

The concurrency proofs are the satellite contract: any number of
writers of one cell address — threads, forked processes, two job
managers over one directory, a checkpointed sweep racing a service job
— must land whole records (atomic replace, last-write-wins) and any
concurrent reader must see either a complete valid record or a clean
miss, never a torn one.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import threading
import time

import numpy as np
import pytest

from repro.experiments.result import ApproachResult, CellResult, cell_to_dict
from repro.observability import metrics as obs
from repro.service.store import STORE_FORMAT, ResultStore
from repro.utils.parallel import fork_available


def toy_cell(key: str = "toy@a=1", seed: int = 1, scale: float = 1.0):
    metrics = {
        "energy": np.array([1.0, 2.0]) * scale,
        "skip_rate": np.array([0.5, 0.25]),
        "forced_steps": np.array([1.0, 0.0]),
        "max_violation": np.array([-0.1, -0.2]),
    }
    return CellResult(
        key=key,
        scenario="toy",
        coords=(("a", "1"),),
        config={"cases": 2, "seed": seed},
        approaches={
            "baseline": ApproachResult(
                metrics=metrics,
                mean_controller_ms=0.1,
                mean_monitor_ms=0.2,
            )
        },
        telemetry={"counters": {"x_total": [{"labels": {}, "value": 1}]}},
    )


class TestStoreBasics:
    def test_put_get_roundtrip_full_fidelity(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = toy_cell()
        assert not store.contains(cell.key, cell.config)
        path = store.put(cell)
        assert os.path.exists(path)
        assert store.contains(cell.key, cell.config)
        loaded = store.get(cell.key, cell.config)
        assert cell_to_dict(loaded) == cell_to_dict(cell)

    def test_address_depends_on_key_and_config(self, tmp_path):
        store = ResultStore(tmp_path)
        config = {"cases": 2, "seed": 1}
        assert store.path_for("a", config) != store.path_for("b", config)
        assert store.path_for("a", config) != store.path_for(
            "a", {"cases": 2, "seed": 2}
        )
        # Canonical JSON: key order does not matter.
        assert store.digest_for("a", {"x": 1, "y": 2}) == store.digest_for(
            "a", {"y": 2, "x": 1}
        )

    def test_events_counted(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = toy_cell()
        with obs.scoped_registry(enabled=True) as reg:
            assert store.get(cell.key, cell.config) is None
            store.put(cell)
            assert store.get(cell.key, cell.config) is not None
            assert reg.total(
                "result_store_events_total", event="miss", reason="absent"
            ) == 1
            assert reg.total("result_store_events_total", event="put") == 1
            assert reg.total("result_store_events_total", event="hit") == 1

    def test_format_version_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = toy_cell()
        path = store.put(cell)
        with open(path) as handle:
            envelope = json.load(handle)
        assert envelope["format"] == STORE_FORMAT
        envelope["format"] = STORE_FORMAT + 1
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        found, reason = store.lookup(cell.key, cell.config)
        assert found is None and reason == "format"

    def test_tampered_key_and_config_are_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = toy_cell()
        path = store.put(cell)
        with open(path) as handle:
            original = json.load(handle)
        for field, value in (("key", "other"), ("config", {"cases": 99})):
            envelope = dict(original)
            envelope[field] = value
            with open(path, "w") as handle:
                json.dump(envelope, handle)
            found, reason = store.lookup(cell.key, cell.config)
            assert found is None and reason == field

    def test_find_scans_by_key_across_configs(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(toy_cell(seed=1))
        store.put(toy_cell(seed=2))
        store.put(toy_cell(key="other@b=2"))
        assert len(store.find("toy@a=1")) == 2
        assert store.find("missing") == []

    def test_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(toy_cell())
        stats = store.stats()
        assert stats["files"] == 1
        assert stats["bytes"] > 0
        assert stats["format"] == STORE_FORMAT


class TestStoreGC:
    def test_gc_by_age_spares_recently_used(self, tmp_path):
        store = ResultStore(tmp_path)
        old, fresh = toy_cell(seed=1), toy_cell(seed=2)
        old_path = store.put(old)
        store.put(fresh)
        stale = time.time() - 3600
        os.utime(old_path, (stale, stale))
        summary = store.gc(max_age=60)
        assert summary["removed"] == 1
        assert store.get(old.key, old.config) is None
        assert store.get(fresh.key, fresh.config) is not None

    def test_hit_refreshes_mtime_for_lru(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = toy_cell()
        path = store.put(cell)
        stale = time.time() - 3600
        os.utime(path, (stale, stale))
        assert store.get(cell.key, cell.config) is not None  # touches
        assert store.gc(max_age=60)["removed"] == 0

    def test_gc_by_bytes_evicts_lru_first(self, tmp_path):
        store = ResultStore(tmp_path)
        paths = [store.put(toy_cell(seed=seed)) for seed in range(4)]
        for age, path in enumerate(reversed(paths)):
            stamp = time.time() - 100 * (age + 1)
            os.utime(path, (stamp, stamp))
        # paths[0] is now the oldest; shrink to roughly two records.
        size = os.path.getsize(paths[0])
        with obs.scoped_registry(enabled=True) as reg:
            summary = store.gc(max_bytes=2 * size)
            assert reg.total(
                "result_store_events_total", event="evict", reason="bytes"
            ) == summary["removed"]
        assert summary["removed"] == 2
        assert summary["bytes"] <= 2 * size
        assert not os.path.exists(paths[0])
        assert os.path.exists(paths[3])

    def test_gc_noop_when_within_budget(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(toy_cell())
        summary = store.gc(max_age=3600, max_bytes=10**9)
        assert summary["removed"] == 0
        assert summary["files"] == 1


class TestStoreConcurrency:
    def test_threaded_writers_and_readers_no_torn_reads(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = toy_cell()
        stop = threading.Event()
        problems = []

        def writer(scale):
            variant = toy_cell(scale=scale)
            while not stop.is_set():
                store.put(variant)

        def reader():
            while not stop.is_set():
                found, reason = store.lookup(cell.key, cell.config)
                # Either a complete, valid record or a clean absent
                # miss — "corrupt" would be a torn read.
                if found is None and reason != "absent":
                    problems.append(reason)

        threads = [
            threading.Thread(target=writer, args=(scale,))
            for scale in (1.0, 2.0, 3.0)
        ] + [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join()
        assert problems == []
        # Last write wins: the surviving record is one of the variants,
        # intact.
        final = store.get(cell.key, cell.config)
        assert final is not None
        energy = final.approaches["baseline"].metrics["energy"][0]
        assert energy in (1.0, 2.0, 3.0)

    @pytest.mark.skipif(not fork_available(), reason="no fork")
    def test_forked_writers_same_address_last_write_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = toy_cell()
        ctx = mp.get_context("fork")

        def hammer(scale):
            for _ in range(50):
                store.put(toy_cell(scale=scale))

        procs = [
            ctx.Process(target=hammer, args=(scale,))
            for scale in (1.0, 2.0, 3.0, 4.0)
        ]
        for proc in procs:
            proc.start()
        problems = []
        while any(proc.is_alive() for proc in procs):
            found, reason = store.lookup(cell.key, cell.config)
            if found is None and reason != "absent":
                problems.append(reason)
        for proc in procs:
            proc.join()
            assert proc.exitcode == 0
        assert problems == []
        final = store.get(cell.key, cell.config)
        assert final is not None
        energy = final.approaches["baseline"].metrics["energy"][0]
        assert energy in (1.0, 2.0, 3.0, 4.0)
        # No stray temp files left behind.
        assert [
            name
            for name in os.listdir(store.directory)
            if name.startswith(".tmp-")
        ] == []
