"""Batch experiment runners with result records and serialisation.

Wraps many :meth:`IntermittentController.run` episodes over sampled
initial states and disturbance realisations, collects per-episode
records, and exports them as JSON or CSV — the layer the benchmark
harness and user sweeps script against.

Two execution engines share one record format:

* :class:`BatchRunner` — the sequential reference implementation;
* :class:`ParallelBatchRunner` — fans episodes out over forked worker
  processes (:func:`repro.utils.parallel.fork_map`) and merges the
  results back in episode order.

Determinism contract: :meth:`BatchRunner.run_seeded` derives one
independent ``numpy.random.Generator`` per episode from a single root
seed via ``SeedSequence.spawn`` — episode ``i`` sees the same stream no
matter how many workers run the batch or which worker it lands on, so
parallel results are record-for-record reproducible against serial ones
(wall-clock timing fields excepted; see :data:`DETERMINISTIC_FIELDS`).
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Callable, Optional, Sequence

import numpy as np

from repro.controllers.base import Controller
from repro.framework.intermittent import IntermittentController, run_controller_only
from repro.framework.monitor import SafetyMonitor
from repro.skipping.base import SkippingPolicy
from repro.systems.lti import DiscreteLTISystem
from repro.utils.parallel import fork_map

__all__ = [
    "EpisodeRecord",
    "BatchResult",
    "BatchRunner",
    "ParallelBatchRunner",
    "DETERMINISTIC_FIELDS",
    "spawn_episode_seeds",
]

#: Record fields that are pure functions of (initial state, disturbance
#: realisation): identical between serial and parallel execution.  The
#: remaining fields are wall-clock measurements and vary run to run.
DETERMINISTIC_FIELDS = (
    "episode",
    "energy",
    "skip_rate",
    "forced_steps",
    "max_violation",
)


def spawn_episode_seeds(root_seed, count: int) -> list:
    """Independent per-episode seed streams from one root seed.

    ``SeedSequence.spawn`` guarantees the children are statistically
    independent and — crucially for the differential harness — that child
    ``i`` depends only on ``(root_seed, i)``, never on scheduling.
    """
    return np.random.SeedSequence(root_seed).spawn(int(count))


@dataclass(frozen=True)
class EpisodeRecord:
    """Flat per-episode metrics (JSON/CSV friendly).

    Attributes:
        episode: Episode index within the batch.
        energy: Σ‖u‖₁ over the episode.
        skip_rate: Fraction of skipped steps.
        forced_steps: Monitor-forced steps.
        mean_controller_ms: Mean κ wall-clock where it ran [ms].
        mean_monitor_ms: Mean monitor + Ω wall-clock [ms].
        computation_saving: Sec. IV-A saving ratio for this episode.
        max_violation: Largest safe-set violation over visited states
            (<= 0 means always safe).
    """

    episode: int
    energy: float
    skip_rate: float
    forced_steps: int
    mean_controller_ms: float
    mean_monitor_ms: float
    computation_saving: float
    max_violation: float

    def deterministic_view(self) -> tuple:
        """The scheduling-independent fields (see DETERMINISTIC_FIELDS)."""
        return tuple(getattr(self, name) for name in DETERMINISTIC_FIELDS)


@dataclass
class BatchResult:
    """All records of one batch plus aggregate helpers."""

    records: list = field(default_factory=list)

    def append(self, record: EpisodeRecord) -> None:
        self.records.append(record)

    def extend(self, records: Sequence[EpisodeRecord]) -> None:
        """Append many records (used when merging worker chunks)."""
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    def mean(self, metric: str) -> float:
        """Mean of a record field across episodes."""
        if not self.records:
            raise ValueError("empty batch")
        return float(np.mean([getattr(r, metric) for r in self.records]))

    def deterministic_records(self) -> list:
        """Per-episode tuples of the scheduling-independent fields.

        The differential test harness compares these between serial and
        parallel runs; wall-clock fields are excluded by construction.
        """
        return [record.deterministic_view() for record in self.records]

    def to_json(self, path) -> None:
        """Write records as a JSON array (``[]`` for an empty batch)."""
        payload = [asdict(r) for r in self.records]
        Path(path).write_text(json.dumps(payload, indent=2))

    def to_csv(self, path) -> None:
        """Write records as CSV with a header row.

        An empty batch writes the header only, mirroring the ``[]`` that
        :meth:`to_json` produces, so both formats round-trip any batch.
        """
        fieldnames = [f.name for f in fields(EpisodeRecord)]
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            for record in self.records:
                writer.writerow(asdict(record))

    @classmethod
    def from_json(cls, path) -> "BatchResult":
        """Load a batch previously saved with :meth:`to_json`."""
        payload = json.loads(Path(path).read_text())
        result = cls()
        for row in payload:
            result.append(EpisodeRecord(**row))
        return result

    @classmethod
    def from_csv(cls, path) -> "BatchResult":
        """Load a batch previously saved with :meth:`to_csv`."""
        types = {f.name: f.type for f in fields(EpisodeRecord)}
        result = cls()
        with open(path, newline="") as handle:
            for row in csv.DictReader(handle):
                coerced = {
                    name: (int(value) if types[name] == "int" else float(value))
                    for name, value in row.items()
                }
                result.append(EpisodeRecord(**coerced))
        return result


class BatchRunner:
    """Run many monitored episodes and collect :class:`EpisodeRecord` s.

    Args:
        system: The plant.
        controller: Safe controller κ.  It is shared across episodes and
            must return to a pristine state on ``reset()`` (true for the
            library's controllers) so episode results are independent of
            execution order — the property the parallel engine relies on.
        monitor_factory: Zero-argument callable producing a fresh
            :class:`SafetyMonitor` per episode (monitors carry violation
            counters, so sharing one across episodes muddles stats).
        policy_factory: Zero-argument callable producing the Ω policy.
        skip_input: Constant skip input (default zero).
        memory_length: Disturbance-history length exposed to Ω.
        reveal_future: Pass the realised future to Ω (model-based case).
    """

    def __init__(
        self,
        system: DiscreteLTISystem,
        controller: Controller,
        monitor_factory: Callable[[], SafetyMonitor],
        policy_factory: Callable[[], SkippingPolicy],
        skip_input=None,
        memory_length: int = 1,
        reveal_future: bool = False,
    ):
        self.system = system
        self.controller = controller
        self.monitor_factory = monitor_factory
        self.policy_factory = policy_factory
        self.skip_input = skip_input
        self.memory_length = memory_length
        self.reveal_future = reveal_future

    # ------------------------------------------------------------------
    # Episode execution
    # ------------------------------------------------------------------
    def _run_one(self, episode: int, x0, disturbances) -> EpisodeRecord:
        """Run a single episode and flatten its stats into a record."""
        runner = IntermittentController(
            self.system,
            self.controller,
            self.monitor_factory(),
            self.policy_factory(),
            skip_input=self.skip_input,
            memory_length=self.memory_length,
            reveal_future=self.reveal_future,
        )
        stats = runner.run(x0, disturbances)
        return EpisodeRecord(
            episode=episode,
            energy=stats.energy,
            skip_rate=stats.skip_rate,
            forced_steps=stats.forced_steps,
            mean_controller_ms=1e3 * stats.mean_controller_time,
            mean_monitor_ms=1e3 * stats.mean_monitor_time,
            computation_saving=stats.computation_saving(),
            max_violation=stats.max_violation(self.system.safe_set),
        )

    @staticmethod
    def _initial_states(initial_states) -> np.ndarray:
        return np.atleast_2d(np.asarray(initial_states, dtype=float))

    def run(
        self,
        initial_states,
        disturbance_sampler: Callable[[int], np.ndarray],
    ) -> BatchResult:
        """Run one episode per initial state.

        Args:
            initial_states: ``(N, n)`` array of start states (each must
                lie in the monitor's invariant set).
            disturbance_sampler: ``episode_index -> (T, n)`` realisation.
                Called in episode order exactly once per episode (so a
                sampler closing over a shared generator is reproducible).

        Returns:
            A :class:`BatchResult` with ``N`` records.
        """
        result = BatchResult()
        states = self._initial_states(initial_states)
        for episode, x0 in enumerate(states):
            result.append(
                self._run_one(episode, x0, disturbance_sampler(episode))
            )
        return result

    def run_seeded(
        self,
        initial_states,
        disturbance_factory: Callable[[int, np.random.Generator], np.ndarray],
        root_seed,
    ) -> BatchResult:
        """Run a batch under the per-episode seed-stream contract.

        Args:
            initial_states: ``(N, n)`` array of start states.
            disturbance_factory: ``(episode, rng) -> (T, n)`` realisation;
                must draw randomness only from the passed generator.
            root_seed: Root seed; episode ``i`` gets the ``i``-th spawned
                child stream regardless of execution order or worker count.

        Returns:
            A :class:`BatchResult` with ``N`` records in episode order.
        """
        states = self._initial_states(initial_states)
        seeds = spawn_episode_seeds(root_seed, len(states))
        result = BatchResult()
        for episode, x0 in enumerate(states):
            realisation = disturbance_factory(
                episode, np.random.default_rng(seeds[episode])
            )
            result.append(self._run_one(episode, x0, realisation))
        return result


class ParallelBatchRunner(BatchRunner):
    """Process-parallel :class:`BatchRunner` with identical results.

    Episodes are dispatched to ``jobs`` forked workers in interleaved
    chunks and the records merged back in episode order, so a batch run
    here is record-for-record identical (up to wall-clock fields) to the
    same batch on the serial :class:`BatchRunner`:

    * :meth:`run` pre-samples every realisation in the parent, in episode
      order, before fanning out — a sampler closing over one shared
      generator therefore sees exactly the serial call sequence;
    * :meth:`run_seeded` re-derives episode ``i``'s private generator
      from the root seed inside whichever worker runs it (cheaper than
      shipping ``(T, n)`` arrays to every child for large batches).

    Args:
        jobs: Worker processes.  ``None``/0 = one per CPU; 1 (or platforms
            without ``fork``) degrades to the serial loop.
        Remaining arguments: see :class:`BatchRunner`.
    """

    def __init__(
        self,
        system: DiscreteLTISystem,
        controller: Controller,
        monitor_factory: Callable[[], SafetyMonitor],
        policy_factory: Callable[[], SkippingPolicy],
        skip_input=None,
        memory_length: int = 1,
        reveal_future: bool = False,
        jobs: Optional[int] = None,
    ):
        super().__init__(
            system,
            controller,
            monitor_factory,
            policy_factory,
            skip_input=skip_input,
            memory_length=memory_length,
            reveal_future=reveal_future,
        )
        self.jobs = jobs

    def _dispatch(self, states: np.ndarray, realisation_for) -> BatchResult:
        """Fan episodes out, then merge chunk results in episode order."""
        episodes = range(len(states))
        records = fork_map(
            lambda episode: self._run_one(
                episode, states[episode], realisation_for(episode)
            ),
            episodes,
            jobs=self.jobs,
        )
        result = BatchResult()
        result.extend(records)  # fork_map preserves input (episode) order
        return result

    def run(
        self,
        initial_states,
        disturbance_sampler: Callable[[int], np.ndarray],
    ) -> BatchResult:
        """Parallel :meth:`BatchRunner.run` (same signature, same records)."""
        states = self._initial_states(initial_states)
        realisations = [
            np.atleast_2d(np.asarray(disturbance_sampler(episode), dtype=float))
            for episode in range(len(states))
        ]
        return self._dispatch(states, realisations.__getitem__)

    def run_seeded(
        self,
        initial_states,
        disturbance_factory: Callable[[int, np.random.Generator], np.ndarray],
        root_seed,
    ) -> BatchResult:
        """Parallel :meth:`BatchRunner.run_seeded` (same records)."""
        states = self._initial_states(initial_states)
        seeds = spawn_episode_seeds(root_seed, len(states))
        return self._dispatch(
            states,
            lambda episode: disturbance_factory(
                episode, np.random.default_rng(seeds[episode])
            ),
        )
